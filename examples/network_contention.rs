//! Network contention demo: drive the flit-level wormhole network
//! directly (no scheduler/allocator) and visualize how packet latency
//! degrades as a contiguous block's all-to-all is scattered across the
//! mesh — the physical mechanism behind the paper's entire story.
//!
//! ```text
//! cargo run --release --example network_contention
//! ```

use procsim::{pattern_messages, Coord, Histogram, Network, Pattern, SimRng};

/// Runs one all-to-all over `nodes` and returns (mean latency, mean
/// blocking, completion time).
fn run_all_to_all(nodes: &[Coord], label: &str) {
    let mut net = Network::new(16, 22, 3);
    let mut rng = SimRng::new(5);
    let msgs = pattern_messages(Pattern::AllToAll, nodes, 5, &mut rng);
    for (i, (s, d)) in msgs.iter().enumerate() {
        net.send(*s, *d, 8, i as u64, 0);
    }
    let end = net.run_until_idle(0);
    let cs = net.drain_completions();
    let mut hist = Histogram::new(0.0, 400.0, 20);
    let (mut lat, mut blk) = (0u64, 0u64);
    for c in &cs {
        lat += c.latency;
        blk += c.blocked;
        hist.push(c.latency as f64);
    }
    println!(
        "{label:<28} packets {:>5}  mean latency {:>6.1}  mean blocking {:>6.1}  span {:>6}",
        cs.len(),
        lat as f64 / cs.len() as f64,
        blk as f64 / cs.len() as f64,
        end
    );
}

fn main() {
    println!("36-processor job, all-to-all, num_mes=5, Plen=8, ts=3, 16x22 mesh\n");

    // contiguous 6x6 block (what GABL gives you on an empty mesh)
    let block: Vec<Coord> = (0..6u16)
        .flat_map(|y| (0..6u16).map(move |x| Coord::new(x, y)))
        .collect();
    run_all_to_all(&block, "contiguous 6x6 block");

    // two 6x3 halves at opposite mesh corners (fragmented allocation)
    let halves: Vec<Coord> = (0..3u16)
        .flat_map(|y| (0..6u16).map(move |x| Coord::new(x, y)))
        .chain((19..22u16).flat_map(|y| (10..16u16).map(move |x| Coord::new(x, y))))
        .collect();
    run_all_to_all(&halves, "two 6x3 halves, far apart");

    // fully scattered: every 10th cell (what Random gives you)
    let scattered: Vec<Coord> = (0..352u32)
        .filter(|i| i % 10 == 0)
        .take(36)
        .map(|i| Coord::new((i % 16) as u16, (i / 16) as u16))
        .collect();
    run_all_to_all(&scattered, "36 scattered processors");

    println!("\ncontiguity -> shorter paths -> fewer held channels -> less blocking.");
}
