//! Diagnostic: strategy ordering under the synthetic Paragon trace
//! (small jobs, many concurrent) across loads — the regime where the
//! paper's GABL advantage is largest.

use procsim::{
    PageIndexing, ParagonModel, SchedulerKind, SimConfig, Simulator, StrategyKind, WorkloadSpec,
};

fn main() {
    for load in [0.0005, 0.001, 0.0015, 0.002] {
        println!("trace load {load}");
        for strat in [
            StrategyKind::Gabl,
            StrategyKind::Paging {
                size_index: 0,
                indexing: PageIndexing::RowMajor,
            },
            StrategyKind::Mbs,
        ] {
            let mut cfg = SimConfig::paper(
                strat,
                SchedulerKind::Fcfs,
                WorkloadSpec::SyntheticTrace {
                    model: ParagonModel::default(),
                    load,
                    runtime_scale: 360.0,
                },
                7,
            );
            cfg.warmup_jobs = 150;
            cfg.measured_jobs = 500;
            let (m, hops) = Simulator::new(&cfg, 0).run_with_netstats();
            println!(
                "  {:<12} turn {:>9.1} serv {:>7.1} lat {:>6.1} blk {:>6.1} hops {:>5.2} frags {:>5.1} util {:>5.3}",
                format!("{strat}"),
                m.mean_turnaround,
                m.mean_service,
                m.mean_packet_latency,
                m.mean_packet_blocking,
                hops,
                m.mean_fragments,
                m.utilization,
            );
        }
    }
}
