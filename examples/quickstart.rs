//! Quickstart: run the paper's three allocation strategies under both
//! schedulers at one load and print the comparison table.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use procsim::{
    run_point, SchedulerKind, SideDist, SimConfig, StrategyKind, WorkloadSpec,
};

fn main() {
    let load = 0.0008; // jobs per time unit, mid-range of the Fig. 3 sweep
    println!("strategy x scheduler comparison on a 16x22 mesh");
    println!("stochastic workload, uniform side lengths, load {load} jobs/cycle");
    println!("all-to-all pattern, Plen=8 flits, ts=3 cycles, num_mes=5\n");
    println!(
        "{:<16} {:>12} {:>10} {:>8} {:>10} {:>10} {:>6}",
        "series", "turnaround", "service", "util", "latency", "blocking", "reps"
    );

    for sched in SchedulerKind::PAPER {
        for strat in StrategyKind::PAPER {
            let mut cfg = SimConfig::paper(
                strat,
                sched,
                WorkloadSpec::Stochastic {
                    sides: SideDist::Uniform,
                    load,
                    num_mes: 5.0,
                },
                2024,
            );
            // quick demo settings; the bench harness uses the paper's
            // full 1000-job runs
            cfg.warmup_jobs = 100;
            cfg.measured_jobs = 400;
            let p = run_point(&cfg, 3, 8);
            println!(
                "{:<16} {:>12.1} {:>10.1} {:>8.3} {:>10.1} {:>10.1} {:>6}",
                p.label,
                p.turnaround(),
                p.service(),
                p.utilization(),
                p.latency(),
                p.blocking(),
                p.replications
            );
        }
    }
    println!("\nExpected ranking (paper): GABL best on most metrics, MBS worst;");
    println!("for a fixed strategy, SSD improves turnaround over FCFS.");
}
