//! External fragmentation demo (the paper's Fig. 1 scenario, §1/§2):
//! contiguous allocation fails while enough processors are free;
//! non-contiguous strategies carry on. Prints mesh occupancy maps.
//!
//! ```text
//! cargo run --release --example fragmentation_demo
//! ```

use procsim::{
    AllocationStrategy, Coord, FirstFit, Gabl, Mesh, PageIndexing, StrategyKind,
};

fn render(mesh: &Mesh) -> String {
    let mut s = String::new();
    for y in (0..mesh.length()).rev() {
        for x in 0..mesh.width() {
            s.push(if mesh.is_occupied(Coord::new(x, y)) { '#' } else { '.' });
            s.push(' ');
        }
        s.push('\n');
    }
    s
}

fn main() {
    // Build the paper's Fig. 1 state on a 4x4 mesh: allocated except the
    // four corners, so 4 processors are free but no 2x2 sub-mesh is.
    let mut mesh = Mesh::new(4, 4);
    for y in 0..4u16 {
        for x in 0..4u16 {
            let corner = (x == 0 || x == 3) && (y == 0 || y == 3);
            if !corner {
                mesh.occupy(Coord::new(x, y));
            }
        }
    }
    println!("Fig. 1 state ({} free processors):\n{}", mesh.free_count(), render(&mesh));

    // contiguous first-fit: fails
    let mut ff = FirstFit::new();
    match ff.allocate(&mut mesh, 2, 2) {
        None => println!("contiguous FF: 2x2 request FAILS (external fragmentation)"),
        Some(_) => unreachable!(),
    }

    // GABL: succeeds non-contiguously
    let mut gabl = Gabl::new();
    let alloc = gabl.allocate(&mut mesh, 2, 2).expect("GABL must succeed");
    println!(
        "GABL: 2x2 request succeeds with {} fragments: {:?}",
        alloc.fragments(),
        alloc.nodes()
    );
    gabl.release(&mut mesh, alloc);

    // Larger demonstration: churn a 16x22 mesh to steady state and count
    // how often contiguous allocation fails while free >= request.
    println!("\nfragmentation frequency under churn (16x22, random 1..8-sided requests):");
    let mut mesh = Mesh::new(16, 22);
    let mut rng = procsim::SimRng::new(42);
    let mut ff = FirstFit::new();
    let mut live = Vec::new();
    let (mut attempts, mut frag_failures) = (0u32, 0u32);
    for _ in 0..20_000 {
        if rng.chance(0.55) || live.is_empty() {
            let a = rng.uniform_incl(1, 8) as u16;
            let b = rng.uniform_incl(1, 8) as u16;
            let p = a as u32 * b as u32;
            let free = mesh.free_count();
            attempts += 1;
            match ff.allocate(&mut mesh, a, b) {
                Some(al) => live.push(al),
                None if p <= free => frag_failures += 1, // enough free, not contiguous
                None => {}
            }
        } else {
            let al = live.swap_remove(rng.index(live.len()));
            ff.release(&mut mesh, al);
        }
    }
    println!(
        "  contiguous FF: {frag_failures} of {attempts} attempts failed purely due to \
         fragmentation ({:.1}%)",
        100.0 * frag_failures as f64 / attempts as f64
    );
    let _ = StrategyKind::Paging {
        size_index: 0,
        indexing: PageIndexing::RowMajor,
    };
    println!("  any non-contiguous strategy would have started all of those jobs immediately.");
}
