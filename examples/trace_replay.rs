//! Trace replay: generate a synthetic SDSC-Paragon-like trace, write it
//! to SWF, read it back, and replay it through the simulator under two
//! strategies — the full "real workload" pipeline of the paper, and the
//! template for replaying a genuine archive trace (drop your `.swf` file
//! in and pass it as the first argument).
//!
//! ```text
//! cargo run --release --example trace_replay [trace.swf]
//! ```

use procsim::{
    parse_swf, trace_to_jobs, write_swf, ParagonModel, SchedulerKind, SimConfig, SimRng,
    Simulator, StrategyKind, SwfRecords, TraceRecord, WorkloadSpec,
};
use std::sync::Arc;

fn main() {
    let arg = std::env::args().nth(1);
    let records: Vec<TraceRecord> = match &arg {
        Some(path) => {
            // stream the file through the incremental parser (the
            // text-in-memory route is `parse_swf`, exercised below)
            let file = std::fs::File::open(path).expect("cannot read trace file");
            SwfRecords::new(std::io::BufReader::new(file))
                .collect::<Result<_, _>>()
                .expect("malformed SWF")
        }
        None => {
            // synthesize, round-trip through SWF to exercise the parser
            let model = ParagonModel {
                jobs: 3000,
                ..ParagonModel::default()
            };
            let recs = model.generate(&mut SimRng::new(2008));
            let swf = write_swf(&recs);
            parse_swf(&swf).expect("round trip")
        }
    };
    println!(
        "trace: {} jobs, mean size {:.1} nodes, mean inter-arrival {:.1}s",
        records.len(),
        records.iter().map(|r| r.size as f64).sum::<f64>() / records.len() as f64,
        records.last().unwrap().submit_s / records.len() as f64
    );

    // compress arrivals 2x (the paper's f < 1; stays below the
    // saturation knee so single-run turnarounds are meaningful) and map
    // runtimes to communication volume
    let jobs = trace_to_jobs(&records, 16, 22, 0.5, 360.0);
    let jobs = Arc::new(jobs);

    println!("\nreplaying under FCFS:");
    println!(
        "{:<12} {:>12} {:>10} {:>8} {:>10}",
        "strategy", "turnaround", "service", "util", "latency"
    );
    for strat in StrategyKind::PAPER {
        let mut cfg = SimConfig::paper(
            strat,
            SchedulerKind::Fcfs,
            WorkloadSpec::FixedTrace(jobs.clone()),
            1,
        );
        cfg.warmup_jobs = 100;
        cfg.measured_jobs = 800;
        let m = Simulator::new(&cfg, 0).run();
        println!(
            "{:<12} {:>12.1} {:>10.1} {:>8.3} {:>10.1}",
            strat.to_string(),
            m.mean_turnaround,
            m.mean_service,
            m.utilization,
            m.mean_packet_latency
        );
    }
}
