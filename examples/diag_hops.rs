//! Diagnostic: mean intra-job packet distance (hops), latency and
//! blocking per strategy at a range of loads. Used while calibrating the
//! reproduction; kept as a worked example of instrumenting the simulator.

use procsim::{
    PageIndexing, SchedulerKind, SideDist, SimConfig, Simulator, StrategyKind, WorkloadSpec,
};

fn main() {
    for load in [0.0003, 0.0006, 0.0009, 0.0012] {
        println!("load {load}");
        for strat in [
            StrategyKind::Gabl,
            StrategyKind::Paging {
                size_index: 0,
                indexing: PageIndexing::RowMajor,
            },
            StrategyKind::Mbs,
            StrategyKind::Random,
        ] {
            let mut cfg = SimConfig::paper(
                strat,
                SchedulerKind::Fcfs,
                WorkloadSpec::Stochastic {
                    sides: SideDist::Uniform,
                    load,
                    num_mes: 5.0,
                },
                7,
            );
            cfg.warmup_jobs = 100;
            cfg.measured_jobs = 400;
            let m = Simulator::new(&cfg, 0).run_with_netstats();
            println!(
                "  {:<12} turn {:>9.1} serv {:>7.1} lat {:>6.1} blk {:>6.1} hops {:>5.2} frags {:>5.1} util {:>5.3}",
                format!("{strat}"),
                m.0.mean_turnaround,
                m.0.mean_service,
                m.0.mean_packet_latency,
                m.0.mean_packet_blocking,
                m.1,
                m.0.mean_fragments,
                m.0.utilization,
            );
        }
    }
}
