//! # mesh-sched — job scheduling strategies
//!
//! The paper evaluates two scheduling strategies (§4):
//!
//! * **FCFS** — the request that arrived first is considered first;
//!   "allocation attempts stop when they fail for the current FIFO queue
//!   head" (no bypassing, so a large blocked job holds up the queue).
//! * **SSD** (Shortest-Service-Demand) — the job with the shortest
//!   *processor service demand* is considered first; adopted "because it
//!   is expected to reduce performance loss due to FCFS blocking".
//!
//! Additional strategies beyond the paper, used by ablation benches:
//! SJF/LJF by requested area, and a bounded look-ahead window variant of
//! FCFS (a reservation-free form of backfilling).
//!
//! A scheduler here is a policy over the *waiting queue only*: the core
//! simulator asks for the attempt order each scheduling pass, tries to
//! allocate the listed jobs in order until the policy's blocking rule
//! stops the pass, and removes jobs that start.

use desim::Time;
use std::collections::VecDeque;

/// A job waiting for processors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedJob {
    /// Simulator-wide job identifier.
    pub job_id: u64,
    /// Arrival time (queue order for FCFS).
    pub arrive: Time,
    /// Requested sub-mesh width.
    pub a: u16,
    /// Requested sub-mesh length.
    pub b: u16,
    /// A-priori service demand estimate (total packets to be sent for the
    /// stochastic workload; scaled trace runtime for the real workload).
    /// This is the quantity SSD sorts by.
    pub service_demand: f64,
}

impl QueuedJob {
    /// Requested processor count.
    pub fn area(&self) -> u32 {
        self.a as u32 * self.b as u32
    }
}

/// A running job's footprint, as reported to reservation-aware policies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningJob {
    /// Processors held.
    pub procs: u32,
    /// Estimated completion time (the simulator calibrates an online
    /// demand→time factor; estimates need only be mutually consistent).
    pub est_completion: Time,
}

/// A waiting-queue policy.
pub trait Scheduler {
    /// Name as used in the paper's figure labels ("FCFS", "SSD").
    fn name(&self) -> String;

    /// Adds an arriving job to the queue.
    fn enqueue(&mut self, job: QueuedJob);

    /// Queue length.
    fn len(&self) -> usize;

    /// Whether the queue is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes the job ids that may be attempted in one scheduling pass
    /// into `out` (cleared first), in attempt order. The pass stops at
    /// the first job whose allocation fails, except that window policies
    /// list several candidates and the pass stops only after all listed
    /// candidates fail. Filling a caller-owned buffer lets the
    /// simulator's hot loop reuse one allocation across every pass
    /// instead of building a fresh `Vec` per iteration.
    fn attempt_order_into(&self, out: &mut Vec<u64>);

    /// Convenience wrapper around [`Scheduler::attempt_order_into`]
    /// collecting into a fresh `Vec` (tests, diagnostics, and the
    /// differential reference pass).
    fn attempt_order(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.attempt_order_into(&mut out);
        out
    }

    /// Removes a job that has been allocated (or cancelled).
    fn remove(&mut self, job_id: u64) -> Option<QueuedJob>;

    /// Clears the queue between replications.
    fn clear(&mut self);

    /// Whether this policy uses [`Scheduler::observe`] — lets the
    /// simulator skip building the running-set snapshot otherwise.
    fn wants_observation(&self) -> bool {
        false
    }

    /// Reservation hook: reservation-aware policies (EASY backfilling)
    /// receive the running set, the current free-processor count and the
    /// clock before each scheduling pass. Default: ignored.
    fn observe(&mut self, _running: &[RunningJob], _free: u32, _now: Time) {}

    /// Estimated service time of a queued job, used by reservation-aware
    /// policies. Updated by the simulator's online calibration. Default:
    /// ignored.
    fn set_demand_time_factor(&mut self, _factor: f64) {}
}

/// Policy selector for configs and sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// First-come-first-served (paper default; head-of-line blocking).
    Fcfs,
    /// Shortest-Service-Demand first (paper §4).
    Ssd,
    /// Shortest-area-first (smallest processor request first).
    SjfArea,
    /// Largest-area-first.
    LjfArea,
    /// FCFS that may bypass a blocked head, trying up to `window` queued
    /// jobs in arrival order each pass.
    FcfsWindow(usize),
    /// EASY backfilling: FCFS order with a reservation for the queue
    /// head; a later job may start only if its estimated completion does
    /// not push past the head's reservation time.
    EasyBackfill,
}

impl SchedulerKind {
    /// The paper's two policies.
    pub const PAPER: [SchedulerKind; 2] = [SchedulerKind::Fcfs, SchedulerKind::Ssd];

    /// Instantiates the policy.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match *self {
            SchedulerKind::Fcfs => Box::new(Fcfs::new()),
            SchedulerKind::Ssd => Box::new(Ssd::new()),
            SchedulerKind::SjfArea => Box::new(ByKey::new("SJF", |j| {
                (j.area() as f64, j.arrive)
            })),
            SchedulerKind::LjfArea => Box::new(ByKey::new("LJF", |j| {
                (-(j.area() as f64), j.arrive)
            })),
            SchedulerKind::FcfsWindow(w) => Box::new(FcfsWindow::new(w)),
            SchedulerKind::EasyBackfill => Box::new(EasyBackfill::new()),
        }
    }
}

impl core::str::FromStr for SchedulerKind {
    type Err = String;

    /// Parses the CLI / scenario-file spelling: `fcfs`, `ssd`, `sjf`,
    /// `ljf`, `easy` (case-insensitive; window policies are
    /// programmatic-only).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "fcfs" => Ok(SchedulerKind::Fcfs),
            "ssd" => Ok(SchedulerKind::Ssd),
            "sjf" => Ok(SchedulerKind::SjfArea),
            "ljf" => Ok(SchedulerKind::LjfArea),
            "easy" => Ok(SchedulerKind::EasyBackfill),
            other => Err(format!(
                "unknown scheduler '{other}' (fcfs, ssd, sjf, ljf, easy)"
            )),
        }
    }
}

impl core::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            SchedulerKind::Fcfs => write!(f, "FCFS"),
            SchedulerKind::Ssd => write!(f, "SSD"),
            SchedulerKind::SjfArea => write!(f, "SJF"),
            SchedulerKind::LjfArea => write!(f, "LJF"),
            SchedulerKind::FcfsWindow(w) => write!(f, "FCFS-W{w}"),
            SchedulerKind::EasyBackfill => write!(f, "EASY"),
        }
    }
}

/// First-Come-First-Served.
#[derive(Debug, Default)]
pub struct Fcfs {
    q: VecDeque<QueuedJob>,
}

impl Fcfs {
    /// An empty FCFS queue.
    pub fn new() -> Self {
        Fcfs::default()
    }
}

impl Scheduler for Fcfs {
    fn name(&self) -> String {
        "FCFS".into()
    }

    fn enqueue(&mut self, job: QueuedJob) {
        self.q.push_back(job);
    }

    fn len(&self) -> usize {
        self.q.len()
    }

    fn attempt_order_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend(self.q.front().map(|j| j.job_id));
    }

    fn remove(&mut self, job_id: u64) -> Option<QueuedJob> {
        let pos = self.q.iter().position(|j| j.job_id == job_id)?;
        self.q.remove(pos)
    }

    fn clear(&mut self) {
        self.q.clear();
    }
}

/// Shortest-Service-Demand. Ties broken by arrival time then id, so the
/// order is total and deterministic.
#[derive(Debug, Default)]
pub struct Ssd {
    jobs: Vec<QueuedJob>,
}

impl Ssd {
    /// An empty SSD queue.
    pub fn new() -> Self {
        Ssd::default()
    }

    fn front(&self) -> Option<&QueuedJob> {
        self.jobs.iter().min_by(|x, y| {
            x.service_demand
                .total_cmp(&y.service_demand)
                .then(x.arrive.cmp(&y.arrive))
                .then(x.job_id.cmp(&y.job_id))
        })
    }
}

impl Scheduler for Ssd {
    fn name(&self) -> String {
        "SSD".into()
    }

    fn enqueue(&mut self, job: QueuedJob) {
        self.jobs.push(job);
    }

    fn len(&self) -> usize {
        self.jobs.len()
    }

    fn attempt_order_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend(self.front().map(|j| j.job_id));
    }

    fn remove(&mut self, job_id: u64) -> Option<QueuedJob> {
        let pos = self.jobs.iter().position(|j| j.job_id == job_id)?;
        Some(self.jobs.swap_remove(pos))
    }

    fn clear(&mut self) {
        self.jobs.clear();
    }
}

/// Generic priority policy over a key function (used for SJF/LJF).
pub struct ByKey {
    label: &'static str,
    key: fn(&QueuedJob) -> (f64, Time),
    jobs: Vec<QueuedJob>,
}

impl ByKey {
    /// A queue ordered by `key` (ascending), labelled `label`.
    pub fn new(label: &'static str, key: fn(&QueuedJob) -> (f64, Time)) -> Self {
        ByKey {
            label,
            key,
            jobs: Vec::new(),
        }
    }
}

impl Scheduler for ByKey {
    fn name(&self) -> String {
        self.label.into()
    }

    fn enqueue(&mut self, job: QueuedJob) {
        self.jobs.push(job);
    }

    fn len(&self) -> usize {
        self.jobs.len()
    }

    fn attempt_order_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend(
            self.jobs
                .iter()
                .min_by(|x, y| {
                    let (kx, ax) = (self.key)(x);
                    let (ky, ay) = (self.key)(y);
                    kx.total_cmp(&ky)
                        .then(ax.cmp(&ay))
                        .then(x.job_id.cmp(&y.job_id))
                })
                .map(|j| j.job_id),
        );
    }

    fn remove(&mut self, job_id: u64) -> Option<QueuedJob> {
        let pos = self.jobs.iter().position(|j| j.job_id == job_id)?;
        Some(self.jobs.swap_remove(pos))
    }

    fn clear(&mut self) {
        self.jobs.clear();
    }
}

/// FCFS with a bounded bypass window: each pass may attempt the first
/// `window` queued jobs in arrival order (a reservation-free backfill).
/// `FcfsWindow(1)` is exactly FCFS.
#[derive(Debug)]
pub struct FcfsWindow {
    q: VecDeque<QueuedJob>,
    window: usize,
}

impl FcfsWindow {
    /// FCFS with a bypass window of `window` >= 1 queued jobs.
    pub fn new(window: usize) -> Self {
        assert!(window >= 1);
        FcfsWindow {
            q: VecDeque::new(),
            window,
        }
    }
}

impl Scheduler for FcfsWindow {
    fn name(&self) -> String {
        format!("FCFS-W{}", self.window)
    }

    fn enqueue(&mut self, job: QueuedJob) {
        self.q.push_back(job);
    }

    fn len(&self) -> usize {
        self.q.len()
    }

    fn attempt_order_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend(self.q.iter().take(self.window).map(|j| j.job_id));
    }

    fn remove(&mut self, job_id: u64) -> Option<QueuedJob> {
        let pos = self.q.iter().position(|j| j.job_id == job_id)?;
        self.q.remove(pos)
    }

    fn clear(&mut self) {
        self.q.clear();
    }
}

/// EASY backfilling (Lifka's scheme adapted to processor counts):
/// strict FCFS for the head; any later job may be offered this pass iff
/// (a) it fits in the processors free right now, and (b) starting it now
/// would not delay the head's *reservation* — the earliest time the
/// running jobs' estimated completions free enough processors for the
/// head.
#[derive(Debug, Default)]
pub struct EasyBackfill {
    q: VecDeque<QueuedJob>,
    running: Vec<RunningJob>,
    free: u32,
    now: Time,
    /// Online demand→cycles factor maintained by the simulator.
    factor: f64,
}

impl EasyBackfill {
    /// An empty EASY-backfilling queue.
    pub fn new() -> Self {
        EasyBackfill {
            factor: 1.0,
            ..Default::default()
        }
    }

    /// Earliest time `procs_needed` processors are expected free, given
    /// the running jobs' estimated completions.
    fn reservation_time(&self, procs_needed: u32) -> Time {
        if self.free >= procs_needed {
            return self.now;
        }
        let mut jobs: Vec<RunningJob> = self.running.clone();
        jobs.sort_by_key(|r| r.est_completion);
        let mut free = self.free;
        for r in &jobs {
            free += r.procs;
            if free >= procs_needed {
                return r.est_completion.max(self.now);
            }
        }
        // estimates do not cover the request (stale info): no reservation
        Time::MAX
    }
}

impl Scheduler for EasyBackfill {
    fn name(&self) -> String {
        "EASY".into()
    }

    fn enqueue(&mut self, job: QueuedJob) {
        self.q.push_back(job);
    }

    fn len(&self) -> usize {
        self.q.len()
    }

    fn attempt_order_into(&self, out: &mut Vec<u64>) {
        out.clear();
        let Some(head) = self.q.front() else {
            return;
        };
        out.push(head.job_id);
        if self.q.len() > 1 {
            let reservation = self.reservation_time(head.area());
            for j in self.q.iter().skip(1) {
                if j.area() > self.free {
                    continue; // cannot start now anyway
                }
                let est_done = self
                    .now
                    .saturating_add((j.service_demand * self.factor).round() as Time);
                if est_done <= reservation {
                    out.push(j.job_id);
                }
            }
        }
    }

    fn remove(&mut self, job_id: u64) -> Option<QueuedJob> {
        let pos = self.q.iter().position(|j| j.job_id == job_id)?;
        self.q.remove(pos)
    }

    fn clear(&mut self) {
        self.q.clear();
        self.running.clear();
        self.free = 0;
        self.now = 0;
    }

    fn wants_observation(&self) -> bool {
        true
    }

    fn observe(&mut self, running: &[RunningJob], free: u32, now: Time) {
        self.running.clear();
        self.running.extend_from_slice(running);
        self.free = free;
        self.now = now;
    }

    fn set_demand_time_factor(&mut self, factor: f64) {
        if factor.is_finite() && factor > 0.0 {
            self.factor = factor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, arrive: Time, area: (u16, u16), demand: f64) -> QueuedJob {
        QueuedJob {
            job_id: id,
            arrive,
            a: area.0,
            b: area.1,
            service_demand: demand,
        }
    }

    #[test]
    fn fcfs_strict_arrival_order() {
        let mut s = Fcfs::new();
        s.enqueue(job(1, 10, (2, 2), 9.0));
        s.enqueue(job(2, 20, (1, 1), 1.0));
        assert_eq!(s.attempt_order(), vec![1]);
        s.remove(1);
        assert_eq!(s.attempt_order(), vec![2]);
        s.remove(2);
        assert!(s.attempt_order().is_empty());
        assert!(s.is_empty());
    }

    #[test]
    fn fcfs_only_offers_head() {
        let mut s = Fcfs::new();
        s.enqueue(job(1, 0, (16, 22), 100.0)); // huge blocked head
        s.enqueue(job(2, 1, (1, 1), 1.0));
        // FCFS never bypasses: only the head is offered
        assert_eq!(s.attempt_order(), vec![1]);
    }

    #[test]
    fn ssd_orders_by_demand_not_arrival() {
        let mut s = Ssd::new();
        s.enqueue(job(1, 0, (4, 4), 50.0));
        s.enqueue(job(2, 5, (8, 8), 10.0));
        s.enqueue(job(3, 9, (1, 1), 30.0));
        assert_eq!(s.attempt_order(), vec![2]);
        s.remove(2);
        assert_eq!(s.attempt_order(), vec![3]);
        s.remove(3);
        assert_eq!(s.attempt_order(), vec![1]);
    }

    #[test]
    fn ssd_tie_break_by_arrival() {
        let mut s = Ssd::new();
        s.enqueue(job(5, 9, (1, 1), 10.0));
        s.enqueue(job(6, 3, (1, 1), 10.0));
        assert_eq!(s.attempt_order(), vec![6]);
    }

    #[test]
    fn sjf_ljf_order_by_area() {
        let mut sjf = SchedulerKind::SjfArea.build();
        let mut ljf = SchedulerKind::LjfArea.build();
        for s in [&mut sjf, &mut ljf] {
            s.enqueue(job(1, 0, (4, 4), 1.0)); // 16
            s.enqueue(job(2, 1, (2, 2), 9.0)); // 4
            s.enqueue(job(3, 2, (8, 8), 5.0)); // 64
        }
        assert_eq!(sjf.attempt_order(), vec![2]);
        assert_eq!(ljf.attempt_order(), vec![3]);
    }

    #[test]
    fn window_offers_k_candidates_in_arrival_order() {
        let mut s = FcfsWindow::new(3);
        for i in 0..5 {
            s.enqueue(job(i, i, (1, 1), 1.0));
        }
        assert_eq!(s.attempt_order(), vec![0, 1, 2]);
        s.remove(1); // bypassed head stays; removing mid-queue works
        assert_eq!(s.attempt_order(), vec![0, 2, 3]);
    }

    #[test]
    fn window_one_is_fcfs() {
        let mut w = FcfsWindow::new(1);
        let mut f = Fcfs::new();
        for i in 0..4 {
            let j = job(i, i, (2, 2), 1.0);
            w.enqueue(j);
            f.enqueue(j);
        }
        assert_eq!(w.attempt_order(), f.attempt_order());
    }

    #[test]
    fn remove_missing_returns_none() {
        let mut s = Fcfs::new();
        assert!(s.remove(42).is_none());
        s.enqueue(job(1, 0, (1, 1), 1.0));
        assert!(s.remove(42).is_none());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn clear_empties_all_kinds() {
        for kind in [
            SchedulerKind::Fcfs,
            SchedulerKind::Ssd,
            SchedulerKind::SjfArea,
            SchedulerKind::LjfArea,
            SchedulerKind::FcfsWindow(4),
        ] {
            let mut s = kind.build();
            s.enqueue(job(1, 0, (2, 3), 4.0));
            s.enqueue(job(2, 1, (3, 2), 2.0));
            s.clear();
            assert!(s.is_empty());
            assert!(s.attempt_order().is_empty());
        }
    }

    #[test]
    fn display_labels() {
        assert_eq!(SchedulerKind::Fcfs.to_string(), "FCFS");
        assert_eq!(SchedulerKind::Ssd.to_string(), "SSD");
        assert_eq!(SchedulerKind::FcfsWindow(8).to_string(), "FCFS-W8");
        assert_eq!(SchedulerKind::EasyBackfill.to_string(), "EASY");
    }

    #[test]
    fn easy_offers_head_when_queue_nonempty() {
        let mut s = EasyBackfill::new();
        s.enqueue(job(1, 0, (16, 22), 100.0));
        s.enqueue(job(2, 1, (1, 1), 1.0));
        // no observation yet: free = 0, nothing backfills, head offered
        assert_eq!(s.attempt_order(), vec![1]);
    }

    #[test]
    fn easy_backfills_short_job_behind_blocked_head() {
        let mut s = EasyBackfill::new();
        s.enqueue(job(1, 0, (16, 22), 1000.0)); // head needs 352 procs
        s.enqueue(job(2, 1, (2, 2), 10.0)); // tiny short job
        // one running job holds 100 procs until t=500; 252 free now
        s.observe(
            &[RunningJob {
                procs: 100,
                est_completion: 500,
            }],
            252,
            0,
        );
        s.set_demand_time_factor(1.0);
        // head's reservation: all 352 only at t=500; job 2 (est 10 cycles,
        // fits in 252 free) finishes well before 500 -> backfilled
        assert_eq!(s.attempt_order(), vec![1, 2]);
    }

    #[test]
    fn easy_refuses_backfill_that_delays_head() {
        let mut s = EasyBackfill::new();
        s.enqueue(job(1, 0, (16, 22), 1000.0));
        s.enqueue(job(2, 1, (2, 2), 10_000.0)); // long job
        s.observe(
            &[RunningJob {
                procs: 100,
                est_completion: 500,
            }],
            252,
            0,
        );
        s.set_demand_time_factor(1.0);
        // job 2 would run until t=10000 > reservation 500: not offered
        assert_eq!(s.attempt_order(), vec![1]);
    }

    #[test]
    fn easy_backfill_requires_fitting_now() {
        let mut s = EasyBackfill::new();
        s.enqueue(job(1, 0, (16, 22), 1000.0));
        s.enqueue(job(2, 1, (10, 10), 1.0)); // short but 100 procs
        s.observe(
            &[RunningJob {
                procs: 300,
                est_completion: 500,
            }],
            52,
            0,
        );
        s.set_demand_time_factor(1.0);
        // 100 > 52 free: cannot backfill regardless of estimate
        assert_eq!(s.attempt_order(), vec![1]);
    }
}
