//! Seedable random streams and the distributions the paper's workloads use.
//!
//! All stochastic inputs of the simulation flow through [`SimRng`] so that a
//! run is reproducible from a single `u64` seed, and so that independent
//! replications can use provably disjoint substreams (a requirement of the
//! paper's output analysis: "averaged over enough independent runs so that
//! the confidence level is 95%").

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::queue::Time;

/// A deterministic random stream.
///
/// Wraps a fast non-cryptographic PRNG and layers the distributions needed
/// by the workload models: exponential (inter-arrival times, message
/// counts, job side lengths), discrete uniform (side lengths), and
/// lognormal (synthetic trace runtimes).
#[derive(Debug, Clone)]
pub struct SimRng {
    rng: SmallRng,
}

impl SimRng {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent substream. Uses SplitMix64 on
    /// `(seed-ish state, id)` so substreams for different ids are decorrelated
    /// regardless of how much the parent stream has been consumed.
    pub fn substream(&mut self, id: u64) -> SimRng {
        let mut z = self
            .rng
            .gen::<u64>()
            .wrapping_add(id.wrapping_mul(0x9E3779B97F4A7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        SimRng::new(z ^ (z >> 31))
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn uniform01(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    #[inline]
    pub fn uniform_incl(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        self.rng.gen_range(lo..=hi)
    }

    /// Exponential variate with the given mean (inverse-CDF method).
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // 1 - U avoids ln(0)
        -mean * (1.0 - self.uniform01()).ln()
    }

    /// Exponential inter-arrival delay in whole cycles, at least 1.
    ///
    /// `rate` is the paper's *system load* (jobs per time unit); the mean
    /// inter-arrival time is `1 / rate`.
    #[inline]
    pub fn exp_interarrival(&mut self, rate: f64) -> Time {
        debug_assert!(rate > 0.0);
        (self.exp(1.0 / rate).round() as Time).max(1)
    }

    /// Exponentially distributed side length with mean `mean`, clamped to
    /// `[1, max]` — the paper's second stochastic distribution ("width and
    /// length of job requests are exponentially distributed with a mean of
    /// half the side ... of the entire mesh"), which must be clamped to fit
    /// the machine.
    #[inline]
    pub fn exp_side(&mut self, mean: f64, max: u16) -> u16 {
        let v = self.exp(mean).ceil();
        (v as u16).clamp(1, max)
    }

    /// Uniform side length over `[1, max]` — the paper's first stochastic
    /// distribution.
    #[inline]
    pub fn uniform_side(&mut self, max: u16) -> u16 {
        self.uniform_incl(1, max as u64) as u16
    }

    /// Exponentially distributed message count with the given mean,
    /// rounded, at least 1 (paper: "the number of messages ... is
    /// exponentially distributed with a mean num_mes").
    #[inline]
    pub fn exp_count(&mut self, mean: f64) -> u32 {
        (self.exp(mean).round() as u32).max(1)
    }

    /// Standard normal variate (Box–Muller; one value per call for
    /// simplicity — this is nowhere near the hot path).
    pub fn normal(&mut self) -> f64 {
        let u1 = (1.0 - self.uniform01()).max(f64::MIN_POSITIVE);
        let u2 = self.uniform01();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Lognormal variate with the given *log-space* parameters.
    #[inline]
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Bernoulli draw.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform01() < p
    }

    /// Uniform choice of an index in `0..n`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.rng.gen_range(0..n)
    }

    /// Raw u64 draw (for deriving seeds).
    #[inline]
    pub fn raw(&mut self) -> u64 {
        self.rng.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.raw(), b.raw());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.raw() == b.raw()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn substreams_are_deterministic_and_distinct() {
        let mut root1 = SimRng::new(7);
        let mut root2 = SimRng::new(7);
        let mut s1 = root1.substream(3);
        let mut s2 = root2.substream(3);
        assert_eq!(s1.raw(), s2.raw());

        let mut root = SimRng::new(7);
        let mut a = root.substream(1);
        let mut root = SimRng::new(7);
        let mut b = root.substream(2);
        assert_ne!(a.raw(), b.raw());
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::new(9);
        let n = 200_000;
        let mean = 40.0;
        let sum: f64 = (0..n).map(|_| r.exp(mean)).sum();
        let m = sum / n as f64;
        assert!((m - mean).abs() < mean * 0.02, "sample mean {m}");
    }

    #[test]
    fn interarrival_rate_matches_load() {
        let mut r = SimRng::new(11);
        let rate = 0.02; // jobs per time unit
        let n = 100_000;
        let total: u64 = (0..n).map(|_| r.exp_interarrival(rate)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 50.0).abs() < 2.0, "mean interarrival {mean}");
    }

    #[test]
    fn uniform_side_covers_range() {
        let mut r = SimRng::new(13);
        let mut seen = [false; 17];
        for _ in 0..10_000 {
            let s = r.uniform_side(16);
            assert!((1..=16).contains(&s));
            seen[s as usize] = true;
        }
        assert!(seen[1..=16].iter().all(|&b| b));
    }

    #[test]
    fn exp_side_clamped() {
        let mut r = SimRng::new(17);
        for _ in 0..10_000 {
            let s = r.exp_side(8.0, 16);
            assert!((1..=16).contains(&s));
        }
    }

    #[test]
    fn exp_count_at_least_one_with_right_mean() {
        let mut r = SimRng::new(19);
        let n = 100_000;
        let total: u64 = (0..n).map(|_| r.exp_count(5.0) as u64).sum();
        let mean = total as f64 / n as f64;
        assert!(total >= n); // every draw >= 1
        // E[max(1, round(Exp(5)))] is slightly above 5
        assert!((mean - 5.0).abs() < 0.3, "mean count {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::new(23);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn lognormal_median() {
        let mut r = SimRng::new(29);
        let mu = 3.0;
        let n = 100_001;
        let mut xs: Vec<f64> = (0..n).map(|_| r.lognormal(mu, 1.5)).collect();
        xs.sort_by(f64::total_cmp);
        let median = xs[n / 2];
        let expected = mu.exp();
        assert!(
            (median - expected).abs() < expected * 0.05,
            "median {median} vs {expected}"
        );
    }

    #[test]
    fn chance_probability() {
        let mut r = SimRng::new(31);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.3).abs() < 0.01, "p {p}");
    }
}
