//! The future-event list.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time in flit cycles (= the paper's "time units").
pub type Time = u64;

#[derive(Debug, Clone)]
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

// Order by (time, seq) only; the event payload does not participate (and
// need not implement any comparison traits), so the queue pops
// simultaneous events in scheduling (FIFO) order.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}

impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A monotone discrete-event queue.
///
/// Events are popped in non-decreasing time order; ties are broken by
/// insertion order, making runs with a fixed RNG seed fully deterministic.
/// The queue tracks the current simulation time (`now`), which advances to
/// each popped event's timestamp and can also be advanced explicitly (the
/// network layer steps the clock cycle-by-cycle between job-level events).
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: Time,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
        }
    }

    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — scheduling into the past is always a
    /// model bug and would silently corrupt causality if allowed.
    pub fn schedule(&mut self, at: Time, event: E) {
        assert!(at >= self.now, "event scheduled in the past ({at} < {})", self.now);
        self.heap.push(Reverse(Entry {
            time: at,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
    }

    /// Schedules `event` `delay` cycles from now.
    pub fn schedule_in(&mut self, delay: Time, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Pops the earliest event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|Reverse(e)| {
            inv_assert!(e.time >= self.now, "event queue time ran backwards");
            self.now = e.time;
            (e.time, e.event)
        })
    }

    /// Pops the earliest event only if it is due at or before `t`.
    pub fn pop_due(&mut self, t: Time) -> Option<(Time, E)> {
        if self.peek_time().is_some_and(|pt| pt <= t) {
            self.pop()
        } else {
            None
        }
    }

    /// Advances the clock without popping (used by the cycle-driven network
    /// layer between job-level events).
    ///
    /// # Panics
    /// Panics if `t` is in the past or would skip over a pending event.
    pub fn advance_to(&mut self, t: Time) {
        assert!(t >= self.now, "clock moved backwards");
        if let Some(pt) = self.peek_time() {
            assert!(t <= pt, "advance_to({t}) would skip event at {pt}");
        }
        self.now = t;
    }

    /// Discards all pending events (end of a replication).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Eq)]
    enum Ev {
        A,
        B,
        C,
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, Ev::C);
        q.schedule(10, Ev::A);
        q.schedule(20, Ev::B);
        assert_eq!(q.pop(), Some((10, Ev::A)));
        assert_eq!(q.pop(), Some((20, Ev::B)));
        assert_eq!(q.pop(), Some((30, Ev::C)));
        assert_eq!(q.pop(), None);
        assert_eq!(q.now(), 30);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        q.schedule(5, Ev::B);
        q.schedule(5, Ev::A);
        q.schedule(5, Ev::C);
        assert_eq!(q.pop().unwrap().1, Ev::B);
        assert_eq!(q.pop().unwrap().1, Ev::A);
        assert_eq!(q.pop().unwrap().1, Ev::C);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(10, Ev::A);
        q.pop();
        q.schedule_in(5, Ev::B);
        assert_eq!(q.pop(), Some((15, Ev::B)));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule(10, Ev::A);
        q.pop();
        q.schedule(5, Ev::B);
    }

    #[test]
    fn pop_due_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(10, Ev::A);
        assert_eq!(q.pop_due(9), None);
        assert_eq!(q.pop_due(10), Some((10, Ev::A)));
    }

    #[test]
    fn advance_to_moves_clock() {
        let mut q: EventQueue<Ev> = EventQueue::new();
        q.advance_to(7);
        assert_eq!(q.now(), 7);
        q.schedule(9, Ev::A);
        q.advance_to(9);
        assert_eq!(q.pop(), Some((9, Ev::A)));
    }

    #[test]
    #[should_panic(expected = "skip event")]
    fn advance_past_event_panics() {
        let mut q = EventQueue::new();
        q.schedule(5, Ev::A);
        q.advance_to(6);
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.schedule(1, Ev::A);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn interleaved_schedule_pop_is_monotone() {
        let mut q = EventQueue::new();
        let mut last = 0;
        q.schedule(1, Ev::A);
        for i in 0..100u64 {
            if let Some((t, _)) = q.pop() {
                assert!(t >= last);
                last = t;
                q.schedule(t + (i * 7919) % 13 + 1, Ev::B);
            }
        }
    }
}
