//! # desim — a small discrete-event simulation engine
//!
//! The simulation kernel underneath the mesh simulator (the role ProcSimity's
//! C kernel played for the original paper). It provides:
//!
//! * [`Time`] — the global simulated clock type. One unit is one *flit
//!   cycle*: the time for a flit to cross one link (paper §5).
//! * [`EventQueue`] — a monotone future-event list with deterministic FIFO
//!   tie-breaking for simultaneous events.
//! * [`rng`] — seedable, splittable random streams and the probability
//!   distributions the paper's workloads need (exponential inter-arrival
//!   times, uniform / bounded-exponential job side lengths, lognormal
//!   runtimes for the synthetic trace).
//!
//! The engine is deliberately generic over the event payload type so each
//! layer (job-level simulator, tests, examples) can define its own event
//! enum without dynamic dispatch.

// Deep invariant check: a `debug_assert!` in ordinary builds, promoted
// to an always-compiled `assert!` under `--features invariants` (see
// docs/LINTS.md). `cfg!` keeps both arms type-checked; the dead branch
// is optimized out.
macro_rules! inv_assert {
    ($($arg:tt)*) => {
        if cfg!(feature = "invariants") {
            assert!($($arg)*);
        } else {
            debug_assert!($($arg)*);
        }
    };
}

pub mod queue;
pub mod rng;

pub use queue::{EventQueue, Time};
pub use rng::SimRng;
