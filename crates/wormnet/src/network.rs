//! The cycle engine: injection, header arbitration, worm advancement.

use crate::packet::{PacketId, PacketState};
use crate::routing::route;
use crate::topology::Topology;
use desim::Time;
use mesh2d::Coord;
use std::collections::VecDeque;

const FREE: u32 = u32::MAX;

/// A delivered packet, reported once its tail flit is consumed by the
/// destination PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Caller tag (job id).
    pub tag: u64,
    /// Cycle the last flit was ejected.
    pub delivered_at: Time,
    /// Network latency: delivery minus injection (excludes source queueing,
    /// per the paper's metric definition).
    pub latency: u64,
    /// Cycles the header spent blocked waiting for busy channels.
    pub blocked: u64,
    /// Cycles spent waiting in the source PE's injection queue.
    pub queue_delay: u64,
    /// Router-to-router hops traversed.
    pub hops: u32,
}

/// Aggregate counters over the life of the network (never reset by
/// draining completions).
#[derive(Debug, Clone, Copy, Default)]
pub struct NetCounters {
    /// Packets delivered so far.
    pub delivered: u64,
    /// Summed network latency over delivered packets, in cycles.
    pub total_latency: u64,
    /// Summed header blocking time over delivered packets, in cycles.
    pub total_blocked: u64,
    /// Summed router-to-router hop counts over delivered packets.
    pub total_hops: u64,
    /// Cycles the network has been stepped.
    pub cycles: u64,
}

/// The wormhole network simulator. See the crate docs for the model.
#[derive(Debug)]
pub struct Network {
    topo: Topology,
    /// Router delay per node, the paper's `ts`.
    ts: u32,
    /// Channel owner table: packet slot or `FREE`.
    owner: Vec<u32>,
    /// Packet slab.
    packets: Vec<Option<PacketState>>,
    free_slots: Vec<u32>,
    /// Slots of packets currently inside the network.
    active: Vec<u32>,
    /// Per-node injection FIFO (packet slots waiting to enter).
    inject_q: Vec<VecDeque<u32>>,
    /// Nodes with non-empty injection queues.
    pending_nodes: Vec<u32>,
    /// Completions not yet drained by the caller.
    completed: Vec<Completion>,
    counters: NetCounters,
    /// Rotating arbitration offset for fairness.
    rr: usize,
    /// Per-physical-resource bandwidth stamp: the last cycle each
    /// physical link/port carried a flit. Virtual channels of one link
    /// share its bandwidth, so at most one worm crossing a physical link
    /// may advance per cycle.
    phys_stamp: Vec<u64>,
    /// Current cycle stamp (monotone; independent of the caller's clock).
    stamp: u64,
}

impl Network {
    /// Creates an idle network over a `w × l` mesh (single virtual
    /// channel — the paper's configuration) with per-node routing delay
    /// `ts`.
    pub fn new(w: u16, l: u16, ts: u32) -> Self {
        Self::with_topology(Topology::new(w, l), ts)
    }

    /// Creates an idle network over an arbitrary topology (mesh or torus,
    /// any VC count).
    pub fn with_topology(topo: Topology, ts: u32) -> Self {
        let nodes = topo.nodes() as usize;
        let channels = topo.num_channels() as usize;
        let phys = topo.num_physical() as usize;
        Network {
            topo,
            ts,
            owner: vec![FREE; channels],
            packets: Vec::new(),
            free_slots: Vec::new(),
            active: Vec::new(),
            inject_q: vec![VecDeque::new(); nodes],
            pending_nodes: Vec::new(),
            completed: Vec::new(),
            counters: NetCounters::default(),
            rr: 0,
            phys_stamp: vec![0; phys],
            stamp: 0,
        }
    }

    /// The closed-form uncontended latency of this model: a header that
    /// never blocks crosses `hops + 2` channels at `ts + 1` cycles per
    /// acquisition after the first, then the body drains at one flit per
    /// cycle.
    pub fn uncontended_latency(hops: u32, plen: u32, ts: u32) -> u64 {
        (hops as u64 + 1) * (ts as u64 + 1) + plen as u64
    }

    /// The topology this network was built over.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Packets currently inside the network.
    #[inline]
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Packets waiting in source injection queues.
    pub fn queued_count(&self) -> usize {
        self.pending_nodes
            .iter()
            .map(|&n| self.inject_q[n as usize].len())
            .sum()
    }

    /// True when no packet is in flight or queued.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.active.is_empty() && self.pending_nodes.is_empty()
    }

    /// Lifetime counters.
    #[inline]
    pub fn counters(&self) -> NetCounters {
        self.counters
    }

    /// Hands a packet of `len_flits` flits to `src`'s injection queue at
    /// time `now`. The route is fixed dimension-ordered (XY on mesh;
    /// minimal with dateline VCs on torus). Returns the packet's slab slot.
    pub fn send(&mut self, src: Coord, dst: Coord, len_flits: u32, tag: u64, now: Time) -> PacketId {
        let path = route(&self.topo, src, dst);
        let pkt = PacketState::new(path, len_flits, tag, now);
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.packets[s as usize] = Some(pkt);
                s
            }
            None => {
                self.packets.push(Some(pkt));
                (self.packets.len() - 1) as u32
            }
        };
        let node = (src.y as u32 * self.topo.width() as u32 + src.x as u32) as usize;
        if self.inject_q[node].is_empty() {
            self.pending_nodes.push(node as u32);
        }
        self.inject_q[node].push_back(slot);
        PacketId(slot)
    }

    /// Removes and returns all completions recorded so far.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completed)
    }

    /// Advances the network one cycle. `now` is the absolute time of the
    /// cycle being simulated (used to stamp injection and delivery times).
    pub fn step(&mut self, now: Time) {
        self.counters.cycles += 1;
        self.stamp += 1;

        // --- movement phase -------------------------------------------------
        // Iterate active packets starting from a rotating offset so no
        // packet systematically wins channel arbitration.
        let n = self.active.len();
        if n > 0 {
            self.rr = (self.rr + 1) % n;
            let mut i = 0;
            let mut done_slots: Vec<usize> = Vec::new();
            while i < n {
                let idx = (self.rr + i) % n;
                let slot = self.active[idx] as usize;
                if self.advance_packet(slot, now) {
                    done_slots.push(idx);
                }
                i += 1;
            }
            // remove completed packets (largest index first so swap_remove
            // does not disturb smaller indices)
            done_slots.sort_unstable_by(|a, b| b.cmp(a));
            for idx in done_slots {
                let slot = self.active.swap_remove(idx);
                self.packets[slot as usize] = None;
                self.free_slots.push(slot);
            }
        }

        // --- injection phase -------------------------------------------------
        // A node's next queued packet enters iff its injection channel is
        // free. Newly injected packets do not move until the next cycle.
        let mut k = 0;
        while k < self.pending_nodes.len() {
            let node = self.pending_nodes[k] as usize;
            let q = &mut self.inject_q[node];
            debug_assert!(!q.is_empty());
            let front = *q.front().unwrap() as usize;
            let inj = self.packets[front].as_ref().unwrap().path[0];
            if self.owner[inj.index()] == FREE {
                q.pop_front();
                let pkt = self.packets[front].as_mut().unwrap();
                self.owner[inj.index()] = front as u32;
                pkt.head = 0;
                pkt.tail = 0;
                pkt.injected = 1;
                pkt.countdown = self.ts;
                pkt.injected_at = now;
                self.active.push(front as u32);
                if q.is_empty() {
                    self.pending_nodes.swap_remove(k);
                    continue; // k now points at a different node
                }
            }
            k += 1;
        }
    }

    /// Checks and claims physical-link bandwidth for a worm shift whose
    /// flits land in `path[land_from ..= land_to]`. Returns false (and
    /// claims nothing) when any needed physical resource already carried
    /// a flit this cycle — only possible when virtual channels share
    /// links (torus / VC > 1); on the paper's 1-VC mesh each physical
    /// resource has a single owner and this never fails.
    fn claim_bandwidth(&mut self, slot: usize, land_from: usize, land_to: usize) -> bool {
        let pkt = self.packets[slot].as_ref().unwrap();
        for i in land_from..=land_to {
            let phys = self.topo.physical_of(pkt.path[i]) as usize;
            if self.phys_stamp[phys] == self.stamp {
                return false;
            }
        }
        let path: Vec<u32> = (land_from..=land_to)
            .map(|i| self.topo.physical_of(self.packets[slot].as_ref().unwrap().path[i]))
            .collect();
        for phys in path {
            self.phys_stamp[phys as usize] = self.stamp;
        }
        true
    }

    /// Advances one packet by one cycle. Returns true when the packet has
    /// fully drained and its slot should be reclaimed.
    fn advance_packet(&mut self, slot: usize, now: Time) -> bool {
        let pkt = self.packets[slot].as_mut().unwrap();
        #[cfg(debug_assertions)]
        pkt.check_invariant();

        if pkt.draining {
            // One flit streams into the destination PE per cycle — if the
            // physical links under the worm have bandwidth left this cycle.
            let injecting = pkt.injected < pkt.len_flits;
            let land_from = if injecting { pkt.tail } else { pkt.tail + 1 };
            let land_to = pkt.path.len() - 1;
            if land_from <= land_to && !self.claim_bandwidth(slot, land_from, land_to) {
                let pkt = self.packets[slot].as_mut().unwrap();
                pkt.blocked_cycles += 1;
                return false;
            }
            let pkt = self.packets[slot].as_mut().unwrap();
            pkt.ejected += 1;
            if pkt.injected < pkt.len_flits {
                // a fresh flit enters the inject channel in the same shift
                pkt.injected += 1;
            } else {
                // tail flit moved forward: release the rearmost channel
                self.owner[pkt.path[pkt.tail].index()] = FREE;
                pkt.tail += 1;
            }
            if pkt.ejected == pkt.len_flits {
                let c = Completion {
                    tag: pkt.tag,
                    delivered_at: now,
                    latency: now - pkt.injected_at,
                    blocked: pkt.blocked_cycles,
                    queue_delay: pkt.injected_at - pkt.queued_at,
                    hops: pkt.hops(),
                };
                self.counters.delivered += 1;
                self.counters.total_latency += c.latency;
                self.counters.total_blocked += c.blocked;
                self.counters.total_hops += c.hops as u64;
                self.completed.push(c);
                return true;
            }
            return false;
        }

        // Header still carving the route.
        if pkt.countdown > 0 {
            pkt.countdown -= 1;
            return false;
        }
        let next = pkt.head + 1;
        let next_ch = pkt.path[next];
        if self.owner[next_ch.index()] != FREE {
            // wormhole blocking: hold every occupied channel and wait
            pkt.blocked_cycles += 1;
            return false;
        }
        // bandwidth: the shift lands flits in [tail(+1) ..= next]
        let injecting = pkt.injected < pkt.len_flits;
        let land_from = if injecting { pkt.tail } else { pkt.tail + 1 };
        if !self.claim_bandwidth(slot, land_from, next) {
            let pkt = self.packets[slot].as_mut().unwrap();
            pkt.blocked_cycles += 1;
            return false;
        }
        let pkt = self.packets[slot].as_mut().unwrap();
        // acquire and shift the worm forward one slot
        self.owner[next_ch.index()] = slot as u32;
        pkt.head = next;
        if pkt.injected < pkt.len_flits {
            pkt.injected += 1; // new flit enters behind; tail stays
        } else {
            self.owner[pkt.path[pkt.tail].index()] = FREE;
            pkt.tail += 1;
        }
        if next == pkt.path.len() - 1 {
            pkt.draining = true; // header reached the ejection port
        } else {
            pkt.countdown = self.ts; // routing delay at the node just entered
        }
        false
    }

    /// Runs the network until idle, starting at `start`; returns the first
    /// idle cycle. Intended for tests and standalone experiments — the full
    /// simulator interleaves `step` with job-level events instead.
    pub fn run_until_idle(&mut self, start: Time) -> Time {
        let mut t = start;
        while !self.is_idle() {
            self.step(t);
            t += 1;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PLEN: u32 = 8;
    const TS: u32 = 3;

    fn net(w: u16, l: u16) -> Network {
        Network::new(w, l, TS)
    }

    #[test]
    fn single_packet_uncontended_latency() {
        for (src, dst) in [
            (Coord::new(0, 0), Coord::new(5, 0)),
            (Coord::new(0, 0), Coord::new(0, 7)),
            (Coord::new(2, 3), Coord::new(6, 9)),
            (Coord::new(4, 4), Coord::new(4, 4)),
        ] {
            let mut n = net(16, 22);
            n.send(src, dst, PLEN, 1, 0);
            n.run_until_idle(0);
            let c = n.drain_completions();
            assert_eq!(c.len(), 1);
            let hops = src.manhattan(&dst);
            assert_eq!(
                c[0].latency,
                Network::uncontended_latency(hops, PLEN, TS),
                "{src} -> {dst}"
            );
            assert_eq!(c[0].blocked, 0);
            assert_eq!(c[0].hops, hops);
        }
    }

    #[test]
    fn latency_grows_with_distance() {
        let mut lat = Vec::new();
        for d in [1u16, 4, 8, 12] {
            let mut n = net(16, 22);
            n.send(Coord::new(0, 0), Coord::new(d, 0), PLEN, 0, 0);
            n.run_until_idle(0);
            lat.push(n.drain_completions()[0].latency);
        }
        assert!(lat.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn disjoint_packets_do_not_interact() {
        let mut n = net(16, 22);
        n.send(Coord::new(0, 0), Coord::new(5, 0), PLEN, 0, 0);
        n.send(Coord::new(0, 5), Coord::new(5, 5), PLEN, 1, 0);
        n.run_until_idle(0);
        for c in n.drain_completions() {
            assert_eq!(c.latency, Network::uncontended_latency(5, PLEN, TS));
            assert_eq!(c.blocked, 0);
        }
    }

    #[test]
    fn same_source_serializes_through_injection() {
        // Two packets from one node: the second waits in the source queue
        // until the first's tail clears the injection channel, and its
        // queue_delay (not its latency) reflects that wait.
        let mut n = net(16, 22);
        n.send(Coord::new(0, 0), Coord::new(8, 0), PLEN, 0, 0);
        n.send(Coord::new(0, 0), Coord::new(8, 0), PLEN, 1, 0);
        n.run_until_idle(0);
        let cs = n.drain_completions();
        assert_eq!(cs.len(), 2);
        let first = cs.iter().find(|c| c.tag == 0).unwrap();
        let second = cs.iter().find(|c| c.tag == 1).unwrap();
        assert_eq!(first.queue_delay, 0);
        assert!(second.queue_delay > 0, "second must queue at the source");
        assert!(second.delivered_at > first.delivered_at);
    }

    #[test]
    fn head_on_contention_blocks_exactly_one_packet() {
        // Two packets cross the same link in the same direction; one blocks.
        let mut n = net(16, 22);
        n.send(Coord::new(0, 0), Coord::new(6, 0), PLEN, 0, 0);
        n.send(Coord::new(1, 0), Coord::new(6, 0), PLEN, 1, 0);
        n.run_until_idle(0);
        let cs = n.drain_completions();
        let blocked: Vec<_> = cs.iter().filter(|c| c.blocked > 0).collect();
        assert_eq!(blocked.len(), 1, "exactly one of the two packets blocks: {cs:?}");
    }

    #[test]
    fn ejection_contention_serializes_delivery() {
        // Many packets to one destination: ejection channel is the
        // bottleneck; all must still be delivered (no deadlock).
        let mut n = net(8, 8);
        for i in 0..8u16 {
            if i != 4 {
                n.send(Coord::new(i, 0), Coord::new(4, 4), PLEN, i as u64, 0);
            }
        }
        let end = n.run_until_idle(0);
        let cs = n.drain_completions();
        assert_eq!(cs.len(), 7);
        assert!(cs.iter().any(|c| c.blocked > 0), "hotspot must cause blocking");
        assert!(end > 0);
    }

    #[test]
    fn all_to_all_delivers_everything() {
        // 4x4 sub-population all-to-all: heavy contention, conservation of
        // packets, no deadlock (XY routing).
        let mut n = net(16, 22);
        let nodes: Vec<Coord> = (0..4u16)
            .flat_map(|y| (0..4u16).map(move |x| Coord::new(x, y)))
            .collect();
        let mut sent = 0u64;
        for (i, &s) in nodes.iter().enumerate() {
            for (j, &d) in nodes.iter().enumerate() {
                if i != j {
                    n.send(s, d, PLEN, (i * 16 + j) as u64, 0);
                    sent += 1;
                }
            }
        }
        n.run_until_idle(0);
        let cs = n.drain_completions();
        assert_eq!(cs.len() as u64, sent);
        assert_eq!(n.counters().delivered, sent);
        assert!(n.is_idle());
        // all channels released
        assert!(n.owner.iter().all(|&o| o == FREE));
    }

    #[test]
    fn contended_latency_exceeds_uncontended() {
        let mut quiet = net(16, 22);
        quiet.send(Coord::new(0, 0), Coord::new(7, 0), PLEN, 0, 0);
        quiet.run_until_idle(0);
        let base = quiet.drain_completions()[0].latency;

        let mut busy = net(16, 22);
        // cross traffic along the same row
        for y in 0..1u16 {
            for x in 0..6u16 {
                busy.send(Coord::new(x, y), Coord::new(7, y), PLEN, 99, 0);
            }
        }
        busy.send(Coord::new(0, 0), Coord::new(7, 0), PLEN, 0, 0);
        busy.run_until_idle(0);
        let cs = busy.drain_completions();
        let mine = cs.iter().find(|c| c.tag == 0).unwrap();
        assert!(
            mine.latency >= base,
            "contended {} < uncontended {base}",
            mine.latency
        );
        assert!(cs.iter().map(|c| c.blocked).sum::<u64>() > 0);
    }

    #[test]
    fn counters_accumulate() {
        let mut n = net(8, 8);
        n.send(Coord::new(0, 0), Coord::new(3, 3), PLEN, 0, 0);
        n.run_until_idle(0);
        n.send(Coord::new(1, 1), Coord::new(2, 2), PLEN, 1, 100);
        let mut t = 100;
        while !n.is_idle() {
            n.step(t);
            t += 1;
        }
        let c = n.counters();
        assert_eq!(c.delivered, 2);
        assert!(c.total_latency > 0);
        assert_eq!(c.total_hops, 6 + 2);
    }

    #[test]
    fn single_flit_packets_work() {
        let mut n = net(8, 8);
        n.send(Coord::new(0, 0), Coord::new(4, 0), 1, 0, 0);
        n.run_until_idle(0);
        let c = n.drain_completions();
        assert_eq!(c[0].latency, Network::uncontended_latency(4, 1, TS));
    }

    #[test]
    fn is_idle_transitions() {
        let mut n = net(4, 4);
        assert!(n.is_idle());
        n.send(Coord::new(0, 0), Coord::new(1, 0), PLEN, 0, 0);
        assert!(!n.is_idle());
        n.run_until_idle(0);
        assert!(n.is_idle());
    }
}
