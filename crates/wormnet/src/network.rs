//! The channel-centric cycle engine: injection, header arbitration, worm
//! advancement, and event-compressed time advancement.
//!
//! # Engine model
//!
//! The original engine (kept as the test oracle in `reference.rs`) visited
//! every active packet on every cycle; blocked headers re-attempted and
//! failed explicitly, so a contended cycle cost O(active packets) even
//! when only a handful of worms could actually move. This engine tracks
//! *why* each packet is waiting and touches per cycle only the packets
//! that can progress:
//!
//! * **Draining** worms (streaming into the destination) act every cycle.
//! * Headers in per-node **routing delay** are scheduled on a timer heap
//!   and are untouched until their acquisition cycle.
//! * **Blocked** headers sit in the waiter list of the channel they need
//!   and are woken when it is released; the cycles they would have spent
//!   re-attempting are accrued lazily from a timestamp, which is exactly
//!   equivalent to the reference engine's per-cycle increments.
//! * Packets that lost only the physical-link **bandwidth race** (possible
//!   when virtual channels share links, i.e. on the torus) stay *eager*
//!   and re-attempt every cycle, as in the reference engine.
//! * Source nodes with queued packets are waiter-driven too: a node whose
//!   front packet is blocked on its busy injection channel is **parked**
//!   and costs nothing per cycle; releasing the channel (the previous
//!   worm's tail leaving it) marks the node **ready**, and only ready
//!   nodes are visited by the injection phase. Injection channels are
//!   per-node exclusive, so each channel has at most one parked sender.
//!
//! Arbitration fairness is preserved exactly: eligible packets are
//! processed in the same rotating order over the active list as the
//! reference engine, and a channel freed mid-cycle wakes its waiters into
//! the *same* cycle if and only if their arbitration position comes later
//! — byte-identical outcomes, verified by the equivalence property tests
//! at the bottom of this file.
//!
//! # Event compression
//!
//! Because the engine knows why every packet is waiting, it can also tell
//! when *nothing* in the network can change: no drainer, no eager packet,
//! no pending wake, no injectable packet — only routing-delay timers and
//! blocked headers whose channels cannot be released before the next
//! timer fires. [`Network::skippable_cycles`] reports how many upcoming
//! cycles are provably inert and [`Network::skip_cycles`] applies them in
//! O(1) (counter bumps only), which is what lets the simulator's inner
//! loop jump over idle and fully-blocked stretches instead of stepping
//! them cycle by cycle. See `docs/PERFORMANCE.md` for the argument that
//! this preserves cycle-accurate semantics.

use crate::packet::{PacketId, PacketState};
use crate::routing::route;
use crate::topology::Topology;
use desim::Time;
use mesh2d::Coord;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

const FREE: u32 = u32::MAX;

/// A delivered packet, reported once its tail flit is consumed by the
/// destination PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Caller tag (job id).
    pub tag: u64,
    /// Cycle the last flit was ejected.
    pub delivered_at: Time,
    /// Network latency: delivery minus injection (excludes source queueing,
    /// per the paper's metric definition).
    pub latency: u64,
    /// Cycles the header spent blocked waiting for busy channels.
    pub blocked: u64,
    /// Cycles spent waiting in the source PE's injection queue.
    pub queue_delay: u64,
    /// Router-to-router hops traversed.
    pub hops: u32,
}

/// Aggregate counters over the life of the network (never reset by
/// draining completions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// Packets delivered so far.
    pub delivered: u64,
    /// Summed network latency over delivered packets, in cycles.
    pub total_latency: u64,
    /// Summed header blocking time over delivered packets, in cycles.
    pub total_blocked: u64,
    /// Summed router-to-router hop counts over delivered packets.
    pub total_hops: u64,
    /// Cycles the network has been advanced (stepped or skipped).
    pub cycles: u64,
}

/// Why a packet slot is (or is not) eligible to act in upcoming cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sched {
    /// Still in its source PE's injection queue (or slot unused).
    Queued,
    /// Header in per-node routing delay: it attempts its next channel
    /// acquisition in the cycle with this stamp, and is inert until then.
    AttemptAt(u64),
    /// Header blocked on busy channel `ch`; the slot sits in that
    /// channel's waiter list and accrues blocked cycles lazily starting
    /// at stamp `from`.
    Waiting { ch: u32, from: u64 },
    /// The awaited channel was released; the packet re-attempts at its
    /// next arbitration opportunity, accruing `from..attempt` blocked
    /// cycles first.
    Waking { from: u64 },
    /// Re-attempts every cycle: its channel was free but it lost the
    /// physical-link bandwidth race (only possible when virtual channels
    /// share links, i.e. on the torus).
    Eager,
    /// Header reached the ejection port; the worm streams one flit per
    /// cycle into the destination PE.
    Draining,
}

/// Why a source node's injection queue is (or is not) eligible to inject
/// in upcoming cycles — the node-level mirror of [`Sched`]. A node is in
/// exactly one state, and only `Ready` nodes cost anything per cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InjState {
    /// Injection queue empty; the node is not in `pending_nodes`.
    Idle,
    /// Queue non-empty but the node's injection channel is still owned by
    /// an earlier packet from this same node (injection channels are
    /// per-node exclusive). The node is woken by
    /// [`Network::release_channel`] when the owning worm's tail leaves
    /// the channel, and costs nothing until then.
    Parked,
    /// Queue non-empty and the injection channel is free: the front
    /// packet enters at the next injection phase. The node sits in
    /// `inject_ready`.
    Ready,
}

/// The wormhole network simulator. See the crate docs for the model.
#[derive(Debug)]
pub struct Network {
    topo: Topology,
    /// Router delay per node, the paper's `ts`.
    ts: u32,
    /// Channel owner table: packet slot or `FREE`.
    owner: Vec<u32>,
    /// Packet slab.
    packets: Vec<Option<PacketState>>,
    free_slots: Vec<u32>,
    /// Slots of packets currently inside the network.
    active: Vec<u32>,
    /// Position of each slot in `active` (parallel to `packets`).
    pos: Vec<u32>,
    /// Scheduling state per slot (parallel to `packets`).
    sched: Vec<Sched>,
    /// Head of each channel's intrusive waiter list (`NO_WAITER` when
    /// empty); a packet waits on at most one channel, so a single `next`
    /// pointer per slot threads the lists through the slab.
    waiter_head: Vec<u32>,
    /// Next waiter in the same channel's list (parallel to `packets`).
    waiter_next: Vec<u32>,
    /// Routing-delay timers: (attempt stamp, slot), earliest first.
    attempts: BinaryHeap<Reverse<(u64, u32)>>,
    /// Slots woken for the next cycle (their channel was freed by a
    /// packet at an earlier arbitration position this cycle).
    wake_queue: Vec<u32>,
    /// Slots that re-attempt every cycle (bandwidth-starved; torus only).
    eager: Vec<u32>,
    /// Draining slots (act every cycle).
    drainers: Vec<u32>,
    /// Position of each slot in `drainers` (parallel to `packets`).
    drain_pos: Vec<u32>,
    /// Scratch arbitration heap for one cycle's eligible packets.
    cycle_heap: BinaryHeap<Reverse<(u32, u32)>>,
    /// Per-node injection FIFO (packet slots waiting to enter).
    inject_q: Vec<VecDeque<u32>>,
    /// Nodes with non-empty injection queues, in the exact order the
    /// retired scan engine visited them (push on first enqueue,
    /// `swap_remove` on empty) — the order still decides same-cycle
    /// injection sequence and therefore every future arbitration
    /// position, but it is no longer scanned per cycle.
    pending_nodes: Vec<u32>,
    /// Position of each node in `pending_nodes` (parallel to `inject_q`;
    /// meaningful only while the node is pending).
    pending_pos: Vec<u32>,
    /// Injection scheduling state per node (parallel to `inject_q`).
    inj_state: Vec<InjState>,
    /// Nodes in [`InjState::Ready`]: their front packet enters at the
    /// next injection phase. Unordered — the phase orders them by
    /// `pending_pos` to replay the scan order exactly.
    inject_ready: Vec<u32>,
    /// Scratch heap ordering one cycle's ready nodes by scan position.
    inject_heap: BinaryHeap<Reverse<(u32, u32)>>,
    /// Completions not yet drained by the caller.
    completed: Vec<Completion>,
    counters: NetCounters,
    /// Rotating arbitration offset for fairness.
    rr: usize,
    /// Per-physical-resource bandwidth stamp: the last cycle each
    /// physical link/port carried a flit. Virtual channels of one link
    /// share its bandwidth, so at most one worm crossing a physical link
    /// may advance per cycle.
    phys_stamp: Vec<u64>,
    /// Whether any physical resource is shared (VCs > 1). On the paper's
    /// single-VC mesh every physical resource has exactly one virtual
    /// channel, so a bandwidth claim can never fail and the per-shift
    /// claim walk is skipped entirely.
    shared_bandwidth: bool,
    /// Current cycle stamp (monotone; independent of the caller's clock).
    stamp: u64,
}

/// Sentinel for an empty intrusive waiter list.
const NO_WAITER: u32 = u32::MAX;

/// The live packet in `slot` of the arena. A free function (not a
/// method) so callers keep split borrows on `Network`'s other fields.
#[inline]
fn live(packets: &[Option<PacketState>], slot: usize) -> &PacketState {
    // procsim-lint: allow(D004): invariant: a slot is only vacated at completion, after it has left every active/waiter/injection list that could name it
    packets[slot].as_ref().expect("invariant: empty packet slot")
}

/// Mutable twin of [`live`].
#[inline]
fn live_mut(packets: &mut [Option<PacketState>], slot: usize) -> &mut PacketState {
    // procsim-lint: allow(D004): invariant: a slot is only vacated at completion, after it has left every active/waiter/injection list that could name it
    packets[slot].as_mut().expect("invariant: empty packet slot")
}

impl Network {
    /// Creates an idle network over a `w × l` mesh (single virtual
    /// channel — the paper's configuration) with per-node routing delay
    /// `ts`.
    pub fn new(w: u16, l: u16, ts: u32) -> Self {
        Self::with_topology(Topology::new(w, l), ts)
    }

    /// Creates an idle network over an arbitrary topology (mesh or torus,
    /// any VC count).
    pub fn with_topology(topo: Topology, ts: u32) -> Self {
        let nodes = topo.nodes() as usize;
        let channels = topo.num_channels() as usize;
        let phys = topo.num_physical() as usize;
        let shared_bandwidth = topo.vcs() > 1;
        Network {
            topo,
            ts,
            owner: vec![FREE; channels],
            packets: Vec::new(),
            free_slots: Vec::new(),
            active: Vec::new(),
            pos: Vec::new(),
            sched: Vec::new(),
            waiter_head: vec![NO_WAITER; channels],
            waiter_next: Vec::new(),
            attempts: BinaryHeap::new(),
            wake_queue: Vec::new(),
            eager: Vec::new(),
            drainers: Vec::new(),
            drain_pos: Vec::new(),
            cycle_heap: BinaryHeap::new(),
            inject_q: vec![VecDeque::new(); nodes],
            pending_nodes: Vec::new(),
            pending_pos: vec![0; nodes],
            inj_state: vec![InjState::Idle; nodes],
            inject_ready: Vec::new(),
            inject_heap: BinaryHeap::new(),
            completed: Vec::new(),
            counters: NetCounters::default(),
            rr: 0,
            phys_stamp: vec![0; phys],
            shared_bandwidth,
            stamp: 0,
        }
    }

    /// The closed-form uncontended latency of this model: a header that
    /// never blocks crosses `hops + 2` channels at `ts + 1` cycles per
    /// acquisition after the first, then the body drains at one flit per
    /// cycle.
    pub fn uncontended_latency(hops: u32, plen: u32, ts: u32) -> u64 {
        (hops as u64 + 1) * (ts as u64 + 1) + plen as u64
    }

    /// The topology this network was built over.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Packets currently inside the network.
    #[inline]
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Packets waiting in source injection queues.
    pub fn queued_count(&self) -> usize {
        self.pending_nodes
            .iter()
            .map(|&n| self.inject_q[n as usize].len())
            .sum()
    }

    /// True when no packet is in flight or queued.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.active.is_empty() && self.pending_nodes.is_empty()
    }

    /// Lifetime counters.
    #[inline]
    pub fn counters(&self) -> NetCounters {
        self.counters
    }

    /// Hands a packet of `len_flits` flits to `src`'s injection queue at
    /// time `now`. The route is fixed dimension-ordered (XY on mesh;
    /// minimal with dateline VCs on torus). Returns the packet's slab slot.
    pub fn send(&mut self, src: Coord, dst: Coord, len_flits: u32, tag: u64, now: Time) -> PacketId {
        let path = route(&self.topo, src, dst);
        let inj = path[0];
        let pkt = PacketState::new(path, len_flits, tag, now);
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.packets[s as usize] = Some(pkt);
                self.sched[s as usize] = Sched::Queued;
                s
            }
            None => {
                self.packets.push(Some(pkt));
                self.pos.push(0);
                self.sched.push(Sched::Queued);
                self.drain_pos.push(0);
                self.waiter_next.push(NO_WAITER);
                // procsim-lint: allow(D005): slot count is bounded by concurrent packets in a <= 2^20-node mesh, far under u32::MAX
                (self.packets.len() - 1) as u32
            }
        };
        let node = (src.y as u32 * self.topo.width() as u32 + src.x as u32) as usize;
        if self.inject_q[node].is_empty() {
            // first packet queued at this node: it joins the pending set
            // and is ready (or parked) according to its injection
            // channel, which only a previous packet from this node can
            // hold
            // procsim-lint: allow(D005): pending_nodes length is bounded by the node count, far under u32::MAX
            self.pending_pos[node] = self.pending_nodes.len() as u32;
            self.pending_nodes.push(node as u32);
            if self.owner[inj.index()] == FREE {
                self.inj_state[node] = InjState::Ready;
                self.inject_ready.push(node as u32);
            } else {
                self.inj_state[node] = InjState::Parked;
            }
        }
        self.inject_q[node].push_back(slot);
        PacketId(slot)
    }

    /// Removes and returns all completions recorded so far.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completed)
    }

    /// Arbitration key of `slot` for the current cycle: its distance (in
    /// active-list positions) from the rotating round-robin head. Lower
    /// keys act first, exactly as the reference engine's scan order.
    #[inline]
    fn order_key(&self, slot: u32) -> u32 {
        let n = self.active.len();
        let p = self.pos[slot as usize] as usize;
        ((p + n - self.rr) % n) as u32
    }

    /// Advances the network one cycle. `now` is the absolute time of the
    /// cycle being simulated (used to stamp injection and delivery times).
    pub fn step(&mut self, now: Time) {
        self.counters.cycles += 1;
        self.stamp += 1;
        let s = self.stamp;

        // --- movement phase -------------------------------------------------
        // Gather the packets that can possibly act this cycle — drainers,
        // expired routing delays, woken waiters, eager re-attempters —
        // and process them in rotating-arbitration order. Packets blocked
        // on busy channels and unexpired routing delays are untouched.
        let n = self.active.len();
        if n > 0 {
            self.rr = (self.rr + 1) % n;
            inv_assert!(self.cycle_heap.is_empty());
            for i in 0..self.drainers.len() {
                let slot = self.drainers[i];
                self.cycle_heap.push(Reverse((self.order_key(slot), slot)));
            }
            while let Some(&Reverse((due, slot))) = self.attempts.peek() {
                if due > s {
                    break;
                }
                inv_assert_eq!(due, s, "missed a routing-delay timer");
                self.attempts.pop();
                self.cycle_heap.push(Reverse((self.order_key(slot), slot)));
            }
            let wakes = std::mem::take(&mut self.wake_queue);
            for slot in &wakes {
                self.cycle_heap.push(Reverse((self.order_key(*slot), *slot)));
            }
            let mut recycled = wakes;
            recycled.clear();
            self.wake_queue = recycled;
            for i in 0..self.eager.len() {
                let slot = self.eager[i];
                self.cycle_heap.push(Reverse((self.order_key(slot), slot)));
            }
            self.eager.clear();

            let mut done_pos: Vec<u32> = Vec::new();
            while let Some(Reverse((key, slot))) = self.cycle_heap.pop() {
                if self.advance_packet(slot as usize, now, key) {
                    done_pos.push(self.pos[slot as usize]);
                }
            }
            // remove completed packets (largest position first so
            // swap_remove does not disturb smaller positions — the same
            // order as the reference engine)
            done_pos.sort_unstable_by(|a, b| b.cmp(a));
            for p in done_pos {
                let p = p as usize;
                let slot = self.active.swap_remove(p);
                if p < self.active.len() {
                    self.pos[self.active[p] as usize] = p as u32;
                }
                self.packets[slot as usize] = None;
                self.sched[slot as usize] = Sched::Queued;
                self.free_slots.push(slot);
            }
        }

        // --- injection phase -------------------------------------------------
        // A node's next queued packet enters iff its injection channel is
        // free. Only *ready* nodes are visited: parked senders were woken
        // into `inject_ready` by `release_channel` and cost nothing here.
        // Ready nodes are processed in the exact order the retired scan
        // visited them — ascending `pending_nodes` position, with a node
        // whose queue empties `swap_remove`d mid-phase so the tail node
        // is visited at its new (lower) position — because the resulting
        // `active`-list insertion order fixes every future arbitration
        // position. Newly injected packets do not move until the next
        // cycle.
        if !self.inject_ready.is_empty() {
            inv_assert!(self.inject_heap.is_empty());
            for &node in &self.inject_ready {
                self.inject_heap
                    .push(Reverse((self.pending_pos[node as usize], node)));
            }
            self.inject_ready.clear();
            while let Some(Reverse((p, node))) = self.inject_heap.pop() {
                let node = node as usize;
                if self.inj_state[node] != InjState::Ready || self.pending_pos[node] != p {
                    // stale entry: the node moved to a lower position when
                    // another node was swap_remove'd (a fresh entry with
                    // the new position was pushed then)
                    continue;
                }
                inv_assert!(!self.inject_q[node].is_empty());
                // procsim-lint: allow(D004): invariant: a Ready node's inject_q is non-empty (asserted above)
                let front = *self.inject_q[node]
                    .front()
                    .expect("invariant: ready node with empty inject queue")
                    as usize;
                let inj = live(&self.packets, front).path[0];
                inv_assert_eq!(
                    self.owner[inj.index()],
                    FREE,
                    "ready node with busy injection channel"
                );
                self.inject_q[node].pop_front();
                let pkt = live_mut(&mut self.packets, front);
                self.owner[inj.index()] = front as u32;
                pkt.head = 0;
                pkt.tail = 0;
                pkt.injected = 1;
                pkt.injected_at = now;
                let due = s + self.ts as u64 + 1;
                self.sched[front] = Sched::AttemptAt(due);
                self.attempts.push(Reverse((due, front as u32)));
                // procsim-lint: allow(D005): active list length is bounded by the packet arena, far under u32::MAX
                self.pos[front] = self.active.len() as u32;
                self.active.push(front as u32);
                if self.inject_q[node].is_empty() {
                    // replay the scan's mid-phase swap_remove: the tail
                    // node moves to position `p` and is visited there if
                    // it is ready
                    self.inj_state[node] = InjState::Idle;
                    self.pending_nodes.swap_remove(p as usize);
                    if (p as usize) < self.pending_nodes.len() {
                        let moved = self.pending_nodes[p as usize];
                        self.pending_pos[moved as usize] = p;
                        if self.inj_state[moved as usize] == InjState::Ready {
                            self.inject_heap.push(Reverse((p, moved)));
                        }
                    }
                } else {
                    // the packet just injected owns the channel now; the
                    // node parks until the worm's tail releases it
                    self.inj_state[node] = InjState::Parked;
                }
            }
        }

        #[cfg(feature = "invariants")]
        self.check_consistency();
    }

    /// Cross-validates the arbitration bookkeeping against the packet
    /// slab: the `active`/`pos` and `drainers`/`drain_pos` permutations
    /// must be mutual inverses over live slots, every channel-owner
    /// entry must name a live packet, the intrusive waiter lists must
    /// thread exactly the `Waiting` packets through the channels they
    /// wait on, and the injection layer's parked/ready node states must
    /// exactly partition `pending_nodes` and agree with the channel
    /// owner table. O(channels + packets + nodes) per cycle; compiled
    /// only under `--features invariants`.
    #[cfg(feature = "invariants")]
    pub fn check_consistency(&self) {
        for (i, &slot) in self.active.iter().enumerate() {
            assert!(
                self.packets[slot as usize].is_some(),
                "active list names a vacated slot {slot}"
            );
            assert_eq!(
                self.pos[slot as usize] as usize, i,
                "pos[] out of sync with active list at {i}"
            );
        }
        for (i, &slot) in self.drainers.iter().enumerate() {
            assert!(
                matches!(self.sched[slot as usize], Sched::Draining),
                "drainer slot {slot} is not draining"
            );
            assert_eq!(
                self.drain_pos[slot as usize] as usize, i,
                "drain_pos[] out of sync with drainer list at {i}"
            );
        }
        for (ch, &own) in self.owner.iter().enumerate() {
            assert!(
                own == FREE || self.packets[own as usize].is_some(),
                "channel {ch} owned by vacated slot {own}"
            );
        }
        let mut listed = 0usize;
        for (ch, &head) in self.waiter_head.iter().enumerate() {
            let mut w = head;
            let mut steps = 0usize;
            while w != NO_WAITER {
                assert!(
                    matches!(self.sched[w as usize], Sched::Waiting { ch: c, .. }
                        if c as usize == ch),
                    "slot {w} threaded on channel {ch}'s waiter list but not waiting on it"
                );
                listed += 1;
                steps += 1;
                assert!(steps <= self.packets.len(), "waiter list cycle on channel {ch}");
                w = self.waiter_next[w as usize];
            }
        }
        let waiting = self
            .active
            .iter()
            .filter(|&&slot| matches!(self.sched[slot as usize], Sched::Waiting { .. }))
            .count();
        assert_eq!(listed, waiting, "waiter lists do not cover the Waiting packets");

        // injection layer: the parked/ready node states must exactly
        // partition the pending set, agree with the queue contents and
        // the channel owner table, and the ready list must mirror the
        // Ready states one-to-one
        assert!(
            self.inject_heap.is_empty(),
            "injection scratch heap leaked entries across cycles"
        );
        let mut ready_listed = vec![false; self.inject_q.len()];
        for &node in &self.inject_ready {
            assert!(
                matches!(self.inj_state[node as usize], InjState::Ready),
                "inject_ready lists node {node} that is not Ready"
            );
            assert!(
                !ready_listed[node as usize],
                "node {node} listed twice in inject_ready"
            );
            ready_listed[node as usize] = true;
        }
        for (i, &node) in self.pending_nodes.iter().enumerate() {
            assert!(
                !self.inject_q[node as usize].is_empty(),
                "pending node {node} has an empty inject_q"
            );
            assert_eq!(
                self.pending_pos[node as usize] as usize, i,
                "pending_pos[] out of sync with pending_nodes at {i}"
            );
        }
        let mut parked_or_ready = 0usize;
        for (node, q) in self.inject_q.iter().enumerate() {
            let state = self.inj_state[node];
            if q.is_empty() {
                assert_eq!(state, InjState::Idle, "node {node} idle-state mismatch");
                assert!(!ready_listed[node], "idle node {node} in inject_ready");
                continue;
            }
            parked_or_ready += 1;
            // procsim-lint: allow(D004): invariant: the q.is_empty() arm above continues, so the queue has a front
            let front = *q.front().expect("non-empty queue has a front") as usize;
            assert!(
                self.packets[front].is_some(),
                "node {node} queues a vacated slot {front}"
            );
            assert!(
                matches!(self.sched[front], Sched::Queued),
                "queued slot {front} has in-network scheduling state"
            );
            let inj = live(&self.packets, front).path[0];
            match state {
                InjState::Idle => panic!("node {node} has queued packets but is Idle"),
                InjState::Parked => {
                    assert_ne!(
                        self.owner[inj.index()],
                        FREE,
                        "parked node {node} with a free injection channel"
                    );
                    assert!(
                        !ready_listed[node],
                        "node {node} is both parked and in the ready set"
                    );
                }
                InjState::Ready => {
                    assert_eq!(
                        self.owner[inj.index()],
                        FREE,
                        "ready node {node} with a busy injection channel"
                    );
                    assert!(ready_listed[node], "ready node {node} missing from inject_ready");
                }
            }
        }
        assert_eq!(
            parked_or_ready,
            self.pending_nodes.len(),
            "parked/ready states do not partition the pending set"
        );
    }

    /// Checks and claims physical-link bandwidth for a worm shift whose
    /// flits land in `path[land_from ..= land_to]`. Returns false (and
    /// claims nothing) when any needed physical resource already carried
    /// a flit this cycle — only possible when virtual channels share
    /// links (torus / VC > 1); on the paper's 1-VC mesh each physical
    /// resource has a single owner and this never fails.
    fn claim_bandwidth(&mut self, slot: usize, land_from: usize, land_to: usize) -> bool {
        if !self.shared_bandwidth {
            // 1 VC: virtual channels map 1:1 onto physical resources and
            // channel ownership is exclusive, so two worms can never
            // contend for bandwidth — the claim trivially succeeds
            return true;
        }
        let pkt = live(&self.packets, slot);
        for i in land_from..=land_to {
            let phys = self.topo.physical_of(pkt.path[i]) as usize;
            if self.phys_stamp[phys] == self.stamp {
                return false;
            }
        }
        for i in land_from..=land_to {
            let phys = self.topo.physical_of(pkt.path[i]) as usize;
            self.phys_stamp[phys] = self.stamp;
        }
        true
    }

    /// Releases channel `ch` and wakes its waiters. A waiter whose
    /// arbitration position comes after `key` (the releasing packet's
    /// position) attempts within the *current* cycle — in the reference
    /// engine it would scan the channel after the release. A waiter that
    /// already had its (failed) attempt this cycle is queued for the next.
    ///
    /// Releasing an injection channel instead wakes the (unique) sender
    /// parked on it: the node becomes ready and its front packet enters
    /// at this cycle's injection phase — which runs after the whole
    /// movement phase, so a mid-movement release is always "in time",
    /// exactly as the retired scan saw post-movement channel state.
    fn release_channel(&mut self, ch: usize, key: u32) {
        self.owner[ch] = FREE;
        if let Some(node) = self.topo.injection_node_of(crate::topology::ChannelId(ch as u32)) {
            let node = node as usize;
            if self.inj_state[node] == InjState::Parked {
                self.inj_state[node] = InjState::Ready;
                self.inject_ready.push(node as u32);
            }
            // a packet header never waits on an injection channel (only
            // same-node packets route through it, and they enter via the
            // injection phase), so the waiter list below is empty
            inv_assert_eq!(self.waiter_head[ch], NO_WAITER);
            return;
        }
        let mut w = self.waiter_head[ch];
        if w == NO_WAITER {
            return;
        }
        self.waiter_head[ch] = NO_WAITER;
        while w != NO_WAITER {
            let Sched::Waiting { ch: c2, from } = self.sched[w as usize] else {
                unreachable!("waiter list out of sync with scheduling state");
            };
            inv_assert_eq!(c2 as usize, ch);
            self.sched[w as usize] = Sched::Waking { from };
            let kw = self.order_key(w);
            if kw > key {
                self.cycle_heap.push(Reverse((kw, w)));
            } else {
                self.wake_queue.push(w);
            }
            let next = self.waiter_next[w as usize];
            self.waiter_next[w as usize] = NO_WAITER;
            w = next;
        }
    }

    /// Advances one eligible packet by one cycle. `key` is its arbitration
    /// position this cycle. Returns true when the packet has fully drained
    /// and its slot should be reclaimed.
    fn advance_packet(&mut self, slot: usize, now: Time, key: u32) -> bool {
        #[cfg(any(debug_assertions, feature = "invariants"))]
        live(&self.packets, slot).check_invariant();
        let s = self.stamp;
        match self.sched[slot] {
            Sched::Draining => {
                let pkt = live(&self.packets, slot);
                // One flit streams into the destination PE per cycle — if
                // the physical links under the worm have bandwidth left.
                let injecting = pkt.injected < pkt.len_flits;
                let land_from = if injecting { pkt.tail } else { pkt.tail + 1 };
                let land_to = pkt.path.len() - 1;
                if land_from <= land_to && !self.claim_bandwidth(slot, land_from, land_to) {
                    live_mut(&mut self.packets, slot).blocked_cycles += 1;
                    return false;
                }
                let pkt = live_mut(&mut self.packets, slot);
                pkt.ejected += 1;
                if pkt.injected < pkt.len_flits {
                    // a fresh flit enters the inject channel in the same shift
                    pkt.injected += 1;
                } else {
                    // tail flit moved forward: release the rearmost channel
                    let freed = pkt.path[pkt.tail].index();
                    pkt.tail += 1;
                    self.release_channel(freed, key);
                }
                let pkt = live(&self.packets, slot);
                if pkt.ejected == pkt.len_flits {
                    let c = Completion {
                        tag: pkt.tag,
                        delivered_at: now,
                        latency: now - pkt.injected_at,
                        blocked: pkt.blocked_cycles,
                        queue_delay: pkt.injected_at - pkt.queued_at,
                        hops: pkt.hops(),
                    };
                    self.counters.delivered += 1;
                    self.counters.total_latency += c.latency;
                    self.counters.total_blocked += c.blocked;
                    self.counters.total_hops += c.hops as u64;
                    self.completed.push(c);
                    // drop out of the per-cycle drainer set
                    let dp = self.drain_pos[slot] as usize;
                    self.drainers.swap_remove(dp);
                    if dp < self.drainers.len() {
                        self.drain_pos[self.drainers[dp] as usize] = dp as u32;
                    }
                    return true;
                }
                false
            }
            Sched::AttemptAt(due) => {
                inv_assert_eq!(due, s, "routing-delay timer fired off-cycle");
                self.try_advance_header(slot, now, key)
            }
            Sched::Waking { from } => {
                // settle the blocked cycles the reference engine would
                // have accrued one by one while the channel stayed busy
                live_mut(&mut self.packets, slot).blocked_cycles += s - from;
                self.try_advance_header(slot, now, key)
            }
            Sched::Eager => self.try_advance_header(slot, now, key),
            Sched::Queued | Sched::Waiting { .. } => {
                unreachable!("inert packet reached the arbitration heap")
            }
        }
    }

    /// One header acquisition attempt (the reference engine's
    /// countdown-expired path), with waiter-list bookkeeping on failure.
    fn try_advance_header(&mut self, slot: usize, _now: Time, key: u32) -> bool {
        let s = self.stamp;
        let pkt = live(&self.packets, slot);
        inv_assert!(!pkt.draining);
        let next = pkt.head + 1;
        let next_ch = pkt.path[next];
        if self.owner[next_ch.index()] != FREE {
            // wormhole blocking: hold every occupied channel and wait on
            // the busy one; cycles until the wake accrue lazily
            live_mut(&mut self.packets, slot).blocked_cycles += 1;
            self.sched[slot] = Sched::Waiting {
                ch: next_ch.index() as u32,
                from: s + 1,
            };
            self.waiter_next[slot] = self.waiter_head[next_ch.index()];
            self.waiter_head[next_ch.index()] = slot as u32;
            return false;
        }
        // bandwidth: the shift lands flits in [tail(+1) ..= next]
        let injecting = pkt.injected < pkt.len_flits;
        let land_from = if injecting { pkt.tail } else { pkt.tail + 1 };
        if !self.claim_bandwidth(slot, land_from, next) {
            // channel free but the physical link is saturated this cycle:
            // must re-attempt every cycle, like the reference engine
            live_mut(&mut self.packets, slot).blocked_cycles += 1;
            self.sched[slot] = Sched::Eager;
            self.eager.push(slot as u32);
            return false;
        }
        // acquire and shift the worm forward one slot
        let pkt = live_mut(&mut self.packets, slot);
        self.owner[next_ch.index()] = slot as u32;
        pkt.head = next;
        let mut freed: Option<usize> = None;
        if pkt.injected < pkt.len_flits {
            pkt.injected += 1; // new flit enters behind; tail stays
        } else {
            let f = pkt.path[pkt.tail].index();
            pkt.tail += 1;
            freed = Some(f);
        }
        if next == pkt.path.len() - 1 {
            pkt.draining = true; // header reached the ejection port
            self.sched[slot] = Sched::Draining;
            // procsim-lint: allow(D005): drainers length is bounded by the packet arena, far under u32::MAX
            self.drain_pos[slot] = self.drainers.len() as u32;
            self.drainers.push(slot as u32);
        } else {
            // routing delay at the node just entered
            let due = s + self.ts as u64 + 1;
            self.sched[slot] = Sched::AttemptAt(due);
            self.attempts.push(Reverse((due, slot as u32)));
        }
        if let Some(f) = freed {
            self.release_channel(f, key);
        }
        false
    }

    /// Number of upcoming cycles in which provably *nothing* in the
    /// network can change (no packet can move, inject, or complete): the
    /// stretch until the earliest routing-delay timer can fire. Returns 0
    /// when the next cycle must be simulated. The skipped cycles' only
    /// effects — routing-delay countdowns, blocked-cycle accrual, the
    /// arbitration rotation — are applied in O(1) by
    /// [`Network::skip_cycles`].
    ///
    /// O(1): queued senders are accounted for by the ready set without
    /// scanning them — a parked sender's injection channel is owned by an
    /// earlier packet from the same node, and that owner can only release
    /// it by moving, which itself requires a non-inert cycle (see
    /// `docs/PERFORMANCE.md`).
    pub fn skippable_cycles(&self) -> u64 {
        if !self.drainers.is_empty() || !self.eager.is_empty() || !self.wake_queue.is_empty() {
            return 0;
        }
        // a ready node's front packet enters next cycle
        if !self.inject_ready.is_empty() {
            return 0;
        }
        // every active packet is now Waiting or AttemptAt and every
        // queued sender is parked; nothing can happen before the earliest
        // timer fires
        match self.attempts.peek() {
            Some(&Reverse((due, _))) => due - self.stamp - 1,
            None => 0,
        }
    }

    /// Applies `k` provably inert cycles at once: bumps the cycle
    /// counters and the arbitration rotation. Callers must not pass more
    /// than [`Network::skippable_cycles`] reported.
    pub fn skip_cycles(&mut self, k: u64) {
        self.counters.cycles += k;
        self.stamp += k;
        let n = self.active.len();
        if n > 0 {
            self.rr = (self.rr + (k % n as u64) as usize) % n;
        }
    }

    /// The earliest absolute cycle at or after which the network state can
    /// change, given the current time `now` — `None` when the network is
    /// idle (it then changes only through [`Network::send`]). The gap to
    /// `now` is computed in O(1), not by stepping: queued senders are
    /// accounted for by the parked/ready states without scanning them.
    pub fn next_progress_time(&self, now: Time) -> Option<Time> {
        if self.is_idle() {
            None
        } else {
            Some(now + 1 + self.skippable_cycles())
        }
    }

    /// Advances the network from `now` to at most `until`, compressing
    /// inert stretches, and stopping early at the end of any cycle that
    /// delivered a packet (so the caller can react to completions).
    /// Returns the time reached. Callers should have drained pending
    /// completions first — the early stop checks the completion buffer.
    pub fn advance_until(&mut self, mut now: Time, until: Time) -> Time {
        while now < until {
            if self.is_idle() {
                return until;
            }
            let k = self.skippable_cycles().min(until - now);
            if k > 0 {
                self.skip_cycles(k);
                now += k;
                continue;
            }
            now += 1;
            self.step(now);
            if !self.completed.is_empty() {
                break;
            }
        }
        now
    }

    /// Runs the network until idle, starting at `start`; returns the first
    /// idle cycle. Intended for tests and standalone experiments — the full
    /// simulator interleaves compressed advancement with job-level events
    /// instead.
    pub fn run_until_idle(&mut self, start: Time) -> Time {
        let mut t = start;
        while !self.is_idle() {
            let k = self.skippable_cycles();
            if k > 0 {
                self.skip_cycles(k);
                t += k;
            }
            self.step(t);
            t += 1;
        }
        t
    }
}

/// Test-only projection of everything that decides *future* behaviour of
/// an engine: the rotating arbitration state, the channel ownership, and
/// the injection queues in visit order. Two engines whose snapshots are
/// equal at a cycle boundary — and stay equal at every later boundary —
/// are observationally identical. Compared cycle-by-cycle by the
/// differential battery in `crate::differential`.
#[cfg(test)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArbSnapshot {
    /// Active packet slots in arbitration (position) order.
    pub active: Vec<u32>,
    /// Rotating arbitration offset.
    pub rr: usize,
    /// Channel owner table (slot or `u32::MAX` for free).
    pub owner: Vec<u32>,
    /// Nodes with queued packets, in injection-phase visit order.
    pub pending_nodes: Vec<u32>,
    /// Per-node injection FIFO contents (packet slots, front first).
    pub inject_q: Vec<Vec<u32>>,
    /// Lifetime counters.
    pub counters: NetCounters,
}

#[cfg(test)]
impl Network {
    /// Captures this engine's [`ArbSnapshot`].
    pub fn arb_snapshot(&self) -> ArbSnapshot {
        ArbSnapshot {
            active: self.active.clone(),
            rr: self.rr,
            owner: self.owner.clone(),
            pending_nodes: self.pending_nodes.clone(),
            inject_q: self
                .inject_q
                .iter()
                .map(|q| q.iter().copied().collect())
                .collect(),
            counters: self.counters,
        }
    }

    /// Number of sender nodes parked on a busy injection channel
    /// (test-only: lets the battery assert a scenario actually exercised
    /// the parked path).
    pub fn parked_nodes(&self) -> usize {
        self.inj_state
            .iter()
            .filter(|&&s| s == InjState::Parked)
            .count()
    }

    /// Number of sender nodes whose front packet enters at the next
    /// injection phase.
    pub fn ready_nodes(&self) -> usize {
        self.inject_ready.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PLEN: u32 = 8;
    const TS: u32 = 3;

    fn net(w: u16, l: u16) -> Network {
        Network::new(w, l, TS)
    }

    #[test]
    fn single_packet_uncontended_latency() {
        for (src, dst) in [
            (Coord::new(0, 0), Coord::new(5, 0)),
            (Coord::new(0, 0), Coord::new(0, 7)),
            (Coord::new(2, 3), Coord::new(6, 9)),
            (Coord::new(4, 4), Coord::new(4, 4)),
        ] {
            let mut n = net(16, 22);
            n.send(src, dst, PLEN, 1, 0);
            n.run_until_idle(0);
            let c = n.drain_completions();
            assert_eq!(c.len(), 1);
            let hops = src.manhattan(&dst);
            assert_eq!(
                c[0].latency,
                Network::uncontended_latency(hops, PLEN, TS),
                "{src} -> {dst}"
            );
            assert_eq!(c[0].blocked, 0);
            assert_eq!(c[0].hops, hops);
        }
    }

    #[test]
    fn latency_grows_with_distance() {
        let mut lat = Vec::new();
        for d in [1u16, 4, 8, 12] {
            let mut n = net(16, 22);
            n.send(Coord::new(0, 0), Coord::new(d, 0), PLEN, 0, 0);
            n.run_until_idle(0);
            lat.push(n.drain_completions()[0].latency);
        }
        assert!(lat.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn disjoint_packets_do_not_interact() {
        let mut n = net(16, 22);
        n.send(Coord::new(0, 0), Coord::new(5, 0), PLEN, 0, 0);
        n.send(Coord::new(0, 5), Coord::new(5, 5), PLEN, 1, 0);
        n.run_until_idle(0);
        for c in n.drain_completions() {
            assert_eq!(c.latency, Network::uncontended_latency(5, PLEN, TS));
            assert_eq!(c.blocked, 0);
        }
    }

    #[test]
    fn same_source_serializes_through_injection() {
        // Two packets from one node: the second waits in the source queue
        // until the first's tail clears the injection channel, and its
        // queue_delay (not its latency) reflects that wait.
        let mut n = net(16, 22);
        n.send(Coord::new(0, 0), Coord::new(8, 0), PLEN, 0, 0);
        n.send(Coord::new(0, 0), Coord::new(8, 0), PLEN, 1, 0);
        n.run_until_idle(0);
        let cs = n.drain_completions();
        assert_eq!(cs.len(), 2);
        let first = cs.iter().find(|c| c.tag == 0).unwrap();
        let second = cs.iter().find(|c| c.tag == 1).unwrap();
        assert_eq!(first.queue_delay, 0);
        assert!(second.queue_delay > 0, "second must queue at the source");
        assert!(second.delivered_at > first.delivered_at);
    }

    #[test]
    fn head_on_contention_blocks_exactly_one_packet() {
        // Two packets cross the same link in the same direction; one blocks.
        let mut n = net(16, 22);
        n.send(Coord::new(0, 0), Coord::new(6, 0), PLEN, 0, 0);
        n.send(Coord::new(1, 0), Coord::new(6, 0), PLEN, 1, 0);
        n.run_until_idle(0);
        let cs = n.drain_completions();
        let blocked: Vec<_> = cs.iter().filter(|c| c.blocked > 0).collect();
        assert_eq!(blocked.len(), 1, "exactly one of the two packets blocks: {cs:?}");
    }

    #[test]
    fn ejection_contention_serializes_delivery() {
        // Many packets to one destination: ejection channel is the
        // bottleneck; all must still be delivered (no deadlock).
        let mut n = net(8, 8);
        for i in 0..8u16 {
            if i != 4 {
                n.send(Coord::new(i, 0), Coord::new(4, 4), PLEN, i as u64, 0);
            }
        }
        let end = n.run_until_idle(0);
        let cs = n.drain_completions();
        assert_eq!(cs.len(), 7);
        assert!(cs.iter().any(|c| c.blocked > 0), "hotspot must cause blocking");
        assert!(end > 0);
    }

    #[test]
    fn all_to_all_delivers_everything() {
        // 4x4 sub-population all-to-all: heavy contention, conservation of
        // packets, no deadlock (XY routing).
        let mut n = net(16, 22);
        let nodes: Vec<Coord> = (0..4u16)
            .flat_map(|y| (0..4u16).map(move |x| Coord::new(x, y)))
            .collect();
        let mut sent = 0u64;
        for (i, &s) in nodes.iter().enumerate() {
            for (j, &d) in nodes.iter().enumerate() {
                if i != j {
                    n.send(s, d, PLEN, (i * 16 + j) as u64, 0);
                    sent += 1;
                }
            }
        }
        n.run_until_idle(0);
        let cs = n.drain_completions();
        assert_eq!(cs.len() as u64, sent);
        assert_eq!(n.counters().delivered, sent);
        assert!(n.is_idle());
        // all channels released
        assert!(n.owner.iter().all(|&o| o == FREE));
        // and no stale scheduling state survives
        assert!(n.waiter_head.iter().all(|&w| w == NO_WAITER));
        assert!(n.drainers.is_empty() && n.eager.is_empty() && n.wake_queue.is_empty());
        assert!(n.attempts.is_empty());
        // the injection layer is clean too: no parked or ready senders
        assert!(n.inj_state.iter().all(|&st| st == InjState::Idle));
        assert!(n.inject_ready.is_empty() && n.inject_heap.is_empty());
        assert!(n.pending_nodes.is_empty());
    }

    #[test]
    fn contended_latency_exceeds_uncontended() {
        let mut quiet = net(16, 22);
        quiet.send(Coord::new(0, 0), Coord::new(7, 0), PLEN, 0, 0);
        quiet.run_until_idle(0);
        let base = quiet.drain_completions()[0].latency;

        let mut busy = net(16, 22);
        // cross traffic along the same row
        for y in 0..1u16 {
            for x in 0..6u16 {
                busy.send(Coord::new(x, y), Coord::new(7, y), PLEN, 99, 0);
            }
        }
        busy.send(Coord::new(0, 0), Coord::new(7, 0), PLEN, 0, 0);
        busy.run_until_idle(0);
        let cs = busy.drain_completions();
        let mine = cs.iter().find(|c| c.tag == 0).unwrap();
        assert!(
            mine.latency >= base,
            "contended {} < uncontended {base}",
            mine.latency
        );
        assert!(cs.iter().map(|c| c.blocked).sum::<u64>() > 0);
    }

    #[test]
    fn counters_accumulate() {
        let mut n = net(8, 8);
        n.send(Coord::new(0, 0), Coord::new(3, 3), PLEN, 0, 0);
        n.run_until_idle(0);
        n.send(Coord::new(1, 1), Coord::new(2, 2), PLEN, 1, 100);
        let mut t = 100;
        while !n.is_idle() {
            n.step(t);
            t += 1;
        }
        let c = n.counters();
        assert_eq!(c.delivered, 2);
        assert!(c.total_latency > 0);
        assert_eq!(c.total_hops, 6 + 2);
    }

    #[test]
    fn single_flit_packets_work() {
        let mut n = net(8, 8);
        n.send(Coord::new(0, 0), Coord::new(4, 0), 1, 0, 0);
        n.run_until_idle(0);
        let c = n.drain_completions();
        assert_eq!(c[0].latency, Network::uncontended_latency(4, 1, TS));
    }

    #[test]
    fn is_idle_transitions() {
        let mut n = net(4, 4);
        assert!(n.is_idle());
        n.send(Coord::new(0, 0), Coord::new(1, 0), PLEN, 0, 0);
        assert!(!n.is_idle());
        n.run_until_idle(0);
        assert!(n.is_idle());
    }

    #[test]
    fn skip_is_equivalent_to_stepping() {
        // the compressed and cycle-by-cycle advancement of the *same*
        // engine must agree exactly (this is the core event-compression
        // invariant: skipped cycles change nothing)
        let traffic: Vec<(Coord, Coord)> = vec![
            (Coord::new(0, 0), Coord::new(7, 5)),
            (Coord::new(1, 0), Coord::new(7, 5)),
            (Coord::new(3, 3), Coord::new(0, 0)),
            (Coord::new(7, 7), Coord::new(0, 7)),
            (Coord::new(2, 2), Coord::new(2, 6)),
        ];
        let mut stepped = net(8, 8);
        let mut skipped = net(8, 8);
        for (i, &(s, d)) in traffic.iter().enumerate() {
            stepped.send(s, d, PLEN, i as u64, 0);
            skipped.send(s, d, PLEN, i as u64, 0);
        }
        let mut t = 0;
        while !stepped.is_idle() {
            stepped.step(t);
            t += 1;
        }
        let end = skipped.run_until_idle(0);
        assert_eq!(end, t);
        assert_eq!(stepped.drain_completions(), skipped.drain_completions());
        assert_eq!(stepped.counters(), skipped.counters());
    }

    #[test]
    fn skippable_cycles_reports_routing_delay_stretches() {
        // one packet alternates acquisition cycles with ts routing-delay
        // cycles; while it counts down, the network must report the
        // remaining stretch as skippable
        let mut n = net(8, 8);
        n.send(Coord::new(0, 0), Coord::new(4, 0), PLEN, 0, 0);
        let mut t = 0;
        n.step(t); // injection
        let mut saw_skip = false;
        while !n.is_idle() {
            let k = n.skippable_cycles();
            assert!(k <= TS as u64, "stretch cannot exceed the routing delay");
            if k > 0 {
                saw_skip = true;
                n.skip_cycles(k);
                t += k;
            }
            t += 1;
            n.step(t);
        }
        assert!(saw_skip, "an uncontended worm must expose skippable stretches");
    }

    #[test]
    fn next_progress_time_matches_skippable_and_idleness() {
        let mut n = net(8, 8);
        assert_eq!(n.next_progress_time(5), None, "idle network never progresses");
        n.send(Coord::new(0, 0), Coord::new(4, 0), PLEN, 0, 0);
        let mut t = 0;
        while !n.is_idle() {
            // the reported time is exactly the first non-inert cycle
            let np = n.next_progress_time(t).unwrap();
            assert_eq!(np, t + 1 + n.skippable_cycles());
            assert!(np > t);
            t = n.advance_until(t, np);
            assert_eq!(t, np, "advance_until must reach the progress cycle");
        }
        assert_eq!(n.next_progress_time(t), None);
        assert_eq!(n.drain_completions().len(), 1);
    }

    #[test]
    fn advance_until_stops_at_completions_and_bound() {
        let mut n = net(8, 8);
        n.send(Coord::new(0, 0), Coord::new(3, 0), PLEN, 7, 0);
        // far bound: must stop right when the packet completes
        let t = n.advance_until(0, 1_000_000);
        let cs = n.drain_completions();
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].delivered_at, t);
        assert!(n.is_idle());
        // idle network: jumps straight to the bound
        assert_eq!(n.advance_until(t, t + 500), t + 500);
        // tight bound: never advances past it
        n.send(Coord::new(0, 0), Coord::new(7, 7), PLEN, 8, t + 500);
        let t2 = n.advance_until(t + 500, t + 503);
        assert_eq!(t2, t + 503);
        assert!(n.drain_completions().is_empty());
    }
}
