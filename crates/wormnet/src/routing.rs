//! Dimension-ordered (XY) routing on mesh and torus.
//!
//! A packet first travels along x to the destination column, then along y
//! to the destination row. On a mesh this is minimal and deadlock-free
//! (the channel dependency graph is acyclic), which is why ProcSimity and
//! the paper assume it for wormhole switching.
//!
//! On a **torus** (the paper's §6 future work) each dimension is a ring:
//! the route takes the shorter way around, and the intra-ring cyclic
//! channel dependency is broken with the classic *dateline* scheme —
//! packets start on virtual channel 0 and switch to virtual channel 1
//! after crossing the dimension's wraparound link, so no cycle of waits
//! can close.

use crate::topology::{ChannelId, Direction, Topology, TopologyKind};
use mesh2d::Coord;

/// Chooses the travel direction and hop count along one ring dimension:
/// shorter way around, ties towards the positive direction.
fn ring_leg(from: u16, to: u16, extent: u16, pos: Direction, neg: Direction) -> (Direction, u16) {
    if from == to {
        return (pos, 0);
    }
    let fwd = (to + extent - from) % extent; // hops going positive
    let bwd = extent - fwd;
    if fwd <= bwd {
        (pos, fwd)
    } else {
        (neg, bwd)
    }
}

/// Computes the full channel path of a packet from `src` to `dst` under
/// `topo`'s kind: `[inject(src), links..., eject(dst)]`.
///
/// Mesh paths use `manhattan(src, dst)` link hops on VC 0. Torus paths
/// use the shortest way around each ring and the dateline VC discipline.
/// A self-message routes through the node's ports only.
pub fn route(topo: &Topology, src: Coord, dst: Coord) -> Vec<ChannelId> {
    match topo.kind() {
        TopologyKind::Mesh => xy_route(topo, src, dst),
        TopologyKind::Torus => torus_route(topo, src, dst),
    }
}

/// Mesh XY route (the paper's configuration). See [`route`].
pub fn xy_route(topo: &Topology, src: Coord, dst: Coord) -> Vec<ChannelId> {
    debug_assert_eq!(topo.kind(), TopologyKind::Mesh);
    let hops = src.manhattan(&dst) as usize;
    let mut path = Vec::with_capacity(hops + 2);
    path.push(topo.inject(src));
    let mut cur = src;
    while cur.x != dst.x {
        let d = if dst.x > cur.x {
            Direction::East
        } else {
            Direction::West
        };
        path.push(topo.link(cur, d));
        cur = topo.neighbour(cur, d);
    }
    while cur.y != dst.y {
        let d = if dst.y > cur.y {
            Direction::North
        } else {
            Direction::South
        };
        path.push(topo.link(cur, d));
        cur = topo.neighbour(cur, d);
    }
    path.push(topo.eject(dst));
    path
}

/// Torus minimal dimension-ordered route with dateline VC switching.
fn torus_route(topo: &Topology, src: Coord, dst: Coord) -> Vec<ChannelId> {
    let mut path = Vec::with_capacity(topo.distance(src, dst) as usize + 2);
    path.push(topo.inject(src));
    let mut cur = src;

    let (dx_dir, dx_hops) = ring_leg(src.x, dst.x, topo.width(), Direction::East, Direction::West);
    let mut vc = 0;
    for _ in 0..dx_hops {
        path.push(topo.link_vc(cur, dx_dir, vc));
        if topo.is_wrap_link(cur, dx_dir) {
            vc = 1; // crossed the x dateline
        }
        cur = topo.neighbour(cur, dx_dir);
    }

    let (dy_dir, dy_hops) = ring_leg(src.y, dst.y, topo.length(), Direction::North, Direction::South);
    let mut vc = 0; // y rings have their own dateline discipline
    for _ in 0..dy_hops {
        path.push(topo.link_vc(cur, dy_dir, vc));
        if topo.is_wrap_link(cur, dy_dir) {
            vc = 1;
        }
        cur = topo.neighbour(cur, dy_dir);
    }

    debug_assert_eq!(cur, dst);
    path.push(topo.eject(dst));
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_length_is_manhattan_plus_ports() {
        let t = Topology::new(16, 22);
        let cases = [
            ((0u16, 0u16), (15u16, 21u16)),
            ((3, 4), (3, 4)),
            ((5, 5), (5, 9)),
            ((9, 2), (1, 2)),
            ((15, 21), (0, 0)),
        ];
        for ((sx, sy), (dx, dy)) in cases {
            let s = Coord::new(sx, sy);
            let d = Coord::new(dx, dy);
            let p = xy_route(&t, s, d);
            assert_eq!(p.len() as u32, s.manhattan(&d) + 2, "{s} -> {d}");
            assert_eq!(p[0], t.inject(s));
            assert_eq!(*p.last().unwrap(), t.eject(d));
        }
    }

    #[test]
    fn x_before_y() {
        let t = Topology::new(8, 8);
        let p = xy_route(&t, Coord::new(1, 1), Coord::new(3, 3));
        // inject, E from (1,1), E from (2,1), N from (3,1), N from (3,2), eject
        assert_eq!(p.len(), 6);
        assert_eq!(p[1], t.link(Coord::new(1, 1), Direction::East));
        assert_eq!(p[2], t.link(Coord::new(2, 1), Direction::East));
        assert_eq!(p[3], t.link(Coord::new(3, 1), Direction::North));
        assert_eq!(p[4], t.link(Coord::new(3, 2), Direction::North));
    }

    #[test]
    fn channels_on_path_are_distinct() {
        let t = Topology::new(16, 22);
        for (s, d) in [
            (Coord::new(0, 0), Coord::new(15, 21)),
            (Coord::new(12, 20), Coord::new(2, 3)),
            (Coord::new(7, 0), Coord::new(7, 21)),
        ] {
            let p = xy_route(&t, s, d);
            let mut u: Vec<_> = p.clone();
            u.sort();
            u.dedup();
            assert_eq!(u.len(), p.len());
        }
    }

    #[test]
    fn opposing_routes_share_no_channels() {
        // bidirectional links are two independent channels
        let t = Topology::new(8, 8);
        let a = xy_route(&t, Coord::new(0, 0), Coord::new(5, 0));
        let b = xy_route(&t, Coord::new(5, 0), Coord::new(0, 0));
        for c in &a {
            assert!(!b.contains(c));
        }
    }

    #[test]
    fn torus_takes_shorter_way_around() {
        let t = Topology::new_torus(16, 22);
        // (0,0) -> (15,0): one wrap hop west... east wrap is 1 hop, direct
        // west would be 15
        let p = route(&t, Coord::new(0, 0), Coord::new(15, 0));
        assert_eq!(p.len(), 1 + 2, "one link hop plus two ports: {p:?}");
        // (0,0) -> (8,0): equidistant (8 both ways), tie goes east
        let p = route(&t, Coord::new(0, 0), Coord::new(8, 0));
        assert_eq!(p.len(), 8 + 2);
        assert_eq!(p[1], t.link_vc(Coord::new(0, 0), Direction::East, 0));
    }

    #[test]
    fn torus_path_length_is_ring_distance() {
        let t = Topology::new_torus(16, 22);
        for (s, d) in [
            (Coord::new(0, 0), Coord::new(15, 21)),
            (Coord::new(2, 2), Coord::new(14, 20)),
            (Coord::new(5, 5), Coord::new(5, 5)),
        ] {
            let p = route(&t, s, d);
            assert_eq!(p.len() as u32, t.distance(s, d) + 2, "{s} -> {d}");
        }
    }

    #[test]
    fn torus_dateline_switches_vc() {
        let t = Topology::new_torus(8, 8);
        // (6,0) -> (1,0): east through the wrap at x=7
        let p = route(&t, Coord::new(6, 0), Coord::new(1, 0));
        // hops: (6,0)E vc0, (7,0)E vc0 [wrap], (0,0)E vc1
        assert_eq!(p[1], t.link_vc(Coord::new(6, 0), Direction::East, 0));
        assert_eq!(p[2], t.link_vc(Coord::new(7, 0), Direction::East, 0));
        assert_eq!(p[3], t.link_vc(Coord::new(0, 0), Direction::East, 1));
    }

    #[test]
    fn torus_non_wrap_route_stays_on_vc0() {
        let t = Topology::new_torus(8, 8);
        let p = route(&t, Coord::new(1, 1), Coord::new(3, 3));
        for &ch in &p[1..p.len() - 1] {
            // reconstruct: all these channels must be vc0 variants; vc0
            // channels of (node,dir) have (id - node*per_node) % vcs == 0
            let per_node = t.num_channels() / t.nodes();
            let slot = ch.0 % per_node;
            assert_eq!(slot % 2, 0, "non-wrap route must stay on vc0");
        }
    }

    #[test]
    fn torus_distance_never_exceeds_mesh_distance() {
        let tt = Topology::new_torus(16, 22);
        let tm = Topology::new(16, 22);
        for (s, d) in [
            (Coord::new(0, 0), Coord::new(15, 21)),
            (Coord::new(1, 20), Coord::new(14, 2)),
            (Coord::new(8, 11), Coord::new(7, 10)),
        ] {
            assert!(tt.distance(s, d) <= tm.distance(s, d));
            let p = route(&tt, s, d);
            assert_eq!(p.len() as u32, tt.distance(s, d) + 2);
        }
    }
}
