//! Channel naming for W × L mesh and torus networks.
//!
//! Every node owns four outgoing link directions (East/West/North/South),
//! one injection channel (PE → router) and one ejection channel
//! (router → PE). Bidirectional links are modelled as the two opposing
//! unidirectional channels, as in the paper's "bidirectional communication
//! links" (§2).
//!
//! Each link direction carries `vcs` **virtual channels**. The paper's
//! configuration is a mesh with a single virtual channel; the torus
//! extension (the paper's §6 future work) needs two, because
//! dimension-ordered routing across wraparound links is only deadlock-free
//! with a dateline VC switch.

use mesh2d::Coord;

/// Network shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// No wraparound links (the paper's target system).
    Mesh,
    /// Wraparound links in both dimensions; requires >= 2 virtual
    /// channels for deadlock-free dimension-ordered routing.
    Torus,
}

impl TopologyKind {
    /// Every supported topology, in CLI/label order.
    pub const ALL: [TopologyKind; 2] = [TopologyKind::Mesh, TopologyKind::Torus];

    /// The lower-case CLI/CSV name (`"mesh"` / `"torus"`); the inverse of
    /// the [`FromStr`](core::str::FromStr) impl.
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::Mesh => "mesh",
            TopologyKind::Torus => "torus",
        }
    }
}

impl core::fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

impl core::str::FromStr for TopologyKind {
    type Err = String;

    /// Parses the CLI spelling (`"mesh"` / `"torus"`, case-insensitive).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "mesh" => Ok(TopologyKind::Mesh),
            "torus" => Ok(TopologyKind::Torus),
            other => Err(format!("unknown topology '{other}' (mesh or torus)")),
        }
    }
}

/// Outgoing link direction from a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// +x
    East,
    /// -x
    West,
    /// +y
    North,
    /// -y
    South,
}

impl Direction {
    const COUNT: u32 = 4;

    #[inline]
    fn index(self) -> u32 {
        match self {
            Direction::East => 0,
            Direction::West => 1,
            Direction::North => 2,
            Direction::South => 3,
        }
    }
}

/// Dense identifier of one *virtual* channel (a physical link direction ×
/// VC index, or an injection/ejection port).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(pub u32);

impl ChannelId {
    /// The id as a dense array index (channel ids are contiguous from 0).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Mesh/torus shape plus channel-id arithmetic.
#[derive(Debug, Clone)]
pub struct Topology {
    w: u16,
    l: u16,
    kind: TopologyKind,
    vcs: u32,
    per_node: u32,
}

impl Topology {
    /// A `w × l` mesh with a single virtual channel per link — the
    /// paper's network.
    ///
    /// # Panics
    /// Panics on zero dimensions.
    pub fn new(w: u16, l: u16) -> Self {
        Self::with_kind(w, l, TopologyKind::Mesh, 1)
    }

    /// A `w × l` torus with two virtual channels (dateline routing).
    ///
    /// # Panics
    /// Panics on zero dimensions or on degenerate 1-wide rings.
    pub fn new_torus(w: u16, l: u16) -> Self {
        Self::with_kind(w, l, TopologyKind::Torus, 2)
    }

    /// Fully parameterized constructor.
    ///
    /// # Panics
    /// Panics on zero dimensions, zero VCs, or a torus with fewer than
    /// two virtual channels (which would deadlock).
    pub fn with_kind(w: u16, l: u16, kind: TopologyKind, vcs: u32) -> Self {
        assert!(w > 0 && l > 0, "degenerate network");
        assert!(vcs >= 1, "at least one virtual channel");
        if kind == TopologyKind::Torus {
            assert!(vcs >= 2, "torus DOR needs >= 2 virtual channels");
        }
        Topology {
            w,
            l,
            kind,
            vcs,
            per_node: Direction::COUNT * vcs + 2,
        }
    }

    /// Extent of the x dimension (`W`).
    #[inline]
    pub fn width(&self) -> u16 {
        self.w
    }

    /// Extent of the y dimension (`L`).
    #[inline]
    pub fn length(&self) -> u16 {
        self.l
    }

    /// Whether this is a mesh or a torus.
    #[inline]
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Virtual channels per link direction.
    #[inline]
    pub fn vcs(&self) -> u32 {
        self.vcs
    }

    /// Number of nodes.
    #[inline]
    pub fn nodes(&self) -> u32 {
        self.w as u32 * self.l as u32
    }

    /// Total virtual-channel count (including injection/ejection ports).
    #[inline]
    pub fn num_channels(&self) -> u32 {
        self.nodes() * self.per_node
    }

    #[inline]
    fn node_index(&self, c: Coord) -> u32 {
        debug_assert!(c.x < self.w && c.y < self.l, "{c} outside network");
        c.y as u32 * self.w as u32 + c.x as u32
    }

    /// Whether a link in direction `d` exists at `node` (always true on a
    /// torus; false at mesh edges).
    #[inline]
    pub fn has_link(&self, node: Coord, d: Direction) -> bool {
        match self.kind {
            TopologyKind::Torus => true,
            TopologyKind::Mesh => match d {
                Direction::East => node.x + 1 < self.w,
                Direction::West => node.x > 0,
                Direction::North => node.y + 1 < self.l,
                Direction::South => node.y > 0,
            },
        }
    }

    /// The neighbour reached from `node` via `d` (wrapping on a torus).
    #[inline]
    pub fn neighbour(&self, node: Coord, d: Direction) -> Coord {
        debug_assert!(self.has_link(node, d));
        let (w, l) = (self.w, self.l);
        match d {
            Direction::East => Coord::new(if node.x + 1 == w { 0 } else { node.x + 1 }, node.y),
            Direction::West => Coord::new(if node.x == 0 { w - 1 } else { node.x - 1 }, node.y),
            Direction::North => Coord::new(node.x, if node.y + 1 == l { 0 } else { node.y + 1 }),
            Direction::South => Coord::new(node.x, if node.y == 0 { l - 1 } else { node.y - 1 }),
        }
    }

    /// Whether the `d` link at `node` is a wraparound (dateline) link.
    #[inline]
    pub fn is_wrap_link(&self, node: Coord, d: Direction) -> bool {
        self.kind == TopologyKind::Torus
            && match d {
                Direction::East => node.x + 1 == self.w,
                Direction::West => node.x == 0,
                Direction::North => node.y + 1 == self.l,
                Direction::South => node.y == 0,
            }
    }

    /// The outgoing link channel of `node` in direction `d`, virtual
    /// channel `vc`.
    ///
    /// # Panics
    /// Debug-panics if the link does not exist (mesh edge) or `vc` is out
    /// of range.
    #[inline]
    pub fn link_vc(&self, node: Coord, d: Direction, vc: u32) -> ChannelId {
        debug_assert!(self.has_link(node, d), "link {d:?} from {node} does not exist");
        debug_assert!(vc < self.vcs, "vc {vc} out of range");
        ChannelId(self.node_index(node) * self.per_node + d.index() * self.vcs + vc)
    }

    /// The outgoing link channel of `node` in direction `d` on VC 0
    /// (the only VC of the paper's mesh).
    #[inline]
    pub fn link(&self, node: Coord, d: Direction) -> ChannelId {
        self.link_vc(node, d, 0)
    }

    /// The injection (PE → router) channel of `node`.
    #[inline]
    pub fn inject(&self, node: Coord) -> ChannelId {
        ChannelId(self.node_index(node) * self.per_node + Direction::COUNT * self.vcs)
    }

    /// The ejection (router → PE) channel of `node`.
    #[inline]
    pub fn eject(&self, node: Coord) -> ChannelId {
        ChannelId(self.node_index(node) * self.per_node + Direction::COUNT * self.vcs + 1)
    }

    /// The node whose injection channel `ch` is, or `None` when `ch` is a
    /// link or ejection channel. Injection channels are per-node
    /// exclusive — only packets sourced at that node ever hold one — so
    /// the network engine uses this to wake the (unique) parked sender
    /// when its injection channel is released.
    #[inline]
    pub fn injection_node_of(&self, ch: ChannelId) -> Option<u32> {
        if ch.0 % self.per_node == Direction::COUNT * self.vcs {
            Some(ch.0 / self.per_node)
        } else {
            None
        }
    }

    /// Maps a virtual channel to its physical resource: link VCs of the
    /// same (node, direction) share one physical link's bandwidth;
    /// injection/ejection ports are their own resources. Used by the
    /// network engine's per-cycle bandwidth arbitration.
    #[inline]
    pub fn physical_of(&self, ch: ChannelId) -> u32 {
        let node = ch.0 / self.per_node;
        let slot = ch.0 % self.per_node;
        let link_slots = Direction::COUNT * self.vcs;
        let phys_slot = if slot < link_slots {
            slot / self.vcs // collapse VCs onto the physical direction
        } else {
            Direction::COUNT + (slot - link_slots) // inject, eject
        };
        node * (Direction::COUNT + 2) + phys_slot
    }

    /// Number of physical resources (links + ports).
    #[inline]
    pub fn num_physical(&self) -> u32 {
        self.nodes() * (Direction::COUNT + 2)
    }

    /// Shortest-path hop count between two nodes under this topology.
    #[inline]
    pub fn distance(&self, a: Coord, b: Coord) -> u32 {
        match self.kind {
            TopologyKind::Mesh => a.manhattan(&b),
            TopologyKind::Torus => {
                let dx = (a.x as i32 - b.x as i32).unsigned_abs();
                let dy = (a.y as i32 - b.y as i32).unsigned_abs();
                dx.min(self.w as u32 - dx) + dy.min(self.l as u32 - dy)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_ids_are_unique_and_dense() {
        let t = Topology::new(4, 3);
        let mut seen = std::collections::HashSet::new();
        for y in 0..3u16 {
            for x in 0..4u16 {
                let n = Coord::new(x, y);
                for d in [Direction::East, Direction::West, Direction::North, Direction::South] {
                    if t.has_link(n, d) {
                        assert!(seen.insert(t.link(n, d)));
                    }
                }
                assert!(seen.insert(t.inject(n)));
                assert!(seen.insert(t.eject(n)));
            }
        }
        assert!(seen.iter().all(|c| c.0 < t.num_channels()));
    }

    #[test]
    fn counts() {
        let t = Topology::new(16, 22);
        assert_eq!(t.nodes(), 352);
        assert_eq!(t.num_channels(), 352 * 6);
        let tt = Topology::new_torus(16, 22);
        assert_eq!(tt.num_channels(), 352 * 10); // 4 dirs x 2 VCs + 2 ports
        assert_eq!(tt.num_physical(), 352 * 6);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic]
    fn edge_link_panics_on_mesh() {
        let t = Topology::new(4, 4);
        let _ = t.link(Coord::new(3, 0), Direction::East);
    }

    #[test]
    fn torus_wraps() {
        let t = Topology::new_torus(4, 4);
        assert!(t.has_link(Coord::new(3, 0), Direction::East));
        assert_eq!(t.neighbour(Coord::new(3, 0), Direction::East), Coord::new(0, 0));
        assert_eq!(t.neighbour(Coord::new(0, 2), Direction::West), Coord::new(3, 2));
        assert_eq!(t.neighbour(Coord::new(1, 3), Direction::North), Coord::new(1, 0));
        assert_eq!(t.neighbour(Coord::new(1, 0), Direction::South), Coord::new(1, 3));
        assert!(t.is_wrap_link(Coord::new(3, 0), Direction::East));
        assert!(!t.is_wrap_link(Coord::new(2, 0), Direction::East));
    }

    #[test]
    fn torus_distance_uses_wraparound() {
        let t = Topology::new_torus(16, 22);
        assert_eq!(t.distance(Coord::new(0, 0), Coord::new(15, 0)), 1);
        assert_eq!(t.distance(Coord::new(0, 0), Coord::new(0, 21)), 1);
        assert_eq!(t.distance(Coord::new(0, 0), Coord::new(8, 11)), 8 + 11);
        let m = Topology::new(16, 22);
        assert_eq!(m.distance(Coord::new(0, 0), Coord::new(15, 0)), 15);
    }

    #[test]
    fn vcs_share_physical_links() {
        let t = Topology::new_torus(4, 4);
        let n = Coord::new(1, 1);
        let a = t.link_vc(n, Direction::East, 0);
        let b = t.link_vc(n, Direction::East, 1);
        assert_ne!(a, b);
        assert_eq!(t.physical_of(a), t.physical_of(b));
        let c = t.link_vc(n, Direction::West, 0);
        assert_ne!(t.physical_of(a), t.physical_of(c));
        assert_ne!(t.physical_of(t.inject(n)), t.physical_of(t.eject(n)));
    }

    #[test]
    #[should_panic(expected = "torus DOR needs")]
    fn torus_with_one_vc_rejected() {
        let _ = Topology::with_kind(4, 4, TopologyKind::Torus, 1);
    }

    #[test]
    fn injection_node_round_trip() {
        for t in [Topology::new(4, 3), Topology::new_torus(4, 3)] {
            for y in 0..3u16 {
                for x in 0..4u16 {
                    let n = Coord::new(x, y);
                    let node = y as u32 * 4 + x as u32;
                    assert_eq!(t.injection_node_of(t.inject(n)), Some(node));
                    assert_eq!(t.injection_node_of(t.eject(n)), None);
                    for d in [Direction::East, Direction::West, Direction::North, Direction::South]
                    {
                        if t.has_link(n, d) {
                            for vc in 0..t.vcs() {
                                assert_eq!(t.injection_node_of(t.link_vc(n, d, vc)), None);
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in TopologyKind::ALL {
            assert_eq!(kind.to_string().parse::<TopologyKind>(), Ok(kind));
            // the CLI accepts any casing
            assert_eq!(kind.name().to_uppercase().parse::<TopologyKind>(), Ok(kind));
        }
        let err = "ring".parse::<TopologyKind>().unwrap_err();
        assert!(err.contains("unknown topology 'ring'"), "{err}");
        assert!(err.contains("mesh") && err.contains("torus"), "{err}");
    }
}
