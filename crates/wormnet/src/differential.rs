//! Differential battery: the waiter-driven engine vs the reference
//! cycle-stepper, compared at **every cycle boundary**.
//!
//! The equivalence tests in [`crate::reference`] compare end-of-run
//! completion streams and counters. This module is stricter: it runs both
//! engines in lockstep and asserts equality of the full [`ArbSnapshot`]
//! (active list in arbitration order, rotating offset, channel owner
//! table, pending nodes in visit order, injection FIFOs, counters) at
//! every checkpoint, plus the drained completions and `queued_count`.
//! Because the snapshot captures everything that decides future behaviour,
//! snapshot equality at every boundary proves the engines observationally
//! identical — not just "same answers on this script" but "same machine".
//!
//! Checkpoints come in three drive modes (see [`Drive`]): single-stepped,
//! compressed via `advance_until`, and a seeded mix of the two. Comparing
//! at compressed checkpoints is sound because every skipped cycle is
//! provably inert (see `docs/PERFORMANCE.md`): an inert cycle changes
//! nothing but `rr` and `counters.cycles`, both of which `skip_cycles`
//! replays in closed form.

// procsim-lint: test-only: included via `#[cfg(test)] mod differential` in lib.rs; never compiled into shipping simulators

use crate::network::{ArbSnapshot, Completion, Network};
use crate::pattern::{pattern_messages, Pattern};
use crate::reference::ReferenceNetwork;
use crate::topology::{Topology, TopologyKind};
use desim::{SimRng, Time};
use mesh2d::Coord;
use proptest::prelude::*;

/// A deterministic traffic script: (send time, src, dst, flits, tag),
/// sorted by send time.
type Script = Vec<(Time, Coord, Coord, u32, u64)>;

/// How the *subject* (optimized) engine is advanced between checkpoints.
/// The reference engine always steps one cycle at a time; the subject's
/// checkpoints define where the two are compared.
#[derive(Debug, Clone, Copy)]
enum Drive {
    /// One cycle per checkpoint: the strongest comparison — every single
    /// cycle boundary is checked.
    Stepped,
    /// `advance_until` toward `now + 1 + skippable_cycles()`, capped at
    /// the next send time: the production access pattern.
    Compressed,
    /// Seeded interleaving of single steps and bounded `advance_until`
    /// chunks, so compression starts and stops at arbitrary points.
    Mixed(u64),
}

/// Both engines plus the script cursor; drives them to completion while
/// checking agreement at every subject checkpoint.
struct DualEngine {
    reference: ReferenceNetwork,
    subject: Network,
    script: Script,
    next: usize,
    now: Time,
    label: String,
}

impl DualEngine {
    fn new(mk_topo: impl Fn() -> Topology, ts: u32, script: Script, label: String) -> Self {
        DualEngine {
            reference: ReferenceNetwork::with_topology(mk_topo(), ts),
            subject: Network::with_topology(mk_topo(), ts),
            script,
            next: 0,
            now: 0,
            label,
        }
    }

    /// Feeds every script entry due at `self.now` to both engines.
    fn send_due(&mut self) {
        while self.next < self.script.len() && self.script[self.next].0 == self.now {
            let (_, s, d, f, tag) = self.script[self.next];
            self.reference.send(s, d, f, tag, self.now);
            self.subject.send(s, d, f, tag, self.now);
            self.next += 1;
        }
    }

    /// Compares the engines at the current boundary; appends drained
    /// completions (already asserted identical) to `out`.
    fn check(&mut self, out: &mut Vec<Completion>) {
        let a: ArbSnapshot = self.reference.arb_snapshot();
        let b: ArbSnapshot = self.subject.arb_snapshot();
        assert_eq!(a, b, "{}: snapshots diverge at cycle {}", self.label, self.now);
        assert_eq!(
            self.reference.queued_count(),
            self.subject.queued_count(),
            "{}: queued_count diverges at cycle {}",
            self.label,
            self.now
        );
        assert_eq!(
            self.reference.is_idle(),
            self.subject.is_idle(),
            "{}: idleness diverges at cycle {}",
            self.label,
            self.now
        );
        let done_a = self.reference.drain_completions();
        let done_b = self.subject.drain_completions();
        assert_eq!(
            done_a, done_b,
            "{}: completions diverge at cycle {}",
            self.label, self.now
        );
        out.extend(done_a);
    }

    /// Runs the script to quiescence under `drive`; returns the (verified
    /// identical) completion stream.
    fn run(mut self, drive: Drive) -> Vec<Completion> {
        let mut out = Vec::new();
        let mut rng = SimRng::new(match drive {
            Drive::Mixed(seed) => seed,
            _ => 0,
        });
        loop {
            self.send_due();
            if self.subject.is_idle() {
                self.check(&mut out);
                if self.next == self.script.len() {
                    break;
                }
                // jump both clocks to the next send without stepping;
                // counters stay untouched across the idle gap
                self.now = self.script[self.next].0;
                continue;
            }
            // strictly in the future: entries at `now` were consumed above
            let next_send = self
                .script
                .get(self.next)
                .map(|e| e.0)
                .unwrap_or(Time::MAX);
            let target = match drive {
                Drive::Stepped => self.now + 1,
                Drive::Compressed => {
                    (self.now + 1 + self.subject.skippable_cycles()).min(next_send)
                }
                Drive::Mixed(_) => {
                    if rng.index(2) == 0 {
                        self.now + 1
                    } else {
                        (self.now + 1 + rng.index(40) as Time).min(next_send)
                    }
                }
            };
            // the subject may stop early (a delivery ends the chunk); the
            // reference replays exactly the cycles the subject covered
            let reached = self.subject.advance_until(self.now, target);
            for t in self.now + 1..=reached {
                self.reference.step(t);
            }
            self.now = reached;
            self.check(&mut out);
        }
        out
    }
}

/// Job-churn traffic tuned to stress the injection layer: pattern waves
/// (as in the equivalence tests) interleaved with deep per-node bursts
/// (many packets serialized through one injection channel — the parked
/// path) and hotspot pulses (waiter churn in the fabric while senders
/// queue behind wedged worms).
fn churn_script(topo: &Topology, seed: u64, jobs: usize) -> Script {
    let mut rng = SimRng::new(seed);
    let (w, l) = (topo.width(), topo.length());
    let mut script: Script = Vec::new();
    let mut t: Time = 0;
    for job in 0..jobs {
        let base = (job * 10_000) as u64;
        match rng.index(3) {
            0 => {
                // a job-like rectangular population under a random pattern
                let pat = Pattern::ALL[rng.index(Pattern::ALL.len())];
                let bw = 2 + rng.index(3) as u16;
                let bl = 2 + rng.index(3) as u16;
                let bx = rng.index((w - bw + 1) as usize) as u16;
                let by = rng.index((l - bl + 1) as usize) as u16;
                let nodes: Vec<Coord> = (by..by + bl)
                    .flat_map(|y| (bx..bx + bw).map(move |x| Coord::new(x, y)))
                    .collect();
                let msgs = pattern_messages(pat, &nodes, 1 + rng.index(3) as u32, &mut rng);
                for (k, (s, d)) in msgs.into_iter().enumerate() {
                    let flits = 1 + rng.index(8) as u32;
                    script.push((t, s, d, flits, base + k as u64));
                }
            }
            1 => {
                // a deep burst from one source: packets serialize through
                // its injection channel, keeping the node parked for long
                let s = Coord::new(rng.index(w as usize) as u16, rng.index(l as usize) as u16);
                let burst = 3 + rng.index(6);
                for k in 0..burst {
                    let d = Coord::new(rng.index(w as usize) as u16, rng.index(l as usize) as u16);
                    let flits = 2 + rng.index(8) as u32;
                    script.push((t, s, d, flits, base + k as u64));
                }
            }
            _ => {
                // a hotspot pulse: many sources target one sink
                let d = Coord::new(rng.index(w as usize) as u16, rng.index(l as usize) as u16);
                let pulse = 4 + rng.index(8);
                for k in 0..pulse {
                    let s = Coord::new(rng.index(w as usize) as u16, rng.index(l as usize) as u16);
                    let flits = 2 + rng.index(6) as u32;
                    script.push((t, s, d, flits, base + k as u64));
                }
            }
        }
        // gaps from 0 (same-wave pile-ups, sends landing on just-freed
        // channels) to long idle stretches (compressed-leap regime)
        t += rng.index(90) as Time;
    }
    script.sort_by_key(|e| e.0);
    script
}

fn drive_for(sel: u64, seed: u64) -> Drive {
    match sel % 3 {
        0 => Drive::Stepped,
        1 => Drive::Compressed,
        _ => Drive::Mixed(seed ^ 0xD1FF_C0DE),
    }
}

/// The acceptance battery: 100 seeds on the mesh plus 100 on the torus,
/// spread across all three drive modes, each run checked snapshot-for-
/// snapshot at every subject checkpoint.
#[test]
fn battery_200_seeds_mesh_and_torus() {
    for torus in [false, true] {
        for seed in 0..100u64 {
            let mk = move || {
                if torus {
                    Topology::new_torus(6, 6)
                } else {
                    Topology::new(6, 6)
                }
            };
            let script = churn_script(&mk(), seed * 2 + torus as u64, 5);
            let drive = drive_for(seed, seed);
            let label = format!("battery torus={torus} seed={seed} drive={drive:?}");
            DualEngine::new(mk, 3, script, label).run(drive);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized (topology kind, VC count, ts, churn schedule, drive
    /// mode): the engines must agree at every checkpoint. The label baked
    /// into every assert reproduces the failing case without shrinking.
    #[test]
    fn engines_agree_under_random_churn(
        seed in any::<u64>(),
        torus in any::<bool>(),
        extra_vc in 0u32..2,
        ts in 0u32..4,
        jobs in 4usize..9,
        drive_sel in 0u64..3,
    ) {
        let kind = if torus { TopologyKind::Torus } else { TopologyKind::Mesh };
        // torus routing needs >= 2 VCs (dateline); mesh runs on 1
        let vcs = if torus { 2 + extra_vc } else { 1 + extra_vc };
        let mk = move || Topology::with_kind(8, 10, kind, vcs);
        let script = churn_script(&mk(), seed, jobs);
        let drive = drive_for(drive_sel, seed);
        let label = format!(
            "prop seed={seed} torus={torus} vcs={vcs} ts={ts} jobs={jobs} drive={drive:?}"
        );
        DualEngine::new(mk, ts, script, label).run(drive);
    }
}

// --- exact-replay regressions: the hairy orderings named in the issue ---

/// Mid-cycle release waking the queued sender into the *same* cycle: an
/// uncontended worm of `plen` flits frees its injection channel at cycle
/// `1 + plen·(ts+1)` (inject at 1, then the tail leaves `plen` header
/// advances later, each `ts+1` cycles apart); the second packet queued at
/// the same node must inject in exactly that cycle, not the next one.
#[test]
fn same_cycle_release_injects_queued_sender() {
    let ts = 1u32;
    let plen = 2u32;
    let release = 1 + (plen as u64) * (ts as u64 + 1);
    for drive in [Drive::Stepped, Drive::Compressed, Drive::Mixed(11)] {
        let script: Script = vec![
            (0, Coord::new(0, 0), Coord::new(5, 0), plen, 0),
            (0, Coord::new(0, 0), Coord::new(5, 0), plen, 1),
        ];
        let label = format!("same-cycle release drive={drive:?}");
        let done = DualEngine::new(|| Topology::new(6, 6), ts, script, label).run(drive);
        let p2 = done.iter().find(|c| c.tag == 1).expect("second packet delivered");
        // injected_at = delivered_at - latency; queued at cycle 0
        assert_eq!(p2.delivered_at - p2.latency, release);
        assert_eq!(p2.queue_delay, release);
    }
}

/// Two nodes parked on their (distinct) injection channels, both freed in
/// the same cycle: both queued packets inject that cycle, and the
/// snapshot comparison inside the harness pins the rotating-arbitration
/// order (pending order) of the two wakes.
#[test]
fn two_parked_nodes_wake_same_cycle_in_pending_order() {
    let ts = 1u32;
    let plen = 3u32;
    let release = 1 + (plen as u64) * (ts as u64 + 1);
    for drive in [Drive::Stepped, Drive::Compressed] {
        // disjoint east-bound rows: no fabric contention, identical timing
        let script: Script = vec![
            (0, Coord::new(0, 0), Coord::new(5, 0), plen, 0),
            (0, Coord::new(0, 0), Coord::new(5, 0), plen, 1),
            (0, Coord::new(0, 5), Coord::new(5, 5), plen, 2),
            (0, Coord::new(0, 5), Coord::new(5, 5), plen, 3),
        ];
        let label = format!("two parked wakes drive={drive:?}");
        let done = DualEngine::new(|| Topology::new(6, 6), ts, script, label).run(drive);
        for tag in [1u64, 3] {
            let p = done.iter().find(|c| c.tag == tag).unwrap();
            assert_eq!(p.delivered_at - p.latency, release, "tag {tag}");
        }
    }
}

/// First-wave scan-order replay with a mid-phase `swap_remove`: three
/// nodes inject in the same cycle; the first empties its queue, so the
/// *tail* pending node is moved into its slot and must be visited at the
/// new (earlier) position — before the untouched middle node — exactly as
/// the reference scan does via `continue` without advancing its index.
#[test]
fn mid_phase_swap_remove_replays_scan_order() {
    let topo = Topology::new(6, 6);
    let ts = 3u32;
    let mut subject = Network::with_topology(topo, ts);
    // send order fixes slots: A=0, D=1,2, C=3,4; pending order [A, D, C]
    subject.send(Coord::new(0, 0), Coord::new(0, 5), 4, 0, 0); // A, 1 pkt
    subject.send(Coord::new(3, 0), Coord::new(3, 5), 4, 1, 0); // D, 2 pkts
    subject.send(Coord::new(3, 0), Coord::new(3, 5), 4, 2, 0);
    subject.send(Coord::new(5, 0), Coord::new(5, 5), 4, 3, 0); // C, 2 pkts
    subject.send(Coord::new(5, 0), Coord::new(5, 5), 4, 4, 0);
    subject.step(1);
    let snap = subject.arb_snapshot();
    // A injects and empties -> C's tail entry swaps into position 0 and is
    // visited there, before D: active order is [A, C1, D1], not [A, D1, C1]
    assert_eq!(snap.active, vec![0, 3, 1]);
    // the harness cross-checks the same script against the reference
    let script: Script = vec![
        (0, Coord::new(0, 0), Coord::new(0, 5), 4, 0),
        (0, Coord::new(3, 0), Coord::new(3, 5), 4, 1),
        (0, Coord::new(3, 0), Coord::new(3, 5), 4, 2),
        (0, Coord::new(5, 0), Coord::new(5, 5), 4, 3),
        (0, Coord::new(5, 0), Coord::new(5, 5), 4, 4),
    ];
    DualEngine::new(|| Topology::new(6, 6), ts, script, "swap_remove order".into())
        .run(Drive::Stepped);
}

/// A send that lands on a node whose injection channel was freed long ago
/// (node back to idle): it must become ready immediately and inject on
/// the very next cycle — one cycle of queue delay, even when the engine
/// leapt over the idle gap with `advance_until`.
#[test]
fn enqueue_onto_freed_channel_injects_next_cycle() {
    for drive in [Drive::Stepped, Drive::Compressed, Drive::Mixed(7)] {
        let script: Script = vec![
            (0, Coord::new(1, 1), Coord::new(4, 4), 3, 0),
            // long after the first worm drained and the network idled
            (400, Coord::new(1, 1), Coord::new(4, 4), 3, 1),
        ];
        let label = format!("enqueue on freed channel drive={drive:?}");
        let done = DualEngine::new(|| Topology::new(6, 6), 3, script, label).run(drive);
        let p2 = done.iter().find(|c| c.tag == 1).unwrap();
        assert_eq!(p2.queue_delay, 1);
        assert_eq!(p2.delivered_at - p2.latency, 401);
    }
}

/// Parked senders are provably inert: with every in-flight header in
/// routing delay and all queued senders parked, `skippable_cycles` must
/// report a non-zero leap (the old engine had to rescan `pending_nodes`
/// to know this; the new one knows from `inject_ready` alone).
#[test]
fn parked_senders_do_not_block_compression() {
    let ts = 3u32;
    let mut n = Network::with_topology(Topology::new(6, 6), ts);
    n.send(Coord::new(0, 0), Coord::new(5, 5), 8, 0, 0);
    n.send(Coord::new(0, 0), Coord::new(5, 5), 8, 1, 0);
    // cycle 1: first worm injects, second parks behind it
    n.step(1);
    assert_eq!(n.parked_nodes(), 1);
    assert_eq!(n.ready_nodes(), 0);
    // the lone header sits in routing delay until cycle 1 + ts + 1; the
    // parked sender must not force stepping through the gap
    assert_eq!(n.skippable_cycles(), ts as u64);
    // a fresh send on a *free* channel ends the inert stretch at once
    n.send(Coord::new(3, 3), Coord::new(0, 0), 2, 2, 1);
    assert_eq!(n.ready_nodes(), 1);
    assert_eq!(n.skippable_cycles(), 0);
    n.run_until_idle(1);
    assert_eq!(n.counters().delivered, 3);
}
