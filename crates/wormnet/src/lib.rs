//! # wormnet — a flit-level wormhole-switched 2D mesh network simulator
//!
//! Reimplements the network model of the ProcSimity simulator the paper
//! builds on (paper §5):
//!
//! * **Wormhole switching.** A packet is a worm of `Plen` flits. The header
//!   flit carves the route; body flits follow in pipeline fashion. When the
//!   header blocks on a busy channel, the whole worm stalls in place and
//!   keeps every channel it occupies — this is the mechanism behind the
//!   paper's *packet blocking time* metric and the contention penalty of
//!   non-contiguous allocation.
//! * **XY (dimension-ordered) routing**, deadlock-free on the mesh.
//! * **Timing.** A flit takes 1 cycle to cross a link and the header takes
//!   `ts` cycles to be routed through each node (`ts = 3` in the paper).
//!   With single-flit channel buffers the worm advances in lock-step with
//!   its header, so the uncontended latency of a packet over `h` hops is
//!   `(h + 1)·(ts + 1) + Plen` cycles counting injection and ejection
//!   ports (see [`Network::uncontended_latency`]).
//! * **Injection/ejection channels.** Each node has one injection and one
//!   ejection port; a node's outgoing packets serialize through its
//!   injection port (time spent queued at the source is *not* part of
//!   packet latency, matching the paper's definition: "the average time for
//!   message packets to reach their destination **once they are injected
//!   into the network**").
//!
//! The cycle engine is *worm-based* rather than per-flit: because buffers
//! hold one flit and a worm always occupies a contiguous window of its
//! path, each packet's full flit state is four integers. A cycle costs
//! O(active packets), which is what makes the paper-scale parameter sweeps
//! (hundreds of millions of cycles) tractable.
//!
//! The network is topology-generic: [`Topology`] names the channels of a
//! mesh **or** a torus (wraparound links, two virtual channels with a
//! dateline switch — see `docs/TOPOLOGIES.md`), and [`route`] picks the
//! matching deadlock-free dimension-ordered route.

// Deep invariant checks: `debug_assert!` in ordinary builds, promoted
// to always-compiled `assert!` under `--features invariants` (see
// docs/LINTS.md). `cfg!` keeps both arms type-checked; the dead branch
// is optimized out.
macro_rules! inv_assert {
    ($($arg:tt)*) => {
        if cfg!(feature = "invariants") {
            assert!($($arg)*);
        } else {
            debug_assert!($($arg)*);
        }
    };
}
macro_rules! inv_assert_eq {
    ($($arg:tt)*) => {
        if cfg!(feature = "invariants") {
            assert_eq!($($arg)*);
        } else {
            debug_assert_eq!($($arg)*);
        }
    };
}

#[cfg(test)]
mod differential;
pub mod network;
pub mod packet;
pub mod pattern;
#[cfg(test)]
pub mod reference;
pub mod routing;
pub mod topology;

pub use network::{Completion, Network};
pub use packet::{PacketId, PacketState};
pub use pattern::{pattern_messages, Pattern};
pub use routing::{route, xy_route};
pub use topology::{ChannelId, Direction, Topology, TopologyKind};
