//! The reference cycle-stepper: the original O(active) per-cycle engine,
//! kept verbatim as a validation oracle for the event-compressed engine
//! in [`crate::network`].
//!
//! This module is compiled only for tests. The equivalence property tests
//! in `network.rs` drive identical traffic through both engines (mesh and
//! torus) and require byte-identical [`Completion`] streams and counters;
//! any semantic drift in the optimized engine fails there first.

// procsim-lint: test-only: included via `#[cfg(test)] pub mod reference` in lib.rs; never compiled into shipping simulators

use crate::network::{ArbSnapshot, Completion, NetCounters};
use crate::packet::{PacketId, PacketState};
use crate::routing::route;
use crate::topology::Topology;
use desim::Time;
use mesh2d::Coord;
use std::collections::VecDeque;

const FREE: u32 = u32::MAX;

/// The original wormhole network engine: every active packet is visited
/// on every cycle (blocked headers re-attempt and fail explicitly rather
/// than waiting on a channel waiter list).
#[derive(Debug)]
pub struct ReferenceNetwork {
    topo: Topology,
    ts: u32,
    owner: Vec<u32>,
    packets: Vec<Option<PacketState>>,
    free_slots: Vec<u32>,
    active: Vec<u32>,
    inject_q: Vec<VecDeque<u32>>,
    pending_nodes: Vec<u32>,
    completed: Vec<Completion>,
    counters: NetCounters,
    rr: usize,
    phys_stamp: Vec<u64>,
    stamp: u64,
}

impl ReferenceNetwork {
    /// Creates an idle reference network over an arbitrary topology.
    pub fn with_topology(topo: Topology, ts: u32) -> Self {
        let nodes = topo.nodes() as usize;
        let channels = topo.num_channels() as usize;
        let phys = topo.num_physical() as usize;
        ReferenceNetwork {
            topo,
            ts,
            owner: vec![FREE; channels],
            packets: Vec::new(),
            free_slots: Vec::new(),
            active: Vec::new(),
            inject_q: vec![VecDeque::new(); nodes],
            pending_nodes: Vec::new(),
            completed: Vec::new(),
            counters: NetCounters::default(),
            rr: 0,
            phys_stamp: vec![0; phys],
            stamp: 0,
        }
    }

    /// True when no packet is in flight or queued.
    pub fn is_idle(&self) -> bool {
        self.active.is_empty() && self.pending_nodes.is_empty()
    }

    /// Lifetime counters.
    pub fn counters(&self) -> NetCounters {
        self.counters
    }

    /// Packets waiting in source injection queues (same contract as
    /// [`crate::Network::queued_count`]).
    pub fn queued_count(&self) -> usize {
        self.pending_nodes
            .iter()
            .map(|&n| self.inject_q[n as usize].len())
            .sum()
    }

    /// Captures this engine's [`ArbSnapshot`] — the future-deciding state
    /// the differential battery compares against the optimized engine at
    /// every cycle boundary.
    pub fn arb_snapshot(&self) -> ArbSnapshot {
        ArbSnapshot {
            active: self.active.clone(),
            rr: self.rr,
            owner: self.owner.clone(),
            pending_nodes: self.pending_nodes.clone(),
            inject_q: self
                .inject_q
                .iter()
                .map(|q| q.iter().copied().collect())
                .collect(),
            counters: self.counters,
        }
    }

    /// Hands a packet to `src`'s injection queue (same contract as
    /// [`crate::Network::send`]).
    pub fn send(&mut self, src: Coord, dst: Coord, len_flits: u32, tag: u64, now: Time) -> PacketId {
        let path = route(&self.topo, src, dst);
        let pkt = PacketState::new(path, len_flits, tag, now);
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.packets[s as usize] = Some(pkt);
                s
            }
            None => {
                self.packets.push(Some(pkt));
                (self.packets.len() - 1) as u32
            }
        };
        let node = (src.y as u32 * self.topo.width() as u32 + src.x as u32) as usize;
        if self.inject_q[node].is_empty() {
            self.pending_nodes.push(node as u32);
        }
        self.inject_q[node].push_back(slot);
        PacketId(slot)
    }

    /// Removes and returns all completions recorded so far.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completed)
    }

    /// Advances the network one cycle, visiting every active packet.
    pub fn step(&mut self, now: Time) {
        self.counters.cycles += 1;
        self.stamp += 1;

        // --- movement phase ---
        let n = self.active.len();
        if n > 0 {
            self.rr = (self.rr + 1) % n;
            let mut i = 0;
            let mut done_slots: Vec<usize> = Vec::new();
            while i < n {
                let idx = (self.rr + i) % n;
                let slot = self.active[idx] as usize;
                if self.advance_packet(slot, now) {
                    done_slots.push(idx);
                }
                i += 1;
            }
            done_slots.sort_unstable_by(|a, b| b.cmp(a));
            for idx in done_slots {
                let slot = self.active.swap_remove(idx);
                self.packets[slot as usize] = None;
                self.free_slots.push(slot);
            }
        }

        // --- injection phase ---
        let mut k = 0;
        while k < self.pending_nodes.len() {
            let node = self.pending_nodes[k] as usize;
            let q = &mut self.inject_q[node];
            debug_assert!(!q.is_empty());
            let front = *q.front().unwrap() as usize;
            let inj = self.packets[front].as_ref().unwrap().path[0];
            if self.owner[inj.index()] == FREE {
                q.pop_front();
                let pkt = self.packets[front].as_mut().unwrap();
                self.owner[inj.index()] = front as u32;
                pkt.head = 0;
                pkt.tail = 0;
                pkt.injected = 1;
                pkt.countdown = self.ts;
                pkt.injected_at = now;
                self.active.push(front as u32);
                if q.is_empty() {
                    self.pending_nodes.swap_remove(k);
                    continue;
                }
            }
            k += 1;
        }
    }

    fn claim_bandwidth(&mut self, slot: usize, land_from: usize, land_to: usize) -> bool {
        let pkt = self.packets[slot].as_ref().unwrap();
        for i in land_from..=land_to {
            let phys = self.topo.physical_of(pkt.path[i]) as usize;
            if self.phys_stamp[phys] == self.stamp {
                return false;
            }
        }
        let path: Vec<u32> = (land_from..=land_to)
            .map(|i| self.topo.physical_of(self.packets[slot].as_ref().unwrap().path[i]))
            .collect();
        for phys in path {
            self.phys_stamp[phys as usize] = self.stamp;
        }
        true
    }

    fn advance_packet(&mut self, slot: usize, now: Time) -> bool {
        let pkt = self.packets[slot].as_mut().unwrap();
        #[cfg(debug_assertions)]
        pkt.check_invariant();

        if pkt.draining {
            let injecting = pkt.injected < pkt.len_flits;
            let land_from = if injecting { pkt.tail } else { pkt.tail + 1 };
            let land_to = pkt.path.len() - 1;
            if land_from <= land_to && !self.claim_bandwidth(slot, land_from, land_to) {
                let pkt = self.packets[slot].as_mut().unwrap();
                pkt.blocked_cycles += 1;
                return false;
            }
            let pkt = self.packets[slot].as_mut().unwrap();
            pkt.ejected += 1;
            if pkt.injected < pkt.len_flits {
                pkt.injected += 1;
            } else {
                self.owner[pkt.path[pkt.tail].index()] = FREE;
                pkt.tail += 1;
            }
            if pkt.ejected == pkt.len_flits {
                let c = Completion {
                    tag: pkt.tag,
                    delivered_at: now,
                    latency: now - pkt.injected_at,
                    blocked: pkt.blocked_cycles,
                    queue_delay: pkt.injected_at - pkt.queued_at,
                    hops: pkt.hops(),
                };
                self.counters.delivered += 1;
                self.counters.total_latency += c.latency;
                self.counters.total_blocked += c.blocked;
                self.counters.total_hops += c.hops as u64;
                self.completed.push(c);
                return true;
            }
            return false;
        }

        if pkt.countdown > 0 {
            pkt.countdown -= 1;
            return false;
        }
        let next = pkt.head + 1;
        let next_ch = pkt.path[next];
        if self.owner[next_ch.index()] != FREE {
            pkt.blocked_cycles += 1;
            return false;
        }
        let injecting = pkt.injected < pkt.len_flits;
        let land_from = if injecting { pkt.tail } else { pkt.tail + 1 };
        if !self.claim_bandwidth(slot, land_from, next) {
            let pkt = self.packets[slot].as_mut().unwrap();
            pkt.blocked_cycles += 1;
            return false;
        }
        let pkt = self.packets[slot].as_mut().unwrap();
        self.owner[next_ch.index()] = slot as u32;
        pkt.head = next;
        if pkt.injected < pkt.len_flits {
            pkt.injected += 1;
        } else {
            self.owner[pkt.path[pkt.tail].index()] = FREE;
            pkt.tail += 1;
        }
        if next == pkt.path.len() - 1 {
            pkt.draining = true;
        } else {
            pkt.countdown = self.ts;
        }
        false
    }

    /// Runs the network until idle, starting at `start`; returns the first
    /// idle cycle.
    pub fn run_until_idle(&mut self, start: Time) -> Time {
        let mut t = start;
        while !self.is_idle() {
            self.step(t);
            t += 1;
        }
        t
    }
}

/// Old-vs-new engine equivalence: identical traffic scripts must produce
/// byte-identical completion streams and counters on both engines, on the
/// mesh and on the torus, under the compressed *and* the cycle-by-cycle
/// advancement of the new engine.
#[cfg(test)]
mod equivalence {
    use super::ReferenceNetwork;
    use crate::network::{Completion, NetCounters, Network};
    use crate::pattern::{pattern_messages, Pattern};
    use crate::topology::Topology;
    use desim::{SimRng, Time};
    use mesh2d::Coord;

    /// A deterministic traffic script: (send time, src, dst, flits, tag),
    /// sorted by send time.
    type Script = Vec<(Time, Coord, Coord, u32, u64)>;

    /// Runs the script on the reference engine, stepping every cycle.
    fn run_reference(topo: Topology, ts: u32, script: &Script) -> (Vec<Completion>, NetCounters) {
        let mut n = ReferenceNetwork::with_topology(topo, ts);
        let mut i = 0;
        let mut now: Time = 0;
        loop {
            while i < script.len() && script[i].0 == now {
                let (_, s, d, f, tag) = script[i];
                n.send(s, d, f, tag, now);
                i += 1;
            }
            if n.is_idle() {
                if i == script.len() {
                    break;
                }
                now = script[i].0;
                continue;
            }
            now += 1;
            n.step(now);
        }
        (n.drain_completions(), n.counters())
    }

    /// Runs the script on the new engine using compressed advancement
    /// (bulk-skipping inert stretches, never stepping past a send time).
    fn run_compressed(topo: Topology, ts: u32, script: &Script) -> (Vec<Completion>, NetCounters) {
        let mut n = Network::with_topology(topo, ts);
        let mut i = 0;
        let mut now: Time = 0;
        let mut out = Vec::new();
        loop {
            while i < script.len() && script[i].0 == now {
                let (_, s, d, f, tag) = script[i];
                n.send(s, d, f, tag, now);
                i += 1;
            }
            if n.is_idle() {
                if i == script.len() {
                    break;
                }
                now = script[i].0;
                continue;
            }
            let mut stop = now + 1 + n.skippable_cycles();
            if i < script.len() {
                stop = stop.min(script[i].0);
            }
            now = n.advance_until(now, stop);
            out.append(&mut n.drain_completions());
        }
        out.append(&mut n.drain_completions());
        (out, n.counters())
    }

    fn assert_engines_agree(mk_topo: impl Fn() -> Topology, ts: u32, script: &Script, label: &str) {
        let (ref_done, ref_counters) = run_reference(mk_topo(), ts, script);
        let (new_done, new_counters) = run_compressed(mk_topo(), ts, script);
        assert_eq!(
            ref_done.len(),
            new_done.len(),
            "{label}: delivered counts diverge"
        );
        for (a, b) in ref_done.iter().zip(new_done.iter()) {
            assert_eq!(a, b, "{label}: completion diverges");
        }
        assert_eq!(ref_counters, new_counters, "{label}: counters diverge");
    }

    /// Random job-like traffic: rectangular node populations exchanging
    /// messages under every communication pattern, arriving in waves.
    fn pattern_script(topo: &Topology, seed: u64, jobs: usize) -> Script {
        let mut rng = SimRng::new(seed);
        let (w, l) = (topo.width(), topo.length());
        let mut script: Script = Vec::new();
        let mut t: Time = 0;
        for job in 0..jobs {
            let pat = Pattern::ALL[rng.index(Pattern::ALL.len())];
            let bw = 2 + rng.index(4) as u16;
            let bl = 2 + rng.index(4) as u16;
            let bx = rng.index((w - bw + 1) as usize) as u16;
            let by = rng.index((l - bl + 1) as usize) as u16;
            let nodes: Vec<Coord> = (by..by + bl)
                .flat_map(|y| (bx..bx + bw).map(move |x| Coord::new(x, y)))
                .collect();
            let msgs = pattern_messages(pat, &nodes, 1 + rng.index(4) as u32, &mut rng);
            for (k, (s, d)) in msgs.into_iter().enumerate() {
                let flits = 1 + rng.index(10) as u32;
                script.push((t, s, d, flits, (job * 10_000 + k) as u64));
            }
            // loads from back-to-back waves to long idle gaps, so both the
            // contended and the compressible regimes are exercised
            t += rng.index(120) as Time;
        }
        script.sort_by_key(|e| e.0);
        script
    }

    #[test]
    fn engines_agree_on_mesh_patterns() {
        for seed in 0..4u64 {
            let topo = Topology::new(8, 10);
            let script = pattern_script(&topo, 100 + seed, 12);
            assert_engines_agree(|| Topology::new(8, 10), 3, &script, &format!("mesh seed {seed}"));
        }
    }

    #[test]
    fn engines_agree_on_torus_patterns() {
        // the torus shares physical-link bandwidth between virtual
        // channels, exercising the eager (bandwidth-starved) path
        for seed in 0..4u64 {
            let topo = Topology::new_torus(8, 10);
            let script = pattern_script(&topo, 200 + seed, 12);
            assert_engines_agree(
                || Topology::new_torus(8, 10),
                3,
                &script,
                &format!("torus seed {seed}"),
            );
        }
    }

    #[test]
    fn engines_agree_on_hotspots_and_zero_ts() {
        // ts = 0 removes routing delay entirely (no skippable stretches
        // from countdowns), and a hotspot maximizes waiter-list churn
        for &ts in &[0u32, 1, 3] {
            for torus in [false, true] {
                let mk = move || {
                    if torus {
                        Topology::new_torus(6, 6)
                    } else {
                        Topology::new(6, 6)
                    }
                };
                let mut rng = SimRng::new(ts as u64 + 7);
                let mut script: Script = Vec::new();
                for k in 0..60u64 {
                    let s = Coord::new(rng.index(6) as u16, rng.index(6) as u16);
                    script.push(((k / 6) * 3, s, Coord::new(3, 3), 4, k));
                }
                script.sort_by_key(|e| e.0);
                let label = format!("hotspot ts={ts} torus={torus}");
                assert_engines_agree(mk, ts, &script, &label);
            }
        }
    }
}
