//! Per-packet worm state.

use crate::topology::ChannelId;
use desim::Time;

/// Dense identifier of an in-flight packet (slot in the network's slab).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketId(pub u32);

/// The state of one wormhole packet.
///
/// Because channel buffers hold a single flit and body flits advance in
/// lock-step with the header, a worm always occupies the contiguous channel
/// window `path[tail ..= head]`, with exactly one flit per channel. The
/// whole flit-level state therefore reduces to four counters.
#[derive(Debug, Clone)]
pub struct PacketState {
    /// Full channel path `[inject, links..., eject]`.
    pub(crate) path: Vec<ChannelId>,
    /// Packet length in flits (`Plen`).
    pub(crate) len_flits: u32,
    /// Caller tag (the owning job id in the full simulator).
    pub(crate) tag: u64,
    /// Cycle the packet was handed to the source PE's injection queue.
    pub(crate) queued_at: Time,
    /// Cycle the header acquired the injection channel.
    pub(crate) injected_at: Time,
    /// Cycles the header spent waiting on busy channels ("packet blocking
    /// time", paper §5).
    pub(crate) blocked_cycles: u64,
    /// Index into `path` of the foremost acquired channel.
    pub(crate) head: usize,
    /// Index into `path` of the rearmost channel still held.
    pub(crate) tail: usize,
    /// Flits that have entered the network.
    pub(crate) injected: u32,
    /// Flits consumed by the destination PE.
    pub(crate) ejected: u32,
    /// Remaining routing-delay cycles before the header may attempt its
    /// next channel acquisition. Only the test-gated reference engine
    /// counts delay down cycle by cycle; the compressed engine schedules
    /// acquisition attempts on a timer heap instead.
    #[cfg(test)]
    pub(crate) countdown: u32,
    /// Header has reached the ejection channel; the worm is streaming into
    /// the destination PE at one flit per cycle.
    pub(crate) draining: bool,
}

impl PacketState {
    pub(crate) fn new(path: Vec<ChannelId>, len_flits: u32, tag: u64, queued_at: Time) -> Self {
        debug_assert!(path.len() >= 2, "path must include inject and eject ports");
        debug_assert!(len_flits >= 1);
        PacketState {
            path,
            len_flits,
            tag,
            queued_at,
            injected_at: 0,
            blocked_cycles: 0,
            head: 0,
            tail: 0,
            injected: 0,
            ejected: 0,
            #[cfg(test)]
            countdown: 0,
            draining: false,
        }
    }

    /// Number of router-to-router hops (path minus the two ports).
    #[inline]
    pub fn hops(&self) -> u32 {
        // procsim-lint: allow(D005): a route visits each mesh node at most once, so path length fits u32
        (self.path.len() - 2) as u32
    }

    /// Flits currently inside the network.
    #[inline]
    pub fn flits_in_network(&self) -> u32 {
        self.injected - self.ejected
    }

    /// Debug invariant: window length equals flits in network.
    #[cfg(any(debug_assertions, feature = "invariants"))]
    pub(crate) fn check_invariant(&self) {
        if self.injected > self.ejected {
            debug_assert_eq!(
                (self.head - self.tail + 1) as u32,
                self.flits_in_network(),
                "worm window/flit mismatch"
            );
        }
    }
}
