//! Communication patterns.
//!
//! The paper's experiments use **all-to-all** exclusively ("it causes much
//! message collision and is known as the weak point for non-contiguous
//! allocation", §5); the other patterns here are the remaining ProcSimity
//! patterns, used by the ablation benches to show how much the all-to-all
//! choice matters.

use desim::SimRng;
use mesh2d::Coord;

/// Destination-selection rule for a job's messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// Every processor sends to every other processor of the job in
    /// round-robin order (offset by sender rank so the first destinations
    /// are spread out rather than synchronized on processor 0).
    AllToAll,
    /// Processor 0 broadcasts: it sends each of its messages round-robin
    /// to the other processors; other processors send nothing.
    OneToAll,
    /// Each processor sends to the next processor in the allocation order
    /// (wrapping).
    Ring,
    /// Each message goes to an independently uniformly chosen partner.
    RandomPairs,
    /// Ring over the processors sorted row-major — partners are physically
    /// adjacent whenever the allocation is contiguous.
    NearNeighbour,
}

impl Pattern {
    /// Every supported pattern, in the ablation benches' sweep order.
    pub const ALL: [Pattern; 5] = [
        Pattern::AllToAll,
        Pattern::OneToAll,
        Pattern::Ring,
        Pattern::RandomPairs,
        Pattern::NearNeighbour,
    ];
}

impl core::fmt::Display for Pattern {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Pattern::AllToAll => "all-to-all",
            Pattern::OneToAll => "one-to-all",
            Pattern::Ring => "ring",
            Pattern::RandomPairs => "random-pairs",
            Pattern::NearNeighbour => "near-neighbour",
        };
        f.write_str(s)
    }
}

/// Expands a pattern into the `(src, dst)` message list for one job.
///
/// `nodes` is the job's allocated processor set in allocation order;
/// `msgs_per_node` is the per-processor message count (the paper's
/// exponentially distributed `num_mes` draw). Single-processor jobs send
/// nothing — the caller models their demand as local computation.
pub fn pattern_messages(
    pattern: Pattern,
    nodes: &[Coord],
    msgs_per_node: u32,
    rng: &mut SimRng,
) -> Vec<(Coord, Coord)> {
    let n = nodes.len();
    if n <= 1 {
        return Vec::new();
    }
    let mut out = Vec::new();
    match pattern {
        Pattern::AllToAll => {
            // Each node's messages are spread evenly over ALL other
            // processors of the job (strided sampling of the full
            // all-to-all destination set): with fewer messages than
            // partners the destinations still span the whole allocation,
            // which is what makes all-to-all "the weak point for
            // non-contiguous allocation" — traffic crosses the entire
            // spatial extent of the job, not just rank neighbours.
            let span = n as u32 - 1;
            for (i, &src) in nodes.iter().enumerate() {
                let stride = (span / msgs_per_node.min(span)).max(1);
                for k in 0..msgs_per_node {
                    let offset = 1 + (k * stride + k / span) % span;
                    let j = (i as u32 + offset) % n as u32;
                    out.push((src, nodes[j as usize]));
                }
            }
        }
        Pattern::OneToAll => {
            // only the root sends: msgs_per_node messages, round-robin
            // over the other processors (same per-sender volume as the
            // other patterns, so the pattern comparison isolates traffic
            // *shape* rather than volume)
            let src = nodes[0];
            for k in 0..msgs_per_node {
                out.push((src, nodes[1 + (k as usize % (n - 1))]));
            }
        }
        Pattern::Ring => {
            for (i, &src) in nodes.iter().enumerate() {
                let dst = nodes[(i + 1) % n];
                for _ in 0..msgs_per_node {
                    out.push((src, dst));
                }
            }
        }
        Pattern::RandomPairs => {
            for (i, &src) in nodes.iter().enumerate() {
                for _ in 0..msgs_per_node {
                    let mut j = rng.index(n - 1);
                    if j >= i {
                        j += 1;
                    }
                    out.push((src, nodes[j]));
                }
            }
        }
        Pattern::NearNeighbour => {
            let mut sorted = nodes.to_vec();
            sorted.sort_by_key(|c| (c.y, c.x));
            for (i, &src) in sorted.iter().enumerate() {
                let dst = sorted[(i + 1) % n];
                for _ in 0..msgs_per_node {
                    out.push((src, dst));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(k: usize) -> Vec<Coord> {
        (0..k as u16).map(|i| Coord::new(i % 4, i / 4)).collect()
    }

    #[test]
    fn no_self_messages_in_any_pattern() {
        let ns = nodes(7);
        let mut rng = SimRng::new(1);
        for p in Pattern::ALL {
            for (s, d) in pattern_messages(p, &ns, 5, &mut rng) {
                assert_ne!(s, d, "{p} produced a self message");
            }
        }
    }

    #[test]
    fn single_node_job_sends_nothing() {
        let mut rng = SimRng::new(1);
        for p in Pattern::ALL {
            assert!(pattern_messages(p, &nodes(1), 5, &mut rng).is_empty());
        }
    }

    #[test]
    fn all_to_all_counts_and_coverage() {
        let ns = nodes(5);
        let mut rng = SimRng::new(1);
        let msgs = pattern_messages(Pattern::AllToAll, &ns, 8, &mut rng);
        assert_eq!(msgs.len(), 5 * 8);
        // with msgs_per_node >= n-1 every ordered pair appears
        let mut pairs = std::collections::HashSet::new();
        for (s, d) in &msgs {
            pairs.insert((*s, *d));
        }
        assert_eq!(pairs.len(), 5 * 4, "all ordered pairs covered");
    }

    #[test]
    fn all_to_all_is_balanced_per_sender() {
        let ns = nodes(6);
        let mut rng = SimRng::new(1);
        let msgs = pattern_messages(Pattern::AllToAll, &ns, 10, &mut rng);
        for src in &ns {
            assert_eq!(msgs.iter().filter(|(s, _)| s == src).count(), 10);
        }
    }

    #[test]
    fn one_to_all_only_root_sends() {
        let ns = nodes(4);
        let mut rng = SimRng::new(1);
        let msgs = pattern_messages(Pattern::OneToAll, &ns, 7, &mut rng);
        assert!(msgs.iter().all(|(s, _)| *s == ns[0]));
        assert_eq!(msgs.len(), 7);
        // round-robin coverage of all peers
        let dsts: std::collections::HashSet<_> = msgs.iter().map(|(_, d)| *d).collect();
        assert_eq!(dsts.len(), 3);
    }

    #[test]
    fn ring_wraps() {
        let ns = nodes(3);
        let mut rng = SimRng::new(1);
        let msgs = pattern_messages(Pattern::Ring, &ns, 1, &mut rng);
        assert_eq!(msgs, vec![(ns[0], ns[1]), (ns[1], ns[2]), (ns[2], ns[0])]);
    }

    #[test]
    fn random_pairs_counts() {
        let ns = nodes(9);
        let mut rng = SimRng::new(7);
        let msgs = pattern_messages(Pattern::RandomPairs, &ns, 4, &mut rng);
        assert_eq!(msgs.len(), 9 * 4);
    }

    #[test]
    fn near_neighbour_prefers_short_distances() {
        // On a contiguous 4x2 block, near-neighbour mean distance must be
        // well below all-to-all mean distance.
        let ns: Vec<Coord> = (0..2u16)
            .flat_map(|y| (0..4u16).map(move |x| Coord::new(x, y)))
            .collect();
        let mut rng = SimRng::new(7);
        let mean = |msgs: &[(Coord, Coord)]| {
            msgs.iter().map(|(s, d)| s.manhattan(d) as f64).sum::<f64>() / msgs.len() as f64
        };
        let nn = pattern_messages(Pattern::NearNeighbour, &ns, 4, &mut rng);
        let a2a = pattern_messages(Pattern::AllToAll, &ns, 4, &mut rng);
        assert!(mean(&nn) < mean(&a2a));
    }
}
