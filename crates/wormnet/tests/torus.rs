//! Torus extension tests: wraparound routing, dateline deadlock freedom,
//! virtual-channel bandwidth sharing.

use desim::SimRng;
use mesh2d::Coord;
use proptest::prelude::*;
use wormnet::{pattern_messages, Network, Pattern, Topology};

const TS: u32 = 3;
const PLEN: u32 = 8;

#[test]
fn torus_shortcut_reduces_latency() {
    // corner-to-corner: 36 hops on the mesh, 2 on the torus
    let (s, d) = (Coord::new(0, 0), Coord::new(15, 21));
    let mut mesh = Network::new(16, 22, TS);
    mesh.send(s, d, PLEN, 0, 0);
    mesh.run_until_idle(0);
    let mesh_lat = mesh.drain_completions()[0].latency;

    let mut torus = Network::with_topology(Topology::new_torus(16, 22), TS);
    torus.send(s, d, PLEN, 0, 0);
    torus.run_until_idle(0);
    let torus_lat = torus.drain_completions()[0].latency;

    assert_eq!(mesh_lat, Network::uncontended_latency(36, PLEN, TS));
    assert_eq!(torus_lat, Network::uncontended_latency(2, PLEN, TS));
}

#[test]
fn torus_all_to_all_delivers_everything() {
    // all-to-all across a region spanning both datelines: conservation
    // and deadlock freedom under the dateline VC discipline
    let mut net = Network::with_topology(Topology::new_torus(8, 8), TS);
    let nodes: Vec<Coord> = (0..8u16).map(|i| Coord::new(i, i % 8)).collect();
    let mut rng = SimRng::new(3);
    let msgs = pattern_messages(Pattern::AllToAll, &nodes, 7, &mut rng);
    for (i, (s, d)) in msgs.iter().enumerate() {
        net.send(*s, *d, PLEN, i as u64, 0);
    }
    let mut t = 0;
    while !net.is_idle() {
        net.step(t);
        t += 1;
        assert!(t < 200_000, "torus wedged");
    }
    assert_eq!(net.drain_completions().len(), msgs.len());
}

#[test]
fn ring_traffic_around_the_wrap_makes_progress() {
    // every node of a ring sends to its neighbour the "long way" being
    // impossible: minimal routing always exits; hammer the x wrap links
    let mut net = Network::with_topology(Topology::new_torus(8, 1), TS);
    for x in 0..8u16 {
        // distance 3 east for everyone: heavy intra-ring pressure
        let dst = Coord::new((x + 3) % 8, 0);
        net.send(Coord::new(x, 0), dst, PLEN, x as u64, 0);
    }
    let mut t = 0;
    while !net.is_idle() {
        net.step(t);
        t += 1;
        assert!(t < 100_000, "ring deadlocked");
    }
    assert_eq!(net.drain_completions().len(), 8);
}

#[test]
fn vcs_let_two_worms_share_a_link() {
    // two packets in the same direction on the same physical ring links
    // but different VCs (one crosses the dateline upstream): both must
    // complete, and bandwidth sharing must slow at least one down
    let topo = Topology::new_torus(8, 1);
    let mut net = Network::with_topology(topo, TS);
    // packet A: 6 -> 2 eastwards crosses wrap at x=7 (vc1 after wrap)
    net.send(Coord::new(6, 0), Coord::new(2, 0), PLEN, 0, 0);
    // packet B: 0 -> 3 eastwards on vc0 over links A also uses
    net.send(Coord::new(0, 0), Coord::new(3, 0), PLEN, 1, 0);
    net.run_until_idle(0);
    let cs = net.drain_completions();
    assert_eq!(cs.len(), 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Deadlock-freedom and conservation on the torus for arbitrary
    /// traffic (the property the dateline discipline must guarantee).
    #[test]
    fn torus_conservation(msgs in proptest::collection::vec(
        ((0u16..16, 0u16..22), (0u16..16, 0u16..22)), 1..100)) {
        let mut net = Network::with_topology(Topology::new_torus(16, 22), TS);
        for (i, ((sx, sy), (dx, dy))) in msgs.iter().enumerate() {
            net.send(Coord::new(*sx, *sy), Coord::new(*dx, *dy), PLEN, i as u64, 0);
        }
        let mut t = 0u64;
        while !net.is_idle() {
            net.step(t);
            t += 1;
            prop_assert!(t < 1_000_000, "torus wedged after {} cycles", t);
        }
        let cs = net.drain_completions();
        prop_assert_eq!(cs.len(), msgs.len());
        for c in &cs {
            let floor = Network::uncontended_latency(c.hops, PLEN, TS);
            prop_assert!(c.latency >= floor);
        }
    }

    /// Torus latency never exceeds mesh latency for isolated packets.
    #[test]
    fn torus_no_worse_than_mesh(sx in 0u16..16, sy in 0u16..22, dx in 0u16..16, dy in 0u16..22) {
        let run = |net: &mut Network| {
            net.send(Coord::new(sx, sy), Coord::new(dx, dy), PLEN, 0, 0);
            net.run_until_idle(0);
            net.drain_completions()[0].latency
        };
        let m = run(&mut Network::new(16, 22, TS));
        let t = run(&mut Network::with_topology(Topology::new_torus(16, 22), TS));
        prop_assert!(t <= m, "torus {} > mesh {}", t, m);
    }
}
