//! Property-based tests: conservation, deadlock-freedom, latency bounds.

use desim::SimRng;
use mesh2d::Coord;
use proptest::prelude::*;
use wormnet::{pattern_messages, Network, Pattern};

const TS: u32 = 3;
const PLEN: u32 = 8;

/// Random (src, dst) message sets on a 16x22 mesh.
fn arb_messages() -> impl Strategy<Value = Vec<(Coord, Coord)>> {
    proptest::collection::vec(
        ((0u16..16, 0u16..22), (0u16..16, 0u16..22)),
        1..120,
    )
    .prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|((sx, sy), (dx, dy))| (Coord::new(sx, sy), Coord::new(dx, dy)))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every packet sent is delivered exactly once, every channel is
    /// released, and the network never wedges (XY routing is deadlock-free).
    #[test]
    fn conservation_and_progress(msgs in arb_messages()) {
        let mut net = Network::new(16, 22, TS);
        for (i, &(s, d)) in msgs.iter().enumerate() {
            net.send(s, d, PLEN, i as u64, 0);
        }
        // progress bound: generous ceiling on cycles
        let mut t = 0u64;
        let ceiling = 1_000_000;
        while !net.is_idle() {
            net.step(t);
            t += 1;
            prop_assert!(t < ceiling, "network wedged after {} cycles", t);
        }
        let cs = net.drain_completions();
        prop_assert_eq!(cs.len(), msgs.len());
        // each tag delivered exactly once
        let mut tags: Vec<u64> = cs.iter().map(|c| c.tag).collect();
        tags.sort_unstable();
        tags.dedup();
        prop_assert_eq!(tags.len(), msgs.len());
    }

    /// Latency of every packet is at least the uncontended minimum for its
    /// hop count, and equals it plus its blocking-induced delay lower bound.
    #[test]
    fn latency_bounded_below(msgs in arb_messages()) {
        let mut net = Network::new(16, 22, TS);
        for (i, &(s, d)) in msgs.iter().enumerate() {
            net.send(s, d, PLEN, i as u64, 0);
        }
        net.run_until_idle(0);
        for c in net.drain_completions() {
            let base = Network::uncontended_latency(c.hops, PLEN, TS);
            prop_assert!(c.latency >= base, "latency {} below floor {}", c.latency, base);
            prop_assert!(c.latency >= base + c.blocked,
                "latency {} < floor {} + blocked {}", c.latency, base, c.blocked);
        }
    }

    /// An isolated packet's latency matches the closed form exactly,
    /// for arbitrary packet lengths and ts.
    #[test]
    fn closed_form_latency(sx in 0u16..16, sy in 0u16..22, dx in 0u16..16, dy in 0u16..22,
                           plen in 1u32..32, ts in 0u32..6) {
        let (s, d) = (Coord::new(sx, sy), Coord::new(dx, dy));
        let mut net = Network::new(16, 22, ts);
        net.send(s, d, plen, 0, 0);
        net.run_until_idle(0);
        let c = net.drain_completions();
        prop_assert_eq!(c[0].latency, Network::uncontended_latency(s.manhattan(&d), plen, ts));
    }

    /// Pattern expansion never self-sends and produces the expected volume
    /// for deterministic patterns.
    #[test]
    fn pattern_volume(k in 2usize..40, m in 1u32..12, pat_i in 0usize..5) {
        let nodes: Vec<Coord> = (0..k as u16).map(|i| Coord::new(i % 16, i / 16)).collect();
        let mut rng = SimRng::new(99);
        let pat = Pattern::ALL[pat_i];
        let msgs = pattern_messages(pat, &nodes, m, &mut rng);
        for &(s, d) in &msgs {
            prop_assert_ne!(s, d);
        }
        let expect = match pat {
            Pattern::AllToAll | Pattern::Ring | Pattern::RandomPairs | Pattern::NearNeighbour =>
                k * m as usize,
            Pattern::OneToAll => m as usize,
        };
        prop_assert_eq!(msgs.len(), expect);
    }
}
