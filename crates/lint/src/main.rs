//! `procsim-lint` CLI — the workspace determinism & robustness linter.
//!
//! ```text
//! procsim-lint [--root DIR] [--json] [--deny RULE|all]... [--warn RULE|all]...
//!              [--explain RULE] [--list-rules]
//! ```
//!
//! Exit codes: 0 clean (or warnings only), 1 denied findings, 2 usage
//! or I/O error. CI runs `procsim-lint --deny all`, so the workspace
//! must be lint-clean or carry reasoned `procsim-lint: allow` pragmas.

use procsim_lint::{explain, lint_workspace, rule_list, rules, to_json, Config, Level};
use std::process::ExitCode;

fn usage() -> String {
    "usage: procsim-lint [--root DIR] [--json] [--deny RULE|all]... [--warn RULE|all]...\n\
     \x20                   [--explain RULE] [--list-rules]\n\
     \n\
     Lints every workspace .rs file (skipping target/, shims/, docs/, results/\n\
     and test fixtures) against the determinism & robustness rules D001-D005.\n\
     Suppressions require `// procsim-lint: allow(Dxxx): reason` pragmas and\n\
     are recorded in the output. Exit 0 = clean, 1 = denied findings, 2 = usage.\n"
        .to_string()
}

fn apply_levels(cfg: &mut Config, spec: &str, level: Level) -> Result<(), String> {
    if spec.eq_ignore_ascii_case("all") {
        cfg.default_level = level;
        cfg.levels.clear();
        return Ok(());
    }
    let id = spec.to_ascii_uppercase();
    if !rules::is_known_rule(&id) {
        return Err(format!("unknown rule `{spec}` (try --list-rules)"));
    }
    cfg.levels.insert(id, level);
    Ok(())
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = Config::deny_all(".");
    let mut json = false;
    let mut i = 0usize;
    while i < args.len() {
        let a = args[i].as_str();
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            args.get(i).cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match a {
            "--help" | "-h" => {
                print!("{}", usage());
                return Ok(ExitCode::SUCCESS);
            }
            "--list-rules" => {
                print!("{}", rule_list());
                return Ok(ExitCode::SUCCESS);
            }
            "--explain" => {
                let id = value("--explain")?.to_ascii_uppercase();
                let text = explain(&id).ok_or_else(|| format!("unknown rule `{id}`"))?;
                print!("{text}");
                return Ok(ExitCode::SUCCESS);
            }
            "--root" => {
                cfg.root = value("--root")?.into();
            }
            "--deny" => {
                let spec = value("--deny")?;
                apply_levels(&mut cfg, &spec, Level::Deny)?;
            }
            "--warn" => {
                let spec = value("--warn")?;
                apply_levels(&mut cfg, &spec, Level::Warn)?;
            }
            "--json" => json = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
        i += 1;
    }

    let report = lint_workspace(&cfg).map_err(|e| e.to_string())?;
    if json {
        print!("{}", to_json(&report));
    } else {
        for f in &report.findings {
            println!("{}:{}: {} [{}] {}", f.path, f.line, f.rule, f.level, f.msg);
        }
        if !report.suppressions.is_empty() {
            println!("-- {} suppression(s) honoured:", report.suppressions.len());
            for s in &report.suppressions {
                println!("   {}:{}: allow({}) — {}", s.path, s.line, s.rule, s.reason);
            }
        }
        let denied = report.denied().count();
        println!(
            "procsim-lint: {} file(s), {} finding(s) ({} denied), {} suppression(s)",
            report.files,
            report.findings.len(),
            denied,
            report.suppressions.len()
        );
    }
    Ok(if report.is_failure() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("procsim-lint: {msg}");
            eprint!("{}", usage());
            ExitCode::from(2)
        }
    }
}
