//! A lightweight Rust tokenizer for [`crate::rules`].
//!
//! The build environment is offline, so the linter cannot lean on `syn`
//! or `proc-macro2`; instead this module implements the small slice of
//! lexical Rust the rules need: it splits source text into identifier /
//! number / punctuation tokens while *correctly skipping* the places
//! where rule keywords may legally appear without meaning anything —
//! line and (nested) block comments, string literals (plain, raw, and
//! byte variants), and character literals (disambiguated from
//! lifetimes). Suppression pragmas are parsed out of line comments
//! during the same pass.

/// Token category. The rules only distinguish words from punctuation
/// and need literals identified so they are never mistaken for code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `HashMap`, `unwrap`, ...).
    Ident,
    /// Numeric literal, including any type suffix (`0.0`, `1u32`).
    Number,
    /// String literal of any flavour (contents discarded).
    Str,
    /// Character or byte literal.
    Char,
    /// Lifetime (`'a`) — kept distinct so `'a` never looks like a char.
    Lifetime,
    /// Punctuation. `::`, `->` and `=>` are fused into single tokens
    /// because the rules pattern-match on them.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Category.
    pub kind: TokKind,
    /// Source text (empty for string literals).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// A `// procsim-lint: allow(Dxxx): reason` pragma found in a comment.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// 1-based line the pragma comment sits on.
    pub line: u32,
    /// Rule ids named in `allow(...)` (upper-cased).
    pub rules: Vec<String>,
    /// The written justification after the second colon.
    pub reason: String,
    /// Set when the pragma marker was present but unparsable or the
    /// reason was empty; carries a description of what is wrong.
    pub malformed: Option<String>,
}

/// Tokenizer output: the token stream plus any pragmas seen.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// Tokens in source order.
    pub toks: Vec<Tok>,
    /// Pragmas in source order.
    pub pragmas: Vec<Pragma>,
}

/// Marker that introduces a suppression pragma inside a line comment.
pub const PRAGMA_MARKER: &str = "procsim-lint:";

/// Pseudo-rule name carried by a `procsim-lint: test-only: reason`
/// file directive (the whole file is cfg(test)-gated at its include
/// site, invisible from the file itself).
pub const TEST_ONLY: &str = "TEST-ONLY";

/// Tokenizes `src`, extracting pragmas from line comments.
pub fn lex(src: &str) -> LexOutput {
    let b: Vec<char> = src.chars().collect();
    let mut out = LexOutput::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();
    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if i + 1 < n && b[i + 1] == '/' => {
                // line comment: scan to end of line, check for a pragma.
                // Doc comments (`///`, `//!`) are prose — a pragma marker
                // there is documentation *about* pragmas, not a pragma.
                let start = i + 2;
                let is_doc = start < n && (b[start] == '/' || b[start] == '!');
                let mut j = start;
                while j < n && b[j] != '\n' {
                    j += 1;
                }
                if !is_doc {
                    let text: String = b[start..j].iter().collect();
                    if let Some(p) = parse_pragma(&text, line) {
                        out.pragmas.push(p);
                    }
                }
                i = j;
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                // block comment, nested per the Rust grammar
                let mut depth = 1;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if b[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == '/' && j + 1 < n && b[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == '*' && j + 1 < n && b[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            '"' => {
                let tok_line = line;
                i = skip_string(&b, i, &mut line);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line: tok_line,
                });
            }
            '\'' => {
                // char literal or lifetime
                let tok_line = line;
                if i + 1 < n && b[i + 1] == '\\' {
                    // escaped char literal: skip to closing quote
                    let mut j = i + 2;
                    if j < n {
                        j += 1; // escaped character
                    }
                    // unicode escapes: \u{...}
                    while j < n && b[j] != '\'' && b[j] != '\n' {
                        j += 1;
                    }
                    i = (j + 1).min(n);
                    out.toks.push(Tok {
                        kind: TokKind::Char,
                        text: String::new(),
                        line: tok_line,
                    });
                } else if i + 2 < n && b[i + 2] == '\'' {
                    // 'x'
                    i += 3;
                    out.toks.push(Tok {
                        kind: TokKind::Char,
                        text: String::new(),
                        line: tok_line,
                    });
                } else {
                    // lifetime: 'ident
                    let mut j = i + 1;
                    let mut name = String::from("'");
                    while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                        name.push(b[j]);
                        j += 1;
                    }
                    i = j;
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: name,
                        line: tok_line,
                    });
                }
            }
            _ if c.is_alphabetic() || c == '_' => {
                // raw/byte string prefixes first: r", r#", b", br", b'
                if (c == 'r' || c == 'b') && is_string_start(&b, i) {
                    let tok_line = line;
                    i = skip_prefixed_string(&b, i, &mut line);
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text: String::new(),
                        line: tok_line,
                    });
                    continue;
                }
                if c == 'b' && i + 1 < n && b[i + 1] == '\'' {
                    // byte literal b'x'
                    let tok_line = line;
                    let mut j = i + 2;
                    if j < n && b[j] == '\\' {
                        j += 1;
                    }
                    while j < n && b[j] != '\'' && b[j] != '\n' {
                        j += 1;
                    }
                    i = (j + 1).min(n);
                    out.toks.push(Tok {
                        kind: TokKind::Char,
                        text: String::new(),
                        line: tok_line,
                    });
                    continue;
                }
                let mut j = i;
                let mut name = String::new();
                while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                    name.push(b[j]);
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: name,
                    line,
                });
                i = j;
            }
            _ if c.is_ascii_digit() => {
                let mut j = i;
                let mut text = String::new();
                // consume digits, underscores, type suffixes, exponents and
                // a fractional part (good enough: a number token never
                // contains rule keywords)
                while j < n
                    && (b[j].is_alphanumeric()
                        || b[j] == '_'
                        || (b[j] == '.' && j + 1 < n && b[j + 1].is_ascii_digit()))
                {
                    text.push(b[j]);
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Number,
                    text,
                    line,
                });
                i = j;
            }
            _ => {
                // punctuation; fuse the few two-char tokens the rules use
                let two: String = b[i..n.min(i + 2)].iter().collect();
                let fused = matches!(two.as_str(), "::" | "->" | "=>");
                let text = if fused { two } else { c.to_string() };
                let len = text.chars().count();
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text,
                    line,
                });
                i += len;
            }
        }
    }
    out
}

/// Does the identifier starting at `i` (which begins with `r` or `b`)
/// introduce a raw/byte string literal rather than a plain identifier?
fn is_string_start(b: &[char], i: usize) -> bool {
    let n = b.len();
    let c = b[i];
    if c == 'r' || c == 'b' {
        // r" r#" b" b#"(invalid but harmless) br" rb"(invalid)
        let mut j = i + 1;
        if j < n && (b[j] == 'r' || b[j] == 'b') && b[j] != c {
            j += 1;
        }
        let mut k = j;
        while k < n && b[k] == '#' {
            k += 1;
        }
        return k < n && b[k] == '"';
    }
    false
}

/// Skips a plain `"..."` string starting at `i` (the opening quote).
/// Returns the index just past the closing quote.
fn skip_string(b: &[char], i: usize, line: &mut u32) -> usize {
    let n = b.len();
    let mut j = i + 1;
    while j < n {
        match b[j] {
            '\\' => j += 2,
            '\n' => {
                *line += 1;
                j += 1;
            }
            '"' => return j + 1,
            _ => j += 1,
        }
    }
    n
}

/// Skips a raw/byte string starting at `i` (the `r`/`b` prefix).
fn skip_prefixed_string(b: &[char], i: usize, line: &mut u32) -> usize {
    let n = b.len();
    let mut j = i;
    let mut raw = false;
    while j < n && (b[j] == 'r' || b[j] == 'b') {
        raw |= b[j] == 'r';
        j += 1;
    }
    let mut hashes = 0usize;
    while j < n && b[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j >= n || b[j] != '"' {
        return j; // not actually a string; treat prefix as consumed
    }
    j += 1;
    if !raw {
        // byte string: ordinary escape rules
        while j < n {
            match b[j] {
                '\\' => j += 2,
                '\n' => {
                    *line += 1;
                    j += 1;
                }
                '"' => return j + 1,
                _ => j += 1,
            }
        }
        return n;
    }
    // raw string: ends at `"` followed by `hashes` hash marks
    while j < n {
        if b[j] == '\n' {
            *line += 1;
            j += 1;
        } else if b[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < n && b[k] == '#' && seen < hashes {
                k += 1;
                seen += 1;
            }
            if seen == hashes {
                return k;
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    n
}

/// Parses a pragma out of a line comment's text, if the marker is there.
fn parse_pragma(comment: &str, line: u32) -> Option<Pragma> {
    let at = comment.find(PRAGMA_MARKER)?;
    let rest = comment[at + PRAGMA_MARKER.len()..].trim_start();
    let malformed = |why: &str| {
        Some(Pragma {
            line,
            rules: Vec::new(),
            reason: String::new(),
            malformed: Some(why.to_string()),
        })
    };
    if let Some(rest) = rest.strip_prefix("test-only") {
        // file-level directive: this file is only compiled under
        // cfg(test) at its module include site (the linter cannot see
        // that from the file alone), so treat it as test code
        let reason = rest.trim_start().strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            return malformed("`test-only` needs `: reason` naming the cfg(test) include site");
        }
        return Some(Pragma {
            line,
            rules: vec![TEST_ONLY.to_string()],
            reason: reason.to_string(),
            malformed: None,
        });
    }
    let Some(body) = rest.strip_prefix("allow") else {
        return malformed("expected `allow(Dxxx): reason` after the marker");
    };
    let body = body.trim_start();
    let Some(open) = body.strip_prefix('(') else {
        return malformed("expected `(` after `allow`");
    };
    let Some(close) = open.find(')') else {
        return malformed("unclosed rule list");
    };
    let rules: Vec<String> = open[..close]
        .split(',')
        .map(|r| r.trim().to_ascii_uppercase())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return malformed("empty rule list");
    }
    if let Some(bad) = rules.iter().find(|r| !crate::rules::is_known_rule(r)) {
        return Some(Pragma {
            line,
            rules: Vec::new(),
            reason: String::new(),
            malformed: Some(format!("unknown rule `{bad}`")),
        });
    }
    let after = open[close + 1..].trim_start();
    let Some(reason) = after.strip_prefix(':') else {
        return malformed("expected `: reason` after the rule list");
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return malformed("suppression reason is empty — every pragma must say why");
    }
    Some(Pragma {
        line,
        rules,
        reason: reason.to_string(),
        malformed: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_keywords() {
        let src = r##"
            // HashMap in a comment
            /* unwrap() in /* nested */ block */
            let s = "for x in map.iter()";
            let r = r#"unwrap()"#;
            let c = 'u';
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"iter".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> &'a str { x }").toks;
        assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert!(toks.iter().all(|t| t.kind != TokKind::Char));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"line\nline\nline\";\nlet b = 1;";
        let toks = lex(src).toks;
        let b = toks.iter().find(|t| t.text == "b").expect("b token");
        assert_eq!(b.line, 4);
    }

    #[test]
    fn pragma_parses_rules_and_reason() {
        let out = lex("let x = 1; // procsim-lint: allow(D001, d004): maps never iterated\n");
        assert_eq!(out.pragmas.len(), 1);
        let p = &out.pragmas[0];
        assert!(p.malformed.is_none());
        assert_eq!(p.rules, vec!["D001", "D004"]);
        assert_eq!(p.reason, "maps never iterated");
    }

    #[test]
    fn pragma_without_reason_is_malformed() {
        let out = lex("// procsim-lint: allow(D001):\n// procsim-lint: allow(D001)\n");
        assert_eq!(out.pragmas.len(), 2);
        assert!(out.pragmas.iter().all(|p| p.malformed.is_some()));
    }

    #[test]
    fn pragma_with_unknown_rule_is_malformed() {
        let out = lex("// procsim-lint: allow(D999): no such rule\n");
        assert_eq!(out.pragmas.len(), 1);
        assert!(out.pragmas[0].malformed.as_deref().unwrap_or("").contains("D999"));
    }
}
