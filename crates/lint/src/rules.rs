//! The project-specific rule catalogue and the token-stream scanners.
//!
//! Each rule is a lexical heuristic, not a type-checked analysis: the
//! build environment is offline (no `syn`), so the scanners work on the
//! token stream from [`crate::lexer`] plus path-based context. The
//! heuristics are tuned so that every construct they can miss is also a
//! construct this workspace does not use; the fixture tests under
//! `tests/fixtures/` pin the exact behaviour.

use crate::lexer::{Tok, TokKind};

/// Static description of one rule, printed by `--explain`.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule id (`D001`...).
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Multi-paragraph rationale and remediation guidance.
    pub explain: &'static str,
}

/// The rule catalogue. `P001`/`P002` police the pragma mechanism itself
/// so suppressions cannot rot silently.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D001",
        summary: "unordered HashMap/HashSet iteration in simulation code",
        explain: "Iterating a std HashMap or HashSet observes RandomState-seeded \
bucket order, which differs between processes. Any such order that escapes \
into simulation results (scheduling candidate lists, metric accumulation, \
output rows) breaks the bit-identical replay contract that every golden CSV \
and the old-vs-new engine equivalence oracle rely on.\n\n\
Flags `for _ in &map`, `.iter()`, `.iter_mut()`, `.keys()`, `.values()`, \
`.values_mut()`, `.drain()`, `.into_iter()`, `.into_keys()`, `.into_values()` \
and `.retain()` on bindings/fields declared as HashMap/HashSet.\n\n\
Fix: switch the container to BTreeMap/BTreeSet or a sorted Vec index, or \
prove the iteration order cannot escape (e.g. the fold is commutative AND \
exact, like integer addition) and suppress with a written reason.",
    },
    RuleInfo {
        id: "D002",
        summary: "wall-clock or entropy leakage into simulation logic",
        explain: "Simulation state must be a pure function of (config, seed, rep). \
`SystemTime`, `Instant::now`, `thread_rng` and `from_entropy` smuggle the \
host's clock or entropy pool into that function. Timing instrumentation is \
legitimate only in the bench crate and CLI front-ends, which report \
wall-clock to humans without feeding it back into results.\n\n\
Fix: thread a `SimRng` substream or the simulation clock through instead; \
for front-end stopwatch code, keep it in `crates/bench` / a binary target, \
or suppress with a reason explaining why the value cannot reach results.",
    },
    RuleInfo {
        id: "D003",
        summary: "order-sensitive floating-point reduction outside simstats",
        explain: "Float addition is not associative: `.sum::<f64>()` or a float \
`fold` over an unordered or refactoring-sensitive sequence can change the \
last ulp when iteration order changes, which is enough to flip a comparison \
and fork the simulation timeline. The blessed reducers live in `simstats` \
(Welford mean/variance, time-weighted averages) and are documented \
deterministic for a fixed input order.\n\n\
Flags `.sum::<f64>()`, `.sum::<f32>()`, and `.fold(<float literal>, ...)` \
outside `crates/simstats`.\n\n\
Fix: push values through `simstats::Welford`/`TimeWeighted`, or prove the \
source order is deterministic (e.g. a sorted Vec walked front to back) and \
suppress with that proof as the reason.",
    },
    RuleInfo {
        id: "D004",
        summary: "unwrap()/expect() in library code",
        explain: "A panic in library code tears down whole replication batches and \
turns recoverable input problems (malformed trace lines, impossible \
configs) into aborts. Library crates must return Result for fallible \
operations; panics are acceptable only for genuine internal invariants, \
and then must say so.\n\n\
Flags `.unwrap()` and `.expect(...)` in library targets (not tests, \
benches, examples, or binaries).\n\n\
Fix: convert parse/IO-adjacent sites to proper error returns. For true \
invariants, write `expect(\"invariant: ...\")` describing what guarantees \
the value exists, and suppress with the reason restating the guarantee.",
    },
    RuleInfo {
        id: "D005",
        summary: "truncating `as` cast in index/size arithmetic",
        explain: "`len() as u16` silently truncates once the collection outgrows \
the target type, corrupting ranks, packet tags, or mesh coordinates \
without any diagnostic — the failure shows up later as a wrong simulation \
result, not a crash. Flags `as u8/u16/u32/i8/i16/i32` when the casted \
expression mentions a size-ish identifier (len, size, count, idx, index, \
pos, rank, width, length, capacity, offset).\n\n\
Fix: use `try_from(...)` + `expect(\"invariant: ...\")` so overflow panics \
at the cast, or suppress with a reason bounding the value (e.g. \"mesh \
side <= 256 by construction\").",
    },
    RuleInfo {
        id: "P001",
        summary: "malformed suppression pragma",
        explain: "A `procsim-lint:` marker was found but the pragma does not parse \
as `allow(Dxxx[, Dyyy...]): reason` with a non-empty reason and known rule \
ids. A suppression without a written reason is indistinguishable from a \
silenced bug; the linter refuses to honour it.",
    },
    RuleInfo {
        id: "P002",
        summary: "unused suppression pragma",
        explain: "A well-formed pragma suppressed nothing: no finding of the named \
rule exists on its line or the line below. Stale pragmas hide future \
regressions (the rule they name could fire elsewhere on the line after a \
refactor and be wrongly silenced), so they must be deleted when the code \
they excused goes away.",
    },
];

/// Is `id` a rule id this linter knows?
pub fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// Looks up a rule by id.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// The determinism/robustness rules that scan code (excludes P00x).
pub const CODE_RULES: [&str; 5] = ["D001", "D002", "D003", "D004", "D005"];

/// Path-derived context for one file, controlling rule applicability.
#[derive(Debug, Clone, Default)]
pub struct FileCtx {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// `crates/<name>/...` -> `<name>`; `None` for the root facade.
    pub crate_name: Option<String>,
    /// Under a `tests/` directory (integration tests).
    pub in_tests: bool,
    /// Under a `benches/` directory.
    pub in_benches: bool,
    /// Under an `examples/` directory.
    pub in_examples: bool,
    /// A binary target: under `src/bin/` or a `main.rs`.
    pub is_bin: bool,
}

impl FileCtx {
    /// Classifies a workspace-relative path.
    pub fn classify(rel: &str) -> FileCtx {
        let parts: Vec<&str> = rel.split('/').collect();
        let crate_name = if parts.len() >= 2 && parts[0] == "crates" {
            Some(parts[1].to_string())
        } else {
            None
        };
        FileCtx {
            rel: rel.to_string(),
            crate_name,
            in_tests: parts.contains(&"tests"),
            in_benches: parts.contains(&"benches"),
            in_examples: parts.contains(&"examples"),
            is_bin: parts.contains(&"bin") || parts.last() == Some(&"main.rs"),
        }
    }

    /// Any target whose code never feeds simulation results directly:
    /// tests, benches, examples.
    fn is_test_like(&self) -> bool {
        self.in_tests || self.in_benches || self.in_examples
    }

    /// May this file use wall-clock timing (D002's Instant/SystemTime
    /// carve-out)? Bench harness + binary front-ends report elapsed
    /// time to humans; the value never reaches simulation state.
    fn may_use_wall_clock(&self) -> bool {
        self.crate_name.as_deref() == Some("bench") || self.is_bin
    }
}

/// One raw rule hit (before pragma matching / level assignment).
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// Rule id.
    pub rule: &'static str,
    /// 1-based line.
    pub line: u32,
    /// Human message naming the offending construct.
    pub msg: String,
}

/// Marks every token inside `#[cfg(test)]`/`#[test]` items. Returns a
/// per-token mask. The heuristic treats any attribute whose token list
/// contains the identifier `test` as a test gate, then masks the next
/// brace-delimited item.
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text == "#" && i + 1 < toks.len() && toks[i + 1].text == "[" {
            // scan the attribute for `test`
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut is_test_attr = false;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    // `test` marks a test gate unless negated: cfg(not(test))
                    "test"
                        if toks[j].kind == TokKind::Ident
                            && !(j >= 2
                                && toks[j - 1].text == "("
                                && toks[j - 2].text == "not") =>
                    {
                        is_test_attr = true
                    }
                    _ => {}
                }
                j += 1;
            }
            if !is_test_attr {
                i = j + 1;
                continue;
            }
            // skip any further attributes, then mask through the item's
            // closing brace (or to the `;` of a brace-less item)
            let mut k = j + 1;
            while k + 1 < toks.len() && toks[k].text == "#" && toks[k + 1].text == "[" {
                let mut d = 0i32;
                let mut m = k + 1;
                while m < toks.len() {
                    match toks[m].text.as_str() {
                        "[" => d += 1,
                        "]" => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    m += 1;
                }
                k = m + 1;
            }
            let mut brace = 0i32;
            let mut m = k;
            let start = i;
            while m < toks.len() {
                match toks[m].text.as_str() {
                    "{" => brace += 1,
                    "}" => {
                        brace -= 1;
                        if brace == 0 {
                            break;
                        }
                    }
                    ";" if brace == 0 => break,
                    _ => {}
                }
                m += 1;
            }
            for slot in mask.iter_mut().take(m.min(toks.len() - 1) + 1).skip(start) {
                *slot = true;
            }
            i = m + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// Methods whose call on a hash container observes bucket order.
const ORDER_METHODS: [&str; 11] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
    "extract_if",
];

/// Identifier fragments that mark an expression as index/size
/// arithmetic for D005 when casting into a sub-32-bit type (where even
/// a u16 mesh coordinate can truncate).
const SIZE_IDENTS: [&str; 11] = [
    "len", "size", "count", "idx", "index", "pos", "rank", "width", "length", "capacity",
    "offset",
];

/// The subset that (in this workspace) produces usize-width values —
/// collection lengths and counts — and therefore can truncate even
/// into u32/i32. Coordinate-ish names (width, rank, idx...) are u16/u32
/// by construction here, so a cast to u32 from them is widening.
const USIZE_IDENTS: [&str; 4] = ["len", "size", "count", "capacity"];

/// Integer target types a D005 cast may silently truncate into.
const NARROW_INTS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Collects the names of bindings/fields declared with a HashMap or
/// HashSet type in this token stream (via `: ... HashMap<...>`
/// annotations or `= HashMap::new()`-style initialisers).
fn hash_container_names(toks: &[Tok]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // walk backwards over type scaffolding / wrapper idents until a
        // `:` (type annotation) or `=` (initialiser) is found, then take
        // the identifier before it as the declared name
        let mut j = i;
        let mut steps = 0;
        let mut anchor: Option<usize> = None;
        while j > 0 && steps < 24 {
            j -= 1;
            steps += 1;
            match toks[j].text.as_str() {
                ":" | "=" => {
                    anchor = Some(j);
                    break;
                }
                "<" | ">" | "," | "::" | "&" | "(" => continue,
                _ if toks[j].kind == TokKind::Ident || toks[j].kind == TokKind::Lifetime => {
                    continue
                }
                _ => break,
            }
        }
        let Some(a) = anchor else { continue };
        let mut k = a;
        while k > 0 {
            k -= 1;
            let t = &toks[k];
            if t.kind == TokKind::Ident {
                if t.text == "mut" {
                    continue;
                }
                if !names.contains(&t.text) {
                    names.push(t.text.clone());
                }
            }
            break;
        }
    }
    names
}

/// Runs every applicable code rule over one file's token stream.
pub fn scan(ctx: &FileCtx, toks: &[Tok]) -> Vec<RawFinding> {
    let mask = test_mask(toks);
    let mut out: Vec<RawFinding> = Vec::new();
    let test_like = ctx.is_test_like();

    // ---- D001: unordered container iteration ------------------------
    if !test_like {
        let names = hash_container_names(toks);
        for i in 0..toks.len() {
            if mask[i] {
                continue;
            }
            let t = &toks[i];
            // receiver.method(...) where receiver is a known hash container
            if t.kind == TokKind::Ident
                && names.contains(&t.text)
                && i + 3 < toks.len()
                && toks[i + 1].text == "."
                && ORDER_METHODS.contains(&toks[i + 2].text.as_str())
                && toks[i + 3].text == "("
            {
                out.push(RawFinding {
                    rule: "D001",
                    line: toks[i + 2].line,
                    msg: format!(
                        "`{}.{}()` iterates a HashMap/HashSet in RandomState order",
                        t.text, toks[i + 2].text
                    ),
                });
            }
            // for pat in &container { ... }
            if t.kind == TokKind::Ident && t.text == "for" {
                // find the matching `in` within this header
                let mut j = i + 1;
                let mut depth = 0i32;
                while j < toks.len() && j < i + 40 {
                    match toks[j].text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "in" if depth == 0 && toks[j].kind == TokKind::Ident => break,
                        _ => {}
                    }
                    j += 1;
                }
                if j >= toks.len() || toks[j].text != "in" {
                    continue;
                }
                // skip `&`, `mut`, `self`, `.` to reach the iterated name
                let mut k = j + 1;
                while k < toks.len()
                    && (toks[k].text == "&"
                        || toks[k].text == "mut"
                        || toks[k].text == "self"
                        || toks[k].text == ".")
                {
                    k += 1;
                }
                if k + 1 < toks.len()
                    && toks[k].kind == TokKind::Ident
                    && names.contains(&toks[k].text)
                    && toks[k + 1].text == "{"
                {
                    out.push(RawFinding {
                        rule: "D001",
                        line: toks[k].line,
                        msg: format!(
                            "`for .. in &{}` iterates a HashMap/HashSet in RandomState order",
                            toks[k].text
                        ),
                    });
                }
            }
        }
    }

    // ---- D002: wall-clock / entropy leakage -------------------------
    if !test_like {
        for i in 0..toks.len() {
            if mask[i] || toks[i].kind != TokKind::Ident {
                continue;
            }
            match toks[i].text.as_str() {
                "Instant" | "SystemTime" => {
                    if ctx.may_use_wall_clock() {
                        continue;
                    }
                    // flag uses, not mere `use` imports — an import alone
                    // is dead until a call site exists, and the call site
                    // is where the leak happens
                    let used_here = i + 2 < toks.len()
                        && toks[i + 1].text == "::"
                        && toks[i + 2].kind == TokKind::Ident
                        && toks[i + 2].text != "now"; // `now` matched below too
                    let now_call = i + 2 < toks.len()
                        && toks[i + 1].text == "::"
                        && toks[i + 2].text == "now";
                    if now_call || used_here {
                        out.push(RawFinding {
                            rule: "D002",
                            line: toks[i].line,
                            msg: format!(
                                "`{}::{}` leaks host wall-clock into simulation code",
                                toks[i].text, toks[i + 2].text
                            ),
                        });
                    }
                }
                "thread_rng" | "from_entropy" => {
                    out.push(RawFinding {
                        rule: "D002",
                        line: toks[i].line,
                        msg: format!(
                            "`{}` seeds from OS entropy; simulation randomness must come \
                             from the seeded SimRng streams",
                            toks[i].text
                        ),
                    });
                }
                _ => {}
            }
        }
    }

    // ---- D003: order-sensitive float reductions ---------------------
    if !test_like && ctx.crate_name.as_deref() != Some("simstats") {
        for i in 0..toks.len() {
            if mask[i] {
                continue;
            }
            // .sum::<f64>() / .sum::<f32>()
            if toks[i].text == "sum"
                && i >= 1
                && toks[i - 1].text == "."
                && i + 4 < toks.len()
                && toks[i + 1].text == "::"
                && toks[i + 2].text == "<"
                && (toks[i + 3].text == "f64" || toks[i + 3].text == "f32")
            {
                out.push(RawFinding {
                    rule: "D003",
                    line: toks[i].line,
                    msg: format!(
                        "`.sum::<{}>()` is an order-sensitive float reduction; use the \
                         simstats reducers or prove the input order is deterministic",
                        toks[i + 3].text
                    ),
                });
            }
            // .fold(<float literal>, ...)
            if toks[i].text == "fold"
                && i >= 1
                && toks[i - 1].text == "."
                && i + 2 < toks.len()
                && toks[i + 1].text == "("
                && toks[i + 2].kind == TokKind::Number
                && is_float_literal(&toks[i + 2].text)
            {
                out.push(RawFinding {
                    rule: "D003",
                    line: toks[i].line,
                    msg: "float `.fold(..)` is an order-sensitive reduction; use the \
                          simstats reducers or prove the input order is deterministic"
                        .to_string(),
                });
            }
        }
    }

    // ---- D004: unwrap/expect in library code ------------------------
    if !test_like && !ctx.is_bin {
        for i in 0..toks.len() {
            if mask[i] {
                continue;
            }
            if toks[i].kind == TokKind::Ident
                && (toks[i].text == "unwrap" || toks[i].text == "expect")
                && i >= 1
                && toks[i - 1].text == "."
                && i + 1 < toks.len()
                && toks[i + 1].text == "("
            {
                out.push(RawFinding {
                    rule: "D004",
                    line: toks[i].line,
                    msg: format!(
                        "`.{}(..)` in library code panics instead of returning an error",
                        toks[i].text
                    ),
                });
            }
        }
    }

    // ---- D005: truncating casts in index/size arithmetic ------------
    if !test_like {
        for i in 0..toks.len() {
            if mask[i] {
                continue;
            }
            if !(toks[i].kind == TokKind::Ident && toks[i].text == "as") {
                continue;
            }
            let Some(target) = toks.get(i + 1) else { continue };
            if !(target.kind == TokKind::Ident && NARROW_INTS.contains(&target.text.as_str())) {
                continue;
            }
            // look back through the casted expression for a size-ish
            // name; 32-bit targets only truncate usize-width sources
            let idents: &[&str] = if target.text == "u32" || target.text == "i32" {
                &USIZE_IDENTS
            } else {
                &SIZE_IDENTS
            };
            let mut j = i;
            let mut steps = 0;
            let mut hit: Option<String> = None;
            while j > 0 && steps < 10 {
                j -= 1;
                steps += 1;
                let t = &toks[j];
                if matches!(t.text.as_str(), ";" | "{" | "}" | "," | "=" | "->") {
                    break;
                }
                if t.kind == TokKind::Ident
                    && idents.iter().any(|s| {
                        let lower = t.text.to_ascii_lowercase();
                        lower == *s || lower.ends_with(&format!("_{s}"))
                    })
                {
                    hit = Some(t.text.clone());
                    break;
                }
            }
            if let Some(name) = hit {
                out.push(RawFinding {
                    rule: "D005",
                    line: toks[i].line,
                    msg: format!(
                        "`{} .. as {}` may silently truncate index/size arithmetic; \
                         use try_from or bound the value in a suppression reason",
                        name, target.text
                    ),
                });
            }
        }
    }

    out.sort_by_key(|f| (f.line, f.rule));
    out
}

/// Is this number token a float literal (fractional part, exponent, or
/// an explicit fXX suffix)?
fn is_float_literal(text: &str) -> bool {
    text.contains('.') || text.ends_with("f64") || text.ends_with("f32")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan_lib(src: &str) -> Vec<RawFinding> {
        let ctx = FileCtx::classify("crates/core/src/example.rs");
        scan(&ctx, &lex(src).toks)
    }

    #[test]
    fn hash_names_found_in_fields_and_lets() {
        let src = "struct S { live: HashMap<u64, V>, cache: Mutex<HashMap<K, V>> }\n\
                   fn f() { let mut seen = HashSet::new(); let x: HashMap<A, B> = d; }";
        let names = hash_container_names(&lex(src).toks);
        assert!(names.contains(&"live".to_string()));
        assert!(names.contains(&"cache".to_string()));
        assert!(names.contains(&"seen".to_string()));
        assert!(names.contains(&"x".to_string()));
    }

    #[test]
    fn d001_flags_iteration_not_lookup() {
        let hits = scan_lib(
            "struct S { live: HashMap<u64, V> }\n\
             impl S { fn f(&self) { for v in self.live.values() { use_(v); } \
             let x = self.live.get(&3); } }",
        );
        assert_eq!(hits.iter().filter(|f| f.rule == "D001").count(), 1);
    }

    #[test]
    fn d005_requires_size_context() {
        let hits = scan_lib("fn f(v: &[u8]) { let a = v.len() as u32; let b = FLAG as u32; }");
        let d5: Vec<_> = hits.iter().filter(|f| f.rule == "D005").collect();
        assert_eq!(d5.len(), 1, "{d5:?}");
    }

    #[test]
    fn test_mask_hides_cfg_test_mod() {
        let src = "fn lib() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }";
        let hits = scan_lib(src);
        assert_eq!(hits.iter().filter(|f| f.rule == "D004").count(), 1);
    }
}
