//! # procsim-lint — workspace determinism & robustness static analysis
//!
//! The whole reproduction rests on a determinism contract: bit-identical
//! replay of every figure, golden CSV, and equivalence oracle at any
//! thread count. This crate enforces the project-specific rules that the
//! compiler cannot — unordered `HashMap`/`HashSet` iteration (D001),
//! wall-clock/entropy leakage (D002), order-sensitive float reductions
//! (D003), library panics (D004), and truncating index casts (D005) —
//! with a registry-free lexical analysis (no `syn`; the build
//! environment is offline).
//!
//! Findings are suppressible only via an inline pragma that carries a
//! written reason:
//!
//! ```text
//! let x = map.get(&k); // procsim-lint: allow(D001): lookup, not iteration
//! ```
//!
//! The pragma applies to findings on its own line or up to three lines
//! below (full-line comments above a statement that rustfmt may wrap).
//! Malformed pragmas (P001) and pragmas that suppress nothing (P002)
//! are themselves findings, so the suppression inventory cannot rot.
//! See `docs/LINTS.md` for the catalogue and protocol.

pub mod lexer;
pub mod rules;

use lexer::TEST_ONLY;
use rules::{FileCtx, RuleInfo, CODE_RULES, RULES};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Severity assigned to a rule for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Reported; fails the run (non-zero exit).
    Deny,
    /// Reported; does not fail the run.
    Warn,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Level::Deny => "deny",
            Level::Warn => "warn",
        })
    }
}

/// One reported finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (`D001`..., `P001`/`P002`).
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
    /// Severity under the run's configuration.
    pub level: Level,
}

/// One honoured suppression (recorded and reported, never silent).
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rule id suppressed.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the suppressed finding.
    pub line: u32,
    /// The pragma's written justification.
    pub reason: String,
}

/// Outcome of linting a file set.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that were not suppressed, in (path, line) order.
    pub findings: Vec<Finding>,
    /// Suppressions that matched a finding.
    pub suppressions: Vec<Suppression>,
    /// Number of files scanned.
    pub files: usize,
}

impl Report {
    /// Findings at deny level.
    pub fn denied(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.level == Level::Deny)
    }

    /// Does the report fail the run?
    pub fn is_failure(&self) -> bool {
        self.denied().next().is_some()
    }
}

/// Run configuration: per-rule levels plus the workspace root.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root directory.
    pub root: PathBuf,
    /// Per-rule severity; rules absent from the map use `default_level`.
    pub levels: BTreeMap<String, Level>,
    /// Level for rules not explicitly configured.
    pub default_level: Level,
}

impl Config {
    /// Strict default: everything denied, rooted at `root`.
    pub fn deny_all(root: impl Into<PathBuf>) -> Config {
        Config {
            root: root.into(),
            levels: BTreeMap::new(),
            default_level: Level::Deny,
        }
    }

    /// The effective level for `rule`.
    pub fn level(&self, rule: &str) -> Level {
        self.levels.get(rule).copied().unwrap_or(self.default_level)
    }
}

/// Directories never scanned: build output, VCS, vendored registry
/// stand-ins (third-party API surface, not project code), generated
/// results, prose, and the linter's own intentionally-dirty fixtures.
const SKIP_DIRS: [&str; 6] = ["target", ".git", "shims", "results", "docs", "fixtures"];

/// Error walking or reading the tree.
#[derive(Debug)]
pub struct LintError {
    /// What failed.
    pub msg: String,
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for LintError {}

/// Lints every workspace `.rs` file under `cfg.root`.
pub fn lint_workspace(cfg: &Config) -> Result<Report, LintError> {
    let mut files = Vec::new();
    collect_rs_files(&cfg.root, &mut files)?;
    files.sort();
    let mut report = Report::default();
    for path in &files {
        let rel = path
            .strip_prefix(&cfg.root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(path)
            .map_err(|e| LintError { msg: format!("read {}: {e}", path.display()) })?;
        lint_source_into(cfg, &rel, &src, &mut report);
    }
    Ok(report)
}

/// Lints a single source text as if it lived at workspace-relative
/// `rel` (drives rule applicability). Used by the fixture tests.
pub fn lint_source(cfg: &Config, rel: &str, src: &str) -> Report {
    let mut report = Report::default();
    lint_source_into(cfg, rel, src, &mut report);
    report
}

fn lint_source_into(cfg: &Config, rel: &str, src: &str, report: &mut Report) {
    report.files += 1;
    let lexed = lexer::lex(src);
    let mut ctx = FileCtx::classify(rel);

    // honour the file-level `test-only` directive
    let test_only = lexed
        .pragmas
        .iter()
        .any(|p| p.malformed.is_none() && p.rules.iter().any(|r| r == TEST_ONLY));
    if test_only {
        ctx.in_tests = true;
    }

    // malformed pragmas are always findings
    for p in &lexed.pragmas {
        if let Some(why) = &p.malformed {
            report.findings.push(Finding {
                rule: "P001".into(),
                path: rel.into(),
                line: p.line,
                msg: format!("malformed pragma: {why}"),
                level: cfg.level("P001"),
            });
        }
    }

    let raw = rules::scan(&ctx, &lexed.toks);

    // pragma matching: a pragma on line L covers findings on L (trailing
    // comment) or L+1..=L+3 (comment line above a statement that rustfmt
    // may wrap across lines)
    let mut used = vec![false; lexed.pragmas.len()];
    for f in raw {
        // the *closest* covering pragma claims the finding, so stacked
        // pragmas on adjacent lines each bind to their own statement
        let best = lexed
            .pragmas
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                p.malformed.is_none()
                    && p.line <= f.line
                    && f.line <= p.line + 3
                    && p.rules.iter().any(|r| r == f.rule)
            })
            .max_by_key(|(_, p)| p.line);
        if let Some((pi, p)) = best {
            used[pi] = true;
            report.suppressions.push(Suppression {
                rule: f.rule.into(),
                path: rel.into(),
                line: f.line,
                reason: p.reason.clone(),
            });
        } else {
            report.findings.push(Finding {
                rule: f.rule.into(),
                path: rel.into(),
                line: f.line,
                msg: f.msg,
                level: cfg.level(f.rule),
            });
        }
    }

    // well-formed pragmas that suppressed nothing are stale (P002);
    // the test-only directive is exempt (it acts file-wide)
    for (pi, p) in lexed.pragmas.iter().enumerate() {
        if p.malformed.is_none() && !used[pi] && !p.rules.iter().any(|r| r == TEST_ONLY) {
            report.findings.push(Finding {
                rule: "P002".into(),
                path: rel.into(),
                line: p.line,
                msg: format!(
                    "pragma allow({}) suppressed nothing; delete it or move it to the \
                     offending line",
                    p.rules.join(", ")
                ),
                level: cfg.level("P002"),
            });
        }
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| LintError { msg: format!("read_dir {}: {e}", dir.display()) })?;
    for entry in entries {
        let entry = entry.map_err(|e| LintError { msg: format!("walk {}: {e}", dir.display()) })?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Renders the catalogue entry for `rule`, or a list of known rules.
pub fn explain(rule: &str) -> Option<String> {
    rules::rule_info(rule).map(|r: &RuleInfo| {
        format!("{} — {}\n\n{}\n", r.id, r.summary, r.explain)
    })
}

/// One line per rule: id and summary.
pub fn rule_list() -> String {
    let mut s = String::new();
    for r in RULES {
        s.push_str(&format!("{}  {}\n", r.id, r.summary));
    }
    s
}

/// Serializes a report as JSON (hand-rolled: the offline environment
/// has no serde_json).
pub fn to_json(report: &Report) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut s = String::from("{\n  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"level\": \"{}\", \
             \"message\": \"{}\"}}{}\n",
            esc(&f.rule),
            esc(&f.path),
            f.line,
            f.level,
            esc(&f.msg),
            if i + 1 < report.findings.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n  \"suppressions\": [\n");
    for (i, sp) in report.suppressions.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}{}\n",
            esc(&sp.rule),
            esc(&sp.path),
            sp.line,
            esc(&sp.reason),
            if i + 1 < report.suppressions.len() { "," } else { "" }
        ));
    }
    s.push_str(&format!(
        "  ],\n  \"files\": {},\n  \"denied\": {}\n}}\n",
        report.files,
        report.denied().count()
    ));
    s
}

/// Verifies that `CODE_RULES` and the catalogue agree (used by tests).
pub fn catalogue_is_consistent() -> bool {
    CODE_RULES.iter().all(|r| rules::is_known_rule(r))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::deny_all("/nonexistent")
    }

    #[test]
    fn pragma_suppresses_same_line_and_next_line() {
        let src = "fn f(m: &M) { let x = q.unwrap(); } // procsim-lint: allow(D004): invariant: q is seeded in new()\n\
                   // procsim-lint: allow(D004): invariant: r always present\n\
                   fn g() { let y = r.unwrap(); }\n";
        let rep = lint_source(&cfg(), "crates/core/src/x.rs", src);
        assert_eq!(rep.findings.len(), 0, "{:?}", rep.findings);
        assert_eq!(rep.suppressions.len(), 2);
    }

    #[test]
    fn unused_pragma_is_p002() {
        let src = "// procsim-lint: allow(D001): nothing here\nfn f() {}\n";
        let rep = lint_source(&cfg(), "crates/core/src/x.rs", src);
        assert_eq!(rep.findings.len(), 1);
        assert_eq!(rep.findings[0].rule, "P002");
    }

    #[test]
    fn malformed_pragma_is_p001_and_does_not_suppress() {
        let src = "fn f() { let x = q.unwrap(); } // procsim-lint: allow(D004)\n";
        let rep = lint_source(&cfg(), "crates/core/src/x.rs", src);
        let rules: Vec<&str> = rep.findings.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules.contains(&"P001"), "{rules:?}");
        assert!(rules.contains(&"D004"), "{rules:?}");
    }

    #[test]
    fn test_only_directive_downgrades_file() {
        let src = "// procsim-lint: test-only: included via `#[cfg(test)] pub mod x` in lib.rs\n\
                   fn f() { let x = q.unwrap(); }\n";
        let rep = lint_source(&cfg(), "crates/wormnet/src/reference.rs", src);
        assert!(rep.findings.is_empty(), "{:?}", rep.findings);
    }

    #[test]
    fn warn_level_does_not_fail() {
        let mut c = cfg();
        c.levels.insert("D004".into(), Level::Warn);
        let rep = lint_source(&c, "crates/core/src/x.rs", "fn f() { q.unwrap(); }");
        assert_eq!(rep.findings.len(), 1);
        assert!(!rep.is_failure());
    }

    #[test]
    fn catalogue_consistent() {
        assert!(catalogue_is_consistent());
        assert!(explain("D001").is_some());
        assert!(explain("D999").is_none());
    }
}
