//! Fixture-driven rule tests plus the meta-test that the live workspace
//! itself lints clean under `--deny all`.
//!
//! Each fixture under `tests/fixtures/` is lexed and scanned through
//! [`procsim_lint::lint_source`] with a synthetic library path, so the
//! classifier treats it exactly like shipping crate code. The fixtures
//! directory is in the walker's skip list, so the workspace meta-test
//! does not lint the deliberately-dirty files.

use procsim_lint::{lint_source, lint_workspace, Config};

fn fixture(name: &str) -> String {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
    std::fs::read_to_string(format!("{dir}/{name}"))
        .unwrap_or_else(|e| panic!("fixture {name}: {e}"))
}

/// Lint a fixture as if it lived in a shipping library crate.
fn lint(name: &str) -> procsim_lint::Report {
    let cfg = Config::deny_all("/nonexistent");
    lint_source(&cfg, &format!("crates/core/src/{name}"), &fixture(name))
}

fn rules_of(rep: &procsim_lint::Report) -> Vec<&str> {
    rep.findings.iter().map(|f| f.rule.as_str()).collect()
}

#[test]
fn d001_triggers_on_hash_iteration() {
    let rep = lint("d001_trigger.rs");
    let rules = rules_of(&rep);
    assert_eq!(rules, ["D001", "D001"], "{:?}", rep.findings);
}

#[test]
fn d001_ignores_keyed_access_and_btreemap() {
    let rep = lint("d001_clean.rs");
    assert!(rep.findings.is_empty(), "{:?}", rep.findings);
}

#[test]
fn d001_suppression_is_recorded_with_reason() {
    let rep = lint("d001_suppressed.rs");
    assert!(rep.findings.is_empty(), "{:?}", rep.findings);
    assert_eq!(rep.suppressions.len(), 1);
    assert!(rep.suppressions[0].reason.contains("order-insensitive"));
}

#[test]
fn d002_triggers_on_wall_clock() {
    let rep = lint("d002_trigger.rs");
    let rules = rules_of(&rep);
    assert_eq!(rules, ["D002", "D002"], "{:?}", rep.findings);
}

#[test]
fn d002_allows_wall_clock_in_bench_crates() {
    let cfg = Config::deny_all("/nonexistent");
    let rep = lint_source(
        &cfg,
        "crates/bench/src/lib.rs",
        &fixture("d002_trigger.rs"),
    );
    assert!(rep.findings.is_empty(), "{:?}", rep.findings);
}

#[test]
fn d002_ignores_seeded_generators() {
    let rep = lint("d002_clean.rs");
    assert!(rep.findings.is_empty(), "{:?}", rep.findings);
}

#[test]
fn d003_triggers_on_float_sum() {
    let rep = lint("d003_trigger.rs");
    assert_eq!(rules_of(&rep), ["D003"], "{:?}", rep.findings);
}

#[test]
fn d003_ignores_integer_sum() {
    let rep = lint("d003_clean.rs");
    assert!(rep.findings.is_empty(), "{:?}", rep.findings);
}

#[test]
fn d004_triggers_on_library_unwrap_and_expect() {
    let rep = lint("d004_trigger.rs");
    assert_eq!(rules_of(&rep), ["D004", "D004"], "{:?}", rep.findings);
}

#[test]
fn d004_ignores_test_code() {
    let rep = lint("d004_clean_test.rs");
    assert!(rep.findings.is_empty(), "{:?}", rep.findings);
}

#[test]
fn d004_ignores_bin_code() {
    let cfg = Config::deny_all("/nonexistent");
    let rep = lint_source(
        &cfg,
        "crates/core/src/bin/tool.rs",
        &fixture("d004_trigger.rs"),
    );
    assert!(rep.findings.is_empty(), "{:?}", rep.findings);
}

#[test]
fn d005_triggers_on_truncating_size_casts() {
    let rep = lint("d005_trigger.rs");
    assert_eq!(rules_of(&rep), ["D005", "D005"], "{:?}", rep.findings);
}

#[test]
fn d005_ignores_widening_and_non_size_casts() {
    let rep = lint("d005_clean.rs");
    assert!(rep.findings.is_empty(), "{:?}", rep.findings);
}

#[test]
fn p001_malformed_pragma_does_not_suppress() {
    let rep = lint("p001_malformed.rs");
    let mut rules = rules_of(&rep);
    rules.sort();
    // the D004 it failed to suppress is still reported
    assert_eq!(rules, ["D004", "P001"], "{:?}", rep.findings);
    assert!(rep.suppressions.is_empty());
}

#[test]
fn p002_stale_pragma_is_reported() {
    let rep = lint("p002_stale.rs");
    assert_eq!(rules_of(&rep), ["P002"], "{:?}", rep.findings);
}

/// The meta-test: the shipping workspace must lint clean under the same
/// `--deny all` configuration CI runs, and every suppression must carry
/// a written reason.
#[test]
fn live_workspace_is_clean_under_deny_all() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let rep = lint_workspace(&Config::deny_all(root)).expect("workspace walk");
    assert!(rep.files > 0, "walker found no files");
    let denied: Vec<_> = rep.denied().collect();
    assert!(denied.is_empty(), "workspace has lint findings: {denied:#?}");
    for s in &rep.suppressions {
        assert!(
            !s.reason.trim().is_empty(),
            "suppression without reason at {}:{}",
            s.path,
            s.line
        );
    }
}

#[test]
fn catalogue_and_json_are_consistent() {
    assert!(procsim_lint::catalogue_is_consistent());
    let rep = lint("d003_trigger.rs");
    let json = procsim_lint::to_json(&rep);
    assert!(json.contains("\"rule\": \"D003\""), "{json}");
}
