// D004 fixture (clean): unwrap inside test code is fine.
pub fn double(x: u32) -> u32 {
    x * 2
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_ok() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
