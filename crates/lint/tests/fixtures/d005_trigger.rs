// D005 fixture: truncating casts in size arithmetic.
pub fn narrow(xs: &[u8]) -> u32 {
    xs.len() as u32
}

pub fn coord(width: usize) -> u16 {
    width as u16
}
