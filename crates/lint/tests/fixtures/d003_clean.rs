// D003 fixture (clean): integer reductions are exact in any order.
pub fn total(xs: &[u64]) -> u64 {
    xs.iter().sum::<u64>()
}
