// D002 fixture (clean): a seeded counter-based generator, no OS entropy.
pub struct SimRng(u64);

impl SimRng {
    pub fn new(seed: u64) -> Self {
        SimRng(seed)
    }
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
        self.0
    }
}
