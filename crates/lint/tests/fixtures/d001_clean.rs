// D001 fixture (clean): keyed access only — order never observed.
use std::collections::HashMap;

pub fn lookup(map: &mut HashMap<u64, f64>, k: u64) -> f64 {
    map.insert(k + 1, 0.0);
    map.remove(&(k + 2));
    *map.entry(k).or_insert(1.0)
}

pub fn sorted(tree: &std::collections::BTreeMap<u64, f64>) -> Vec<f64> {
    tree.values().copied().collect()
}
