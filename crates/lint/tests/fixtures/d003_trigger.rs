// D003 fixture: order-sensitive float reduction.
pub fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}
