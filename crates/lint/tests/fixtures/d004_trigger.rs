// D004 fixture: unwrap/expect in library code.
pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn last(xs: &[u32]) -> u32 {
    *xs.last().expect("non-empty")
}
