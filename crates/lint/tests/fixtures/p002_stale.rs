// P002 fixture: a pragma that suppresses nothing is itself a finding.
pub fn double(x: u32) -> u32 {
    // procsim-lint: allow(D004): nothing here ever panicked
    x * 2
}
