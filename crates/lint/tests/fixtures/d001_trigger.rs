// D001 fixture: iterating a HashMap leaks RandomState order.
use std::collections::HashMap;

pub fn total(map: &HashMap<u64, f64>) -> f64 {
    let mut acc = 0.0;
    for (_k, v) in map.iter() {
        acc += v;
    }
    acc
}

pub fn names(set: &std::collections::HashSet<String>) -> Vec<String> {
    set.iter().cloned().collect()
}
