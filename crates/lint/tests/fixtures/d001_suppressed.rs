// D001 fixture (suppressed): iteration order provably cannot escape.
use std::collections::HashMap;

pub fn count(map: &HashMap<u64, f64>) -> usize {
    // procsim-lint: allow(D001): the closure is order-insensitive (pure count)
    map.iter().count()
}
