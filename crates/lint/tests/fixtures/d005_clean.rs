// D005 fixture (clean): widening casts and non-size idents.
pub fn widen(xs: &[u8]) -> u64 {
    xs.len() as u64
}

pub fn promote(width: u16) -> u32 {
    width as u32
}

pub fn flags(mask: u64) -> u8 {
    (mask & 0xff) as u8
}
