// D002 fixture: wall-clock and OS entropy in library code.
use std::time::{Instant, SystemTime};

pub fn stamp() -> u64 {
    let t = SystemTime::now();
    let i = Instant::now();
    let _ = (t, i);
    0
}
