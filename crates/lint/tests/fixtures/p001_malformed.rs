// P001 fixture: pragma without a written reason is malformed and
// suppresses nothing.
pub fn first(xs: &[u32]) -> u32 {
    // procsim-lint: allow(D004)
    *xs.first().unwrap()
}
