//! Property-based tests for the geometric substrate.

use mesh2d::{
    decompose_pow2_squares, find_free_submesh, largest_free_rect, Coord, Mesh,
    PageGrid, PageIndexing, SubMesh,
};
use proptest::prelude::*;

fn arb_mesh_dims() -> impl Strategy<Value = (u16, u16)> {
    (1u16..24, 1u16..24)
}

/// A mesh plus a pseudo-random occupancy pattern.
fn arb_occupied_mesh() -> impl Strategy<Value = Mesh> {
    (arb_mesh_dims(), any::<u64>()).prop_map(|((w, l), seed)| {
        let mut m = Mesh::new(w, l);
        let mut s = seed | 1;
        for y in 0..l {
            for x in 0..w {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if (s >> 60) & 1 == 1 {
                    m.occupy(Coord::new(x, y));
                }
            }
        }
        m
    })
}

proptest! {
    #[test]
    fn occupy_release_restores_state(dims in arb_mesh_dims(), bx in 0u16..24, by in 0u16..24, w in 1u16..8, l in 1u16..8) {
        let (mw, ml) = dims;
        let mut m = Mesh::new(mw, ml);
        // clamp the request into the mesh so every case is exercised
        let w = w.min(mw);
        let l = l.min(ml);
        let bx = bx % (mw - w + 1);
        let by = by % (ml - l + 1);
        let s = SubMesh::from_base_size(Coord::new(bx, by), w, l);
        let before = m.free_count();
        m.occupy_submesh(&s);
        prop_assert_eq!(m.free_count(), before - s.size());
        m.release_submesh(&s);
        prop_assert_eq!(m.free_count(), before);
        prop_assert!(m.submesh_free(&s));
    }

    #[test]
    fn found_submesh_is_free_and_first(m in arb_occupied_mesh(), w in 1u16..8, l in 1u16..8) {
        if let Some(s) = find_free_submesh(&m, w, l) {
            prop_assert!(m.submesh_free(&s));
            prop_assert_eq!((s.width(), s.length()), (w, l));
            // no earlier base in row-major order also fits
            'outer: for y in 0..=m.length().saturating_sub(l) {
                for x in 0..=m.width().saturating_sub(w) {
                    if (y, x) >= (s.base.y, s.base.x) { break 'outer; }
                    let earlier = SubMesh::from_base_size(Coord::new(x, y), w, l);
                    prop_assert!(!m.submesh_free(&earlier), "earlier fit at {}", earlier);
                }
            }
        } else if w <= m.width() && l <= m.length() {
            // verify absence by brute force
            for y in 0..=(m.length() - l) {
                for x in 0..=(m.width() - w) {
                    let cand = SubMesh::from_base_size(Coord::new(x, y), w, l);
                    prop_assert!(!m.submesh_free(&cand));
                }
            }
        }
    }

    #[test]
    fn largest_rect_is_free_maximal(m in arb_occupied_mesh(), cw in 1u16..10, cl in 1u16..10) {
        match largest_free_rect(&m, cw, cl) {
            Some(s) => {
                prop_assert!(m.submesh_free(&s));
                prop_assert!(s.width() <= cw && s.length() <= cl);
                // brute-force maximality
                let mut best = 0u32;
                for y0 in 0..m.length() {
                    for x0 in 0..m.width() {
                        for h in 1..=cl.min(m.length() - y0) {
                            for w in 1..=cw.min(m.width() - x0) {
                                let cand = SubMesh::from_base_size(Coord::new(x0, y0), w, h);
                                if m.submesh_free(&cand) {
                                    best = best.max(cand.size());
                                }
                            }
                        }
                    }
                }
                prop_assert_eq!(s.size(), best);
            }
            None => prop_assert_eq!(m.free_count(), 0),
        }
    }

    #[test]
    fn buddy_decomposition_tiles_exactly(dims in arb_mesh_dims()) {
        let (w, l) = dims;
        let squares = decompose_pow2_squares(w, l);
        let total: u32 = squares.iter().map(|s| s.size()).sum();
        prop_assert_eq!(total, w as u32 * l as u32);
        let mut cover = vec![false; w as usize * l as usize];
        for s in &squares {
            prop_assert!(s.width() == s.length() && s.width().is_power_of_two());
            for c in s.iter() {
                let i = c.y as usize * w as usize + c.x as usize;
                prop_assert!(!cover[i], "overlap at {}", c);
                cover[i] = true;
            }
        }
    }

    #[test]
    fn page_grids_tile_exactly(dims in arb_mesh_dims(), k in 0u8..3, scheme_i in 0usize..4) {
        let (w, l) = dims;
        let side = 1u16 << k;
        prop_assume!(side <= w && side <= l);
        let g = PageGrid::new(w, l, k, PageIndexing::ALL[scheme_i]);
        let total: u32 = g.pages().iter().map(|p| p.size()).sum();
        prop_assert_eq!(total, w as u32 * l as u32);
        let mut cover = vec![false; w as usize * l as usize];
        for p in g.pages() {
            for c in p.iter() {
                let i = c.y as usize * w as usize + c.x as usize;
                prop_assert!(!cover[i]);
                cover[i] = true;
            }
        }
    }

    #[test]
    fn manhattan_triangle_inequality(ax in 0u16..32, ay in 0u16..32, bx in 0u16..32, by in 0u16..32, cx in 0u16..32, cy in 0u16..32) {
        let a = Coord::new(ax, ay);
        let b = Coord::new(bx, by);
        let c = Coord::new(cx, cy);
        prop_assert!(a.manhattan(&c) <= a.manhattan(&b) + b.manhattan(&c));
    }
}
