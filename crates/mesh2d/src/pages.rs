//! Page grids and indexing schemes for the Paging strategy.
//!
//! Paging (paper §3, after Lo et al.) divides the mesh into pages — square
//! sub-meshes of side `2^size_index` — and allocates whole pages in a fixed
//! index order. Four indexing schemes are defined: row-major, shuffled
//! row-major, snake-like, and shuffled snake-like. The paper's experiments
//! use row-major only (the choice "has only a slight impact"); we implement
//! all four and probe that claim in an ablation bench.
//!
//! When the mesh dimensions are not multiples of the page side, boundary
//! pages are clipped to the mesh: they simply contain fewer processors.

use crate::coord::Coord;
use crate::submesh::SubMesh;
use serde::{Deserialize, Serialize};

/// Page visiting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageIndexing {
    /// Pages ordered left-to-right within rows, rows bottom-up.
    RowMajor,
    /// Row-major within rows, but page-rows visited in bit-reversed
    /// (perfect shuffle) order, dispersing consecutive pages vertically.
    ShuffledRowMajor,
    /// Boustrophedon: rows alternate left-to-right / right-to-left, so
    /// consecutive pages stay physically adjacent across row boundaries.
    SnakeLike,
    /// Snake-like rows visited in bit-reversed order.
    ShuffledSnakeLike,
}

impl PageIndexing {
    /// All four schemes, for sweeps.
    pub const ALL: [PageIndexing; 4] = [
        PageIndexing::RowMajor,
        PageIndexing::ShuffledRowMajor,
        PageIndexing::SnakeLike,
        PageIndexing::ShuffledSnakeLike,
    ];
}

impl core::fmt::Display for PageIndexing {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            PageIndexing::RowMajor => "row-major",
            PageIndexing::ShuffledRowMajor => "shuffled-row-major",
            PageIndexing::SnakeLike => "snake-like",
            PageIndexing::ShuffledSnakeLike => "shuffled-snake-like",
        };
        f.write_str(s)
    }
}

/// The pages of a mesh, stored in allocation (index) order.
#[derive(Debug, Clone)]
pub struct PageGrid {
    side: u16,
    pages_x: u16,
    pages_y: u16,
    indexing: PageIndexing,
    pages: Vec<SubMesh>,
}

/// Bit-reversal of `i` within `ceil_log2(n)` bits, skipping values >= n.
/// Produces a permutation of `0..n` that interleaves low and high indices.
fn bit_reversed_order(n: u16) -> Vec<u16> {
    if n <= 1 {
        return (0..n).collect();
    }
    let bits = 16 - (n - 1).leading_zeros();
    let mut order: Vec<u16> = Vec::with_capacity(n as usize);
    for i in 0..(1u32 << bits) {
        let mut r = 0u32;
        for b in 0..bits {
            if i & (1 << b) != 0 {
                r |= 1 << (bits - 1 - b);
            }
        }
        if r < n as u32 {
            order.push(r as u16);
        }
    }
    order
}

impl PageGrid {
    /// Builds the page grid of a `mesh_w × mesh_l` mesh with pages of side
    /// `2^size_index`, ordered by `indexing`.
    ///
    /// # Panics
    /// Panics if the page side exceeds either mesh dimension.
    pub fn new(mesh_w: u16, mesh_l: u16, size_index: u8, indexing: PageIndexing) -> Self {
        let side = 1u16
            .checked_shl(size_index as u32)
            // procsim-lint: allow(D004): documented panic on invalid configuration (see `# Panics` above); not a recoverable state
            .expect("page side overflows u16");
        assert!(
            side <= mesh_w && side <= mesh_l,
            "page side {side} exceeds mesh {mesh_w}x{mesh_l}"
        );
        let pages_x = mesh_w.div_ceil(side);
        let pages_y = mesh_l.div_ceil(side);

        let row_order = match indexing {
            PageIndexing::RowMajor | PageIndexing::SnakeLike => (0..pages_y).collect::<Vec<_>>(),
            PageIndexing::ShuffledRowMajor | PageIndexing::ShuffledSnakeLike => {
                bit_reversed_order(pages_y)
            }
        };
        let snake = matches!(
            indexing,
            PageIndexing::SnakeLike | PageIndexing::ShuffledSnakeLike
        );

        let mut pages = Vec::with_capacity(pages_x as usize * pages_y as usize);
        for (visit_rank, &py) in row_order.iter().enumerate() {
            let reversed = snake && visit_rank % 2 == 1;
            let xs: Vec<u16> = if reversed {
                (0..pages_x).rev().collect()
            } else {
                (0..pages_x).collect()
            };
            for px in xs {
                let bx = px * side;
                let by = py * side;
                let w = side.min(mesh_w - bx);
                let l = side.min(mesh_l - by);
                pages.push(SubMesh::from_base_size(Coord::new(bx, by), w, l));
            }
        }
        PageGrid {
            side,
            pages_x,
            pages_y,
            indexing,
            pages,
        }
    }

    /// Pages in index (allocation) order.
    #[inline]
    pub fn pages(&self) -> &[SubMesh] {
        &self.pages
    }

    /// Page side length `2^size_index`.
    #[inline]
    pub fn page_side(&self) -> u16 {
        self.side
    }

    /// Number of pages.
    #[inline]
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Pages per mesh row / column.
    #[inline]
    pub fn dims(&self) -> (u16, u16) {
        (self.pages_x, self.pages_y)
    }

    /// The indexing scheme this grid was built with.
    #[inline]
    pub fn indexing(&self) -> PageIndexing {
        self.indexing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn assert_cover(grid: &PageGrid, w: u16, l: u16) {
        let mut seen = HashSet::new();
        for p in grid.pages() {
            for c in p.iter() {
                assert!(c.x < w && c.y < l, "{c} outside {w}x{l}");
                assert!(seen.insert(c), "page overlap at {c}");
            }
        }
        assert_eq!(seen.len(), w as usize * l as usize);
    }

    #[test]
    fn paging0_is_one_processor_pages() {
        let g = PageGrid::new(16, 22, 0, PageIndexing::RowMajor);
        assert_eq!(g.page_side(), 1);
        assert_eq!(g.page_count(), 352);
        assert_cover(&g, 16, 22);
        // row-major order: first page (0,0), second (1,0)
        assert_eq!(g.pages()[0].base, Coord::new(0, 0));
        assert_eq!(g.pages()[1].base, Coord::new(1, 0));
        assert_eq!(g.pages()[16].base, Coord::new(0, 1));
    }

    #[test]
    fn paging2_pages_are_4x4_when_divisible() {
        // Paging(2) means 4x4 pages (paper §3).
        let g = PageGrid::new(16, 16, 2, PageIndexing::RowMajor);
        assert_eq!(g.page_side(), 4);
        assert_eq!(g.page_count(), 16);
        assert!(g.pages().iter().all(|p| p.size() == 16));
        assert_cover(&g, 16, 16);
    }

    #[test]
    fn clipped_pages_on_non_divisible_mesh() {
        // 16x22 with 4x4 pages: top row of pages is 4x2.
        let g = PageGrid::new(16, 22, 2, PageIndexing::RowMajor);
        assert_eq!(g.dims(), (4, 6));
        assert_cover(&g, 16, 22);
        let clipped: Vec<_> = g.pages().iter().filter(|p| p.size() != 16).collect();
        assert_eq!(clipped.len(), 4);
        assert!(clipped.iter().all(|p| p.size() == 8));
    }

    #[test]
    fn all_schemes_cover_and_permute_same_pages() {
        for scheme in PageIndexing::ALL {
            let g = PageGrid::new(16, 22, 1, scheme);
            assert_cover(&g, 16, 22);
        }
        let base: HashSet<_> = PageGrid::new(16, 22, 1, PageIndexing::RowMajor)
            .pages()
            .iter()
            .copied()
            .collect();
        for scheme in PageIndexing::ALL {
            let other: HashSet<_> = PageGrid::new(16, 22, 1, scheme).pages().iter().copied().collect();
            assert_eq!(base, other, "{scheme} must be a permutation");
        }
    }

    #[test]
    fn snake_alternates_direction() {
        let g = PageGrid::new(4, 4, 1, PageIndexing::SnakeLike); // 2x2 pages
        let bases: Vec<_> = g.pages().iter().map(|p| p.base).collect();
        assert_eq!(
            bases,
            vec![
                Coord::new(0, 0),
                Coord::new(2, 0),
                Coord::new(2, 2),
                Coord::new(0, 2)
            ]
        );
    }

    #[test]
    fn shuffled_row_order_is_bit_reversal() {
        assert_eq!(bit_reversed_order(4), vec![0, 2, 1, 3]);
        assert_eq!(bit_reversed_order(8), vec![0, 4, 2, 6, 1, 5, 3, 7]);
        // non-power-of-two n: a permutation of 0..n
        let mut o = bit_reversed_order(6);
        o.sort();
        assert_eq!(o, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(bit_reversed_order(1), vec![0]);
        assert_eq!(bit_reversed_order(0), Vec::<u16>::new());
    }

    #[test]
    #[should_panic]
    fn oversized_page_panics() {
        let _ = PageGrid::new(4, 4, 3, PageIndexing::RowMajor);
    }
}
