//! # mesh2d — 2D mesh topology and sub-mesh algebra
//!
//! Geometric substrate for processor allocation in 2D mesh multicomputers.
//! Provides:
//!
//! * [`Coord`] / [`NodeId`] — processor coordinates and linear ids,
//! * [`SubMesh`] — inclusive rectangular regions (the paper's
//!   `S(x, y, x', y')` notation, Definition 1),
//! * [`Mesh`] — an occupancy grid with allocation bookkeeping,
//! * [`rect`] — free-rectangle searches (first-fit suitable sub-mesh,
//!   largest free sub-mesh under side caps) used by contiguous allocation
//!   and by GABL,
//! * [`buddy`] — decomposition of an arbitrary `W × L` mesh into
//!   power-of-two squares and quadrant splitting, used by MBS,
//! * [`pages`] — page grids and the four page indexing schemes of the
//!   Paging strategy (row-major, shuffled row-major, snake-like, shuffled
//!   snake-like).
//!
//! The target system of the reproduced paper is a `16 × 22` mesh (352
//! processors, matching the SDSC Intel Paragon partition), but everything
//! here is generic over mesh dimensions.

// Deep invariant check: a `debug_assert!` in ordinary builds, promoted
// to an always-compiled `assert!` under `--features invariants` (see
// docs/LINTS.md). `cfg!` keeps both arms type-checked; the dead branch
// is optimized out.
macro_rules! inv_assert {
    ($($arg:tt)*) => {
        if cfg!(feature = "invariants") {
            assert!($($arg)*);
        } else {
            debug_assert!($($arg)*);
        }
    };
}

pub mod buddy;
pub mod coord;
pub mod mesh;
pub mod pages;
pub mod rect;
pub mod submesh;

pub use buddy::{decompose_pow2_squares, split_square};
pub use coord::{Coord, NodeId};
pub use mesh::Mesh;
pub use pages::{PageGrid, PageIndexing};
pub use rect::{
    find_free_submesh, intersect_intervals, largest_free_rect, largest_free_rect_near,
};
pub use submesh::SubMesh;
