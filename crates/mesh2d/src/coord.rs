//! Processor coordinates and linear node identifiers.

use serde::{Deserialize, Serialize};

/// A processor coordinate `(x, y)` in a `W × L` mesh, with
/// `0 <= x < W` and `0 <= y < L` (paper §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Coord {
    /// Column, `0 <= x < W`.
    pub x: u16,
    /// Row, `0 <= y < L`.
    pub y: u16,
}

impl Coord {
    /// Creates a coordinate. No bounds are enforced here; bounds are a
    /// property of the mesh a coordinate is used with.
    #[inline]
    pub const fn new(x: u16, y: u16) -> Self {
        Coord { x, y }
    }

    /// Manhattan (L1) distance to `other` — the number of hops an XY-routed
    /// message travels between the two nodes in a mesh.
    #[inline]
    pub fn manhattan(&self, other: &Coord) -> u32 {
        let dx = (self.x as i32 - other.x as i32).unsigned_abs();
        let dy = (self.y as i32 - other.y as i32).unsigned_abs();
        dx + dy
    }

    /// Linear row-major id within a mesh of width `w`.
    #[inline]
    pub fn to_id(&self, w: u16) -> NodeId {
        NodeId(self.y as u32 * w as u32 + self.x as u32)
    }

    /// Inverse of [`Coord::to_id`].
    #[inline]
    pub fn from_id(id: NodeId, w: u16) -> Self {
        Coord {
            x: (id.0 % w as u32) as u16,
            y: (id.0 / w as u32) as u16,
        }
    }
}

impl core::fmt::Display for Coord {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// Linear (row-major) identifier of a node within a particular mesh.
///
/// `NodeId` values are only meaningful relative to the mesh width used to
/// produce them; they exist so that hot simulation loops can index flat
/// arrays instead of hashing coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a dense array index (node ids are contiguous from 0).
    #[inline]
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_round_trip() {
        let w = 16;
        for y in 0..22u16 {
            for x in 0..w {
                let c = Coord::new(x, y);
                assert_eq!(Coord::from_id(c.to_id(w), w), c);
            }
        }
    }

    #[test]
    fn manhattan_symmetric_and_zero_on_self() {
        let a = Coord::new(3, 7);
        let b = Coord::new(10, 2);
        assert_eq!(a.manhattan(&b), b.manhattan(&a));
        assert_eq!(a.manhattan(&b), 7 + 5);
        assert_eq!(a.manhattan(&a), 0);
    }

    #[test]
    fn ids_are_row_major() {
        let w = 4;
        assert_eq!(Coord::new(0, 0).to_id(w).0, 0);
        assert_eq!(Coord::new(3, 0).to_id(w).0, 3);
        assert_eq!(Coord::new(0, 1).to_id(w).0, 4);
        assert_eq!(Coord::new(3, 2).to_id(w).0, 11);
    }
}
