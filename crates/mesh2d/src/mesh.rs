//! The mesh occupancy grid.

use crate::coord::{Coord, NodeId};
use crate::submesh::SubMesh;

/// A `W × L` 2D mesh occupancy grid.
///
/// Tracks which processors are allocated and maintains a free-processor
/// count. This is the single source of truth allocation strategies mutate;
/// the invariant that a strategy never double-allocates or double-frees a
/// processor is enforced here with debug assertions and checked in tests.
///
/// Alongside the raw occupancy bits the mesh maintains an **incremental
/// free-space index**: per-row sorted lists of maximal free intervals,
/// updated in O(intervals) on every occupy/release. The free-rectangle
/// searches in [`crate::rect`] walk these intervals instead of rescanning
/// the whole `W × L` grid on every allocation probe, which is what makes
/// contiguous probing and GABL's greedy partitioning cheap at high
/// utilization (few, short free intervals) — see `docs/PERFORMANCE.md`.
///
/// On top of the index the mesh maintains O(1) **state epochs** and
/// **free-space watermarks** for the scheduling hot loop:
///
/// * [`Mesh::epoch`] / [`Mesh::release_epoch`] — counters bumped on every
///   occupancy change / every release, letting callers detect "has the
///   mesh changed (in a way that could help a failed request) since I
///   last looked" without diffing any state.
/// * [`Mesh::max_free_run`] / [`Mesh::free_rows`] — an upper bound on the
///   dimensions of any free rectangle (no free rectangle can be wider
///   than the longest free run in any row, nor taller than the number of
///   rows containing a free cell). [`Mesh::could_fit_rect`] combines them
///   with the free count into an O(1) *necessary-condition* test that
///   rejects contiguous requests without a search.
#[derive(Debug, Clone)]
pub struct Mesh {
    w: u16,
    l: u16,
    occupied: Vec<bool>,
    free: u32,
    /// Per-row sorted, disjoint, maximal free intervals `(start, end)`,
    /// inclusive on both ends.
    row_free: Vec<Vec<(u16, u16)>>,
    /// Bumped on every occupy and every release (any state change).
    epoch: u64,
    /// Bumped on every release only. A request that failed at
    /// release-epoch `e` keeps failing while the release epoch is still
    /// `e`: occupies only shrink free space, and every strategy's failure
    /// condition is monotone under shrinking free space.
    release_epoch: u64,
    /// Watermark: per-row longest free run (0 = row fully occupied).
    /// Recomputed in O(intervals) whenever a row's interval list changes.
    row_max_run: Vec<u16>,
    /// Watermark histogram: `run_hist[len]` = number of rows whose
    /// longest free run is exactly `len` (index 0 counts full rows).
    run_hist: Vec<u32>,
    /// Watermark: `max(row_max_run)`, maintained lazily from `run_hist`
    /// (raised directly; lowered by scanning down to the next non-empty
    /// bucket, amortized O(1) per update).
    max_free_run: u16,
    /// Watermark: number of rows with at least one free cell.
    free_rows: u16,
}

impl Mesh {
    /// Creates an empty (all-free) `w × l` mesh.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(w: u16, l: u16) -> Self {
        assert!(w > 0 && l > 0, "mesh dimensions must be positive");
        let mut run_hist = vec![0u32; w as usize + 1];
        run_hist[w as usize] = l as u32;
        Mesh {
            w,
            l,
            occupied: vec![false; w as usize * l as usize],
            free: w as u32 * l as u32,
            row_free: vec![vec![(0, w - 1)]; l as usize],
            epoch: 0,
            release_epoch: 0,
            row_max_run: vec![w; l as usize],
            run_hist,
            max_free_run: w,
            free_rows: l,
        }
    }

    /// Mesh width `W` (x extent).
    #[inline]
    pub fn width(&self) -> u16 {
        self.w
    }

    /// Mesh length `L` (y extent).
    #[inline]
    pub fn length(&self) -> u16 {
        self.l
    }

    /// Total number of processors `W × L`.
    #[inline]
    pub fn size(&self) -> u32 {
        self.w as u32 * self.l as u32
    }

    /// Number of currently free processors.
    #[inline]
    pub fn free_count(&self) -> u32 {
        self.free
    }

    /// Number of currently allocated processors.
    #[inline]
    pub fn used_count(&self) -> u32 {
        self.size() - self.free
    }

    /// Fraction of processors currently allocated, in `[0, 1]`.
    #[inline]
    pub fn utilization(&self) -> f64 {
        self.used_count() as f64 / self.size() as f64
    }

    /// Whether `c` is a valid coordinate of this mesh.
    #[inline]
    pub fn contains(&self, c: Coord) -> bool {
        c.x < self.w && c.y < self.l
    }

    /// Whether `s` lies entirely within this mesh.
    #[inline]
    pub fn contains_submesh(&self, s: &SubMesh) -> bool {
        self.contains(s.base) && self.contains(s.end)
    }

    /// The sub-mesh covering the whole machine.
    #[inline]
    pub fn full_submesh(&self) -> SubMesh {
        SubMesh::from_base_size(Coord::new(0, 0), self.w, self.l)
    }

    #[inline]
    fn idx(&self, c: Coord) -> usize {
        debug_assert!(self.contains(c), "coordinate {c} outside {}x{} mesh", self.w, self.l);
        c.y as usize * self.w as usize + c.x as usize
    }

    /// Converts a coordinate to its linear node id.
    #[inline]
    pub fn node_id(&self, c: Coord) -> NodeId {
        c.to_id(self.w)
    }

    /// Converts a linear node id back to a coordinate.
    #[inline]
    pub fn coord_of(&self, id: NodeId) -> Coord {
        Coord::from_id(id, self.w)
    }

    /// Whether the processor at `c` is allocated.
    #[inline]
    pub fn is_occupied(&self, c: Coord) -> bool {
        self.occupied[self.idx(c)]
    }

    /// Whether the processor at `c` is free.
    #[inline]
    pub fn is_free(&self, c: Coord) -> bool {
        !self.is_occupied(c)
    }

    /// Marks a single processor allocated.
    ///
    /// # Panics
    /// Panics (in all builds) if the processor is already allocated:
    /// double allocation is always a strategy bug.
    pub fn occupy(&mut self, c: Coord) {
        let i = self.idx(c);
        assert!(!self.occupied[i], "double allocation of {c}");
        self.occupied[i] = true;
        self.free -= 1;
        Self::interval_remove(&mut self.row_free[c.y as usize], c.x);
        self.epoch += 1;
        self.note_row_changed(c.y);
    }

    /// Marks a single processor free.
    ///
    /// # Panics
    /// Panics if the processor is already free.
    pub fn release(&mut self, c: Coord) {
        let i = self.idx(c);
        assert!(self.occupied[i], "double free of {c}");
        self.occupied[i] = false;
        self.free += 1;
        Self::interval_insert(&mut self.row_free[c.y as usize], c.x);
        self.epoch += 1;
        self.release_epoch += 1;
        self.note_row_changed(c.y);
    }

    /// Refreshes the watermarks after row `y`'s interval list changed:
    /// recomputes the row's longest run (O(intervals), the same cost
    /// class as the interval update itself) and folds the change into
    /// the histogram, `free_rows`, and the lazy `max_free_run`.
    fn note_row_changed(&mut self, y: u16) {
        let new_max = self.row_free[y as usize]
            .iter()
            .map(|&(a, b)| b - a + 1)
            .max()
            .unwrap_or(0);
        let old = self.row_max_run[y as usize];
        if new_max == old {
            return;
        }
        self.row_max_run[y as usize] = new_max;
        self.run_hist[old as usize] -= 1;
        self.run_hist[new_max as usize] += 1;
        if old == 0 {
            self.free_rows += 1;
        } else if new_max == 0 {
            self.free_rows -= 1;
        }
        if new_max > self.max_free_run {
            self.max_free_run = new_max;
        } else if old == self.max_free_run && self.run_hist[old as usize] == 0 {
            let mut m = self.max_free_run;
            while m > 0 && self.run_hist[m as usize] == 0 {
                m -= 1;
            }
            self.max_free_run = m;
        }
    }

    /// State epoch: bumped on every occupy and release. Two equal epochs
    /// from the same mesh guarantee identical occupancy.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Release epoch: bumped only when a processor is freed (and on
    /// [`Mesh::clear`]). An allocation request that failed at release
    /// epoch `e` cannot start succeeding while the release epoch is
    /// still `e` — intervening occupies only shrink the free space —
    /// which is what makes shape-keyed failure memoization exact.
    #[inline]
    pub fn release_epoch(&self) -> u64 {
        self.release_epoch
    }

    /// Watermark: the longest free run in any row — an upper bound on
    /// the width of any entirely free rectangle (a free rectangle of
    /// width `w` contains a free run of length ≥ `w` in each of its
    /// rows; conversely the longest run is itself a free `run × 1`
    /// rectangle, so the bound is tight in the width dimension).
    #[inline]
    pub fn max_free_run(&self) -> u16 {
        self.max_free_run
    }

    /// Watermark: the number of rows containing at least one free cell —
    /// an upper bound on the height of any entirely free rectangle.
    #[inline]
    pub fn free_rows(&self) -> u16 {
        self.free_rows
    }

    /// O(1) necessary-condition test for a contiguous `w × l` request:
    /// `false` means **no** entirely free `w × l` sub-mesh exists (the
    /// request exceeds the free area, the mesh bounds, or a free-space
    /// watermark), so a [`crate::rect::find_free_submesh`] search would
    /// certainly fail; `true` means one *may* exist. Callers that accept
    /// either orientation must test both `(w, l)` and `(l, w)`.
    #[inline]
    pub fn could_fit_rect(&self, w: u16, l: u16) -> bool {
        w >= 1
            && l >= 1
            && w <= self.w
            && l <= self.l
            && w as u32 * l as u32 <= self.free
            && w <= self.max_free_run
            && l <= self.free_rows
    }

    /// Removes column `x` from a row's free-interval list. `x` must lie in
    /// an interval (the caller just verified the processor was free).
    fn interval_remove(row: &mut Vec<(u16, u16)>, x: u16) {
        let i = row.partition_point(|&(_, end)| end < x);
        inv_assert!(
            i < row.len() && row[i].0 <= x && x <= row[i].1,
            "free-interval index out of sync"
        );
        let (a, b) = row[i];
        if a == b {
            row.remove(i);
        } else if x == a {
            row[i].0 = x + 1;
        } else if x == b {
            row[i].1 = x - 1;
        } else {
            row[i].1 = x - 1;
            row.insert(i + 1, (x + 1, b));
        }
    }

    /// Inserts column `x` into a row's free-interval list, coalescing with
    /// adjacent intervals. `x` must not lie in any interval.
    fn interval_insert(row: &mut Vec<(u16, u16)>, x: u16) {
        let i = row.partition_point(|&(_, end)| end < x);
        let touch_left = i > 0 && row[i - 1].1 + 1 == x;
        let touch_right = i < row.len() && x + 1 == row[i].0;
        match (touch_left, touch_right) {
            (true, true) => {
                row[i - 1].1 = row[i].1;
                row.remove(i);
            }
            (true, false) => row[i - 1].1 = x,
            (false, true) => row[i].0 = x,
            (false, false) => row.insert(i, (x, x)),
        }
    }

    /// Whether every processor of `s` is free.
    pub fn submesh_free(&self, s: &SubMesh) -> bool {
        if !self.contains_submesh(s) {
            return false;
        }
        s.iter().all(|c| self.is_free(c))
    }

    /// Whether every processor of `s` is allocated.
    pub fn submesh_occupied(&self, s: &SubMesh) -> bool {
        self.contains_submesh(s) && s.iter().all(|c| self.is_occupied(c))
    }

    /// Allocates every processor of `s`.
    ///
    /// # Panics
    /// Panics if any processor of `s` is already allocated or out of bounds.
    pub fn occupy_submesh(&mut self, s: &SubMesh) {
        assert!(self.contains_submesh(s), "sub-mesh {s} outside mesh");
        for c in s.iter() {
            self.occupy(c);
        }
        #[cfg(feature = "invariants")]
        self.check_index_consistency();
    }

    /// Frees every processor of `s`.
    ///
    /// # Panics
    /// Panics if any processor of `s` is already free or out of bounds.
    pub fn release_submesh(&mut self, s: &SubMesh) {
        assert!(self.contains_submesh(s), "sub-mesh {s} outside mesh");
        for c in s.iter() {
            self.release(c);
        }
        #[cfg(feature = "invariants")]
        self.check_index_consistency();
    }

    /// Cross-validates the incremental free-interval index against the
    /// raw occupancy bits: every row's intervals must be sorted, disjoint,
    /// maximal, and cover exactly its free processors, and `free` must
    /// equal the popcount of free bits. O(W × L); compiled only under
    /// `--features invariants` and run after every sub-mesh operation
    /// (single-processor churn, e.g. the MC allocator's scatter path,
    /// is validated by the cheap per-op checks instead).
    #[cfg(feature = "invariants")]
    pub fn check_index_consistency(&self) {
        let mut free_bits = 0u32;
        for y in 0..self.l {
            let row = &self.row_free[y as usize];
            let mut prev_end: Option<u16> = None;
            for &(a, b) in row {
                assert!(a <= b && b < self.w, "malformed interval ({a},{b}) in row {y}");
                if let Some(pe) = prev_end {
                    // disjoint AND maximal: a gap of at least one occupied cell
                    assert!(a > pe + 1, "unmerged/overlapping intervals in row {y}");
                }
                prev_end = Some(b);
            }
            let mut in_interval = vec![false; self.w as usize];
            for &(a, b) in row {
                for x in a..=b {
                    in_interval[x as usize] = true;
                }
            }
            for x in 0..self.w {
                let occ = self.occupied[y as usize * self.w as usize + x as usize];
                assert_eq!(
                    !occ,
                    in_interval[x as usize],
                    "interval index disagrees with occupancy bit at ({x},{y})"
                );
                free_bits += u32::from(!occ);
            }
        }
        assert_eq!(self.free, free_bits, "free counter out of sync");
        self.check_watermark_consistency();
    }

    /// Cross-validates the free-space watermarks against a brute-force
    /// recount and against the brute-force largest free rectangle:
    /// per-row longest runs, the run histogram, `max_free_run`,
    /// `free_rows`, and the guarantee that the actual largest free
    /// rectangle fits inside the `max_free_run × free_rows` bound (with
    /// the width bound tight). Compiled only under
    /// `--features invariants`; run from `check_index_consistency` after
    /// every sub-mesh operation.
    #[cfg(feature = "invariants")]
    pub fn check_watermark_consistency(&self) {
        let mut max_run = 0u16;
        let mut free_rows = 0u16;
        let mut hist = vec![0u32; self.w as usize + 1];
        for y in 0..self.l {
            let brute = self.row_free[y as usize]
                .iter()
                .map(|&(a, b)| b - a + 1)
                .max()
                .unwrap_or(0);
            assert_eq!(self.row_max_run[y as usize], brute, "row_max_run[{y}] out of sync");
            hist[brute as usize] += 1;
            max_run = max_run.max(brute);
            free_rows += u16::from(brute > 0);
        }
        assert_eq!(self.run_hist, hist, "run-length histogram out of sync");
        assert_eq!(self.max_free_run, max_run, "max_free_run watermark out of sync");
        assert_eq!(self.free_rows, free_rows, "free_rows watermark out of sync");
        match crate::rect::largest_free_rect(self, self.w, self.l) {
            Some(r) => {
                assert!(
                    r.width() <= self.max_free_run && r.length() <= self.free_rows,
                    "largest free rect {}x{} exceeds watermark bound {}x{}",
                    r.width(),
                    r.length(),
                    self.max_free_run,
                    self.free_rows
                );
                // the width bound is tight: the longest free run is
                // itself a free run×1 rectangle, so some free rectangle
                // achieves width == max_free_run
                assert!(
                    self.max_free_run > 0,
                    "free rect exists but max_free_run watermark is 0"
                );
            }
            None => assert_eq!(self.free, 0, "free cells exist but no free rect found"),
        }
    }

    /// Iterates over the coordinates of all free processors in row-major
    /// order.
    pub fn iter_free(&self) -> impl Iterator<Item = Coord> + '_ {
        self.occupied.iter().enumerate().filter_map(move |(i, occ)| {
            if *occ {
                None
            } else {
                Some(Coord::from_id(NodeId(i as u32), self.w))
            }
        })
    }

    /// Iterates over the coordinates of all allocated processors in
    /// row-major order.
    pub fn iter_occupied(&self) -> impl Iterator<Item = Coord> + '_ {
        self.occupied.iter().enumerate().filter_map(move |(i, occ)| {
            if *occ {
                Some(Coord::from_id(NodeId(i as u32), self.w))
            } else {
                None
            }
        })
    }

    /// Raw row-major occupancy slice (row `y` at `[y*W .. (y+1)*W)`),
    /// for callers that need a whole-grid snapshot (diagnostics, oracle
    /// comparisons in tests).
    #[inline]
    pub fn occupancy(&self) -> &[bool] {
        &self.occupied
    }

    /// The sorted, disjoint, maximal free intervals `(start, end)`
    /// (inclusive) of row `y` — the incremental free-space index the
    /// rectangle searches and allocation strategies probe instead of
    /// rescanning the occupancy grid.
    #[inline]
    pub fn row_free_intervals(&self, y: u16) -> &[(u16, u16)] {
        &self.row_free[y as usize]
    }

    /// Number of free processors in columns `x0..=x1` of row `y`,
    /// computed from the free-interval index in O(intervals).
    pub fn free_in_row_span(&self, y: u16, x0: u16, x1: u16) -> u32 {
        debug_assert!(x0 <= x1 && x1 < self.w && y < self.l);
        let row = &self.row_free[y as usize];
        let i = row.partition_point(|&(_, end)| end < x0);
        row[i..]
            .iter()
            .take_while(|&&(a, _)| a <= x1)
            .map(|&(a, b)| (b.min(x1) - a.max(x0) + 1) as u32)
            .sum()
    }

    /// Frees every processor, returning the occupancy to its initial
    /// state. The epochs are *not* reset — they keep counting so that
    /// stale epoch values held by callers can never alias a post-clear
    /// state (a clear releases processors, so both epochs advance).
    pub fn clear(&mut self) {
        self.occupied.fill(false);
        self.free = self.size();
        for row in &mut self.row_free {
            row.clear();
            row.push((0, self.w - 1));
        }
        self.epoch += 1;
        self.release_epoch += 1;
        self.row_max_run.fill(self.w);
        self.run_hist.fill(0);
        self.run_hist[self.w as usize] = self.l as u32;
        self.max_free_run = self.w;
        self.free_rows = self.l;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_mesh_all_free() {
        let m = Mesh::new(16, 22);
        assert_eq!(m.size(), 352);
        assert_eq!(m.free_count(), 352);
        assert_eq!(m.used_count(), 0);
        assert!(m.is_free(Coord::new(15, 21)));
        assert_eq!(m.utilization(), 0.0);
    }

    #[test]
    fn occupy_release_submesh_bookkeeping() {
        let mut m = Mesh::new(8, 8);
        let s = SubMesh::from_base_size(Coord::new(2, 2), 3, 4);
        m.occupy_submesh(&s);
        assert_eq!(m.used_count(), 12);
        assert!(m.submesh_occupied(&s));
        assert!(!m.submesh_free(&s));
        m.release_submesh(&s);
        assert_eq!(m.used_count(), 0);
        assert!(m.submesh_free(&s));
    }

    #[test]
    #[should_panic(expected = "double allocation")]
    fn double_occupy_panics() {
        let mut m = Mesh::new(4, 4);
        m.occupy(Coord::new(1, 1));
        m.occupy(Coord::new(1, 1));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_release_panics() {
        let mut m = Mesh::new(4, 4);
        m.release(Coord::new(1, 1));
    }

    #[test]
    fn submesh_free_rejects_out_of_bounds() {
        let m = Mesh::new(4, 4);
        let s = SubMesh::from_base_size(Coord::new(3, 3), 2, 2);
        assert!(!m.submesh_free(&s));
    }

    #[test]
    fn paper_fig1_scenario() {
        // Fig. 1: 4x4 mesh where a 2x2 contiguous request fails but 4 free
        // processors exist. Reproduce the shape: occupy everything except
        // 4 processors no two of which form a 2x2 square.
        let mut m = Mesh::new(4, 4);
        let free = [Coord::new(0, 0), Coord::new(3, 0), Coord::new(0, 3), Coord::new(3, 3)];
        for y in 0..4 {
            for x in 0..4 {
                let c = Coord::new(x, y);
                if !free.contains(&c) {
                    m.occupy(c);
                }
            }
        }
        assert_eq!(m.free_count(), 4);
        // no 2x2 free sub-mesh exists
        for y in 0..3 {
            for x in 0..3 {
                let s = SubMesh::from_base_size(Coord::new(x, y), 2, 2);
                assert!(!m.submesh_free(&s));
            }
        }
    }

    #[test]
    fn iterators_partition_mesh() {
        let mut m = Mesh::new(5, 3);
        m.occupy(Coord::new(0, 0));
        m.occupy(Coord::new(4, 2));
        let free: Vec<_> = m.iter_free().collect();
        let used: Vec<_> = m.iter_occupied().collect();
        assert_eq!(free.len() + used.len(), 15);
        assert_eq!(used, vec![Coord::new(0, 0), Coord::new(4, 2)]);
    }

    fn expected_intervals(m: &Mesh, y: u16) -> Vec<(u16, u16)> {
        // reference: maximal runs of free cells in the occupancy bits
        let mut runs = Vec::new();
        let mut start: Option<u16> = None;
        for x in 0..m.width() {
            if m.is_free(Coord::new(x, y)) {
                start.get_or_insert(x);
            } else if let Some(s) = start.take() {
                runs.push((s, x - 1));
            }
        }
        if let Some(s) = start {
            runs.push((s, m.width() - 1));
        }
        runs
    }

    #[test]
    fn free_interval_index_tracks_occupancy_under_churn() {
        let mut m = Mesh::new(9, 7);
        let mut seed = 0xC0FFEEu64;
        let mut rng = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for _ in 0..4000 {
            let c = Coord::new((rng() % 9) as u16, (rng() % 7) as u16);
            if m.is_free(c) {
                m.occupy(c);
            } else {
                m.release(c);
            }
            let y = c.y;
            assert_eq!(m.row_free_intervals(y), expected_intervals(&m, y), "row {y}");
        }
        for y in 0..7 {
            assert_eq!(m.row_free_intervals(y), expected_intervals(&m, y));
            // spot-check span counting against the raw bits
            let naive: u32 = (2..=6u16).filter(|&x| m.is_free(Coord::new(x, y))).count() as u32;
            assert_eq!(m.free_in_row_span(y, 2, 6), naive);
        }
    }

    #[test]
    fn interval_index_submesh_ops_and_clear() {
        let mut m = Mesh::new(8, 8);
        let s = SubMesh::from_base_size(Coord::new(2, 1), 4, 3);
        m.occupy_submesh(&s);
        for y in 1..4 {
            assert_eq!(m.row_free_intervals(y), &[(0, 1), (6, 7)]);
            assert_eq!(m.free_in_row_span(y, 0, 7), 4);
        }
        assert_eq!(m.row_free_intervals(0), &[(0, 7)]);
        m.release_submesh(&s);
        for y in 0..8 {
            assert_eq!(m.row_free_intervals(y), &[(0, 7)]);
        }
        m.occupy(Coord::new(4, 4));
        m.clear();
        assert_eq!(m.row_free_intervals(4), &[(0, 7)]);
    }

    #[test]
    fn clear_resets() {
        let mut m = Mesh::new(4, 4);
        m.occupy_submesh(&SubMesh::from_base_size(Coord::new(0, 0), 4, 4));
        assert_eq!(m.free_count(), 0);
        m.clear();
        assert_eq!(m.free_count(), 16);
    }

    #[test]
    fn epochs_advance_on_state_changes_only() {
        let mut m = Mesh::new(4, 4);
        assert_eq!((m.epoch(), m.release_epoch()), (0, 0));
        m.occupy(Coord::new(1, 1));
        assert_eq!((m.epoch(), m.release_epoch()), (1, 0), "occupy bumps epoch only");
        m.occupy(Coord::new(2, 1));
        assert_eq!((m.epoch(), m.release_epoch()), (2, 0));
        m.release(Coord::new(1, 1));
        assert_eq!((m.epoch(), m.release_epoch()), (3, 1), "release bumps both");
        let (e, r) = (m.epoch(), m.release_epoch());
        m.clear();
        assert!(m.epoch() > e && m.release_epoch() > r, "clear frees: both advance");
    }

    fn brute_watermarks(m: &Mesh) -> (u16, u16) {
        // reference recount from the raw occupancy bits: longest free
        // run over all rows, and rows containing a free cell
        let mut max_run = 0u16;
        let mut free_rows = 0u16;
        for y in 0..m.length() {
            let mut run = 0u16;
            let mut row_max = 0u16;
            for x in 0..m.width() {
                if m.is_free(Coord::new(x, y)) {
                    run += 1;
                    row_max = row_max.max(run);
                } else {
                    run = 0;
                }
            }
            max_run = max_run.max(row_max);
            free_rows += u16::from(row_max > 0);
        }
        (max_run, free_rows)
    }

    #[test]
    fn watermarks_match_brute_force_under_churn() {
        let mut m = Mesh::new(9, 7);
        let mut seed = 0xBADC0DEu64;
        let mut rng = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        let mut releases = 0u64;
        for step in 0..4000 {
            let c = Coord::new((rng() % 9) as u16, (rng() % 7) as u16);
            let epoch_before = m.epoch();
            if m.is_free(c) {
                m.occupy(c);
            } else {
                m.release(c);
                releases += 1;
            }
            assert_eq!(m.epoch(), epoch_before + 1, "step {step}");
            assert_eq!(m.release_epoch(), releases, "step {step}");
            let (max_run, free_rows) = brute_watermarks(&m);
            assert_eq!(m.max_free_run(), max_run, "step {step}");
            assert_eq!(m.free_rows(), free_rows, "step {step}");
        }
    }

    #[test]
    fn could_fit_rect_never_rejects_a_satisfiable_request() {
        // exactness contract: could_fit_rect == false must imply the
        // exhaustive search finds nothing, for every shape, across
        // randomized occupancy patterns
        let mut seed = 0x5EEDu64;
        for case in 0..40 {
            let mut m = Mesh::new(8, 6);
            for y in 0..6u16 {
                for x in 0..8u16 {
                    seed = seed
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    if (seed >> 33) % 10 < 2 + case % 6 {
                        m.occupy(Coord::new(x, y));
                    }
                }
            }
            for w in 1..=8u16 {
                for l in 1..=6u16 {
                    let found = crate::rect::find_free_submesh(&m, w, l).is_some();
                    if !m.could_fit_rect(w, l) {
                        assert!(!found, "case {case}: watermark rejected free {w}x{l}");
                    }
                    if found {
                        assert!(m.could_fit_rect(w, l), "case {case} {w}x{l}");
                    }
                }
            }
        }
    }

    #[test]
    fn could_fit_rect_rejects_without_search() {
        let mut m = Mesh::new(8, 4);
        // occupy column 3 fully: max run 4 on an otherwise free mesh
        for y in 0..4 {
            m.occupy(Coord::new(3, y));
        }
        assert_eq!(m.max_free_run(), 4);
        assert_eq!(m.free_rows(), 4);
        assert!(m.could_fit_rect(4, 4));
        assert!(!m.could_fit_rect(5, 1), "wider than any free run");
        assert!(!m.could_fit_rect(1, 5), "taller than the mesh");
        assert!(!m.could_fit_rect(0, 1));
        // occupy rows 1 and 2 fully: only rows 0 and 3 keep free cells
        for y in [1u16, 2] {
            for x in 0..8 {
                if m.is_free(Coord::new(x, y)) {
                    m.occupy(Coord::new(x, y));
                }
            }
        }
        assert_eq!(m.free_rows(), 2);
        assert!(!m.could_fit_rect(2, 3), "taller than free_rows");
        assert!(m.could_fit_rect(4, 1));
    }
}
