//! Power-of-two square decomposition for the Multiple Buddy Strategy.
//!
//! MBS "divides the mesh into non-overlapping square sub-meshes with side
//! lengths equal to the powers of two upon initialization" (paper §3).
//! Real machines — including the paper's 16 × 22 target — are rarely
//! power-of-two squares, so the decomposition must tile an arbitrary
//! rectangle: we repeatedly carve out the largest aligned grid of
//! `2^k × 2^k` squares and recurse on the two remaining strips.

use crate::coord::Coord;
use crate::submesh::SubMesh;

/// Largest power of two `<= n` (n >= 1).
#[inline]
fn floor_pow2(n: u16) -> u16 {
    debug_assert!(n >= 1);
    1 << (15 - n.leading_zeros() as u16)
}

/// Decomposes the `w × l` region with base `(0, 0)` into non-overlapping
/// squares whose side lengths are powers of two, covering every processor
/// exactly once. Squares are returned largest-first.
///
/// For the paper's 16 × 22 mesh this yields one 16×16, four 4×4 (as a
/// 16×4 strip), and eight 2×2 (as a 16×2 strip), plus nothing else:
/// 256 + 64 + 32 = 352 processors.
pub fn decompose_pow2_squares(w: u16, l: u16) -> Vec<SubMesh> {
    assert!(w > 0 && l > 0, "degenerate region {w}x{l}");
    let mut out = Vec::new();
    decompose_region(Coord::new(0, 0), w, l, &mut out);
    out.sort_by(|a, b| b.size().cmp(&a.size()).then(a.base.cmp(&b.base)));
    out
}

fn decompose_region(base: Coord, w: u16, l: u16, out: &mut Vec<SubMesh>) {
    if w == 0 || l == 0 {
        return;
    }
    let k = floor_pow2(w.min(l));
    let nx = w / k;
    let ny = l / k;
    for j in 0..ny {
        for i in 0..nx {
            out.push(SubMesh::from_base_size(
                Coord::new(base.x + i * k, base.y + j * k),
                k,
                k,
            ));
        }
    }
    // right strip: (w - nx*k) x (ny*k)
    decompose_region(Coord::new(base.x + nx * k, base.y), w - nx * k, ny * k, out);
    // top strip: full width x (l - ny*k)
    decompose_region(Coord::new(base.x, base.y + ny * k), w, l - ny * k, out);
}

/// Splits a `2^k × 2^k` square (k >= 1) into its four `2^(k-1)` buddy
/// quadrants, ordered base-first (SW, SE, NW, NE).
///
/// # Panics
/// Panics if the square's side is not an even power of two or is 1.
pub fn split_square(sq: &SubMesh) -> [SubMesh; 4] {
    let side = sq.width();
    assert_eq!(side, sq.length(), "buddy split of non-square {sq}");
    assert!(side >= 2 && side.is_power_of_two(), "unsplittable side {side}");
    let h = side / 2;
    let (bx, by) = (sq.base.x, sq.base.y);
    [
        SubMesh::from_base_size(Coord::new(bx, by), h, h),
        SubMesh::from_base_size(Coord::new(bx + h, by), h, h),
        SubMesh::from_base_size(Coord::new(bx, by + h), h, h),
        SubMesh::from_base_size(Coord::new(bx + h, by + h), h, h),
    ]
}

/// Base-4 factorization of a processor count, as used by MBS: returns
/// digits `d_i` (each in `0..=3`) such that
/// `p = Σ d_i · (2^i × 2^i)` with `i` ascending.
pub fn base4_digits(p: u32) -> Vec<u8> {
    assert!(p > 0, "zero-processor request");
    let mut digits = Vec::new();
    let mut rest = p;
    while rest > 0 {
        digits.push((rest % 4) as u8);
        rest /= 4;
    }
    digits
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn covers_exactly(squares: &[SubMesh], w: u16, l: u16) {
        let mut seen = HashSet::new();
        for s in squares {
            assert_eq!(s.width(), s.length(), "non-square {s}");
            assert!(s.width().is_power_of_two(), "side not pow2: {s}");
            for c in s.iter() {
                assert!(c.x < w && c.y < l, "{c} outside {w}x{l}");
                assert!(seen.insert(c), "overlap at {c}");
            }
        }
        assert_eq!(seen.len(), w as usize * l as usize, "not a cover");
    }

    #[test]
    fn paper_mesh_16x22() {
        let squares = decompose_pow2_squares(16, 22);
        covers_exactly(&squares, 16, 22);
        let mut by_side = std::collections::BTreeMap::new();
        for s in &squares {
            *by_side.entry(s.width()).or_insert(0u32) += 1;
        }
        assert_eq!(by_side.get(&16), Some(&1));
        assert_eq!(by_side.get(&4), Some(&4));
        assert_eq!(by_side.get(&2), Some(&8));
        assert_eq!(by_side.len(), 3);
    }

    #[test]
    fn power_of_two_square_is_single_block() {
        let squares = decompose_pow2_squares(8, 8);
        assert_eq!(squares.len(), 1);
        assert_eq!(squares[0].size(), 64);
    }

    #[test]
    fn odd_sizes_cover() {
        for (w, l) in [(1u16, 1u16), (3, 5), (7, 7), (16, 22), (13, 1), (1, 9), (32, 24)] {
            covers_exactly(&decompose_pow2_squares(w, l), w, l);
        }
    }

    #[test]
    fn squares_sorted_largest_first() {
        let squares = decompose_pow2_squares(16, 22);
        for pair in squares.windows(2) {
            assert!(pair[0].size() >= pair[1].size());
        }
    }

    #[test]
    fn split_square_quadrants() {
        let sq = SubMesh::from_base_size(Coord::new(4, 8), 4, 4);
        let kids = split_square(&sq);
        let mut seen = HashSet::new();
        for k in &kids {
            assert_eq!(k.size(), 4);
            for c in k.iter() {
                assert!(sq.contains(c));
                assert!(seen.insert(c));
            }
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    #[should_panic]
    fn split_unit_square_panics() {
        split_square(&SubMesh::from_base_size(Coord::new(0, 0), 1, 1));
    }

    #[test]
    fn base4_factorization() {
        // p = 13 = 1 + 3*4 -> d0=1, d1=3
        assert_eq!(base4_digits(13), vec![1, 3]);
        // p = 4^3 = 64 -> d3 = 1
        assert_eq!(base4_digits(64), vec![0, 0, 0, 1]);
        // sum reconstructs p
        for p in 1u32..500 {
            let total: u32 = base4_digits(p)
                .iter()
                .enumerate()
                .map(|(i, &d)| d as u32 * 4u32.pow(i as u32))
                .sum();
            assert_eq!(total, p);
        }
    }
}
