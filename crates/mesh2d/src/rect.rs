//! Free-rectangle searches over the occupancy grid.
//!
//! Two queries drive the allocation strategies:
//!
//! * [`find_free_submesh`] — the first (row-major base order) entirely free
//!   `w × l` sub-mesh, used by contiguous allocation and by GABL's initial
//!   "suitable sub-mesh" test (paper Definition 4).
//! * [`largest_free_rect`] — the largest entirely free rectangle whose
//!   sides are capped, used by GABL's greedy partitioning ("the largest
//!   free sub-mesh whose side lengths do not exceed the corresponding side
//!   lengths of the previously allocated sub-mesh", paper §3).

use crate::coord::Coord;
use crate::mesh::Mesh;
use crate::submesh::SubMesh;

/// Intersects two sorted disjoint interval lists into `out` (cleared
/// first): the columns covered by both. Standard two-pointer sweep,
/// O(|a| + |b|). The building block for stacking the per-row free
/// intervals of [`Mesh::row_free_intervals`] into free-rectangle
/// candidates; exposed so allocation strategies can run their own
/// interval-driven probes.
pub fn intersect_intervals(a: &[(u16, u16)], b: &[(u16, u16)], out: &mut Vec<(u16, u16)>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo <= hi {
            out.push((lo, hi));
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
}

/// Finds the first entirely free `w × l` sub-mesh, scanning candidate bases
/// in row-major order. Returns `None` when no such sub-mesh exists (the
/// external-fragmentation case motivating the paper).
///
/// Walks the mesh's incremental per-row free-interval index: for each base
/// row the free runs of the `l` stacked rows are intersected and the first
/// intersection at least `w` wide wins. Cost is proportional to the number
/// of free intervals, not to `W × L`. Requests that exceed a free-space
/// watermark ([`Mesh::could_fit_rect`]) are rejected in O(1) without
/// touching the index at all — the saturated-queue hot case.
pub fn find_free_submesh(mesh: &Mesh, w: u16, l: u16) -> Option<SubMesh> {
    if !mesh.could_fit_rect(w, l) {
        return None;
    }
    let mut acc: Vec<(u16, u16)> = Vec::new();
    let mut next: Vec<(u16, u16)> = Vec::new();
    for y in 0..=(mesh.length() - l) {
        acc.clear();
        acc.extend_from_slice(mesh.row_free_intervals(y));
        for r in (y + 1)..(y + l) {
            if acc.is_empty() {
                break;
            }
            intersect_intervals(&acc, mesh.row_free_intervals(r), &mut next);
            std::mem::swap(&mut acc, &mut next);
        }
        if let Some(&(a, _)) = acc.iter().find(|&&(a, b)| b - a + 1 >= w) {
            return Some(SubMesh::from_base_size(Coord::new(a, y), w, l));
        }
    }
    None
}

/// Finds the largest entirely free rectangle with `width <= cap_w` and
/// `length <= cap_l`, maximizing processor count. Ties are broken towards
/// the rectangle found first scanning rows bottom-up then columns
/// left-to-right, making the search deterministic.
///
/// Returns `None` only when no processor is free (any free processor is a
/// 1×1 free rectangle).
pub fn largest_free_rect(mesh: &Mesh, cap_w: u16, cap_l: u16) -> Option<SubMesh> {
    largest_free_rect_near(mesh, cap_w, cap_l, None)
}

/// As [`largest_free_rect`], but among all rectangles achieving the
/// maximal processor count, prefers the one whose centre is closest
/// (Manhattan) to `anchor`. Used by GABL to keep the pieces of one job's
/// allocation near each other: the published algorithm specifies only
/// "the largest free sub-mesh", leaving ties free — breaking them towards
/// the job's existing pieces is what "maintaining a high degree of
/// contiguity" requires.
pub fn largest_free_rect_near(
    mesh: &Mesh,
    cap_w: u16,
    cap_l: u16,
    anchor: Option<Coord>,
) -> Option<SubMesh> {
    let (w, l) = (mesh.width() as usize, mesh.length() as usize);
    let cap_w = cap_w.min(mesh.width()) as usize;
    let cap_l = cap_l.min(mesh.length()) as usize;
    if cap_w == 0 || cap_l == 0 {
        return None;
    }
    let mut heights = vec![0usize; w];
    // lexicographic objective: maximize area, then minimize distance of
    // the rectangle centre to the anchor (0 when no anchor)
    let mut best: Option<(u32, u32, SubMesh)> = None;
    let dist_to_anchor = |s: &SubMesh| -> u32 {
        match anchor {
            None => 0,
            Some(a) => {
                let cx = (s.base.x as u32 + s.end.x as u32) / 2;
                let cy = (s.base.y as u32 + s.end.y as u32) / 2;
                cx.abs_diff(a.x as u32) + cy.abs_diff(a.y as u32)
            }
        }
    };

    // Histogram-of-heights sweep driven by the incremental free-interval
    // index: per row, heights are bumped only inside free runs (occupied
    // spans are bulk-reset), and window starts are enumerated per free
    // run — candidate rectangles of a row always lie inside one of its
    // free runs, so this visits exactly the candidates the full-grid scan
    // would, in the same order, at a cost proportional to free cells.
    for y in 0..l {
        let ivs = mesh.row_free_intervals(y as u16);
        let mut edge = 0usize; // first column not yet reset/bumped
        for &(a, b) in ivs {
            let (a, b) = (a as usize, b as usize);
            heights[edge..a].fill(0);
            for h in &mut heights[a..=b] {
                *h += 1;
            }
            edge = b + 1;
        }
        heights[edge..w].fill(0);
        // For each window start inside a free run, extend right while
        // tracking min height (never past the run: height drops to 0).
        for &(ia, ib) in ivs {
            let (ia, ib) = (ia as usize, ib as usize);
            for x0 in ia..=ib {
                let mut min_h = usize::MAX;
                let max_x1 = (x0 + cap_w).min(ib + 1);
                for (x1, &h1) in heights.iter().enumerate().take(max_x1).skip(x0) {
                    min_h = min_h.min(h1);
                    let h = min_h.min(cap_l);
                    let area = ((x1 - x0 + 1) * h) as u32;
                    let improves_area = best.as_ref().is_none_or(|(a, _, _)| area > *a);
                    let ties_area = best.as_ref().is_some_and(|(a, _, _)| area == *a);
                    if improves_area || (ties_area && anchor.is_some()) {
                        // procsim-lint: allow(D005): x0/x1/y/h index the histogram of a mesh whose dimensions are u16
                        let s = SubMesh::from_base_size(
                            Coord::new(x0 as u16, (y + 1 - h) as u16),
                            (x1 - x0 + 1) as u16,
                            h as u16,
                        );
                        let d = dist_to_anchor(&s);
                        if improves_area || best.as_ref().is_some_and(|(_, bd, _)| d < *bd) {
                            best = Some((area, d, s));
                        }
                    }
                }
            }
        }
    }
    best.map(|(_, _, s)| s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_in_empty_mesh_is_origin() {
        let m = Mesh::new(16, 22);
        let s = find_free_submesh(&m, 5, 7).unwrap();
        assert_eq!(s.base, Coord::new(0, 0));
        assert_eq!((s.width(), s.length()), (5, 7));
    }

    #[test]
    fn find_respects_occupancy() {
        // occupy column x=0 fully: a 4x4 must start at x>=1
        let mut m = Mesh::new(8, 4);
        for y in 0..4 {
            m.occupy(Coord::new(0, y));
        }
        let s = find_free_submesh(&m, 4, 4).unwrap();
        assert_eq!(s.base, Coord::new(1, 0));
    }

    #[test]
    fn find_detects_external_fragmentation() {
        // Fig. 1 scenario: 4 free corners of a 4x4, no free 2x2.
        let mut m = Mesh::new(4, 4);
        let free = [(0u16, 0u16), (3, 0), (0, 3), (3, 3)];
        for y in 0..4 {
            for x in 0..4 {
                if !free.contains(&(x, y)) {
                    m.occupy(Coord::new(x, y));
                }
            }
        }
        assert_eq!(m.free_count(), 4);
        assert!(find_free_submesh(&m, 2, 2).is_none());
        assert!(find_free_submesh(&m, 1, 1).is_some());
    }

    #[test]
    fn find_rejects_oversized() {
        let m = Mesh::new(4, 4);
        assert!(find_free_submesh(&m, 5, 1).is_none());
        assert!(find_free_submesh(&m, 1, 5).is_none());
        assert!(find_free_submesh(&m, 0, 1).is_none());
    }

    #[test]
    fn largest_rect_empty_mesh_is_capped_full() {
        let m = Mesh::new(16, 22);
        let s = largest_free_rect(&m, 16, 22).unwrap();
        assert_eq!(s.size(), 352);
        let s = largest_free_rect(&m, 4, 6).unwrap();
        assert_eq!((s.width(), s.length()), (4, 6));
    }

    #[test]
    fn largest_rect_none_when_full() {
        let mut m = Mesh::new(3, 3);
        m.occupy_submesh(&m.full_submesh().clone());
        assert!(largest_free_rect(&m, 3, 3).is_none());
    }

    #[test]
    fn largest_rect_finds_l_shape_arm() {
        // Occupy a block leaving an L-shape; the largest free rect in
        //   . . . . .
        //   . . . . .
        //   X X X . .
        //   X X X . .
        // (5 wide, 4 tall, 3x2 occupied at bottom-left) is 5x2 (top) = 10.
        let mut m = Mesh::new(5, 4);
        m.occupy_submesh(&SubMesh::from_base_size(Coord::new(0, 0), 3, 2));
        let s = largest_free_rect(&m, 5, 4).unwrap();
        assert_eq!(s.size(), 10);
        assert_eq!((s.width(), s.length()), (5, 2));
        assert!(m.submesh_free(&s));
    }

    #[test]
    fn largest_rect_respects_caps() {
        let m = Mesh::new(10, 10);
        let s = largest_free_rect(&m, 3, 10).unwrap();
        assert!(s.width() <= 3);
        assert_eq!(s.size(), 30);
        let s = largest_free_rect(&m, 10, 2).unwrap();
        assert!(s.length() <= 2);
        assert_eq!(s.size(), 20);
    }

    #[test]
    fn largest_rect_single_free_node() {
        let mut m = Mesh::new(3, 3);
        for c in m.full_submesh().iter().collect::<Vec<_>>() {
            if c != Coord::new(2, 2) {
                m.occupy(c);
            }
        }
        let s = largest_free_rect(&m, 3, 3).unwrap();
        assert_eq!(s.size(), 1);
        assert_eq!(s.base, Coord::new(2, 2));
    }

    #[test]
    fn find_matches_naive_scan_on_random_meshes() {
        // the interval-driven search must return exactly what a full
        // row-major probe over the occupancy grid returns (same first
        // base), on many random occupancy patterns
        let mut seed = 99u64;
        for case in 0..60 {
            let mut m = Mesh::new(10, 8);
            for y in 0..8u16 {
                for x in 0..10u16 {
                    seed = seed
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    if (seed >> 33) % 10 < 3 + case % 5 {
                        m.occupy(Coord::new(x, y));
                    }
                }
            }
            for (w, l) in [(1u16, 1u16), (2, 2), (3, 2), (2, 5), (4, 4), (10, 8)] {
                let naive = (0..=(8 - l))
                    .flat_map(|y| (0..=(10 - w)).map(move |x| (x, y)))
                    .map(|(x, y)| SubMesh::from_base_size(Coord::new(x, y), w, l))
                    .find(|s| m.submesh_free(s));
                assert_eq!(find_free_submesh(&m, w, l), naive, "case {case} shape {w}x{l}");
            }
        }
    }

    #[test]
    fn intersect_intervals_matches_set_semantics() {
        let a = [(0u16, 3u16), (5, 5), (8, 12)];
        let b = [(2u16, 6u16), (9, 9), (11, 14)];
        let mut out = Vec::new();
        intersect_intervals(&a, &b, &mut out);
        assert_eq!(out, vec![(2, 3), (5, 5), (9, 9), (11, 12)]);
        intersect_intervals(&a, &[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn largest_rect_result_is_free() {
        // pseudo-random pattern, exhaustively verify result freeness and
        // that no *strictly larger* capped free rect exists.
        let mut m = Mesh::new(7, 6);
        let mut seed = 12345u64;
        for y in 0..6u16 {
            for x in 0..7u16 {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if (seed >> 33).is_multiple_of(3) {
                    m.occupy(Coord::new(x, y));
                }
            }
        }
        for (cw, cl) in [(7u16, 6u16), (3, 3), (2, 6), (7, 1)] {
            if let Some(s) = largest_free_rect(&m, cw, cl) {
                assert!(m.submesh_free(&s));
                assert!(s.width() <= cw && s.length() <= cl);
                // brute force: no larger free rect under caps
                let mut best = 0;
                for y0 in 0..6u16 {
                    for x0 in 0..7u16 {
                        for h in 1..=cl.min(6 - y0) {
                            for w in 1..=cw.min(7 - x0) {
                                let cand = SubMesh::from_base_size(Coord::new(x0, y0), w, h);
                                if m.submesh_free(&cand) {
                                    best = best.max(cand.size());
                                }
                            }
                        }
                    }
                }
                assert_eq!(s.size(), best, "caps ({cw},{cl})");
            }
        }
    }
}
