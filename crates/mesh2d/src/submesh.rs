//! Inclusive rectangular sub-meshes (paper §2, Definitions 1–4).

use crate::coord::Coord;
use serde::{Deserialize, Serialize};

/// A sub-mesh `S(w, l)` specified by the coordinates `(x, y, x', y')` of its
/// base (lower-left) and end (upper-right) nodes, both inclusive.
///
/// Example from the paper: `(0, 0, 2, 1)` is the `3 × 2` sub-mesh whose base
/// node is `(0, 0)` and end node is `(2, 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SubMesh {
    /// Base (lower-left) corner.
    pub base: Coord,
    /// End (upper-right) corner, inclusive.
    pub end: Coord,
}

impl SubMesh {
    /// Creates a sub-mesh from base and end corners.
    ///
    /// # Panics
    /// Panics if `end` is not at or above/right of `base`.
    pub fn new(base: Coord, end: Coord) -> Self {
        assert!(
            end.x >= base.x && end.y >= base.y,
            "invalid sub-mesh: base {base}, end {end}"
        );
        SubMesh { base, end }
    }

    /// Creates the `w × l` sub-mesh whose base corner is `base`.
    ///
    /// # Panics
    /// Panics if `w` or `l` is zero.
    pub fn from_base_size(base: Coord, w: u16, l: u16) -> Self {
        assert!(w > 0 && l > 0, "sub-mesh sides must be positive ({w} x {l})");
        SubMesh {
            base,
            end: Coord::new(base.x + w - 1, base.y + l - 1),
        }
    }

    /// Width (extent along x).
    #[inline]
    pub fn width(&self) -> u16 {
        self.end.x - self.base.x + 1
    }

    /// Length (extent along y).
    #[inline]
    pub fn length(&self) -> u16 {
        self.end.y - self.base.y + 1
    }

    /// Number of processors in the sub-mesh (`w × l`).
    #[inline]
    pub fn size(&self) -> u32 {
        self.width() as u32 * self.length() as u32
    }

    /// Whether `c` lies inside the sub-mesh.
    #[inline]
    pub fn contains(&self, c: Coord) -> bool {
        c.x >= self.base.x && c.x <= self.end.x && c.y >= self.base.y && c.y <= self.end.y
    }

    /// Whether the two sub-meshes share at least one processor.
    #[inline]
    pub fn overlaps(&self, other: &SubMesh) -> bool {
        self.base.x <= other.end.x
            && other.base.x <= self.end.x
            && self.base.y <= other.end.y
            && other.base.y <= self.end.y
    }

    /// Whether `other` lies entirely inside `self`.
    #[inline]
    pub fn contains_submesh(&self, other: &SubMesh) -> bool {
        self.contains(other.base) && self.contains(other.end)
    }

    /// Iterates over all processor coordinates in row-major order
    /// (x fastest).
    pub fn iter(&self) -> impl Iterator<Item = Coord> + '_ {
        let (bx, ex) = (self.base.x, self.end.x);
        (self.base.y..=self.end.y).flat_map(move |y| (bx..=ex).map(move |x| Coord::new(x, y)))
    }

    /// A sub-mesh is *suitable* for an `a × b` request if `w >= a` and
    /// `l >= b` (paper Definition 4).
    #[inline]
    pub fn suitable_for(&self, a: u16, b: u16) -> bool {
        self.width() >= a && self.length() >= b
    }
}

impl core::fmt::Display for SubMesh {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "S({}, {}, {}, {})[{}x{}]",
            self.base.x,
            self.base.y,
            self.end.x,
            self.end.y,
            self.width(),
            self.length()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sm(x: u16, y: u16, x2: u16, y2: u16) -> SubMesh {
        SubMesh::new(Coord::new(x, y), Coord::new(x2, y2))
    }

    #[test]
    fn paper_example_dimensions() {
        // (0, 0, 2, 1) is the 3x2 sub-mesh of Fig. 1.
        let s = sm(0, 0, 2, 1);
        assert_eq!(s.width(), 3);
        assert_eq!(s.length(), 2);
        assert_eq!(s.size(), 6);
    }

    #[test]
    fn from_base_size_round_trips() {
        let s = SubMesh::from_base_size(Coord::new(4, 5), 3, 7);
        assert_eq!(s.width(), 3);
        assert_eq!(s.length(), 7);
        assert_eq!(s.end, Coord::new(6, 11));
    }

    #[test]
    #[should_panic]
    fn zero_side_panics() {
        let _ = SubMesh::from_base_size(Coord::new(0, 0), 0, 3);
    }

    #[test]
    fn contains_boundaries() {
        let s = sm(2, 3, 5, 6);
        assert!(s.contains(Coord::new(2, 3)));
        assert!(s.contains(Coord::new(5, 6)));
        assert!(!s.contains(Coord::new(1, 3)));
        assert!(!s.contains(Coord::new(6, 6)));
        assert!(!s.contains(Coord::new(2, 7)));
    }

    #[test]
    fn overlap_cases() {
        let a = sm(0, 0, 3, 3);
        assert!(a.overlaps(&sm(3, 3, 5, 5)), "corner touch overlaps");
        assert!(a.overlaps(&sm(1, 1, 2, 2)), "containment overlaps");
        assert!(!a.overlaps(&sm(4, 0, 5, 3)), "adjacent does not overlap");
        assert!(!a.overlaps(&sm(0, 4, 3, 5)));
        assert!(sm(1, 1, 2, 2).overlaps(&a), "overlap is symmetric");
    }

    #[test]
    fn iter_covers_exactly_size() {
        let s = sm(1, 2, 4, 3);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v.len() as u32, s.size());
        assert_eq!(v[0], Coord::new(1, 2));
        assert_eq!(*v.last().unwrap(), Coord::new(4, 3));
        // all distinct
        let mut u = v.clone();
        u.sort();
        u.dedup();
        assert_eq!(u.len(), v.len());
    }

    #[test]
    fn suitability() {
        let s = sm(0, 0, 3, 5); // 4 x 6
        assert!(s.suitable_for(4, 6));
        assert!(s.suitable_for(1, 1));
        assert!(!s.suitable_for(5, 1));
        assert!(!s.suitable_for(1, 7));
    }

    #[test]
    fn contains_submesh_cases() {
        let outer = sm(0, 0, 9, 9);
        assert!(outer.contains_submesh(&sm(0, 0, 9, 9)));
        assert!(outer.contains_submesh(&sm(3, 3, 5, 5)));
        assert!(!outer.contains_submesh(&sm(5, 5, 10, 9)));
    }
}
