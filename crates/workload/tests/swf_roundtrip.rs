//! Property tests of the SWF writer/parser pair: `parse_swf(write_swf(r))`
//! must reproduce `r` exactly for any stream of integral-second records
//! (the writer emits whole seconds), and the `TraceWorkload` built from
//! either side must agree.

use proptest::prelude::*;
use workload::{parse_swf, write_swf, TraceRecord, TraceWorkload};

/// Arbitrary *valid* record: integral times (the writer's resolution),
/// positive size and runtime.
fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (0u32..2_000_000u32, 1u32..=512u32, 1u32..=200_000u32).prop_map(|(submit, size, rt)| {
        TraceRecord {
            submit_s: submit as f64,
            size,
            runtime_s: rt as f64,
        }
    })
}

proptest! {
    #[test]
    fn swf_round_trip_is_exact(recs in proptest::collection::vec(arb_record(), 1..60)) {
        let text = write_swf(&recs);
        let back = parse_swf(&text).unwrap();
        prop_assert_eq!(back, recs);
    }

    #[test]
    fn double_round_trip_is_stable(recs in proptest::collection::vec(arb_record(), 1..40)) {
        // write -> parse -> write must be byte-identical (fixed point)
        let once = write_swf(&recs);
        let twice = write_swf(&parse_swf(&once).unwrap());
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn trace_workload_agrees_across_round_trip(
        mut recs in proptest::collection::vec(arb_record(), 2..40),
        gap in 1u32..10_000u32,
    ) {
        // a workload needs a proper arrival process: space the records out
        recs.sort_by(|a, b| a.submit_s.total_cmp(&b.submit_s));
        for (i, r) in recs.iter_mut().enumerate() {
            r.submit_s += i as f64 * gap as f64;
        }
        let direct = TraceWorkload::new(recs.clone()).unwrap();
        let via_swf = TraceWorkload::from_swf(&write_swf(&recs)).unwrap();
        prop_assert_eq!(&direct, &via_swf);
        let f_direct = direct.factor_for_offered_load(352, 0.7);
        let f_swf = via_swf.factor_for_offered_load(352, 0.7);
        prop_assert!((f_direct - f_swf).abs() < 1e-12);
    }
}
