//! Differential battery: the streaming SWF parser ([`SwfRecords`]) vs
//! the retained oracle ([`parse_swf_retained`]), and the file-backed
//! streaming workload ([`TraceWorkload::open`]) vs the retained one
//! ([`TraceWorkload::from_swf`]).
//!
//! The two parsers deliberately share no code (`swf.rs` keeps an inline
//! copy of the grammar in the oracle), so every assertion here compares
//! two independent implementations. Equivalence is exact: identical
//! record sequences AND identical `SwfError`s — line number, field
//! number, offending token — on the checked-in fixture, on hand-written
//! adversarial texts, and on property-generated inputs (valid,
//! truncated at an arbitrary byte, malformed mid-stream). Every text is
//! additionally re-parsed through a 3-byte `BufReader` so `read_until`
//! crosses buffer refills mid-line.

use proptest::prelude::*;
use std::io::BufReader;
use workload::{
    parse_swf_retained, write_swf, SwfError, SwfRecords, TraceRecord, TraceWorkload,
};

/// The checked-in 600-job sample the golden CSV replays.
const SAMPLE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../results/traces/sdsc_sample.swf"
);

/// Batch-shaped result (records up to the first error) from the
/// streaming parser.
fn stream_parse(bytes: &[u8]) -> Result<Vec<TraceRecord>, SwfError> {
    SwfRecords::new(bytes).collect()
}

/// Asserts streaming == oracle on `text`, both straight from the bytes
/// and through a pathologically small buffer (chunk-boundary stress).
fn assert_equivalent(text: &str) {
    let oracle = parse_swf_retained(text);
    assert_eq!(
        stream_parse(text.as_bytes()),
        oracle,
        "streaming vs retained diverged on:\n{text:?}"
    );
    let tiny: Result<Vec<TraceRecord>, SwfError> =
        SwfRecords::new(BufReader::with_capacity(3, text.as_bytes())).collect();
    assert_eq!(
        tiny, oracle,
        "3-byte-buffer streaming diverged on:\n{text:?}"
    );
}

#[test]
fn checked_in_sample_parses_identically() {
    let text = std::fs::read_to_string(SAMPLE).expect("sample checked in");
    assert_equivalent(&text);
    let recs = parse_swf_retained(&text).unwrap();
    assert_eq!(recs.len(), 600, "sample is the documented 600-job fixture");
}

#[test]
fn adversarial_fixtures_parse_identically() {
    // one fixture per grammar branch: comments, blanks, CRLF, missing
    // final newline, skipped jobs, the field-8 fallback, each error kind
    // at assorted line positions, and text after an error (which the
    // fused streaming parser must not yield)
    let fixtures: &[&str] = &[
        "",
        "; only a comment\n",
        "\n\n;\n\n",
        "1 0 5 100 32 -1 -1 32\n",
        "1 0 5 100 32 -1 -1 32", // no trailing newline
        "; h\r\n1 0 5 100 32 -1 -1 32\r\n2 50 0 200 16 -1 -1 16\r\n",
        "  1 0 5 100 32 -1 -1 32  \n", // surrounding whitespace
        "1 0 5 -1 32 -1 -1 32\n2 10 0 100 -1 -1 -1 -1\n3 20 0 100 8 -1 -1 8\n",
        "1 0 5 100 -1 -1 -1 16\n", // allocated unknown -> requested
        "1 0 5 100 0 -1 -1 0\n",   // both zero: skipped
        "1 0 5 -3 32 -1 -1 32\n",  // negative runtime: skipped
        "1 0 5 100 32 -1 -1 bad\n", // field 8 malformed but unused
        "1 2 3\n",                  // too few fields, line 1
        "; h\n\n1 0 5 100 32 -1 -1 32\n1 2 3 4 5 6 7\n", // too few, line 4
        "1 x 3 100 32 -1 -1 32\n",  // bad submit
        "1 0 3 ?? 32 -1 -1 32\n",   // bad runtime
        "1 0 3 100 n/a -1 -1 32\n", // bad allocated
        "1 0 3 100 -1 -1 -1 bad\n", // bad requested (consulted)
        "1 inf 3 100 32 -1 -1 32\n",
        "1 0 3 100 nan -1 -1 32\n",
        // error mid-stream with valid lines after it (poisoned tail)
        "1 0 5 100 32 -1 -1 32\nbroken line\n2 50 0 200 16 -1 -1 16\n",
    ];
    for text in fixtures {
        assert_equivalent(text);
    }
}

#[test]
fn open_matches_from_swf_on_a_sorted_file() {
    let text = std::fs::read_to_string(SAMPLE).expect("sample checked in");
    let retained = TraceWorkload::from_swf(&text).expect("sample parses");
    let streaming = TraceWorkload::open(SAMPLE).expect("sample opens");
    assert!(streaming.is_streaming(), "sorted file must stream");
    assert!(streaming.records().is_none(), "file source retains nothing");

    // the one-pass online statistics are bit-identical to the batch
    // path's (the sums accumulate in the same record order), so every
    // derived scaling factor is too
    assert_eq!(streaming.len(), retained.len());
    assert_eq!(
        streaming.mean_interarrival_s().to_bits(),
        retained.mean_interarrival_s().to_bits(),
        "mean inter-arrival must be bit-identical"
    );
    assert_eq!(
        streaming.mean_work().to_bits(),
        retained.mean_work().to_bits(),
        "mean work must be bit-identical"
    );
    for rho in [0.3, 0.7, 1.2] {
        assert_eq!(
            streaming.factor_for_offered_load(352, rho).to_bits(),
            retained.factor_for_offered_load(352, rho).to_bits()
        );
    }

    // record iteration and the scaled job stream agree with the
    // materialized oracle
    assert!(streaming.iter_records().eq(retained.iter_records()));
    assert_eq!(streaming, retained);
    let batch = retained.jobs_at_load(16, 22, 0.7, 360.0);
    let lazy: Vec<_> = streaming
        .stream_jobs(16, 22, 0.7, 360.0, 0)
        .take(batch.len())
        .collect();
    assert_eq!(lazy, batch);
}

#[test]
fn open_falls_back_to_retained_for_unsorted_files() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("procsim_unsorted_{}.swf", std::process::id()));
    // two jobs out of submit order: the streaming path would corrupt the
    // span statistics, so open() must retain and sort instead
    let text = "1 500 5 100 32 -1 -1 32\n2 0 5 100 16 -1 -1 16\n3 900 5 100 8 -1 -1 8\n";
    std::fs::write(&path, text).unwrap();
    let opened = TraceWorkload::open(&path).expect("unsorted file still loads");
    assert!(!opened.is_streaming(), "unsorted input falls back to memory");
    let retained = TraceWorkload::from_swf(text).unwrap();
    assert_eq!(opened, retained);
    assert_eq!(
        opened.mean_interarrival_s().to_bits(),
        retained.mean_interarrival_s().to_bits()
    );
    std::fs::remove_file(&path).ok();
}

/// Valid record with integral times (the writer's resolution).
fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (0u32..2_000_000u32, 1u32..=512u32, 1u32..=200_000u32).prop_map(|(submit, size, rt)| {
        TraceRecord {
            submit_s: submit as f64,
            size,
            runtime_s: rt as f64,
        }
    })
}

/// Junk tokens covering the `BadField` and non-finite branches.
const BAD_TOKENS: [&str; 5] = ["x", "??", "12..5", "inf", "nan"];

proptest! {
    #[test]
    fn generated_valid_swf_parses_identically(
        recs in proptest::collection::vec(arb_record(), 1..80),
    ) {
        let text = write_swf(&recs);
        assert_equivalent(&text);
        prop_assert_eq!(stream_parse(text.as_bytes()).unwrap(), recs);
    }

    #[test]
    fn truncated_swf_parses_identically(
        recs in proptest::collection::vec(arb_record(), 1..40),
        cut in 0u32..10_000u32,
    ) {
        // cutting the text at an arbitrary byte leaves a final line with
        // too few fields, a half-token, or nothing — both parsers must
        // agree on records AND on the error (SWF is ASCII, so any byte
        // index is a char boundary)
        let text = write_swf(&recs);
        let cut = cut as usize % (text.len() + 1);
        assert_equivalent(&text[..cut]);
    }

    #[test]
    fn malformed_token_mid_stream_parses_identically(
        recs in proptest::collection::vec(arb_record(), 2..40),
        line_pick in 0u32..1000u32,
        field_pick in 0u32..18u32,
        token_pick in 0u32..(BAD_TOKENS.len() as u32),
    ) {
        // corrupt one field of one job line; both parsers must yield the
        // same prefix and, when the field is one the grammar consumes,
        // the same (line, field, token) error
        let text = write_swf(&recs);
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        let job_lines: Vec<usize> = (0..lines.len())
            .filter(|&i| !lines[i].trim().is_empty() && !lines[i].trim().starts_with(';'))
            .collect();
        let target = job_lines[line_pick as usize % job_lines.len()];
        let mut fields: Vec<String> =
            lines[target].split_whitespace().map(str::to_string).collect();
        let fi = field_pick as usize % fields.len();
        fields[fi] = BAD_TOKENS[token_pick as usize].to_string();
        lines[target] = fields.join(" ");
        let corrupted = lines.join("\n") + "\n";
        assert_equivalent(&corrupted);
    }
}
