//! Trace summary statistics — the quantities the paper quotes when
//! characterizing the SDSC workload (§5) and the quantities our synthetic
//! models are validated against.

use crate::TraceRecord;

/// Summary statistics of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Number of jobs in the trace.
    pub jobs: usize,
    /// Mean inter-arrival time (seconds).
    pub mean_interarrival_s: f64,
    /// Coefficient of variation of inter-arrival gaps (1 = Poisson,
    /// > 1 = bursty).
    pub interarrival_cv: f64,
    /// Mean job size (nodes).
    pub mean_size: f64,
    /// Largest job size (nodes).
    pub max_size: u32,
    /// Fraction of jobs whose size is a power of two.
    pub pow2_fraction: f64,
    /// Mean runtime (seconds).
    pub mean_runtime_s: f64,
    /// Median runtime (seconds).
    pub median_runtime_s: f64,
}

/// Computes summary statistics. Returns `None` for traces with fewer than
/// two jobs (no inter-arrival gaps to characterize).
pub fn summarize(records: &[TraceRecord]) -> Option<TraceSummary> {
    if records.len() < 2 {
        return None;
    }
    let n = records.len() as f64;
    let gaps: Vec<f64> = records
        .windows(2)
        .map(|w| (w[1].submit_s - w[0].submit_s).max(0.0))
        .collect();
    // procsim-lint: allow(D003): slice iteration in index order; the same record list always sums in the same order
    let gap_mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
    let gap_var = gaps
        .iter()
        .map(|g| (g - gap_mean) * (g - gap_mean))
        // procsim-lint: allow(D003): slice iteration in index order; the same record list always sums in the same order
        .sum::<f64>()
        / gaps.len() as f64;
    let cv = if gap_mean > 0.0 {
        gap_var.sqrt() / gap_mean
    } else {
        0.0
    };
    // procsim-lint: allow(D003): slice iteration in index order; the same record list always sums in the same order
    let mean_size = records.iter().map(|r| r.size as f64).sum::<f64>() / n;
    let pow2 = records.iter().filter(|r| r.size.is_power_of_two()).count() as f64 / n;
    // procsim-lint: allow(D003): slice iteration in index order; the same record list always sums in the same order
    let mean_rt = records.iter().map(|r| r.runtime_s).sum::<f64>() / n;
    let mut rts: Vec<f64> = records.iter().map(|r| r.runtime_s).collect();
    rts.sort_by(f64::total_cmp);
    Some(TraceSummary {
        jobs: records.len(),
        mean_interarrival_s: gap_mean,
        interarrival_cv: cv,
        mean_size,
        max_size: records.iter().map(|r| r.size).max().unwrap_or(0),
        pow2_fraction: pow2,
        mean_runtime_s: mean_rt,
        median_runtime_s: rts[rts.len() / 2],
    })
}

/// Online (single-pass, O(1)-memory) summary builder for streamed traces.
///
/// Push records in submit order, then [`finish`](Self::finish). Every
/// statistic matches [`summarize`] up to floating-point associativity
/// except the runtime median, which is estimated from a fixed
/// 64-bucket log₂ histogram (reported as the geometric midpoint of the
/// bucket holding the median — within a factor of √2 of the exact
/// value, documented in `docs/WORKLOADS.md`). Means use Welford-style
/// running updates, so a million-job stream summarizes without being
/// retained.
#[derive(Debug, Clone)]
pub struct StreamingSummary {
    jobs: usize,
    prev_submit: f64,
    gap_mean: f64,
    gap_m2: f64,
    size_sum: f64,
    max_size: u32,
    pow2: usize,
    runtime_sum: f64,
    runtime_buckets: [u64; 64],
}

impl StreamingSummary {
    /// An empty builder.
    pub fn new() -> Self {
        StreamingSummary {
            jobs: 0,
            prev_submit: 0.0,
            gap_mean: 0.0,
            gap_m2: 0.0,
            size_sum: 0.0,
            max_size: 0,
            pow2: 0,
            runtime_sum: 0.0,
            runtime_buckets: [0u64; 64],
        }
    }

    /// Folds one record in (records must arrive in submit order, as they
    /// do from a validated trace stream).
    pub fn push(&mut self, r: &TraceRecord) {
        if self.jobs > 0 {
            // Welford update over inter-arrival gaps
            let gap = (r.submit_s - self.prev_submit).max(0.0);
            let k = self.jobs as f64; // gap count after this one
            let delta = gap - self.gap_mean;
            self.gap_mean += delta / k;
            self.gap_m2 += delta * (gap - self.gap_mean);
        }
        self.prev_submit = r.submit_s;
        self.jobs += 1;
        self.size_sum += r.size as f64;
        self.max_size = self.max_size.max(r.size);
        if r.size.is_power_of_two() {
            self.pow2 += 1;
        }
        self.runtime_sum += r.runtime_s;
        let bucket = (r.runtime_s.max(1.0).log2() as usize).min(63);
        self.runtime_buckets[bucket] += 1;
    }

    /// The summary, or `None` for fewer than two records (no gaps).
    pub fn finish(&self) -> Option<TraceSummary> {
        if self.jobs < 2 {
            return None;
        }
        let n = self.jobs as f64;
        let gaps = (self.jobs - 1) as f64;
        let gap_var = self.gap_m2 / gaps; // population variance, as summarize()
        let cv = if self.gap_mean > 0.0 {
            gap_var.sqrt() / self.gap_mean
        } else {
            0.0
        };
        // median estimate: the bucket containing the (n/2)-th runtime,
        // reported at its geometric midpoint 2^(b + 0.5)
        let target = self.jobs / 2;
        let mut seen = 0u64;
        let mut median = 1.0f64;
        for (b, &count) in self.runtime_buckets.iter().enumerate() {
            seen += count;
            if seen > target as u64 {
                median = 2f64.powf(b as f64 + 0.5);
                break;
            }
        }
        Some(TraceSummary {
            jobs: self.jobs,
            mean_interarrival_s: self.gap_mean,
            interarrival_cv: cv,
            mean_size: self.size_sum / n,
            max_size: self.max_size,
            pow2_fraction: self.pow2 as f64 / n,
            mean_runtime_s: self.runtime_sum / n,
            median_runtime_s: median,
        })
    }
}

impl Default for StreamingSummary {
    fn default() -> Self {
        Self::new()
    }
}

/// Summarizes a record stream in one pass with O(1) memory (see
/// [`StreamingSummary`] for the median caveat).
pub fn summarize_stream(records: impl IntoIterator<Item = TraceRecord>) -> Option<TraceSummary> {
    let mut s = StreamingSummary::new();
    for r in records {
        s.push(&r);
    }
    s.finish()
}

impl core::fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "jobs:                {}", self.jobs)?;
        writeln!(f, "mean inter-arrival:  {:.1} s (CV {:.2})", self.mean_interarrival_s, self.interarrival_cv)?;
        writeln!(f, "mean size:           {:.1} nodes (max {})", self.mean_size, self.max_size)?;
        writeln!(f, "power-of-two sizes:  {:.1}%", self.pow2_fraction * 100.0)?;
        write!(
            f,
            "runtime:             mean {:.0} s, median {:.0} s",
            self.mean_runtime_s, self.median_runtime_s
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cm5Model, ParagonModel};
    use desim::SimRng;

    #[test]
    fn too_short_traces_rejected() {
        assert!(summarize(&[]).is_none());
        assert!(summarize(&[TraceRecord {
            submit_s: 0.0,
            size: 1,
            runtime_s: 1.0
        }])
        .is_none());
    }

    #[test]
    fn hand_built_trace() {
        let recs = vec![
            TraceRecord { submit_s: 0.0, size: 4, runtime_s: 10.0 },
            TraceRecord { submit_s: 100.0, size: 7, runtime_s: 30.0 },
            TraceRecord { submit_s: 200.0, size: 8, runtime_s: 20.0 },
        ];
        let s = summarize(&recs).unwrap();
        assert_eq!(s.jobs, 3);
        assert!((s.mean_interarrival_s - 100.0).abs() < 1e-9);
        assert!(s.interarrival_cv.abs() < 1e-9, "constant gaps -> CV 0");
        assert!((s.mean_size - 19.0 / 3.0).abs() < 1e-9);
        assert!((s.pow2_fraction - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.max_size, 8);
        assert_eq!(s.median_runtime_s, 20.0);
    }

    #[test]
    fn paragon_vs_cm5_signatures() {
        // the two models must differ exactly where the machines did:
        // power-of-two fraction and arrival burstiness
        let mut rng = SimRng::new(12);
        let p = summarize(&ParagonModel::default().generate(&mut rng)).unwrap();
        let c = summarize(&Cm5Model::default().generate(&mut rng)).unwrap();
        assert!(p.pow2_fraction < 0.25, "Paragon {}", p.pow2_fraction);
        assert!((c.pow2_fraction - 1.0).abs() < 1e-9, "CM-5 all pow2");
        assert!(p.interarrival_cv > 1.3, "Paragon bursty");
        assert!(c.interarrival_cv < 1.2, "CM-5 model Poissonian");
        assert!(c.mean_size > p.mean_size, "CM-5 partitions larger");
    }

    #[test]
    fn streaming_summary_matches_batch() {
        let recs = ParagonModel { jobs: 2_000, ..Default::default() }
            .generate(&mut SimRng::new(7));
        let batch = summarize(&recs).unwrap();
        let stream = summarize_stream(recs.iter().copied()).unwrap();
        assert_eq!(stream.jobs, batch.jobs);
        assert_eq!(stream.max_size, batch.max_size);
        assert!((stream.pow2_fraction - batch.pow2_fraction).abs() < 1e-12);
        // Welford vs two-pass: equal up to float associativity
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * b.abs().max(1.0);
        assert!(close(stream.mean_interarrival_s, batch.mean_interarrival_s));
        assert!(close(stream.interarrival_cv, batch.interarrival_cv));
        assert!(close(stream.mean_size, batch.mean_size));
        assert!(close(stream.mean_runtime_s, batch.mean_runtime_s));
        // histogram median: within the documented factor-sqrt(2) band
        let ratio = stream.median_runtime_s / batch.median_runtime_s;
        assert!(
            (ratio - 1.0).abs() < 0.5,
            "median estimate {} vs exact {}",
            stream.median_runtime_s,
            batch.median_runtime_s
        );
    }

    #[test]
    fn streaming_summary_too_short() {
        assert!(summarize_stream(std::iter::empty()).is_none());
        assert!(summarize_stream(std::iter::once(TraceRecord {
            submit_s: 0.0,
            size: 1,
            runtime_s: 1.0
        }))
        .is_none());
    }

    #[test]
    fn display_renders() {
        let recs = ParagonModel { jobs: 100, ..Default::default() }
            .generate(&mut SimRng::new(3));
        let text = summarize(&recs).unwrap().to_string();
        assert!(text.contains("mean size"));
        assert!(text.contains("power-of-two"));
    }
}
