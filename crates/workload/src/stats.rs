//! Trace summary statistics — the quantities the paper quotes when
//! characterizing the SDSC workload (§5) and the quantities our synthetic
//! models are validated against.

use crate::TraceRecord;

/// Summary statistics of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Number of jobs in the trace.
    pub jobs: usize,
    /// Mean inter-arrival time (seconds).
    pub mean_interarrival_s: f64,
    /// Coefficient of variation of inter-arrival gaps (1 = Poisson,
    /// > 1 = bursty).
    pub interarrival_cv: f64,
    /// Mean job size (nodes).
    pub mean_size: f64,
    /// Largest job size (nodes).
    pub max_size: u32,
    /// Fraction of jobs whose size is a power of two.
    pub pow2_fraction: f64,
    /// Mean runtime (seconds).
    pub mean_runtime_s: f64,
    /// Median runtime (seconds).
    pub median_runtime_s: f64,
}

/// Computes summary statistics. Returns `None` for traces with fewer than
/// two jobs (no inter-arrival gaps to characterize).
pub fn summarize(records: &[TraceRecord]) -> Option<TraceSummary> {
    if records.len() < 2 {
        return None;
    }
    let n = records.len() as f64;
    let gaps: Vec<f64> = records
        .windows(2)
        .map(|w| (w[1].submit_s - w[0].submit_s).max(0.0))
        .collect();
    // procsim-lint: allow(D003): slice iteration in index order; the same record list always sums in the same order
    let gap_mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
    let gap_var = gaps
        .iter()
        .map(|g| (g - gap_mean) * (g - gap_mean))
        // procsim-lint: allow(D003): slice iteration in index order; the same record list always sums in the same order
        .sum::<f64>()
        / gaps.len() as f64;
    let cv = if gap_mean > 0.0 {
        gap_var.sqrt() / gap_mean
    } else {
        0.0
    };
    // procsim-lint: allow(D003): slice iteration in index order; the same record list always sums in the same order
    let mean_size = records.iter().map(|r| r.size as f64).sum::<f64>() / n;
    let pow2 = records.iter().filter(|r| r.size.is_power_of_two()).count() as f64 / n;
    // procsim-lint: allow(D003): slice iteration in index order; the same record list always sums in the same order
    let mean_rt = records.iter().map(|r| r.runtime_s).sum::<f64>() / n;
    let mut rts: Vec<f64> = records.iter().map(|r| r.runtime_s).collect();
    rts.sort_by(f64::total_cmp);
    Some(TraceSummary {
        jobs: records.len(),
        mean_interarrival_s: gap_mean,
        interarrival_cv: cv,
        mean_size,
        max_size: records.iter().map(|r| r.size).max().unwrap_or(0),
        pow2_fraction: pow2,
        mean_runtime_s: mean_rt,
        median_runtime_s: rts[rts.len() / 2],
    })
}

impl core::fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "jobs:                {}", self.jobs)?;
        writeln!(f, "mean inter-arrival:  {:.1} s (CV {:.2})", self.mean_interarrival_s, self.interarrival_cv)?;
        writeln!(f, "mean size:           {:.1} nodes (max {})", self.mean_size, self.max_size)?;
        writeln!(f, "power-of-two sizes:  {:.1}%", self.pow2_fraction * 100.0)?;
        write!(
            f,
            "runtime:             mean {:.0} s, median {:.0} s",
            self.mean_runtime_s, self.median_runtime_s
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cm5Model, ParagonModel};
    use desim::SimRng;

    #[test]
    fn too_short_traces_rejected() {
        assert!(summarize(&[]).is_none());
        assert!(summarize(&[TraceRecord {
            submit_s: 0.0,
            size: 1,
            runtime_s: 1.0
        }])
        .is_none());
    }

    #[test]
    fn hand_built_trace() {
        let recs = vec![
            TraceRecord { submit_s: 0.0, size: 4, runtime_s: 10.0 },
            TraceRecord { submit_s: 100.0, size: 7, runtime_s: 30.0 },
            TraceRecord { submit_s: 200.0, size: 8, runtime_s: 20.0 },
        ];
        let s = summarize(&recs).unwrap();
        assert_eq!(s.jobs, 3);
        assert!((s.mean_interarrival_s - 100.0).abs() < 1e-9);
        assert!(s.interarrival_cv.abs() < 1e-9, "constant gaps -> CV 0");
        assert!((s.mean_size - 19.0 / 3.0).abs() < 1e-9);
        assert!((s.pow2_fraction - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.max_size, 8);
        assert_eq!(s.median_runtime_s, 20.0);
    }

    #[test]
    fn paragon_vs_cm5_signatures() {
        // the two models must differ exactly where the machines did:
        // power-of-two fraction and arrival burstiness
        let mut rng = SimRng::new(12);
        let p = summarize(&ParagonModel::default().generate(&mut rng)).unwrap();
        let c = summarize(&Cm5Model::default().generate(&mut rng)).unwrap();
        assert!(p.pow2_fraction < 0.25, "Paragon {}", p.pow2_fraction);
        assert!((c.pow2_fraction - 1.0).abs() < 1e-9, "CM-5 all pow2");
        assert!(p.interarrival_cv > 1.3, "Paragon bursty");
        assert!(c.interarrival_cv < 1.2, "CM-5 model Poissonian");
        assert!(c.mean_size > p.mean_size, "CM-5 partitions larger");
    }

    #[test]
    fn display_renders() {
        let recs = ParagonModel { jobs: 100, ..Default::default() }
            .generate(&mut SimRng::new(3));
        let text = summarize(&recs).unwrap().to_string();
        assert!(text.contains("mean size"));
        assert!(text.contains("power-of-two"));
    }
}
