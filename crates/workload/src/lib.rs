//! # workload — job streams for the mesh simulator
//!
//! The paper drives its experiments with two workload classes (§5):
//!
//! 1. **Stochastic** ([`stochastic`]): exponential inter-arrival times;
//!    request side lengths drawn either uniformly over `[1, W] × [1, L]`
//!    or exponentially with mean half the mesh sides (clamped); per-job
//!    message counts exponential with mean `num_mes = 5`.
//! 2. **Real trace** ([`paragon`], [`swf`]): a stream of 10 658 production
//!    jobs from the 352-node partition of the Intel Paragon at the San
//!    Diego Supercomputer Center, with mean inter-arrival time 1186.7 s,
//!    mean job size 34.5 nodes, and sizes favouring non-powers-of-two.
//!    The original trace is not redistributable; [`paragon`] synthesizes a
//!    statistically matched stand-in (documented in DESIGN.md §3), and
//!    [`swf`] reads any Standard-Workload-Format file so the genuine trace
//!    can be dropped in unchanged.
//!
//! Both classes are normalized into a stream of [`JobSpec`]s; the system
//! load is controlled by the arrival-rate parameter for stochastic
//! workloads and by the paper's arrival-scaling factor `f` for traces
//! (wrapped, for genuine SWF files, by [`TraceWorkload`] which targets an
//! *offered load* — see `docs/WORKLOADS.md`).
//!
//! Trace replay is a **streaming pipeline**: [`swf::SwfRecords`] parses
//! one record at a time from any `BufRead` source,
//! [`TraceWorkload::open`] validates a file and computes scaling
//! statistics in one online pass, and [`trace::ScaledJobs`] applies the
//! offered-load factor lazily — so million-job archive logs replay in
//! memory bounded by the live-job count, not the trace length
//! (`docs/WORKLOADS.md` § Streaming pipeline).

pub mod cm5;
pub mod paragon;
pub mod stats;
pub mod stochastic;
pub mod swf;
pub mod trace;

use desim::Time;
use serde::{Deserialize, Serialize};

pub use cm5::Cm5Model;
pub use paragon::{
    factor_for_load, load_for_factor, scale_trace_record, trace_to_jobs, ParagonModel, TraceRecord,
};
pub use stats::{summarize, summarize_stream, StreamingSummary, TraceSummary};
pub use stochastic::{SideDist, StochasticGen};
pub use swf::{
    parse_swf, parse_swf_retained, write_swf, write_swf_to, SwfError, SwfErrorKind, SwfRecords,
};
pub use trace::{RecordIter, ScaledJobs, TraceError, TraceWorkload};

/// One job as consumed by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Stream-unique id.
    pub id: u64,
    /// Arrival (submission) time in cycles.
    pub arrive: Time,
    /// Requested sub-mesh width.
    pub a: u16,
    /// Requested sub-mesh length.
    pub b: u16,
    /// Messages each allocated processor sends (the paper's `num_mes`
    /// draw for stochastic jobs; scaled runtime for trace jobs).
    pub msgs_per_node: u32,
    /// A-priori service-demand estimate used by the SSD scheduler
    /// (total packet count: `msgs_per_node × a × b`).
    pub service_demand: f64,
}

impl JobSpec {
    /// Requested processor count.
    pub fn size(&self) -> u32 {
        self.a as u32 * self.b as u32
    }
}

/// Chooses a near-square `a × b` request shape for a plain processor
/// count `p` (needed when feeding trace jobs, which carry sizes but not
/// shapes, to shape-based allocators). Guarantees `a·b >= p`, `a <= w`,
/// `b <= l`, and minimal overshoot among near-square options.
pub fn shape_for_size(p: u32, w: u16, l: u16) -> (u16, u16) {
    let cap = w as u32 * l as u32;
    let p = p.clamp(1, cap);
    let mut best: Option<(u32, (u16, u16))> = None;
    // scan widths; the b that pairs with each a is forced
    for a in 1..=w {
        let b = p.div_ceil(a as u32);
        if b > l as u32 {
            continue;
        }
        let over = a as u32 * b - p;
        let squareness = (a as i32 - b as i32).unsigned_abs();
        // prefer minimal overshoot, then squarest
        let key = over * 1000 + squareness;
        if best.is_none_or(|(k, _)| key < k) {
            best = Some((key, (a, b as u16)));
        }
    }
    // procsim-lint: allow(D004): invariant: callers clamp p <= w*l, and shape (w, ceil(p/w)) is always a candidate
    best.expect("invariant: p <= w*l always has a shape").1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_covers_and_fits() {
        for p in 1..=352u32 {
            let (a, b) = shape_for_size(p, 16, 22);
            assert!((1..=16).contains(&a));
            assert!((1..=22).contains(&b));
            assert!(a as u32 * b as u32 >= p, "p={p} got {a}x{b}");
        }
    }

    #[test]
    fn shape_exact_for_perfect_fits() {
        assert_eq!(shape_for_size(16, 16, 22), (4, 4));
        assert_eq!(shape_for_size(352, 16, 22), (16, 22));
        assert_eq!(shape_for_size(1, 16, 22), (1, 1));
        // 35 = 5x7 exactly
        let (a, b) = shape_for_size(35, 16, 22);
        assert_eq!(a as u32 * b as u32, 35);
    }

    #[test]
    fn shape_minimal_overshoot() {
        // 34 = 2x17 exceeds L? 17 <= 22 so exact fit exists
        let (a, b) = shape_for_size(34, 16, 22);
        assert_eq!(a as u32 * b as u32, 34);
        // prime larger than both sides: 37 = 1x37 impossible; minimal
        // overshoot shape must waste at most a couple of processors
        let (a, b) = shape_for_size(37, 16, 22);
        let over = a as u32 * b as u32 - 37;
        assert!(over <= 3, "{a}x{b} overshoots by {over}");
    }

    #[test]
    fn shape_clamps_oversized() {
        assert_eq!(shape_for_size(10_000, 16, 22), (16, 22));
        assert_eq!(shape_for_size(0, 16, 22), (1, 1));
    }

    #[test]
    fn jobspec_size() {
        let j = JobSpec {
            id: 0,
            arrive: 0,
            a: 3,
            b: 7,
            msgs_per_node: 5,
            service_demand: 105.0,
        };
        assert_eq!(j.size(), 21);
    }
}
