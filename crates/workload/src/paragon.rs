//! Synthetic SDSC Intel Paragon trace model.
//!
//! The paper drives its "real workload" experiments with a trace of 10 658
//! production jobs from the 352-node partition of the SDSC Paragon
//! (obtained privately from the Feitelson archive). That trace cannot be
//! redistributed, so this module synthesizes a statistically matched
//! stand-in that preserves the properties the paper's conclusions rest on
//! (see DESIGN.md §3):
//!
//! * mean inter-arrival time 1186.7 s, with super-Poissonian burstiness
//!   (hyperexponential mixture, CV ≈ 2) typical of production arrivals;
//! * mean job size ≈ 34.5 nodes with a long tail and a distribution
//!   *favouring non-powers-of-two* — the property that demotes MBS in the
//!   trace-driven figures;
//! * heavy-tailed (lognormal) runtimes, which become per-job communication
//!   demand.
//!
//! A genuine SWF trace can replace this model at any time via
//! [`crate::swf::parse_swf`] + [`trace_to_jobs`].

use crate::{shape_for_size, JobSpec};
use desim::{SimRng, Time};
use serde::{Deserialize, Serialize};

/// One raw trace record (times in seconds, as in workload archives).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Submission time, seconds from trace start.
    pub submit_s: f64,
    /// Processors used.
    pub size: u32,
    /// Runtime in seconds.
    pub runtime_s: f64,
}

/// Parameters of the synthetic Paragon model (defaults reproduce the
/// statistics quoted in the paper §5).
#[derive(Debug, Clone)]
pub struct ParagonModel {
    /// Number of jobs (paper: 10 658).
    pub jobs: usize,
    /// Mean inter-arrival time in seconds (paper: 1186.7).
    pub mean_interarrival_s: f64,
    /// Probability of a "burst" (short-gap) arrival in the
    /// hyperexponential mixture.
    pub burst_prob: f64,
    /// Mean of the short gap, as a fraction of the overall mean.
    pub burst_frac: f64,
    /// Target mean job size in nodes (paper: 34.5).
    pub mean_size: f64,
    /// Lognormal sigma of the size distribution (controls the tail).
    pub size_sigma: f64,
    /// Machine size: sizes are clamped to this (paper: 352).
    pub max_size: u32,
    /// Lognormal median runtime in seconds.
    pub runtime_median_s: f64,
    /// Lognormal sigma of runtimes.
    pub runtime_sigma: f64,
}

impl Default for ParagonModel {
    fn default() -> Self {
        ParagonModel {
            jobs: 10_658,
            mean_interarrival_s: 1186.7,
            burst_prob: 0.65,
            burst_frac: 0.25,
            mean_size: 34.5,
            size_sigma: 1.05,
            max_size: 352,
            runtime_median_s: 600.0,
            runtime_sigma: 1.6,
        }
    }
}

impl ParagonModel {
    /// Draws one job size. Lognormal body tuned to the target mean, with
    /// a nudge off powers of two: production Paragon jobs mostly asked for
    /// "however many nodes the problem needed", and the paper highlights
    /// that the distribution favours non-powers-of-two.
    fn draw_size(&self, rng: &mut SimRng) -> u32 {
        // lognormal mean = exp(mu + sigma^2/2) => mu from target mean
        let mu = self.mean_size.ln() - self.size_sigma * self.size_sigma / 2.0;
        let mut size = rng.lognormal(mu, self.size_sigma).round() as u32;
        size = size.clamp(1, self.max_size);
        // push most power-of-two draws off the power (asymmetric to keep
        // non-power-of-two dominance without shifting the mean much)
        if size.is_power_of_two() && size > 1 && rng.chance(0.7) {
            size = if rng.chance(0.5) && size < self.max_size {
                size + 1 + rng.uniform_incl(0, 2) as u32
            } else {
                size - 1 - (rng.uniform_incl(0, 2) as u32).min(size - 2)
            };
            size = size.clamp(1, self.max_size);
        }
        size
    }

    /// Draws one inter-arrival gap in seconds (hyperexponential, mean
    /// `mean_interarrival_s`).
    fn draw_gap(&self, rng: &mut SimRng) -> f64 {
        let short_mean = self.mean_interarrival_s * self.burst_frac;
        let long_mean = (self.mean_interarrival_s - self.burst_prob * short_mean)
            / (1.0 - self.burst_prob);
        if rng.chance(self.burst_prob) {
            rng.exp(short_mean)
        } else {
            rng.exp(long_mean)
        }
    }

    /// Lazily generates the synthetic trace, one record per `next()`.
    ///
    /// Draw order per job (gap, size, runtime) is identical to
    /// [`generate`](Self::generate), so for the same seed the stream and
    /// the batch are record-for-record equal — `gen-trace` pipes this
    /// straight into [`crate::swf::write_swf_to`] to write million-job
    /// fixtures in O(1) memory.
    pub fn stream<'a>(&'a self, rng: &'a mut SimRng) -> impl Iterator<Item = TraceRecord> + 'a {
        let mu_rt = self.runtime_median_s.ln();
        let mut t = 0.0f64;
        (0..self.jobs).map(move |_| {
            t += self.draw_gap(rng);
            TraceRecord {
                submit_s: t,
                size: self.draw_size(rng),
                runtime_s: rng.lognormal(mu_rt, self.runtime_sigma).max(1.0),
            }
        })
    }

    /// Generates the full synthetic trace (a `collect()` of
    /// [`stream`](Self::stream)).
    pub fn generate(&self, rng: &mut SimRng) -> Vec<TraceRecord> {
        self.stream(rng).collect()
    }
}

/// Converts trace records into simulator jobs.
///
/// * Arrival times are multiplied by the paper's scaling factor `f`
///   (`f < 1` compresses the trace, increasing system load) and mapped
///   1 s → 1 cycle.
/// * Sizes become near-square `a × b` requests via
///   [`shape_for_size`].
/// * Runtimes become per-processor message counts
///   `max(1, runtime / runtime_scale)` — the communication volume the
///   simulator turns back into an *observed* service time (the paper's
///   service times are simulator outputs even for the trace workload).
pub fn trace_to_jobs(
    records: &[TraceRecord],
    mesh_w: u16,
    mesh_l: u16,
    f: f64,
    runtime_scale: f64,
) -> Vec<JobSpec> {
    assert!(f > 0.0 && runtime_scale > 0.0);
    records
        .iter()
        .enumerate()
        .map(|(i, r)| scale_trace_record(r, i as u64, mesh_w, mesh_l, f, runtime_scale))
        .collect()
}

/// Scales one trace record into the simulator job [`trace_to_jobs`]
/// would emit at stream index `i`.
///
/// The per-record arithmetic lives here so the batch converter and the
/// streaming [`crate::trace::ScaledJobs`] cursor are bit-identical by
/// construction.
pub fn scale_trace_record(
    r: &TraceRecord,
    i: u64,
    mesh_w: u16,
    mesh_l: u16,
    f: f64,
    runtime_scale: f64,
) -> JobSpec {
    let (a, b) = shape_for_size(r.size, mesh_w, mesh_l);
    let msgs = ((r.runtime_s / runtime_scale).round() as u32).max(1);
    JobSpec {
        id: i,
        arrive: (r.submit_s * f).round().max(0.0) as Time,
        a,
        b,
        msgs_per_node: msgs,
        service_demand: msgs as f64 * a as f64 * b as f64,
    }
}

/// The system load corresponding to a scaling factor `f` for a trace with
/// the given mean inter-arrival time: `load = 1 / (mean · f)` jobs per
/// time unit (the x-axis of the paper's trace figures).
pub fn load_for_factor(mean_interarrival_s: f64, f: f64) -> f64 {
    1.0 / (mean_interarrival_s * f)
}

/// Inverse of [`load_for_factor`].
pub fn factor_for_load(mean_interarrival_s: f64, load: f64) -> f64 {
    1.0 / (mean_interarrival_s * load)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceRecord> {
        let m = ParagonModel::default();
        m.generate(&mut SimRng::new(42))
    }

    #[test]
    fn job_count_matches_paper() {
        assert_eq!(sample().len(), 10_658);
    }

    #[test]
    fn mean_interarrival_matches() {
        let t = sample();
        let span = t.last().unwrap().submit_s;
        let mean = span / t.len() as f64;
        assert!(
            (mean - 1186.7).abs() < 1186.7 * 0.05,
            "mean inter-arrival {mean}"
        );
    }

    #[test]
    fn arrivals_bursty() {
        // hyperexponential: coefficient of variation of gaps > 1.3
        let t = sample();
        let gaps: Vec<f64> = t.windows(2).map(|w| w[1].submit_s - w[0].submit_s).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv > 1.3, "CV {cv} not bursty");
    }

    #[test]
    fn mean_size_near_paper_value() {
        let t = sample();
        let mean = t.iter().map(|r| r.size as f64).sum::<f64>() / t.len() as f64;
        assert!(
            (mean - 34.5).abs() < 6.0,
            "mean size {mean} too far from 34.5"
        );
    }

    #[test]
    fn sizes_favour_non_powers_of_two() {
        let t = sample();
        let pow2 = t.iter().filter(|r| r.size.is_power_of_two()).count();
        let frac = pow2 as f64 / t.len() as f64;
        assert!(frac < 0.25, "power-of-two fraction {frac}");
    }

    #[test]
    fn sizes_within_machine() {
        for r in sample() {
            assert!((1..=352).contains(&r.size));
            assert!(r.runtime_s >= 1.0);
        }
    }

    #[test]
    fn trace_to_jobs_scaling() {
        let recs = vec![
            TraceRecord {
                submit_s: 100.0,
                size: 35,
                runtime_s: 500.0,
            },
            TraceRecord {
                submit_s: 300.0,
                size: 4,
                runtime_s: 50.0,
            },
        ];
        let jobs = trace_to_jobs(&recs, 16, 22, 0.5, 50.0);
        assert_eq!(jobs[0].arrive, 50);
        assert_eq!(jobs[1].arrive, 150);
        assert_eq!(jobs[0].size(), 35); // 5x7 exact
        assert_eq!(jobs[0].msgs_per_node, 10);
        assert_eq!(jobs[1].msgs_per_node, 1);
        assert!(jobs[0].service_demand > jobs[1].service_demand);
    }

    #[test]
    fn load_factor_round_trip() {
        let mean = 1186.7;
        for load in [0.001, 0.0025, 0.02] {
            let f = factor_for_load(mean, load);
            assert!((load_for_factor(mean, f) - load).abs() < 1e-12);
        }
        // f < 1 means higher-than-native load
        assert!(factor_for_load(mean, 0.004) < 1.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let m = ParagonModel::default();
        let a = m.generate(&mut SimRng::new(5));
        let b = m.generate(&mut SimRng::new(5));
        assert_eq!(a, b);
    }

    #[test]
    fn stream_matches_generate() {
        let m = ParagonModel {
            jobs: 500,
            ..Default::default()
        };
        let batch = m.generate(&mut SimRng::new(11));
        let mut rng = SimRng::new(11);
        let streamed: Vec<_> = m.stream(&mut rng).collect();
        assert_eq!(streamed, batch);
    }
}
