//! Standard Workload Format (SWF) reader/writer.
//!
//! SWF is the Feitelson-archive format the original SDSC Paragon trace is
//! distributed in: one job per line, 18 whitespace-separated fields,
//! comment lines starting with `;`. We consume the fields the simulator
//! needs — submit time (2), run time (4), allocated processors (5), with
//! requested processors (8) as a fallback — and ignore the rest, so any
//! archive trace loads unchanged. The field subset and the load-scaling
//! math built on top of it are documented in `docs/WORKLOADS.md`.

use crate::TraceRecord;

/// Archive names of the SWF fields this parser touches, indexed by
/// 0-based field position (used in error messages).
const FIELD_NAMES: [(usize, &str); 4] = [
    (1, "submit time"),
    (3, "run time"),
    (4, "allocated processors"),
    (7, "requested processors"),
];

fn field_name(index: usize) -> &'static str {
    FIELD_NAMES
        .iter()
        .find(|(i, _)| *i == index)
        .map(|(_, n)| *n)
        .unwrap_or("unknown field")
}

/// What went wrong on a malformed SWF line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwfErrorKind {
    /// The line has fewer whitespace-separated fields than the parser
    /// needs (at least 8: through "requested processors").
    TooFewFields {
        /// Fields actually present on the line.
        got: usize,
    },
    /// A field failed to parse as a number.
    BadField {
        /// 1-based SWF field number (2 = submit time, 4 = run time,
        /// 5 = allocated processors, 8 = requested processors).
        field: usize,
        /// Archive name of the field, for human-readable messages.
        name: &'static str,
        /// The offending token, verbatim.
        value: String,
    },
}

/// Error from [`parse_swf`]: the offending line and what was wrong with
/// it. Renders as e.g.
/// `SWF line 12: field 2 (submit time): invalid number "x"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwfError {
    /// 1-based line number in the input text (counting comment and blank
    /// lines, so it matches what an editor shows).
    pub line: usize,
    /// What was malformed.
    pub kind: SwfErrorKind,
}

impl core::fmt::Display for SwfError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match &self.kind {
            SwfErrorKind::TooFewFields { got } => write!(
                f,
                "SWF line {}: expected >= 8 fields, got {}",
                self.line, got
            ),
            SwfErrorKind::BadField { field, name, value } => write!(
                f,
                "SWF line {}: field {} ({}): invalid number {:?}",
                self.line, field, name, value
            ),
        }
    }
}

impl std::error::Error for SwfError {}

/// Parses SWF text into trace records.
///
/// Jobs with unknown (negative) size or runtime and zero-size jobs are
/// skipped, as is conventional when replaying archive traces. Returns an
/// [`SwfError`] locating the first malformed non-comment line.
pub fn parse_swf(text: &str) -> Result<Vec<TraceRecord>, SwfError> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 8 {
            return Err(SwfError {
                line: lineno + 1,
                kind: SwfErrorKind::TooFewFields { got: fields.len() },
            });
        }
        let parse = |i: usize| -> Result<f64, SwfError> {
            // f64::parse accepts "inf"/"nan", which would silently corrupt
            // the span/work statistics downstream — treat them as malformed
            fields[i]
                .parse::<f64>()
                .ok()
                .filter(|v| v.is_finite())
                .ok_or_else(|| SwfError {
                    line: lineno + 1,
                    kind: SwfErrorKind::BadField {
                        field: i + 1,
                        name: field_name(i),
                        value: fields[i].to_string(),
                    },
                })
        };
        let submit = parse(1)?;
        let runtime = parse(3)?;
        let mut size = parse(4)?;
        if size <= 0.0 {
            size = parse(7)?; // requested processors
        }
        if size <= 0.0 || size > u32::MAX as f64 || runtime < 0.0 {
            continue; // unknown/failed job, or a size no real machine has
        }
        out.push(TraceRecord {
            submit_s: submit,
            // procsim-lint: allow(D005): the guard above bounds size to (0, u32::MAX]
            size: size as u32,
            runtime_s: runtime.max(1.0),
        });
    }
    Ok(out)
}

/// Serializes records as minimal SWF (unknown fields written as -1).
///
/// Times are written as whole seconds, so a [`parse_swf`] round-trip is
/// exact for integral-second records (the property test
/// `crates/workload/tests/swf_roundtrip.rs` pins this down).
pub fn write_swf(records: &[TraceRecord]) -> String {
    let mut s = String::with_capacity(records.len() * 64);
    s.push_str("; synthetic trace written by procsim workload crate\n");
    s.push_str("; fields: id submit wait run procs cpu mem req_procs req_time req_mem status uid gid app queue part prev think\n");
    for (i, r) in records.iter().enumerate() {
        s.push_str(&format!(
            "{} {:.0} -1 {:.0} {} -1 -1 {} -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n",
            i + 1,
            r.submit_s,
            r.runtime_s,
            r.size,
            r.size,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_swf() {
        let text = "\
; comment header
1 0 5 100 32 -1 -1 32 -1 -1 1 -1 -1 -1 -1 -1 -1 -1
2 50 0 200 -1 -1 -1 16 -1 -1 1 -1 -1 -1 -1 -1 -1 -1
";
        let recs = parse_swf(text).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].submit_s, 0.0);
        assert_eq!(recs[0].runtime_s, 100.0);
        assert_eq!(recs[0].size, 32);
        // second job: allocated unknown, falls back to requested
        assert_eq!(recs[1].size, 16);
    }

    #[test]
    fn skips_unknown_jobs() {
        let text = "1 0 5 -1 32 -1 -1 32\n2 10 0 100 -1 -1 -1 -1\n3 20 0 100 8 -1 -1 8\n";
        let recs = parse_swf(text).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].size, 8);
    }

    #[test]
    fn short_line_reports_position() {
        let err = parse_swf("1 2 3\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(err.kind, SwfErrorKind::TooFewFields { got: 3 });
        // comment and blank lines still count toward the line number
        let err = parse_swf("; header\n\n1 0 5 100 32 -1 -1 32\n1 2 3\n").unwrap_err();
        assert_eq!(err.line, 4);
    }

    #[test]
    fn malformed_submit_time() {
        let err = parse_swf("1 x 3 100 32 -1 -1 32\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(
            err.kind,
            SwfErrorKind::BadField {
                field: 2,
                name: "submit time",
                value: "x".into()
            }
        );
        assert!(err.to_string().contains("line 1"));
        assert!(err.to_string().contains("submit time"));
    }

    #[test]
    fn malformed_run_time() {
        let err = parse_swf("; ok\n1 0 3 ?? 32 -1 -1 32\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(
            err.kind,
            SwfErrorKind::BadField {
                field: 4,
                name: "run time",
                value: "??".into()
            }
        );
    }

    #[test]
    fn malformed_allocated_processors() {
        let err = parse_swf("1 0 3 100 n/a -1 -1 32\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(
            err.kind,
            SwfErrorKind::BadField {
                field: 5,
                name: "allocated processors",
                value: "n/a".into()
            }
        );
    }

    #[test]
    fn malformed_requested_processors() {
        // field 8 is only consulted when field 5 is unknown (<= 0)
        let err = parse_swf("1 0 3 100 -1 -1 -1 bad\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(
            err.kind,
            SwfErrorKind::BadField {
                field: 8,
                name: "requested processors",
                value: "bad".into()
            }
        );
        // ... and ignored (even if malformed) when field 5 is usable
        assert!(parse_swf("1 0 3 100 32 -1 -1 bad\n").is_ok());
    }

    #[test]
    fn non_finite_fields_rejected() {
        for token in ["inf", "-inf", "nan", "NaN"] {
            let err = parse_swf(&format!("1 {token} 3 100 32 -1 -1 32\n")).unwrap_err();
            assert_eq!(err.line, 1, "{token}");
            assert!(
                matches!(err.kind, SwfErrorKind::BadField { field: 2, .. }),
                "{token}: {err}"
            );
        }
        // ... in any consumed field
        let err = parse_swf("1 0 3 100 nan -1 -1 32\n").unwrap_err();
        assert!(matches!(err.kind, SwfErrorKind::BadField { field: 5, .. }));
    }

    #[test]
    fn round_trip() {
        let recs = vec![
            TraceRecord {
                submit_s: 0.0,
                size: 35,
                runtime_s: 120.0,
            },
            TraceRecord {
                submit_s: 700.0,
                size: 1,
                runtime_s: 1.0,
            },
        ];
        let text = write_swf(&recs);
        let back = parse_swf(&text).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn empty_and_comment_only_ok() {
        assert!(parse_swf("").unwrap().is_empty());
        assert!(parse_swf("; nothing\n\n;more\n").unwrap().is_empty());
    }
}
