//! Standard Workload Format (SWF) reader/writer.
//!
//! SWF is the Feitelson-archive format the original SDSC Paragon trace is
//! distributed in: one job per line, 18 whitespace-separated fields,
//! comment lines starting with `;`. We consume the fields the simulator
//! needs — submit time (2), run time (4), allocated processors (5), with
//! requested processors (8) as a fallback — and ignore the rest, so any
//! archive trace loads unchanged.

use crate::TraceRecord;

/// Parses SWF text into trace records.
///
/// Jobs with unknown (negative) size or runtime and zero-size jobs are
/// skipped, as is conventional when replaying archive traces. Returns an
/// error string describing the first malformed non-comment line.
pub fn parse_swf(text: &str) -> Result<Vec<TraceRecord>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 8 {
            return Err(format!(
                "line {}: expected >= 8 SWF fields, got {}",
                lineno + 1,
                fields.len()
            ));
        }
        let parse = |i: usize| -> Result<f64, String> {
            fields[i]
                .parse::<f64>()
                .map_err(|e| format!("line {}: field {}: {}", lineno + 1, i + 1, e))
        };
        let submit = parse(1)?;
        let runtime = parse(3)?;
        let mut size = parse(4)?;
        if size <= 0.0 {
            size = parse(7)?; // requested processors
        }
        if size <= 0.0 || runtime < 0.0 {
            continue; // unknown/failed job
        }
        out.push(TraceRecord {
            submit_s: submit,
            size: size as u32,
            runtime_s: runtime.max(1.0),
        });
    }
    Ok(out)
}

/// Serializes records as minimal SWF (unknown fields written as -1).
pub fn write_swf(records: &[TraceRecord]) -> String {
    let mut s = String::with_capacity(records.len() * 64);
    s.push_str("; synthetic trace written by procsim workload crate\n");
    s.push_str("; fields: id submit wait run procs cpu mem req_procs req_time req_mem status uid gid app queue part prev think\n");
    for (i, r) in records.iter().enumerate() {
        s.push_str(&format!(
            "{} {:.0} -1 {:.0} {} -1 -1 {} -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n",
            i + 1,
            r.submit_s,
            r.runtime_s,
            r.size,
            r.size,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_swf() {
        let text = "\
; comment header
1 0 5 100 32 -1 -1 32 -1 -1 1 -1 -1 -1 -1 -1 -1 -1
2 50 0 200 -1 -1 -1 16 -1 -1 1 -1 -1 -1 -1 -1 -1 -1
";
        let recs = parse_swf(text).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].submit_s, 0.0);
        assert_eq!(recs[0].runtime_s, 100.0);
        assert_eq!(recs[0].size, 32);
        // second job: allocated unknown, falls back to requested
        assert_eq!(recs[1].size, 16);
    }

    #[test]
    fn skips_unknown_jobs() {
        let text = "1 0 5 -1 32 -1 -1 32\n2 10 0 100 -1 -1 -1 -1\n3 20 0 100 8 -1 -1 8\n";
        let recs = parse_swf(text).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].size, 8);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_swf("1 2 3\n").is_err());
        assert!(parse_swf("1 x 3 4 5 6 7 8\n").is_err());
    }

    #[test]
    fn round_trip() {
        let recs = vec![
            TraceRecord {
                submit_s: 0.0,
                size: 35,
                runtime_s: 120.0,
            },
            TraceRecord {
                submit_s: 700.0,
                size: 1,
                runtime_s: 1.0,
            },
        ];
        let text = write_swf(&recs);
        let back = parse_swf(&text).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn empty_and_comment_only_ok() {
        assert!(parse_swf("").unwrap().is_empty());
        assert!(parse_swf("; nothing\n\n;more\n").unwrap().is_empty());
    }
}
