//! Standard Workload Format (SWF) reader/writer.
//!
//! SWF is the Feitelson-archive format the original SDSC Paragon trace is
//! distributed in: one job per line, 18 whitespace-separated fields,
//! comment lines starting with `;`. We consume the fields the simulator
//! needs — submit time (2), run time (4), allocated processors (5), with
//! requested processors (8) as a fallback — and ignore the rest, so any
//! archive trace loads unchanged. The field subset and the load-scaling
//! math built on top of it are documented in `docs/WORKLOADS.md`.
//!
//! Two parsers share one grammar:
//!
//! * [`SwfRecords`] — the **streaming** parser: an iterator over any
//!   [`BufRead`] source yielding one [`TraceRecord`] at a time in O(1)
//!   memory, so a million-job archive log replays without ever being
//!   materialized. [`parse_swf`] is a thin `collect()` over it.
//! * [`parse_swf_retained`] — the original whole-text batch parser, kept
//!   verbatim as the **equivalence oracle**: the differential battery in
//!   `crates/workload/tests/streaming_equivalence.rs` proves the two
//!   produce identical record sequences and identical [`SwfError`]s on
//!   every fixture and on adversarial (truncated, malformed-mid-stream)
//!   inputs.

use crate::TraceRecord;
use std::io::BufRead;

/// Archive names of the SWF fields this parser touches, indexed by
/// 0-based field position (used in error messages).
const FIELD_NAMES: [(usize, &str); 4] = [
    (1, "submit time"),
    (3, "run time"),
    (4, "allocated processors"),
    (7, "requested processors"),
];

fn field_name(index: usize) -> &'static str {
    FIELD_NAMES
        .iter()
        .find(|(i, _)| *i == index)
        .map(|(_, n)| *n)
        .unwrap_or("unknown field")
}

/// What went wrong on a malformed SWF line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwfErrorKind {
    /// The line has fewer whitespace-separated fields than the parser
    /// needs (at least 8: through "requested processors").
    TooFewFields {
        /// Fields actually present on the line.
        got: usize,
    },
    /// A field failed to parse as a number.
    BadField {
        /// 1-based SWF field number (2 = submit time, 4 = run time,
        /// 5 = allocated processors, 8 = requested processors).
        field: usize,
        /// Archive name of the field, for human-readable messages.
        name: &'static str,
        /// The offending token, verbatim.
        value: String,
    },
    /// The underlying reader failed, or the bytes are not UTF-8 (only
    /// possible on the streaming [`SwfRecords`] path — [`parse_swf`]
    /// takes `&str` and cannot produce this).
    Io {
        /// The I/O or encoding error, rendered.
        message: String,
    },
}

/// Error from [`parse_swf`]: the offending line and what was wrong with
/// it. Renders as e.g.
/// `SWF line 12: field 2 (submit time): invalid number "x"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwfError {
    /// 1-based line number in the input text (counting comment and blank
    /// lines, so it matches what an editor shows).
    pub line: usize,
    /// What was malformed.
    pub kind: SwfErrorKind,
}

impl core::fmt::Display for SwfError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match &self.kind {
            SwfErrorKind::TooFewFields { got } => write!(
                f,
                "SWF line {}: expected >= 8 fields, got {}",
                self.line, got
            ),
            SwfErrorKind::BadField { field, name, value } => write!(
                f,
                "SWF line {}: field {} ({}): invalid number {:?}",
                self.line, field, name, value
            ),
            SwfErrorKind::Io { message } => {
                write!(f, "SWF line {}: read failed: {}", self.line, message)
            }
        }
    }
}

impl std::error::Error for SwfError {}

/// Parses one SWF line (already split from the input, 1-based `lineno`).
///
/// Returns `Ok(None)` for comment/blank lines and for skipped jobs
/// (unknown size or runtime). Shared by the streaming [`SwfRecords`]
/// iterator; the retained oracle [`parse_swf_retained`] keeps its own
/// inline copy of this grammar so the differential battery compares two
/// independent implementations.
fn parse_swf_line(raw: &str, lineno: usize) -> Result<Option<TraceRecord>, SwfError> {
    let line = raw.trim();
    if line.is_empty() || line.starts_with(';') {
        return Ok(None);
    }
    // collect the first 8 fields without a per-line Vec; `n` stops
    // counting at 8 because only the total-below-8 count is reported
    let mut fields: [&str; 8] = [""; 8];
    let mut n = 0usize;
    for tok in line.split_whitespace() {
        fields[n] = tok;
        n += 1;
        if n == 8 {
            break;
        }
    }
    if n < 8 {
        return Err(SwfError {
            line: lineno,
            kind: SwfErrorKind::TooFewFields { got: n },
        });
    }
    let parse = |i: usize| -> Result<f64, SwfError> {
        // f64::parse accepts "inf"/"nan", which would silently corrupt
        // the span/work statistics downstream — treat them as malformed
        fields[i]
            .parse::<f64>()
            .ok()
            .filter(|v| v.is_finite())
            .ok_or_else(|| SwfError {
                line: lineno,
                kind: SwfErrorKind::BadField {
                    field: i + 1,
                    name: field_name(i),
                    value: fields[i].to_string(),
                },
            })
    };
    let submit = parse(1)?;
    let runtime = parse(3)?;
    let mut size = parse(4)?;
    if size <= 0.0 {
        size = parse(7)?; // requested processors
    }
    if size <= 0.0 || size > u32::MAX as f64 || runtime < 0.0 {
        return Ok(None); // unknown/failed job, or a size no real machine has
    }
    Ok(Some(TraceRecord {
        submit_s: submit,
        // procsim-lint: allow(D005): the guard above bounds size to (0, u32::MAX]
        size: size as u32,
        runtime_s: runtime.max(1.0),
    }))
}

/// Incremental SWF parser over any [`BufRead`] source.
///
/// Yields one `Result<TraceRecord, SwfError>` per job line, reading a
/// line at a time into a reused buffer — memory use is O(longest line),
/// independent of trace length, so million-job archive logs stream
/// without being materialized. Line numbering, comment/blank skipping,
/// unknown-job filtering, and every error (line, field, token) are
/// identical to the batch parser: the differential battery in
/// `crates/workload/tests/streaming_equivalence.rs` pins this down
/// against [`parse_swf_retained`] on fixtures and adversarial inputs.
///
/// After yielding the first `Err`, the iterator is fused: every
/// subsequent `next()` returns `None` (a malformed line poisons the rest
/// of the stream, exactly as the batch parser stops at the first error).
#[derive(Debug)]
pub struct SwfRecords<R> {
    reader: R,
    buf: Vec<u8>,
    lineno: usize,
    done: bool,
}

impl<R: BufRead> SwfRecords<R> {
    /// Wraps a buffered reader positioned at the start of SWF text.
    pub fn new(reader: R) -> Self {
        SwfRecords {
            reader,
            buf: Vec::with_capacity(256),
            lineno: 0,
            done: false,
        }
    }

    /// 1-based number of the last line read (0 before the first read).
    /// Counts comment and blank lines, matching [`SwfError::line`].
    pub fn line(&self) -> usize {
        self.lineno
    }
}

impl<R: BufRead> Iterator for SwfRecords<R> {
    type Item = Result<TraceRecord, SwfError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            self.buf.clear();
            self.lineno += 1;
            match self.reader.read_until(b'\n', &mut self.buf) {
                Ok(0) => {
                    self.done = true;
                    return None;
                }
                Ok(_) => {}
                Err(e) => {
                    self.done = true;
                    return Some(Err(SwfError {
                        line: self.lineno,
                        kind: SwfErrorKind::Io {
                            message: e.to_string(),
                        },
                    }));
                }
            }
            // `str::lines` semantics: the terminator (and a preceding
            // `\r`, which `trim` would drop anyway) is not part of the
            // line content
            let Ok(line) = core::str::from_utf8(&self.buf) else {
                self.done = true;
                return Some(Err(SwfError {
                    line: self.lineno,
                    kind: SwfErrorKind::Io {
                        message: "invalid UTF-8".into(),
                    },
                }));
            };
            match parse_swf_line(line, self.lineno) {
                Ok(None) => continue,
                Ok(Some(rec)) => return Some(Ok(rec)),
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

/// Parses SWF text into trace records.
///
/// Jobs with unknown (negative) size or runtime and zero-size jobs are
/// skipped, as is conventional when replaying archive traces. Returns an
/// [`SwfError`] locating the first malformed non-comment line.
///
/// This is a `collect()` over the streaming [`SwfRecords`] parser; use
/// [`SwfRecords`] directly (or [`crate::TraceWorkload::open`]) when the
/// trace is too large to hold in memory.
pub fn parse_swf(text: &str) -> Result<Vec<TraceRecord>, SwfError> {
    SwfRecords::new(text.as_bytes()).collect()
}

/// The original whole-text batch parser, retained verbatim as the
/// equivalence oracle for the streaming [`SwfRecords`] parser.
///
/// Deliberately shares **no code** with the streaming path (it has its
/// own inline copy of the per-line grammar), so the differential battery
/// in `crates/workload/tests/streaming_equivalence.rs` compares two
/// independent implementations. Not for production use — it materializes
/// every record; call [`parse_swf`] instead.
pub fn parse_swf_retained(text: &str) -> Result<Vec<TraceRecord>, SwfError> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 8 {
            return Err(SwfError {
                line: lineno + 1,
                kind: SwfErrorKind::TooFewFields { got: fields.len() },
            });
        }
        let parse = |i: usize| -> Result<f64, SwfError> {
            // f64::parse accepts "inf"/"nan", which would silently corrupt
            // the span/work statistics downstream — treat them as malformed
            fields[i]
                .parse::<f64>()
                .ok()
                .filter(|v| v.is_finite())
                .ok_or_else(|| SwfError {
                    line: lineno + 1,
                    kind: SwfErrorKind::BadField {
                        field: i + 1,
                        name: field_name(i),
                        value: fields[i].to_string(),
                    },
                })
        };
        let submit = parse(1)?;
        let runtime = parse(3)?;
        let mut size = parse(4)?;
        if size <= 0.0 {
            size = parse(7)?; // requested processors
        }
        if size <= 0.0 || size > u32::MAX as f64 || runtime < 0.0 {
            continue; // unknown/failed job, or a size no real machine has
        }
        out.push(TraceRecord {
            submit_s: submit,
            // procsim-lint: allow(D005): the guard above bounds size to (0, u32::MAX]
            size: size as u32,
            runtime_s: runtime.max(1.0),
        });
    }
    Ok(out)
}

/// Streams records as minimal SWF (unknown fields written as -1) to any
/// writer, without materializing the record list or the output text.
///
/// Returns the number of records written. Output bytes are identical to
/// [`write_swf`] for the same record sequence; combined with a lazy
/// model generator (e.g. [`crate::ParagonModel::stream`]) this writes a
/// million-job fixture in O(1) memory.
pub fn write_swf_to<W: std::io::Write>(
    out: &mut W,
    records: impl IntoIterator<Item = TraceRecord>,
) -> std::io::Result<usize> {
    out.write_all(b"; synthetic trace written by procsim workload crate\n")?;
    out.write_all(b"; fields: id submit wait run procs cpu mem req_procs req_time req_mem status uid gid app queue part prev think\n")?;
    let mut n = 0usize;
    for r in records {
        n += 1;
        writeln!(
            out,
            "{} {:.0} -1 {:.0} {} -1 -1 {} -1 -1 1 -1 -1 -1 -1 -1 -1 -1",
            n, r.submit_s, r.runtime_s, r.size, r.size,
        )?;
    }
    Ok(n)
}

/// Serializes records as minimal SWF (unknown fields written as -1).
///
/// Times are written as whole seconds, so a [`parse_swf`] round-trip is
/// exact for integral-second records (the property test
/// `crates/workload/tests/swf_roundtrip.rs` pins this down). Delegates
/// to [`write_swf_to`], which streams to a writer instead of returning a
/// `String`.
pub fn write_swf(records: &[TraceRecord]) -> String {
    let mut buf = Vec::with_capacity(records.len() * 64);
    // procsim-lint: allow(D004): writing to a Vec<u8> cannot fail
    write_swf_to(&mut buf, records.iter().copied()).expect("Vec write is infallible");
    // procsim-lint: allow(D004): the writer emits only ASCII
    String::from_utf8(buf).expect("SWF writer emits ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_swf() {
        let text = "\
; comment header
1 0 5 100 32 -1 -1 32 -1 -1 1 -1 -1 -1 -1 -1 -1 -1
2 50 0 200 -1 -1 -1 16 -1 -1 1 -1 -1 -1 -1 -1 -1 -1
";
        let recs = parse_swf(text).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].submit_s, 0.0);
        assert_eq!(recs[0].runtime_s, 100.0);
        assert_eq!(recs[0].size, 32);
        // second job: allocated unknown, falls back to requested
        assert_eq!(recs[1].size, 16);
    }

    #[test]
    fn skips_unknown_jobs() {
        let text = "1 0 5 -1 32 -1 -1 32\n2 10 0 100 -1 -1 -1 -1\n3 20 0 100 8 -1 -1 8\n";
        let recs = parse_swf(text).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].size, 8);
    }

    #[test]
    fn short_line_reports_position() {
        let err = parse_swf("1 2 3\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(err.kind, SwfErrorKind::TooFewFields { got: 3 });
        // comment and blank lines still count toward the line number
        let err = parse_swf("; header\n\n1 0 5 100 32 -1 -1 32\n1 2 3\n").unwrap_err();
        assert_eq!(err.line, 4);
    }

    #[test]
    fn malformed_submit_time() {
        let err = parse_swf("1 x 3 100 32 -1 -1 32\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(
            err.kind,
            SwfErrorKind::BadField {
                field: 2,
                name: "submit time",
                value: "x".into()
            }
        );
        assert!(err.to_string().contains("line 1"));
        assert!(err.to_string().contains("submit time"));
    }

    #[test]
    fn malformed_run_time() {
        let err = parse_swf("; ok\n1 0 3 ?? 32 -1 -1 32\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(
            err.kind,
            SwfErrorKind::BadField {
                field: 4,
                name: "run time",
                value: "??".into()
            }
        );
    }

    #[test]
    fn malformed_allocated_processors() {
        let err = parse_swf("1 0 3 100 n/a -1 -1 32\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(
            err.kind,
            SwfErrorKind::BadField {
                field: 5,
                name: "allocated processors",
                value: "n/a".into()
            }
        );
    }

    #[test]
    fn malformed_requested_processors() {
        // field 8 is only consulted when field 5 is unknown (<= 0)
        let err = parse_swf("1 0 3 100 -1 -1 -1 bad\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(
            err.kind,
            SwfErrorKind::BadField {
                field: 8,
                name: "requested processors",
                value: "bad".into()
            }
        );
        // ... and ignored (even if malformed) when field 5 is usable
        assert!(parse_swf("1 0 3 100 32 -1 -1 bad\n").is_ok());
    }

    #[test]
    fn non_finite_fields_rejected() {
        for token in ["inf", "-inf", "nan", "NaN"] {
            let err = parse_swf(&format!("1 {token} 3 100 32 -1 -1 32\n")).unwrap_err();
            assert_eq!(err.line, 1, "{token}");
            assert!(
                matches!(err.kind, SwfErrorKind::BadField { field: 2, .. }),
                "{token}: {err}"
            );
        }
        // ... in any consumed field
        let err = parse_swf("1 0 3 100 nan -1 -1 32\n").unwrap_err();
        assert!(matches!(err.kind, SwfErrorKind::BadField { field: 5, .. }));
    }

    #[test]
    fn round_trip() {
        let recs = vec![
            TraceRecord {
                submit_s: 0.0,
                size: 35,
                runtime_s: 120.0,
            },
            TraceRecord {
                submit_s: 700.0,
                size: 1,
                runtime_s: 1.0,
            },
        ];
        let text = write_swf(&recs);
        let back = parse_swf(&text).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn empty_and_comment_only_ok() {
        assert!(parse_swf("").unwrap().is_empty());
        assert!(parse_swf("; nothing\n\n;more\n").unwrap().is_empty());
    }

    #[test]
    fn streaming_iterator_fuses_after_error() {
        let text = "1 0 5 100 32 -1 -1 32\n1 2 3\n2 50 0 200 16 -1 -1 16\n";
        let mut it = SwfRecords::new(text.as_bytes());
        assert!(it.next().unwrap().is_ok());
        let err = it.next().unwrap().unwrap_err();
        assert_eq!(err.line, 2);
        // poisoned: the valid line after the error is not yielded
        assert!(it.next().is_none());
        assert!(it.next().is_none());
    }

    #[test]
    fn streaming_handles_missing_final_newline_and_crlf() {
        // no trailing newline on the last line
        let a: Vec<_> = SwfRecords::new("1 0 5 100 32 -1 -1 32".as_bytes())
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(a.len(), 1);
        // CRLF line endings parse identically to LF
        let lf = "; h\n1 0 5 100 32 -1 -1 32\n2 50 0 200 16 -1 -1 16\n";
        let crlf = lf.replace('\n', "\r\n");
        let from_lf: Vec<_> = SwfRecords::new(lf.as_bytes())
            .collect::<Result<_, _>>()
            .unwrap();
        let from_crlf: Vec<_> = SwfRecords::new(crlf.as_bytes())
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(from_lf, from_crlf);
    }

    #[test]
    fn streaming_rejects_invalid_utf8() {
        let mut bytes = b"; header\n1 0 5 100 32 -1 -1 32\n".to_vec();
        bytes.extend_from_slice(&[0xff, 0xfe, b'\n']);
        let mut it = SwfRecords::new(bytes.as_slice());
        assert!(it.next().unwrap().is_ok());
        let err = it.next().unwrap().unwrap_err();
        assert_eq!(err.line, 3);
        assert!(matches!(err.kind, SwfErrorKind::Io { .. }), "{err}");
    }

    #[test]
    fn write_swf_to_matches_write_swf() {
        let recs = vec![
            TraceRecord {
                submit_s: 0.0,
                size: 35,
                runtime_s: 120.0,
            },
            TraceRecord {
                submit_s: 700.0,
                size: 1,
                runtime_s: 1.0,
            },
        ];
        let mut buf = Vec::new();
        let n = write_swf_to(&mut buf, recs.iter().copied()).unwrap();
        assert_eq!(n, 2);
        assert_eq!(String::from_utf8(buf).unwrap(), write_swf(&recs));
    }
}
