//! Synthetic LANL CM-5 style trace model.
//!
//! The paper's future work proposes evaluating "the allocation strategies
//! based on other real workload traces from different parallel machines".
//! Its reference \[9\] (Windisch et al., Frontiers '96) compares the SDSC
//! Paragon trace against a LANL CM-5 trace whose defining property is the
//! opposite of the Paragon's: the CM-5 scheduler only offered
//! **power-of-two partition sizes** (32, 64, 128, 256, ...), so every job
//! size is a power of two.
//!
//! That property is exactly the one the paper blames for MBS's demotion
//! on the Paragon trace ("contiguous allocation is explicitly sought in
//! MBS only for requests with sizes of the form 2^2n"), so a CM-5-style
//! workload is the natural counterfactual: under it MBS's buddy blocks
//! align perfectly with requests. The `futurework_cm5` bench runs the
//! comparison.

use crate::TraceRecord;
use desim::SimRng;

/// Parameters of the synthetic CM-5-like model.
#[derive(Debug, Clone)]
pub struct Cm5Model {
    /// Number of jobs.
    pub jobs: usize,
    /// Mean inter-arrival time in seconds.
    pub mean_interarrival_s: f64,
    /// Power-of-two size menu with selection weights (size, weight).
    /// Defaults follow the CM-5 shape reported by Windisch et al.:
    /// small partitions dominate, with a tail of machine-scale jobs.
    pub size_menu: Vec<(u32, f64)>,
    /// Lognormal median runtime in seconds.
    pub runtime_median_s: f64,
    /// Lognormal sigma of runtimes.
    pub runtime_sigma: f64,
}

impl Default for Cm5Model {
    fn default() -> Self {
        Cm5Model {
            jobs: 10_658,
            mean_interarrival_s: 1186.7,
            size_menu: vec![
                (32, 0.48),
                (64, 0.27),
                (128, 0.16),
                (256, 0.09),
            ],
            runtime_median_s: 600.0,
            runtime_sigma: 1.6,
        }
    }
}

impl Cm5Model {
    /// Lazily generates the synthetic trace, one record per `next()`
    /// (draw order identical to [`generate`](Self::generate) for the
    /// same seed — see [`crate::ParagonModel::stream`]).
    pub fn stream<'a>(&'a self, rng: &'a mut SimRng) -> impl Iterator<Item = TraceRecord> + 'a {
        assert!(!self.size_menu.is_empty());
        let total_w: f64 = self.size_menu.iter().map(|(_, w)| w).sum();
        let mu_rt = self.runtime_median_s.ln();
        let mut t = 0.0f64;
        (0..self.jobs).map(move |_| {
            t += rng.exp(self.mean_interarrival_s);
            let mut pick = rng.uniform01() * total_w;
            let mut size = self.size_menu[0].0;
            for &(s, w) in &self.size_menu {
                if pick < w {
                    size = s;
                    break;
                }
                pick -= w;
            }
            TraceRecord {
                submit_s: t,
                size,
                runtime_s: rng.lognormal(mu_rt, self.runtime_sigma).max(1.0),
            }
        })
    }

    /// Generates the synthetic trace (a `collect()` of
    /// [`stream`](Self::stream)).
    pub fn generate(&self, rng: &mut SimRng) -> Vec<TraceRecord> {
        self.stream(rng).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sizes_are_powers_of_two() {
        let recs = Cm5Model::default().generate(&mut SimRng::new(4));
        assert_eq!(recs.len(), 10_658);
        assert!(recs.iter().all(|r| r.size.is_power_of_two()));
        assert!(recs.iter().all(|r| r.size >= 32));
    }

    #[test]
    fn size_mix_follows_menu() {
        let recs = Cm5Model::default().generate(&mut SimRng::new(5));
        let frac32 =
            recs.iter().filter(|r| r.size == 32).count() as f64 / recs.len() as f64;
        assert!((frac32 - 0.48).abs() < 0.03, "32-node fraction {frac32}");
    }

    #[test]
    fn arrivals_poissonian() {
        let recs = Cm5Model::default().generate(&mut SimRng::new(6));
        let mean = recs.last().unwrap().submit_s / recs.len() as f64;
        assert!((mean - 1186.7).abs() / 1186.7 < 0.05);
    }

    #[test]
    fn deterministic() {
        let m = Cm5Model::default();
        assert_eq!(m.generate(&mut SimRng::new(9)), m.generate(&mut SimRng::new(9)));
    }

    #[test]
    fn stream_matches_generate() {
        let m = Cm5Model {
            jobs: 500,
            ..Default::default()
        };
        let batch = m.generate(&mut SimRng::new(13));
        let mut rng = SimRng::new(13);
        let streamed: Vec<_> = m.stream(&mut rng).collect();
        assert_eq!(streamed, batch);
    }
}
