//! The paper's stochastic workload (§5).

use crate::JobSpec;
use desim::{SimRng, Time};

/// Distribution of the request side lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SideDist {
    /// Width uniform over `[1, W]`, length uniform over `[1, L]`,
    /// independently (Figs. 3, 6, 9, 12, 15).
    Uniform,
    /// Width and length exponentially distributed with means `W/2` and
    /// `L/2`, clamped into `[1, W] × [1, L]` (Figs. 4, 7, 10, 13, 16).
    Exponential,
}

impl core::fmt::Display for SideDist {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SideDist::Uniform => f.write_str("uniform"),
            SideDist::Exponential => f.write_str("exponential"),
        }
    }
}

/// Generator for the stochastic workload.
#[derive(Debug, Clone)]
pub struct StochasticGen {
    /// Mesh width `W`.
    pub mesh_w: u16,
    /// Mesh length `L`.
    pub mesh_l: u16,
    /// Side-length distribution.
    pub sides: SideDist,
    /// System load: jobs per time unit (the inverse of the mean
    /// inter-arrival time). The paper's independent variable.
    pub load: f64,
    /// Mean of the per-processor message count (`num_mes`, 5 in the
    /// paper).
    pub num_mes_mean: f64,
}

impl StochasticGen {
    /// Paper defaults on a 16×22 mesh at the given load.
    pub fn paper(sides: SideDist, load: f64) -> Self {
        StochasticGen {
            mesh_w: 16,
            mesh_l: 22,
            sides,
            load,
            num_mes_mean: 5.0,
        }
    }

    /// Draws the next job, advancing `*clock` by an exponential
    /// inter-arrival time.
    pub fn next_job(&self, id: u64, clock: &mut Time, rng: &mut SimRng) -> JobSpec {
        *clock += rng.exp_interarrival(self.load);
        let (a, b) = match self.sides {
            SideDist::Uniform => (
                rng.uniform_side(self.mesh_w),
                rng.uniform_side(self.mesh_l),
            ),
            SideDist::Exponential => (
                rng.exp_side(self.mesh_w as f64 / 2.0, self.mesh_w),
                rng.exp_side(self.mesh_l as f64 / 2.0, self.mesh_l),
            ),
        };
        let msgs = rng.exp_count(self.num_mes_mean);
        JobSpec {
            id,
            arrive: *clock,
            a,
            b,
            msgs_per_node: msgs,
            service_demand: msgs as f64 * a as f64 * b as f64,
        }
    }

    /// Generates `n` jobs starting at time 0.
    pub fn generate(&self, n: usize, rng: &mut SimRng) -> Vec<JobSpec> {
        let mut clock: Time = 0;
        (0..n)
            .map(|i| self.next_job(i as u64, &mut clock, rng))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_strictly_increasing() {
        let g = StochasticGen::paper(SideDist::Uniform, 0.01);
        let mut rng = SimRng::new(1);
        let jobs = g.generate(1000, &mut rng);
        for w in jobs.windows(2) {
            assert!(w[1].arrive > w[0].arrive);
        }
    }

    #[test]
    fn load_controls_mean_interarrival() {
        let mut rng = SimRng::new(2);
        for load in [0.005, 0.02, 0.05] {
            let g = StochasticGen::paper(SideDist::Uniform, load);
            let jobs = g.generate(20_000, &mut rng);
            let span = jobs.last().unwrap().arrive as f64;
            let mean = span / jobs.len() as f64;
            let expect = 1.0 / load;
            assert!(
                (mean - expect).abs() < expect * 0.05,
                "load {load}: mean {mean} vs {expect}"
            );
        }
    }

    #[test]
    fn uniform_sides_within_mesh_and_mean_half() {
        let g = StochasticGen::paper(SideDist::Uniform, 0.01);
        let mut rng = SimRng::new(3);
        let jobs = g.generate(50_000, &mut rng);
        let (mut sa, mut sb) = (0f64, 0f64);
        for j in &jobs {
            assert!((1..=16).contains(&j.a));
            assert!((1..=22).contains(&j.b));
            sa += j.a as f64;
            sb += j.b as f64;
        }
        let (ma, mb) = (sa / jobs.len() as f64, sb / jobs.len() as f64);
        assert!((ma - 8.5).abs() < 0.15, "mean width {ma}");
        assert!((mb - 11.5).abs() < 0.2, "mean length {mb}");
    }

    #[test]
    fn exponential_sides_skew_small() {
        let g = StochasticGen::paper(SideDist::Exponential, 0.01);
        let mut rng = SimRng::new(4);
        let jobs = g.generate(50_000, &mut rng);
        for j in &jobs {
            assert!((1..=16).contains(&j.a));
            assert!((1..=22).contains(&j.b));
        }
        // exponential with mean W/2 clamped: median well below the mean
        let mut widths: Vec<u16> = jobs.iter().map(|j| j.a).collect();
        widths.sort_unstable();
        let median = widths[widths.len() / 2];
        assert!(median <= 7, "median width {median} not skewed small");
        // exponential sides produce smaller mean area than uniform sides
        let mean_area_exp: f64 =
            jobs.iter().map(|j| j.size() as f64).sum::<f64>() / jobs.len() as f64;
        let gu = StochasticGen::paper(SideDist::Uniform, 0.01);
        let jobs_u = gu.generate(50_000, &mut rng);
        let mean_area_uni: f64 =
            jobs_u.iter().map(|j| j.size() as f64).sum::<f64>() / jobs_u.len() as f64;
        assert!(mean_area_exp < mean_area_uni);
    }

    #[test]
    fn demand_is_msgs_times_area() {
        let g = StochasticGen::paper(SideDist::Uniform, 0.01);
        let mut rng = SimRng::new(5);
        for j in g.generate(100, &mut rng) {
            assert_eq!(
                j.service_demand,
                j.msgs_per_node as f64 * j.size() as f64
            );
            assert!(j.msgs_per_node >= 1);
        }
    }

    #[test]
    fn num_mes_mean_respected() {
        let g = StochasticGen::paper(SideDist::Uniform, 0.01);
        let mut rng = SimRng::new(6);
        let jobs = g.generate(50_000, &mut rng);
        let mean: f64 =
            jobs.iter().map(|j| j.msgs_per_node as f64).sum::<f64>() / jobs.len() as f64;
        assert!((mean - 5.0).abs() < 0.3, "num_mes mean {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = StochasticGen::paper(SideDist::Exponential, 0.02);
        let a = g.generate(50, &mut SimRng::new(9));
        let b = g.generate(50, &mut SimRng::new(9));
        assert_eq!(a, b);
    }
}
