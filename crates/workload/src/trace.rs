//! Trace-driven job source: replay an archive trace at a controllable
//! offered load.
//!
//! [`TraceWorkload`] wraps a trace — either retained records (e.g. from
//! [`crate::swf::parse_swf`]) or a **file-backed streaming source**
//! ([`TraceWorkload::open`]) that is never materialized — together with
//! the two statistics that the load-scaling math needs: the mean
//! inter-arrival time and the mean *work* per job (processor-seconds).
//! It converts a target **offered load** into the paper's
//! arrival-scaling factor `f`:
//!
//! A trace's native offered load on a `P`-processor machine is
//!
//! ```text
//! rho = E[size x runtime] / (P x mean_interarrival)
//! ```
//!
//! — the fraction of machine capacity the jobs would occupy if each ran
//! for its recorded runtime. Multiplying every submit time by `f`
//! stretches (`f > 1`) or compresses (`f < 1`) the arrival process, so
//! `rho(f) = rho_native / f`. Hitting a target `rho*` therefore needs
//!
//! ```text
//! f = rho_native / rho*
//!   = E[work] / (P x mean_interarrival x rho*)
//!   = factor_for_load(mean_interarrival, rho* x P / E[work])
//! ```
//!
//! i.e. the offered-load target is the paper's job-arrival-rate load
//! `lambda = rho* x P / E[work]` fed to [`factor_for_load`]. The full
//! derivation, worked against the checked-in sample trace, is in
//! `docs/WORKLOADS.md`.
//!
//! ## Streaming pipeline
//!
//! Replay is an iterator chain with memory bounded by the number of
//! *live* jobs, not the trace length:
//!
//! ```text
//! File ──SwfRecords──▶ TraceRecord ──ScaledJobs──▶ JobSpec ──▶ EventQueue
//!        (one line            (offered-load factor       (one in-flight
//!         at a time)           applied on the fly)         arrival)
//! ```
//!
//! [`TraceWorkload::open`] makes one validating pass (computing the
//! scaling statistics online, retaining nothing); replay then re-reads
//! the file through [`ScaledJobs`], which applies the scaling factor per
//! record. The scaling arithmetic is shared with the batch converter
//! [`trace_to_jobs`] ([`crate::paragon::scale_trace_record`]), so the
//! lazy and materialized paths are bit-identical by construction — and
//! the golden CSVs plus `crates/workload/tests/streaming_equivalence.rs`
//! pin it down empirically. See docs/WORKLOADS.md § Streaming pipeline.

use crate::swf::{SwfError, SwfRecords};
use crate::{factor_for_load, trace_to_jobs, JobSpec, TraceRecord};
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Error constructing a [`TraceWorkload`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The SWF text failed to parse (carries the offending line).
    Swf(SwfError),
    /// The trace has fewer than two usable jobs, so it has no
    /// inter-arrival process to scale.
    TooShort(usize),
    /// Every job in the trace carries the same submit time, so the
    /// arrival span is zero and load scaling is undefined.
    ZeroSpan,
    /// The trace file could not be opened or read.
    Io {
        /// The offending path, rendered.
        path: String,
        /// The I/O error, rendered.
        message: String,
    },
}

impl core::fmt::Display for TraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TraceError::Swf(e) => e.fmt(f),
            TraceError::TooShort(n) => {
                write!(f, "trace has {n} usable jobs; need at least 2")
            }
            TraceError::ZeroSpan => {
                write!(f, "all jobs share one submit time; cannot scale arrivals")
            }
            TraceError::Io { path, message } => {
                write!(f, "{path}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<SwfError> for TraceError {
    fn from(e: SwfError) -> Self {
        TraceError::Swf(e)
    }
}

/// Where the records come from.
#[derive(Debug, Clone)]
enum TraceSource {
    /// Retained, submit-sorted records ([`TraceWorkload::new`] /
    /// [`TraceWorkload::from_swf`]).
    Memory(Arc<Vec<TraceRecord>>),
    /// A validated SWF file re-read on demand ([`TraceWorkload::open`]):
    /// O(1) memory regardless of trace length.
    File(Arc<PathBuf>),
}

/// A trace ready for replay at a controllable offered load.
///
/// Construct from records ([`TraceWorkload::new`]), from SWF text
/// ([`TraceWorkload::from_swf`]), or — for traces too large to retain —
/// straight from an SWF file ([`TraceWorkload::open`]), which streams.
/// Then either ask for the scaling factor
/// ([`TraceWorkload::factor_for_offered_load`]), for a lazy scaled job
/// stream ([`TraceWorkload::stream_jobs`]), or for a materialized batch
/// ([`TraceWorkload::jobs_at_load`], the equivalence oracle for the
/// streaming path).
///
/// Cloning is cheap (the source is behind an `Arc`), and concurrent
/// replications sharing one workload share the source without any
/// per-(mesh, load) caching — each replication's [`ScaledJobs`] cursor
/// scales records on the fly, so nothing is ever double-materialized.
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    source: TraceSource,
    len: usize,
    mean_interarrival_s: f64,
    mean_work: f64,
}

/// Equality is over the record stream itself.
impl PartialEq for TraceWorkload {
    fn eq(&self, other: &Self) -> bool {
        match (&self.source, &other.source) {
            (TraceSource::Memory(a), TraceSource::Memory(b)) => a == b,
            _ => self.len == other.len && self.iter_records().eq(other.iter_records()),
        }
    }
}

/// Opens a validated SWF file as a streaming record parser.
fn open_records(path: &Path) -> Result<SwfRecords<BufReader<std::fs::File>>, TraceError> {
    let file = std::fs::File::open(path).map_err(|e| TraceError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    Ok(SwfRecords::new(BufReader::new(file)))
}

/// Reopens a previously validated trace file mid-replay. The file was
/// fully parsed once by [`TraceWorkload::open`], so failure here means
/// it was moved or rewritten while the simulation ran — there is no
/// sensible recovery, and silently continuing would corrupt results.
fn reopen_validated(path: &Path) -> SwfRecords<BufReader<std::fs::File>> {
    match open_records(path) {
        Ok(p) => p,
        Err(e) => panic!("trace file {} changed mid-run: {e}", path.display()),
    }
}

impl TraceWorkload {
    /// Wraps a record stream. Records are (stably) sorted by submit time
    /// — SWF files are normally ordered already, but real archive logs
    /// occasionally are not, and an unsorted stream would corrupt the
    /// span-based statistics below. Fails if fewer than two jobs remain
    /// (no inter-arrival process to scale).
    pub fn new(mut records: Vec<TraceRecord>) -> Result<Self, TraceError> {
        if records.len() < 2 {
            return Err(TraceError::TooShort(records.len()));
        }
        records.sort_by(|a, b| a.submit_s.total_cmp(&b.submit_s));
        let n = records.len() as f64;
        // procsim-lint: allow(D004): invariant: the len < 2 guard above means last() is Some
        let span = (records.last().expect("invariant: non-empty records").submit_s
            - records[0].submit_s)
            .max(0.0);
        let mean_interarrival_s = span / (n - 1.0);
        if mean_interarrival_s <= 0.0 {
            return Err(TraceError::ZeroSpan);
        }
        let mean_work = records
            .iter()
            .map(|r| r.size as f64 * r.runtime_s)
            // procsim-lint: allow(D003): slice iteration in index order over the just-sorted records; deterministic for a given trace
            .sum::<f64>()
            / n;
        Ok(TraceWorkload {
            len: records.len(),
            source: TraceSource::Memory(Arc::new(records)),
            mean_interarrival_s,
            mean_work,
        })
    }

    /// Parses SWF text and wraps the result (retained in memory).
    pub fn from_swf(text: &str) -> Result<Self, TraceError> {
        let records = crate::swf::parse_swf(text)?;
        TraceWorkload::new(records)
    }

    /// Opens an SWF file as a **streaming** workload: one validating
    /// pass computes the job count and scaling statistics online (O(1)
    /// memory), and replay re-reads the file on demand — the records are
    /// never materialized, so million-job archive logs replay in bounded
    /// memory.
    ///
    /// The streaming path requires submit-sorted records (the SWF
    /// convention). If the validation pass finds out-of-order submits it
    /// falls back to the retained path ([`TraceWorkload::from_swf`]) —
    /// correctness over footprint for that rare shape of input.
    ///
    /// For a sorted file, every statistic (and hence every scaling
    /// factor and every simulator result) is bit-identical to
    /// `from_swf(&read_to_string(path))`: the sums accumulate in the
    /// same record order.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let path = path.as_ref();
        let mut n = 0usize;
        let mut first = 0.0f64;
        let mut last = 0.0f64;
        let mut work_sum = 0.0f64;
        let mut sorted = true;
        for rec in open_records(path)? {
            let r = rec?;
            if n == 0 {
                first = r.submit_s;
            } else if r.submit_s < last {
                sorted = false;
            }
            last = r.submit_s;
            work_sum += r.size as f64 * r.runtime_s;
            n += 1;
        }
        if !sorted {
            let text = std::fs::read_to_string(path).map_err(|e| TraceError::Io {
                path: path.display().to_string(),
                message: e.to_string(),
            })?;
            return TraceWorkload::from_swf(&text);
        }
        if n < 2 {
            return Err(TraceError::TooShort(n));
        }
        let span = (last - first).max(0.0);
        let mean_interarrival_s = span / (n as f64 - 1.0);
        if mean_interarrival_s <= 0.0 {
            return Err(TraceError::ZeroSpan);
        }
        Ok(TraceWorkload {
            source: TraceSource::File(Arc::new(path.to_path_buf())),
            len: n,
            mean_interarrival_s,
            mean_work: work_sum / n as f64,
        })
    }

    /// `true` when replay streams from a file instead of retained
    /// records (i.e. the workload was built by [`TraceWorkload::open`]
    /// on a sorted file).
    pub fn is_streaming(&self) -> bool {
        matches!(self.source, TraceSource::File(_))
    }

    /// The retained records when this workload is memory-backed
    /// ([`TraceWorkload::new`] / [`TraceWorkload::from_swf`]); `None`
    /// for file-backed streaming workloads — use
    /// [`TraceWorkload::iter_records`] instead, which works for both.
    pub fn records(&self) -> Option<&[TraceRecord]> {
        match &self.source {
            TraceSource::Memory(recs) => Some(recs),
            TraceSource::File(_) => None,
        }
    }

    /// Streams the records in submit order, one at a time (O(1) memory
    /// for file-backed workloads).
    ///
    /// # Panics
    ///
    /// A file-backed iterator panics if the file fails to re-parse: the
    /// file was validated by [`TraceWorkload::open`], so that only
    /// happens if it was modified mid-run.
    pub fn iter_records(&self) -> RecordIter<'_> {
        let inner = match &self.source {
            TraceSource::Memory(recs) => RecordIterInner::Memory { recs, pos: 0 },
            TraceSource::File(path) => RecordIterInner::File {
                parser: reopen_validated(path),
                path,
                yielded: 0,
                expect: self.len,
            },
        };
        RecordIter { inner }
    }

    /// Summary statistics: exact for memory-backed workloads, computed
    /// online in one streaming pass for file-backed ones (the runtime
    /// median is then a log₂-histogram estimate — see
    /// [`crate::stats::StreamingSummary`]). `None` for traces with
    /// fewer than two jobs, which construction already rules out.
    pub fn summary(&self) -> Option<crate::stats::TraceSummary> {
        match &self.source {
            TraceSource::Memory(recs) => crate::stats::summarize(recs),
            TraceSource::File(_) => crate::stats::summarize_stream(self.iter_records()),
        }
    }

    /// Number of usable jobs (always >= 2).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always `false` (construction requires >= 2 jobs); present because
    /// clippy expects it next to [`TraceWorkload::len`].
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mean inter-arrival time in seconds, measured over the trace span.
    pub fn mean_interarrival_s(&self) -> f64 {
        self.mean_interarrival_s
    }

    /// Mean work per job in processor-seconds: `E[size x runtime]`.
    pub fn mean_work(&self) -> f64 {
        self.mean_work
    }

    /// The trace's native offered load on a machine of `machine_size`
    /// processors: `E[work] / (P x mean_interarrival)` — the fraction of
    /// machine capacity occupied if every job ran for its recorded
    /// runtime. Can exceed 1 for traces logged on a bigger machine.
    pub fn offered_load(&self, machine_size: u32) -> f64 {
        assert!(machine_size > 0);
        self.mean_work / (machine_size as f64 * self.mean_interarrival_s)
    }

    /// The job-arrival-rate load (jobs per second) equivalent to offered
    /// load `rho` on `machine_size` processors: `rho x P / E[work]`.
    /// This is the `load` argument [`factor_for_load`] expects.
    pub fn arrival_load(&self, machine_size: u32, rho: f64) -> f64 {
        assert!(rho > 0.0, "offered load must be positive");
        rho * machine_size as f64 / self.mean_work
    }

    /// The arrival-scaling factor `f` that makes this trace's offered
    /// load on `machine_size` processors equal `rho` (`f < 1` compresses
    /// arrivals — higher load; `f > 1` stretches them). Built on
    /// [`factor_for_load`]: `f = factor_for_load(mean_ia, arrival_load)`.
    pub fn factor_for_offered_load(&self, machine_size: u32, rho: f64) -> f64 {
        factor_for_load(self.mean_interarrival_s, self.arrival_load(machine_size, rho))
    }

    /// Converts the trace into simulator jobs at offered load `rho` on a
    /// `mesh_w x mesh_l` mesh, mapping runtimes to per-processor message
    /// counts via `runtime_scale` (seconds per message) as in
    /// [`trace_to_jobs`].
    ///
    /// This **materializes** the whole scaled stream — it is the batch
    /// oracle the streaming [`TraceWorkload::stream_jobs`] cursor is
    /// tested against, and stays useful for small pre-scaled fixtures
    /// (the simulator's `FixedTrace` runs). Production replay uses
    /// [`TraceWorkload::stream_jobs`].
    pub fn jobs_at_load(
        &self,
        mesh_w: u16,
        mesh_l: u16,
        rho: f64,
        runtime_scale: f64,
    ) -> Vec<JobSpec> {
        let machine = mesh_w as u32 * mesh_l as u32;
        let f = self.factor_for_offered_load(machine, rho);
        match &self.source {
            TraceSource::Memory(recs) => trace_to_jobs(recs, mesh_w, mesh_l, f, runtime_scale),
            TraceSource::File(_) => {
                let recs: Vec<TraceRecord> = self.iter_records().collect();
                trace_to_jobs(&recs, mesh_w, mesh_l, f, runtime_scale)
            }
        }
    }

    /// A lazy, endlessly wrapping stream of scaled simulator jobs
    /// starting at record index `start` — the streaming replacement for
    /// materializing [`TraceWorkload::jobs_at_load`] and indexing into
    /// it.
    ///
    /// Job `id`s are the record indexes (`start`, `start+1`, …,
    /// `len-1`, `0`, `1`, …), and every `JobSpec` field is bit-identical
    /// to `jobs_at_load(..)[id]` (the per-record arithmetic is shared:
    /// [`crate::paragon::scale_trace_record`]). The iterator never ends;
    /// the simulator's replication budget decides how much of it to
    /// consume. Memory is O(1) per cursor for file-backed workloads.
    pub fn stream_jobs(
        &self,
        mesh_w: u16,
        mesh_l: u16,
        rho: f64,
        runtime_scale: f64,
        start: usize,
    ) -> ScaledJobs {
        assert!(start < self.len, "start {start} out of range {}", self.len);
        let machine = mesh_w as u32 * mesh_l as u32;
        let f = self.factor_for_offered_load(machine, rho);
        assert!(f > 0.0 && runtime_scale > 0.0);
        let source = match &self.source {
            TraceSource::Memory(recs) => CursorSource::Memory(recs.clone()),
            TraceSource::File(path) => {
                let mut parser = reopen_validated(path);
                skip_validated(&mut parser, start, path);
                CursorSource::File {
                    path: path.clone(),
                    parser,
                }
            }
        };
        ScaledJobs {
            source,
            pos: start,
            len: self.len,
            mesh_w,
            mesh_l,
            f,
            runtime_scale,
        }
    }

    /// Caps a per-replication `(warmup, measured)` job budget to one
    /// pass over this trace (a replication replays the stream at most
    /// once). Returns the budget unchanged when it fits; otherwise
    /// shrinks it to a 1:4 warmup:measured split of the trace length.
    /// Front-ends share this policy (and should warn when the result
    /// differs from what was asked).
    pub fn capped_budget(&self, warmup: usize, measured: usize) -> (usize, usize) {
        if warmup + measured <= self.len() {
            (warmup, measured)
        } else {
            let w = (self.len() / 5).max(1);
            (w, self.len() - w)
        }
    }
}

/// Skips `n` records of a freshly reopened, previously validated file.
fn skip_validated(parser: &mut SwfRecords<BufReader<std::fs::File>>, n: usize, path: &Path) {
    for i in 0..n {
        match parser.next() {
            Some(Ok(_)) => {}
            _ => panic!(
                "trace file {} changed mid-run: stream ended at record {i} while skipping to {n}",
                path.display()
            ),
        }
    }
}

enum RecordIterInner<'a> {
    Memory {
        recs: &'a [TraceRecord],
        pos: usize,
    },
    File {
        parser: SwfRecords<BufReader<std::fs::File>>,
        path: &'a Path,
        yielded: usize,
        expect: usize,
    },
}

/// Iterator over a workload's records in submit order (see
/// [`TraceWorkload::iter_records`]).
pub struct RecordIter<'a> {
    inner: RecordIterInner<'a>,
}

impl Iterator for RecordIter<'_> {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        match &mut self.inner {
            RecordIterInner::Memory { recs, pos } => {
                let r = recs.get(*pos).copied();
                *pos += 1;
                r
            }
            RecordIterInner::File {
                parser,
                path,
                yielded,
                expect,
            } => match parser.next() {
                Some(Ok(r)) => {
                    *yielded += 1;
                    Some(r)
                }
                Some(Err(e)) => panic!("trace file {} changed mid-run: {e}", path.display()),
                None => {
                    assert!(
                        *yielded == *expect,
                        "trace file {} changed mid-run: {yielded} records, validated {expect}",
                        path.display()
                    );
                    None
                }
            },
        }
    }
}

enum CursorSource {
    Memory(Arc<Vec<TraceRecord>>),
    File {
        path: Arc<PathBuf>,
        parser: SwfRecords<BufReader<std::fs::File>>,
    },
}

/// An endless, lazily scaled job stream over a [`TraceWorkload`] — see
/// [`TraceWorkload::stream_jobs`]. Yields `jobs_at_load(..)[start]`,
/// `[start+1]`, …, `[len-1]`, `[0]`, … without ever materializing the
/// scaled vector; file-backed cursors hold only a line buffer.
pub struct ScaledJobs {
    source: CursorSource,
    pos: usize,
    len: usize,
    mesh_w: u16,
    mesh_l: u16,
    f: f64,
    runtime_scale: f64,
}

impl ScaledJobs {
    /// Number of records in one full pass over the underlying trace.
    pub fn trace_len(&self) -> usize {
        self.len
    }
}

impl Iterator for ScaledJobs {
    type Item = JobSpec;

    fn next(&mut self) -> Option<JobSpec> {
        let rec = match &mut self.source {
            CursorSource::Memory(recs) => recs[self.pos],
            CursorSource::File { path, parser } => match parser.next() {
                Some(Ok(r)) => r,
                Some(Err(e)) => panic!("trace file {} changed mid-run: {e}", path.display()),
                None => panic!(
                    "trace file {} changed mid-run: stream ended at record {} of {}",
                    path.display(),
                    self.pos,
                    self.len
                ),
            },
        };
        let job = crate::paragon::scale_trace_record(
            &rec,
            self.pos as u64,
            self.mesh_w,
            self.mesh_l,
            self.f,
            self.runtime_scale,
        );
        self.pos += 1;
        if self.pos == self.len {
            self.pos = 0;
            if let CursorSource::File { path, parser } = &mut self.source {
                *parser = reopen_validated(path);
            }
        }
        Some(job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_for_factor;

    fn flat_trace(n: usize, gap: f64, size: u32, runtime: f64) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| TraceRecord {
                submit_s: i as f64 * gap,
                size,
                runtime_s: runtime,
            })
            .collect()
    }

    #[test]
    fn rejects_degenerate_traces() {
        assert_eq!(TraceWorkload::new(vec![]), Err(TraceError::TooShort(0)));
        assert_eq!(
            TraceWorkload::new(flat_trace(1, 10.0, 4, 5.0)),
            Err(TraceError::TooShort(1))
        );
        // simultaneous arrivals: no inter-arrival process
        assert_eq!(
            TraceWorkload::new(flat_trace(5, 0.0, 4, 5.0)),
            Err(TraceError::ZeroSpan)
        );
    }

    #[test]
    fn from_swf_propagates_position() {
        let err = TraceWorkload::from_swf("1 bad 3 100 32 -1 -1 32\n").unwrap_err();
        match err {
            TraceError::Swf(e) => assert_eq!(e.line, 1),
            other => panic!("expected Swf error, got {other:?}"),
        }
    }

    #[test]
    fn open_missing_file_is_io_error() {
        let err = TraceWorkload::open("/nonexistent/procsim-no-such-trace.swf").unwrap_err();
        assert!(matches!(err, TraceError::Io { .. }), "{err}");
        assert!(err.to_string().contains("no-such-trace"));
    }

    #[test]
    fn unsorted_records_are_normalized() {
        let mut recs = flat_trace(10, 50.0, 10, 100.0);
        recs.reverse();
        let unsorted = TraceWorkload::new(recs).unwrap();
        let sorted = TraceWorkload::new(flat_trace(10, 50.0, 10, 100.0)).unwrap();
        assert_eq!(unsorted, sorted);
        assert!((unsorted.mean_interarrival_s() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn offered_load_hand_computed() {
        // 100 jobs, one every 50 s, 10 procs x 100 s each => work 1000
        // proc-s per job; on 100 procs: rho = 1000 / (100 * 50) = 0.2
        let w = TraceWorkload::new(flat_trace(100, 50.0, 10, 100.0)).unwrap();
        assert!((w.mean_interarrival_s() - 50.0).abs() < 1e-9);
        assert!((w.mean_work() - 1000.0).abs() < 1e-9);
        assert!((w.offered_load(100) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn factor_round_trips_through_load_for_factor() {
        let w = TraceWorkload::new(flat_trace(100, 50.0, 10, 100.0)).unwrap();
        for rho in [0.2, 0.5, 0.7, 1.0] {
            let f = w.factor_for_offered_load(100, rho);
            // factor_for_load and load_for_factor are inverses...
            let lambda = w.arrival_load(100, rho);
            assert!((load_for_factor(w.mean_interarrival_s(), f) - lambda).abs() < 1e-12);
            // ...and scaling submit times by f realizes the target rho
            let scaled: Vec<TraceRecord> = w
                .iter_records()
                .map(|r| TraceRecord {
                    submit_s: r.submit_s * f,
                    ..r
                })
                .collect();
            let rescaled = TraceWorkload::new(scaled).unwrap();
            assert!(
                (rescaled.offered_load(100) - rho).abs() < 1e-9,
                "target {rho} realized {}",
                rescaled.offered_load(100)
            );
        }
    }

    #[test]
    fn native_load_means_factor_one() {
        let w = TraceWorkload::new(flat_trace(60, 30.0, 7, 90.0)).unwrap();
        let native = w.offered_load(352);
        assert!((w.factor_for_offered_load(352, native) - 1.0).abs() < 1e-12);
        // halving the load doubles the factor (stretches arrivals)
        assert!((w.factor_for_offered_load(352, native / 2.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn capped_budget_limits_to_one_pass() {
        let w = TraceWorkload::new(flat_trace(100, 10.0, 4, 20.0)).unwrap();
        // fits: unchanged
        assert_eq!(w.capped_budget(20, 80), (20, 80));
        assert_eq!(w.capped_budget(10, 40), (10, 40));
        // does not fit: 1:4 split of the trace length
        assert_eq!(w.capped_budget(100, 400), (20, 80));
        assert_eq!(w.capped_budget(1, 100), (20, 80));
        // tiny trace: warmup never reaches 0
        let tiny = TraceWorkload::new(flat_trace(3, 10.0, 4, 20.0)).unwrap();
        assert_eq!(tiny.capped_budget(10, 400), (1, 2));
    }

    #[test]
    fn stream_jobs_matches_batch_oracle() {
        let w = TraceWorkload::new(flat_trace(40, 80.0, 5, 200.0)).unwrap();
        let batch = w.jobs_at_load(16, 22, 0.7, 360.0);
        // from the start: one full wrap replays the batch twice
        let streamed: Vec<JobSpec> = w.stream_jobs(16, 22, 0.7, 360.0, 0).take(80).collect();
        assert_eq!(&streamed[..40], &batch[..]);
        assert_eq!(&streamed[40..], &batch[..]);
        // from an offset: tail first, then wraps to the front
        let offset: Vec<JobSpec> = w.stream_jobs(16, 22, 0.7, 360.0, 25).take(40).collect();
        assert_eq!(&offset[..15], &batch[25..]);
        assert_eq!(&offset[15..], &batch[..25]);
    }

    #[test]
    fn concurrent_cursors_share_the_source() {
        // two replications of the same (trace, mesh, rho) must not
        // double-materialize: memory cursors borrow the same Arc'd
        // records, and nothing else is allocated per cursor
        let w = TraceWorkload::new(flat_trace(40, 80.0, 5, 200.0)).unwrap();
        let base = match &w.source {
            TraceSource::Memory(recs) => Arc::strong_count(recs),
            TraceSource::File(_) => unreachable!(),
        };
        let a = w.stream_jobs(16, 22, 0.7, 360.0, 0);
        let b = w.stream_jobs(16, 22, 0.7, 360.0, 0);
        match &w.source {
            TraceSource::Memory(recs) => {
                assert_eq!(Arc::strong_count(recs), base + 2, "cursors share the Arc")
            }
            TraceSource::File(_) => unreachable!(),
        }
        assert_eq!(a.take(40).collect::<Vec<_>>(), b.take(40).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_at_load_scales_arrivals() {
        let w = TraceWorkload::new(flat_trace(50, 100.0, 6, 360.0)).unwrap();
        let native = w.offered_load(352);
        let jobs_native = w.jobs_at_load(16, 22, native, 360.0);
        let jobs_double = w.jobs_at_load(16, 22, native * 2.0, 360.0);
        assert_eq!(jobs_native.len(), 50);
        // doubling the load halves every arrival time
        let last_n = jobs_native.last().unwrap().arrive;
        let last_d = jobs_double.last().unwrap().arrive;
        assert!(
            (last_n as f64 / last_d as f64 - 2.0).abs() < 0.01,
            "native {last_n} double {last_d}"
        );
        // shapes and message counts are untouched by load scaling
        for (a, b) in jobs_native.iter().zip(&jobs_double) {
            assert_eq!((a.a, a.b), (b.a, b.b));
            assert_eq!(a.msgs_per_node, b.msgs_per_node);
        }
    }
}
