//! Trace-driven job source: replay an archive trace at a controllable
//! offered load.
//!
//! [`TraceWorkload`] wraps a parsed trace ([`TraceRecord`]s, e.g. from
//! [`crate::swf::parse_swf`]) together with the two statistics that the
//! load-scaling math needs — the mean inter-arrival time and the mean
//! *work* per job (processor-seconds) — and converts a target **offered
//! load** into the paper's arrival-scaling factor `f`:
//!
//! A trace's native offered load on a `P`-processor machine is
//!
//! ```text
//! rho = E[size x runtime] / (P x mean_interarrival)
//! ```
//!
//! — the fraction of machine capacity the jobs would occupy if each ran
//! for its recorded runtime. Multiplying every submit time by `f`
//! stretches (`f > 1`) or compresses (`f < 1`) the arrival process, so
//! `rho(f) = rho_native / f`. Hitting a target `rho*` therefore needs
//!
//! ```text
//! f = rho_native / rho*
//!   = E[work] / (P x mean_interarrival x rho*)
//!   = factor_for_load(mean_interarrival, rho* x P / E[work])
//! ```
//!
//! i.e. the offered-load target is the paper's job-arrival-rate load
//! `lambda = rho* x P / E[work]` fed to [`factor_for_load`]. The full
//! derivation, worked against the checked-in sample trace, is in
//! `docs/WORKLOADS.md`.

use crate::swf::SwfError;
use crate::{factor_for_load, trace_to_jobs, JobSpec, TraceRecord};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Cache key for one scaled conversion: mesh dims plus the bit patterns
/// of (rho, runtime_scale).
type ScaleKey = (u16, u16, u64, u64);

/// Error constructing a [`TraceWorkload`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The SWF text failed to parse (carries the offending line).
    Swf(SwfError),
    /// The trace has fewer than two usable jobs, so it has no
    /// inter-arrival process to scale.
    TooShort(usize),
    /// Every job in the trace carries the same submit time, so the
    /// arrival span is zero and load scaling is undefined.
    ZeroSpan,
}

impl core::fmt::Display for TraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TraceError::Swf(e) => e.fmt(f),
            TraceError::TooShort(n) => {
                write!(f, "trace has {n} usable jobs; need at least 2")
            }
            TraceError::ZeroSpan => {
                write!(f, "all jobs share one submit time; cannot scale arrivals")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<SwfError> for TraceError {
    fn from(e: SwfError) -> Self {
        TraceError::Swf(e)
    }
}

/// A trace ready for replay at a controllable offered load.
///
/// Construct from records ([`TraceWorkload::new`]) or straight from SWF
/// text ([`TraceWorkload::from_swf`]); then either ask for the scaling
/// factor ([`TraceWorkload::factor_for_offered_load`]) or for finished
/// simulator jobs ([`TraceWorkload::jobs_at_load`]).
#[derive(Debug)]
pub struct TraceWorkload {
    records: Vec<TraceRecord>,
    mean_interarrival_s: f64,
    mean_work: f64,
    /// Memo of [`TraceWorkload::jobs_at_load_shared`] conversions: the
    /// scaled stream is a pure function of (trace, mesh, rho, scale), so
    /// the replications of a point — and all strategies replaying the
    /// same trace at the same load — share one `Arc`'d stream instead of
    /// re-deriving it per `Simulator`. Accessed only by key (entry),
    /// never iterated, so the RandomState hash order cannot leak into
    /// results (D001-audited).
    scaled: Mutex<HashMap<ScaleKey, Arc<Vec<JobSpec>>>>,
}

impl Clone for TraceWorkload {
    fn clone(&self) -> Self {
        TraceWorkload {
            records: self.records.clone(),
            mean_interarrival_s: self.mean_interarrival_s,
            mean_work: self.mean_work,
            scaled: Mutex::new(HashMap::new()),
        }
    }
}

/// Equality is over the trace itself; the conversion memo is invisible.
impl PartialEq for TraceWorkload {
    fn eq(&self, other: &Self) -> bool {
        self.records == other.records
    }
}

impl TraceWorkload {
    /// Wraps a record stream. Records are (stably) sorted by submit time
    /// — SWF files are normally ordered already, but real archive logs
    /// occasionally are not, and an unsorted stream would corrupt the
    /// span-based statistics below. Fails if fewer than two jobs remain
    /// (no inter-arrival process to scale).
    pub fn new(mut records: Vec<TraceRecord>) -> Result<Self, TraceError> {
        if records.len() < 2 {
            return Err(TraceError::TooShort(records.len()));
        }
        records.sort_by(|a, b| a.submit_s.total_cmp(&b.submit_s));
        let n = records.len() as f64;
        // procsim-lint: allow(D004): invariant: the len < 2 guard above means last() is Some
        let span = (records.last().expect("invariant: non-empty records").submit_s
            - records[0].submit_s)
            .max(0.0);
        let mean_interarrival_s = span / (n - 1.0);
        if mean_interarrival_s <= 0.0 {
            return Err(TraceError::ZeroSpan);
        }
        let mean_work = records
            .iter()
            .map(|r| r.size as f64 * r.runtime_s)
            // procsim-lint: allow(D003): slice iteration in index order over the just-sorted records; deterministic for a given trace
            .sum::<f64>()
            / n;
        Ok(TraceWorkload {
            records,
            mean_interarrival_s,
            mean_work,
            scaled: Mutex::new(HashMap::new()),
        })
    }

    /// Parses SWF text and wraps the result.
    pub fn from_swf(text: &str) -> Result<Self, TraceError> {
        let records = crate::swf::parse_swf(text)?;
        TraceWorkload::new(records)
    }

    /// The wrapped records, sorted by submit time.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of usable jobs (always >= 2).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Always `false` (construction requires >= 2 jobs); present because
    /// clippy expects it next to [`TraceWorkload::len`].
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Mean inter-arrival time in seconds, measured over the trace span.
    pub fn mean_interarrival_s(&self) -> f64 {
        self.mean_interarrival_s
    }

    /// Mean work per job in processor-seconds: `E[size x runtime]`.
    pub fn mean_work(&self) -> f64 {
        self.mean_work
    }

    /// The trace's native offered load on a machine of `machine_size`
    /// processors: `E[work] / (P x mean_interarrival)` — the fraction of
    /// machine capacity occupied if every job ran for its recorded
    /// runtime. Can exceed 1 for traces logged on a bigger machine.
    pub fn offered_load(&self, machine_size: u32) -> f64 {
        assert!(machine_size > 0);
        self.mean_work / (machine_size as f64 * self.mean_interarrival_s)
    }

    /// The job-arrival-rate load (jobs per second) equivalent to offered
    /// load `rho` on `machine_size` processors: `rho x P / E[work]`.
    /// This is the `load` argument [`factor_for_load`] expects.
    pub fn arrival_load(&self, machine_size: u32, rho: f64) -> f64 {
        assert!(rho > 0.0, "offered load must be positive");
        rho * machine_size as f64 / self.mean_work
    }

    /// The arrival-scaling factor `f` that makes this trace's offered
    /// load on `machine_size` processors equal `rho` (`f < 1` compresses
    /// arrivals — higher load; `f > 1` stretches them). Built on
    /// [`factor_for_load`]: `f = factor_for_load(mean_ia, arrival_load)`.
    pub fn factor_for_offered_load(&self, machine_size: u32, rho: f64) -> f64 {
        factor_for_load(self.mean_interarrival_s, self.arrival_load(machine_size, rho))
    }

    /// Converts the trace into simulator jobs at offered load `rho` on a
    /// `mesh_w x mesh_l` mesh, mapping runtimes to per-processor message
    /// counts via `runtime_scale` (seconds per message) as in
    /// [`trace_to_jobs`].
    pub fn jobs_at_load(
        &self,
        mesh_w: u16,
        mesh_l: u16,
        rho: f64,
        runtime_scale: f64,
    ) -> Vec<JobSpec> {
        let machine = mesh_w as u32 * mesh_l as u32;
        let f = self.factor_for_offered_load(machine, rho);
        trace_to_jobs(&self.records, mesh_w, mesh_l, f, runtime_scale)
    }

    /// Caps a per-replication `(warmup, measured)` job budget to one
    /// pass over this trace (a replication replays the stream at most
    /// once). Returns the budget unchanged when it fits; otherwise
    /// shrinks it to a 1:4 warmup:measured split of the trace length.
    /// Front-ends share this policy (and should warn when the result
    /// differs from what was asked).
    pub fn capped_budget(&self, warmup: usize, measured: usize) -> (usize, usize) {
        if warmup + measured <= self.len() {
            (warmup, measured)
        } else {
            let w = (self.len() / 5).max(1);
            (w, self.len() - w)
        }
    }

    /// [`TraceWorkload::jobs_at_load`] behind a memo: repeated calls with
    /// the same arguments (every replication of a point, every strategy
    /// sharing the trace) return the same `Arc`'d stream, so an archive
    /// trace is converted once per (mesh, load, scale), not once per
    /// simulator.
    pub fn jobs_at_load_shared(
        &self,
        mesh_w: u16,
        mesh_l: u16,
        rho: f64,
        runtime_scale: f64,
    ) -> Arc<Vec<JobSpec>> {
        let key = (mesh_w, mesh_l, rho.to_bits(), runtime_scale.to_bits());
        // the cache holds pure values (scaled copies of an immutable trace),
        // so a poisoned lock still guards coherent data; recover rather
        // than cascade a panic from an unrelated thread
        let mut cache = self.scaled.lock().unwrap_or_else(|p| p.into_inner());
        cache
            .entry(key)
            .or_insert_with(|| Arc::new(self.jobs_at_load(mesh_w, mesh_l, rho, runtime_scale)))
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load_for_factor;

    fn flat_trace(n: usize, gap: f64, size: u32, runtime: f64) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| TraceRecord {
                submit_s: i as f64 * gap,
                size,
                runtime_s: runtime,
            })
            .collect()
    }

    #[test]
    fn rejects_degenerate_traces() {
        assert_eq!(TraceWorkload::new(vec![]), Err(TraceError::TooShort(0)));
        assert_eq!(
            TraceWorkload::new(flat_trace(1, 10.0, 4, 5.0)),
            Err(TraceError::TooShort(1))
        );
        // simultaneous arrivals: no inter-arrival process
        assert_eq!(
            TraceWorkload::new(flat_trace(5, 0.0, 4, 5.0)),
            Err(TraceError::ZeroSpan)
        );
    }

    #[test]
    fn from_swf_propagates_position() {
        let err = TraceWorkload::from_swf("1 bad 3 100 32 -1 -1 32\n").unwrap_err();
        match err {
            TraceError::Swf(e) => assert_eq!(e.line, 1),
            other => panic!("expected Swf error, got {other:?}"),
        }
    }

    #[test]
    fn unsorted_records_are_normalized() {
        let mut recs = flat_trace(10, 50.0, 10, 100.0);
        recs.reverse();
        let unsorted = TraceWorkload::new(recs).unwrap();
        let sorted = TraceWorkload::new(flat_trace(10, 50.0, 10, 100.0)).unwrap();
        assert_eq!(unsorted, sorted);
        assert!((unsorted.mean_interarrival_s() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn offered_load_hand_computed() {
        // 100 jobs, one every 50 s, 10 procs x 100 s each => work 1000
        // proc-s per job; on 100 procs: rho = 1000 / (100 * 50) = 0.2
        let w = TraceWorkload::new(flat_trace(100, 50.0, 10, 100.0)).unwrap();
        assert!((w.mean_interarrival_s() - 50.0).abs() < 1e-9);
        assert!((w.mean_work() - 1000.0).abs() < 1e-9);
        assert!((w.offered_load(100) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn factor_round_trips_through_load_for_factor() {
        let w = TraceWorkload::new(flat_trace(100, 50.0, 10, 100.0)).unwrap();
        for rho in [0.2, 0.5, 0.7, 1.0] {
            let f = w.factor_for_offered_load(100, rho);
            // factor_for_load and load_for_factor are inverses...
            let lambda = w.arrival_load(100, rho);
            assert!((load_for_factor(w.mean_interarrival_s(), f) - lambda).abs() < 1e-12);
            // ...and scaling submit times by f realizes the target rho
            let scaled: Vec<TraceRecord> = w
                .records()
                .iter()
                .map(|r| TraceRecord {
                    submit_s: r.submit_s * f,
                    ..*r
                })
                .collect();
            let rescaled = TraceWorkload::new(scaled).unwrap();
            assert!(
                (rescaled.offered_load(100) - rho).abs() < 1e-9,
                "target {rho} realized {}",
                rescaled.offered_load(100)
            );
        }
    }

    #[test]
    fn native_load_means_factor_one() {
        let w = TraceWorkload::new(flat_trace(60, 30.0, 7, 90.0)).unwrap();
        let native = w.offered_load(352);
        assert!((w.factor_for_offered_load(352, native) - 1.0).abs() < 1e-12);
        // halving the load doubles the factor (stretches arrivals)
        assert!((w.factor_for_offered_load(352, native / 2.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn capped_budget_limits_to_one_pass() {
        let w = TraceWorkload::new(flat_trace(100, 10.0, 4, 20.0)).unwrap();
        // fits: unchanged
        assert_eq!(w.capped_budget(20, 80), (20, 80));
        assert_eq!(w.capped_budget(10, 40), (10, 40));
        // does not fit: 1:4 split of the trace length
        assert_eq!(w.capped_budget(100, 400), (20, 80));
        assert_eq!(w.capped_budget(1, 100), (20, 80));
        // tiny trace: warmup never reaches 0
        let tiny = TraceWorkload::new(flat_trace(3, 10.0, 4, 20.0)).unwrap();
        assert_eq!(tiny.capped_budget(10, 400), (1, 2));
    }

    #[test]
    fn shared_conversion_is_memoized() {
        let w = TraceWorkload::new(flat_trace(40, 80.0, 5, 200.0)).unwrap();
        let a = w.jobs_at_load_shared(16, 22, 0.7, 360.0);
        let b = w.jobs_at_load_shared(16, 22, 0.7, 360.0);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one stream");
        assert_eq!(*a, w.jobs_at_load(16, 22, 0.7, 360.0));
        let c = w.jobs_at_load_shared(16, 22, 0.9, 360.0);
        assert!(!Arc::ptr_eq(&a, &c), "different load, different stream");
        // clones start with a cold cache but equal content
        let clone = w.clone();
        assert_eq!(clone, w);
        assert_eq!(*clone.jobs_at_load_shared(16, 22, 0.7, 360.0), *a);
    }

    #[test]
    fn jobs_at_load_scales_arrivals() {
        let w = TraceWorkload::new(flat_trace(50, 100.0, 6, 360.0)).unwrap();
        let native = w.offered_load(352);
        let jobs_native = w.jobs_at_load(16, 22, native, 360.0);
        let jobs_double = w.jobs_at_load(16, 22, native * 2.0, 360.0);
        assert_eq!(jobs_native.len(), 50);
        // doubling the load halves every arrival time
        let last_n = jobs_native.last().unwrap().arrive;
        let last_d = jobs_double.last().unwrap().arrive;
        assert!(
            (last_n as f64 / last_d as f64 - 2.0).abs() < 0.01,
            "native {last_n} double {last_d}"
        );
        // shapes and message counts are untouched by load scaling
        for (a, b) in jobs_native.iter().zip(&jobs_double) {
            assert_eq!((a.a, a.b), (b.a, b.b));
            assert_eq!(a.msgs_per_node, b.msgs_per_node);
        }
    }
}
