//! Greedy Available Busy List (Bani-Mohammad et al. 2007; paper §3).
//!
//! GABL is the authors' strategy: it first tries to satisfy the whole
//! `a × b` request contiguously (in either orientation); failing that, it
//! greedily allocates the largest free sub-mesh that fits inside the
//! request's shape, then repeatedly the largest free sub-mesh whose sides
//! do not exceed those of the previously allocated piece, until exactly
//! `a·b` processors are granted. Allocated sub-meshes are kept in a busy
//! list; allocation always succeeds when at least `a·b` processors are
//! free.
//!
//! The original formulation derives candidate bases from the busy list;
//! we use an equivalent prefix-sum scan over the occupancy grid (same
//! first-fit result, simpler invariants — the busy list is still
//! maintained because its *length* is a reported statistic and because
//! departures remove entries by allocation id).

use crate::{AllocId, Allocation, AllocationStrategy};
use mesh2d::{find_free_submesh, largest_free_rect, largest_free_rect_near, Coord, Mesh, SubMesh};

/// One busy-list entry: a sub-mesh granted to a live job.
#[derive(Debug, Clone, Copy)]
pub struct BusyEntry {
    /// The allocation this sub-mesh belongs to.
    pub owner: AllocId,
    /// The granted sub-mesh.
    pub sub: SubMesh,
}

/// The GABL allocator.
#[derive(Debug, Default)]
pub struct Gabl {
    busy: Vec<BusyEntry>,
    next_id: u64,
    /// High-water mark of the busy list length (reported by the ablation
    /// benches; the paper argues this stays small as the mesh scales, §6).
    peak_busy_len: usize,
}

impl Gabl {
    /// A fresh GABL allocator with an empty busy list.
    pub fn new() -> Self {
        Gabl::default()
    }

    /// Current busy list length (number of live allocated sub-meshes).
    pub fn busy_len(&self) -> usize {
        self.busy.len()
    }

    /// Largest busy list length observed since the last reset.
    pub fn peak_busy_len(&self) -> usize {
        self.peak_busy_len
    }

    /// Shrinks `rect` from its base corner so its area does not exceed
    /// `remaining` (GABL's constraint that the number of allocated
    /// processors never exceeds `a × b`).
    fn trim_to(rect: SubMesh, remaining: u32) -> SubMesh {
        debug_assert!(remaining >= 1);
        let w = rect.width() as u32;
        let l = rect.length() as u32;
        if w * l <= remaining {
            return rect;
        }
        // prefer shortening the longer dimension first to keep pieces
        // square-ish (less perimeter, shorter intra-job distances)
        let (mut w2, mut l2) = (w, l);
        if l2 >= w2 {
            l2 = (remaining / w2).max(1);
            if w2 * l2 > remaining {
                w2 = (remaining / l2).max(1);
            }
        } else {
            w2 = (remaining / l2).max(1);
            if w2 * l2 > remaining {
                l2 = (remaining / w2).max(1);
            }
        }
        debug_assert!(w2 * l2 <= remaining);
        SubMesh::from_base_size(rect.base, w2 as u16, l2 as u16)
    }
}

impl AllocationStrategy for Gabl {
    fn name(&self) -> String {
        "GABL".to_string()
    }

    fn allocate(&mut self, mesh: &mut Mesh, a: u16, b: u16) -> Option<Allocation> {
        let p = a as u32 * b as u32;
        if p == 0 || p > mesh.free_count() {
            return None;
        }
        let id = AllocId(self.next_id);
        self.next_id += 1;
        let mut pieces: Vec<SubMesh> = Vec::new();

        // 1. whole-job contiguous attempt, both orientations
        let whole = find_free_submesh(mesh, a, b)
            .or_else(|| if a != b { find_free_submesh(mesh, b, a) } else { None });
        if let Some(s) = whole {
            mesh.occupy_submesh(&s);
            pieces.push(s);
        } else {
            // 2. greedy partitioning: largest free sub-mesh fitting inside
            // the request shape, then non-increasing side caps
            let mut remaining = p;
            let (mut cap_w, mut cap_l) = (a.max(b), a.max(b));
            // initial caps: the request's own shape, orientation-free
            let (first_w, first_l) = (a.min(b), a.max(b));
            let mut anchor: Option<Coord> = None;
            while remaining > 0 {
                let rect = match anchor {
                    None => {
                        // best of both request orientations
                        let r1 = largest_free_rect(mesh, first_w, first_l);
                        let r2 = largest_free_rect(mesh, first_l, first_w);
                        match (r1, r2) {
                            (Some(x), Some(y)) => Some(if x.size() >= y.size() { x } else { y }),
                            (x, y) => x.or(y),
                        }
                    }
                    Some(c) => largest_free_rect_near(mesh, cap_w, cap_l, Some(c)),
                };
                // free_count >= remaining >= 1 guarantees some free rect
                // procsim-lint: allow(D004): invariant: free_count >= remaining >= 1, and any free processor is itself a 1x1 free rectangle
                let rect = rect.expect("invariant: free processors exist but no free rectangle found");
                let piece = Self::trim_to(rect, remaining);
                mesh.occupy_submesh(&piece);
                remaining -= piece.size();
                (cap_w, cap_l) = (piece.width().max(piece.length()), piece.width().max(piece.length()));
                if anchor.is_none() {
                    // anchor subsequent pieces on the first (largest) one
                    anchor = Some(Coord::new(
                        (piece.base.x + piece.end.x) / 2,
                        (piece.base.y + piece.end.y) / 2,
                    ));
                }
                pieces.push(piece);
            }
        }

        for &sub in &pieces {
            self.busy.push(BusyEntry { owner: id, sub });
        }
        self.peak_busy_len = self.peak_busy_len.max(self.busy.len());
        Some(Allocation::new(id, pieces))
    }

    fn release(&mut self, mesh: &mut Mesh, alloc: Allocation) {
        let before = self.busy.len();
        self.busy.retain(|e| e.owner != alloc.id);
        assert_eq!(
            before - self.busy.len(),
            alloc.submeshes().len(),
            "busy list out of sync with allocation"
        );
        for s in alloc.submeshes() {
            mesh.release_submesh(s);
        }
    }

    fn reset(&mut self, _mesh: &Mesh) {
        self.busy.clear();
        self.next_id = 0;
        self.peak_busy_len = 0;
    }

    fn always_succeeds_when_free(&self) -> bool {
        true
    }

    fn feasible(&self, mesh: &Mesh, a: u16, b: u16) -> bool {
        // exact mirror of allocate's only failure condition (the greedy
        // partitioning succeeds whenever enough processors are free)
        let p = a as u32 * b as u32;
        p != 0 && p <= mesh.free_count()
    }

    // failure_persists_until_release: a failed allocate returns before
    // the id counter or busy list are touched, and the failure condition
    // p > free_count is monotone under further occupies.
}

/// Convenience: returns the coordinates allocated to `alloc` (rank order).
pub fn allocation_nodes(alloc: &Allocation) -> &[Coord] {
    alloc.nodes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimRng;

    #[test]
    fn contiguous_when_possible() {
        let mut mesh = Mesh::new(16, 22);
        let mut g = Gabl::new();
        let a = g.allocate(&mut mesh, 5, 7).unwrap();
        assert_eq!(a.fragments(), 1, "empty mesh: whole request contiguous");
        assert_eq!(a.size(), 35);
        assert_eq!(g.busy_len(), 1);
    }

    #[test]
    fn rotated_orientation_used() {
        // 4x8 mesh, request 8x3: only fits rotated as 3x8? No — request
        // (a=8, b=3) fits directly as 8 wide x 3 tall. Make width tight:
        // request (a=3, b=8): 3 wide 8 tall does not fit in 4x8? It does.
        // Use a 10x4 mesh and request 2x7: must rotate to 7x2.
        let mut mesh = Mesh::new(10, 4);
        let mut g = Gabl::new();
        let a = g.allocate(&mut mesh, 2, 7).unwrap();
        assert_eq!(a.fragments(), 1, "must satisfy via rotation");
        assert_eq!(a.size(), 14);
    }

    #[test]
    fn fragments_under_external_fragmentation() {
        // Fig. 1 scenario generalized: leave free processors that are not
        // contiguous; GABL must still allocate (non-contiguously).
        let mut mesh = Mesh::new(4, 4);
        let mut g = Gabl::new();
        // occupy a checkerboard-ish pattern leaving 4 scattered cells
        for y in 0..4u16 {
            for x in 0..4u16 {
                let corner = (x == 0 || x == 3) && (y == 0 || y == 3);
                if !corner {
                    mesh.occupy(Coord::new(x, y));
                }
            }
        }
        let a = g.allocate(&mut mesh, 2, 2).unwrap();
        assert_eq!(a.size(), 4);
        assert_eq!(a.fragments(), 4, "four isolated processors");
        assert_eq!(mesh.free_count(), 0);
    }

    #[test]
    fn always_succeeds_when_enough_free() {
        let mut mesh = Mesh::new(16, 22);
        let mut g = Gabl::new();
        let mut rng = SimRng::new(7);
        let mut live = Vec::new();
        for _ in 0..3000 {
            if rng.chance(0.55) || live.is_empty() {
                let a = rng.uniform_incl(1, 16) as u16;
                let b = rng.uniform_incl(1, 22) as u16;
                let p = a as u32 * b as u32;
                let free = mesh.free_count();
                match g.allocate(&mut mesh, a, b) {
                    Some(al) => {
                        assert_eq!(al.size(), p);
                        live.push(al);
                    }
                    None => assert!(p > free, "GABL failed with {free} free for {p}"),
                }
            } else {
                let al = live.swap_remove(rng.index(live.len()));
                g.release(&mut mesh, al);
            }
        }
    }

    #[test]
    fn pieces_never_grow() {
        // sides of successive pieces are non-increasing (greedy invariant)
        let mut mesh = Mesh::new(16, 22);
        let mut g = Gabl::new();
        // fragment the mesh first
        let mut rng = SimRng::new(99);
        let mut live = Vec::new();
        for _ in 0..40 {
            let a = rng.uniform_incl(1, 6) as u16;
            let b = rng.uniform_incl(1, 6) as u16;
            if let Some(al) = g.allocate(&mut mesh, a, b) {
                live.push(al);
            }
        }
        // free every other allocation to create holes
        let mut i = 0;
        live.retain(|_| {
            i += 1;
            i % 2 == 0
        });
        // NOTE: retained entries were not released; allocate a large job
        if let Some(al) = g.allocate(&mut mesh, 10, 10) {
            let sizes: Vec<u32> = al.submeshes().iter().map(|s| s.size()).collect();
            if al.fragments() > 1 {
                let maxes: Vec<u16> = al
                    .submeshes()
                    .iter()
                    .map(|s| s.width().max(s.length()))
                    .collect();
                for w in maxes.windows(2) {
                    assert!(w[0] >= w[1], "piece sides grew: {sizes:?}");
                }
            }
            assert_eq!(al.size(), 100);
        }
    }

    #[test]
    fn trim_respects_remaining() {
        let r = SubMesh::from_base_size(Coord::new(0, 0), 5, 6);
        for rem in 1..=30u32 {
            let t = Gabl::trim_to(r, rem);
            assert!(t.size() <= rem);
            assert!(t.size() >= 1);
            assert!(r.contains_submesh(&t));
        }
        assert_eq!(Gabl::trim_to(r, 30).size(), 30);
    }

    #[test]
    fn release_restores_and_busy_list_shrinks() {
        let mut mesh = Mesh::new(8, 8);
        let mut g = Gabl::new();
        let a = g.allocate(&mut mesh, 3, 3).unwrap();
        let b = g.allocate(&mut mesh, 8, 6).unwrap();
        assert!(g.busy_len() >= 2);
        g.release(&mut mesh, a);
        g.release(&mut mesh, b);
        assert_eq!(g.busy_len(), 0);
        assert_eq!(mesh.free_count(), 64);
    }

    #[test]
    fn peak_busy_len_tracks() {
        let mut mesh = Mesh::new(8, 8);
        let mut g = Gabl::new();
        let a = g.allocate(&mut mesh, 2, 2).unwrap();
        let b = g.allocate(&mut mesh, 2, 2).unwrap();
        g.release(&mut mesh, a);
        g.release(&mut mesh, b);
        assert_eq!(g.busy_len(), 0);
        assert!(g.peak_busy_len() >= 2);
        g.reset(&mesh);
        assert_eq!(g.peak_busy_len(), 0);
    }
}
