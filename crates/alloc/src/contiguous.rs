//! Contiguous baselines: First-Fit and Best-Fit sub-mesh allocation.
//!
//! These are the classic strategies (Zhu 1992, ref. \[19\] of the paper)
//! whose external fragmentation motivates non-contiguous allocation: a job
//! waits until a single free `a × b` sub-mesh exists, even when enough
//! scattered processors are free. They are included as baselines for the
//! `ablation_contiguity` bench, not as paper figures.

use crate::{AllocId, Allocation, AllocationStrategy};
use mesh2d::{Coord, Mesh, SubMesh};

/// Contiguous first-fit: the first free `a × b` (or `b × a`) sub-mesh in
/// row-major base order.
#[derive(Debug, Default)]
pub struct FirstFit {
    next_id: u64,
}

impl FirstFit {
    /// A fresh first-fit allocator.
    pub fn new() -> Self {
        FirstFit::default()
    }
}

impl AllocationStrategy for FirstFit {
    fn name(&self) -> String {
        "FF".to_string()
    }

    fn allocate(&mut self, mesh: &mut Mesh, a: u16, b: u16) -> Option<Allocation> {
        if a == 0 || b == 0 {
            return None;
        }
        let s = mesh2d::find_free_submesh(mesh, a, b)
            .or_else(|| if a != b { mesh2d::find_free_submesh(mesh, b, a) } else { None })?;
        mesh.occupy_submesh(&s);
        let id = AllocId(self.next_id);
        self.next_id += 1;
        Some(Allocation::new(id, vec![s]))
    }

    fn release(&mut self, mesh: &mut Mesh, alloc: Allocation) {
        for s in alloc.submeshes() {
            mesh.release_submesh(s);
        }
    }

    fn reset(&mut self, _mesh: &Mesh) {
        self.next_id = 0;
    }

    fn always_succeeds_when_free(&self) -> bool {
        false
    }

    fn feasible(&self, mesh: &Mesh, a: u16, b: u16) -> bool {
        // exact mirror of allocate's failure condition: a contiguous
        // placement exists only if one orientation passes the free-space
        // watermarks (could_fit_rect == false proves no free a×b
        // sub-mesh exists; == true defers to the search)
        mesh.could_fit_rect(a, b) || (a != b && mesh.could_fit_rect(b, a))
    }

    // failure_persists_until_release: allocate is a pure function of the
    // occupancy (no RNG, no internal state beyond the id counter, which
    // a failed call never touches), and occupying more processors can
    // only destroy free placements, never create them.
}

/// Contiguous best-fit: among all free placements (both orientations),
/// pick the one bordered by the fewest free processors — the placement
/// that "fits most snugly" against allocated regions and mesh edges,
/// preserving large free areas for later jobs.
#[derive(Debug, Default)]
pub struct BestFit {
    next_id: u64,
}

impl BestFit {
    /// A fresh best-fit allocator.
    pub fn new() -> Self {
        BestFit::default()
    }

    /// Number of *free* processors adjacent to the perimeter of `s`
    /// (processors outside `s` sharing a link with it). Lower is snugger.
    /// Row segments are counted through the mesh's free-interval index;
    /// the two flanking columns walk the occupancy bits directly.
    fn boundary_freeness(mesh: &Mesh, s: &SubMesh) -> u32 {
        let mut free_neighbors = 0u32;
        let (bx, by) = (s.base.x, s.base.y);
        let (ex, ey) = (s.end.x, s.end.y);
        // left and right columns
        for y in by..=ey {
            if bx > 0 && mesh.is_free(Coord::new(bx - 1, y)) {
                free_neighbors += 1;
            }
            if ex + 1 < mesh.width() && mesh.is_free(Coord::new(ex + 1, y)) {
                free_neighbors += 1;
            }
        }
        // bottom and top rows
        if by > 0 {
            free_neighbors += mesh.free_in_row_span(by - 1, bx, ex);
        }
        if ey + 1 < mesh.length() {
            free_neighbors += mesh.free_in_row_span(ey + 1, bx, ex);
        }
        free_neighbors
    }

    fn best_placement(mesh: &Mesh, w: u16, l: u16) -> Option<(u32, SubMesh)> {
        if w > mesh.width() || l > mesh.length() {
            return None;
        }
        // enumerate candidate bases from the free-interval index: a free
        // w × l placement at row y lies inside an intersection of the
        // free runs of rows y..y+l-1, so only those spans are scanned
        // (same base order as a full row-major sweep)
        let mut best: Option<(u32, SubMesh)> = None;
        let mut acc: Vec<(u16, u16)> = Vec::new();
        let mut next: Vec<(u16, u16)> = Vec::new();
        for y in 0..=(mesh.length() - l) {
            acc.clear();
            acc.extend_from_slice(mesh.row_free_intervals(y));
            for r in (y + 1)..(y + l) {
                if acc.is_empty() {
                    break;
                }
                mesh2d::rect::intersect_intervals(&acc, mesh.row_free_intervals(r), &mut next);
                std::mem::swap(&mut acc, &mut next);
            }
            for &(a, b) in acc.iter().filter(|&&(a, b)| b - a + 1 >= w) {
                for x in a..=(b + 1 - w) {
                    let s = SubMesh::from_base_size(Coord::new(x, y), w, l);
                    let score = Self::boundary_freeness(mesh, &s);
                    if best.is_none_or(|(bs, _)| score < bs) {
                        best = Some((score, s));
                    }
                }
            }
        }
        best
    }
}

impl AllocationStrategy for BestFit {
    fn name(&self) -> String {
        "BF".to_string()
    }

    fn allocate(&mut self, mesh: &mut Mesh, a: u16, b: u16) -> Option<Allocation> {
        if a == 0 || b == 0 {
            return None;
        }
        let c1 = Self::best_placement(mesh, a, b);
        let c2 = if a != b {
            Self::best_placement(mesh, b, a)
        } else {
            None
        };
        let s = match (c1, c2) {
            (Some((s1, r1)), Some((s2, r2))) => {
                if s1 <= s2 {
                    r1
                } else {
                    r2
                }
            }
            (Some((_, r)), None) | (None, Some((_, r))) => r,
            (None, None) => return None,
        };
        mesh.occupy_submesh(&s);
        let id = AllocId(self.next_id);
        self.next_id += 1;
        Some(Allocation::new(id, vec![s]))
    }

    fn release(&mut self, mesh: &mut Mesh, alloc: Allocation) {
        for s in alloc.submeshes() {
            mesh.release_submesh(s);
        }
    }

    fn reset(&mut self, _mesh: &Mesh) {
        self.next_id = 0;
    }

    fn always_succeeds_when_free(&self) -> bool {
        false
    }

    fn feasible(&self, mesh: &Mesh, a: u16, b: u16) -> bool {
        // exact mirror of allocate's failure condition: a contiguous
        // placement exists only if one orientation passes the free-space
        // watermarks (could_fit_rect == false proves no free a×b
        // sub-mesh exists; == true defers to the search)
        mesh.could_fit_rect(a, b) || (a != b && mesh.could_fit_rect(b, a))
    }

    // failure_persists_until_release: allocate is a pure function of the
    // occupancy (no RNG, no internal state beyond the id counter, which
    // a failed call never touches), and occupying more processors can
    // only destroy free placements, never create them.
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_fit_allocates_origin_first() {
        let mut mesh = Mesh::new(8, 8);
        let mut ff = FirstFit::new();
        let a = ff.allocate(&mut mesh, 3, 3).unwrap();
        assert_eq!(a.submeshes()[0].base, Coord::new(0, 0));
        assert_eq!(a.fragments(), 1);
    }

    #[test]
    fn first_fit_fails_on_fragmentation() {
        // Fig. 1: 4 free corner processors, request 2x2 -> FF fails while
        // 4 processors are free. This is the motivating example.
        let mut mesh = Mesh::new(4, 4);
        for y in 0..4u16 {
            for x in 0..4u16 {
                let corner = (x == 0 || x == 3) && (y == 0 || y == 3);
                if !corner {
                    mesh.occupy(Coord::new(x, y));
                }
            }
        }
        let mut ff = FirstFit::new();
        assert_eq!(mesh.free_count(), 4);
        assert!(ff.allocate(&mut mesh, 2, 2).is_none());
    }

    #[test]
    fn first_fit_rotates() {
        let mut mesh = Mesh::new(10, 4);
        let mut ff = FirstFit::new();
        let a = ff.allocate(&mut mesh, 2, 7).unwrap();
        assert_eq!(a.size(), 14);
    }

    #[test]
    fn best_fit_prefers_snug_corner() {
        // occupy left half; BF for a 2x2 should nestle against the
        // boundary, not float in the middle of the free half
        let mut mesh = Mesh::new(8, 8);
        mesh.occupy_submesh(&SubMesh::from_base_size(Coord::new(0, 0), 4, 8));
        let mut bf = BestFit::new();
        let a = bf.allocate(&mut mesh, 2, 2).unwrap();
        let s = a.submeshes()[0];
        // snug: touches either the occupied wall (x=4) or a mesh corner
        let touches_wall = s.base.x == 4;
        let touches_corner = (s.base.x == 6 || s.base.x == 4) && (s.base.y == 0 || s.end.y == 7);
        assert!(
            touches_wall || touches_corner,
            "BF placed {s} away from boundaries"
        );
    }

    #[test]
    fn best_fit_release_restores() {
        let mut mesh = Mesh::new(6, 6);
        let mut bf = BestFit::new();
        let a = bf.allocate(&mut mesh, 4, 4).unwrap();
        assert_eq!(mesh.used_count(), 16);
        bf.release(&mut mesh, a);
        assert_eq!(mesh.used_count(), 0);
    }

    #[test]
    fn both_reject_oversized() {
        let mut mesh = Mesh::new(4, 4);
        assert!(FirstFit::new().allocate(&mut mesh, 5, 5).is_none());
        assert!(BestFit::new().allocate(&mut mesh, 5, 5).is_none());
    }
}
