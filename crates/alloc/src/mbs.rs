//! The Multiple Buddy Strategy (Lo et al. 1997; paper §3).
//!
//! On initialization the mesh is divided into non-overlapping square
//! blocks with power-of-two sides (for non-power-of-two meshes such as the
//! paper's 16 × 22 this produces a forest: one 16×16, four 4×4, eight
//! 2×2). A request for `p` processors is factorized into base-4 digits
//! `p = Σ d_i · 4^i` and served with `d_i` blocks of side `2^i`, splitting
//! larger blocks into four buddies on demand; if a required size is
//! unavailable even by splitting, the request digit is broken into four
//! requests one level down. Released blocks re-merge with their buddies.
//!
//! The paper's key observation about MBS is that it seeks contiguity
//! *only* for requests of size `2^2n`; the real workload's preference for
//! non-power-of-two sizes is exactly what makes MBS rank below Paging(0)
//! on the trace-driven experiments.

use crate::{AllocId, Allocation, AllocationStrategy};
use mesh2d::{buddy, Mesh, SubMesh};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockState {
    /// Available for allocation (in the free list at its level).
    Free,
    /// Granted to a job.
    Allocated,
    /// Split into four live buddies.
    Split,
    /// Children of a merged parent; not individually available.
    Absorbed,
}

#[derive(Debug)]
struct BlockNode {
    sub: SubMesh,
    level: u8,
    parent: Option<u32>,
    children: Option<[u32; 4]>,
    state: BlockState,
    /// Bumped on every state change; stale free-list entries are detected
    /// by epoch mismatch.
    epoch: u32,
}

/// Multiple Buddy Strategy allocator.
#[derive(Debug)]
pub struct Mbs {
    nodes: Vec<BlockNode>,
    /// Free lists per level, entries are (node index, epoch at push).
    free_lists: Vec<Vec<(u32, u32)>>,
    free_procs: u32,
    /// Block indices granted to each live allocation. Accessed only by
    /// key (insert/remove), never iterated, so the RandomState hash
    /// order cannot leak into results (D001-audited).
    live: HashMap<u64, Vec<u32>>,
    next_id: u64,
}

impl Mbs {
    /// Builds the buddy forest for `mesh`.
    pub fn new(mesh: &Mesh) -> Self {
        let mut mbs = Mbs {
            nodes: Vec::new(),
            free_lists: Vec::new(),
            free_procs: mesh.size(),
            live: HashMap::new(),
            next_id: 0,
        };
        mbs.init(mesh);
        mbs
    }

    fn init(&mut self, mesh: &Mesh) {
        self.nodes.clear();
        self.live.clear();
        self.free_procs = mesh.size();
        self.next_id = 0;
        let roots = buddy::decompose_pow2_squares(mesh.width(), mesh.length());
        let max_level = roots
            .iter()
            // procsim-lint: allow(D005): trailing_zeros of a u16 is at most 16, which fits u8
            .map(|s| s.width().trailing_zeros() as u8)
            .max()
            // decompose_pow2_squares of a non-empty mesh yields at least one
            // square; an empty mesh degenerates to a single empty free list
            .unwrap_or(0);
        self.free_lists = vec![Vec::new(); max_level as usize + 1];
        for sub in roots {
            // procsim-lint: allow(D005): trailing_zeros of a u16 is at most 16, which fits u8
            let level = sub.width().trailing_zeros() as u8;
            // procsim-lint: allow(D005): the block tree holds at most ~4/3 * mesh size nodes, which fits u32
            let idx = self.nodes.len() as u32;
            self.nodes.push(BlockNode {
                sub,
                level,
                parent: None,
                children: None,
                state: BlockState::Free,
                epoch: 0,
            });
            self.free_lists[level as usize].push((idx, 0));
        }
    }

    fn set_state(&mut self, idx: u32, state: BlockState) {
        let n = &mut self.nodes[idx as usize];
        n.state = state;
        n.epoch += 1;
    }

    fn push_free(&mut self, idx: u32) {
        self.set_state(idx, BlockState::Free);
        let epoch = self.nodes[idx as usize].epoch;
        let level = self.nodes[idx as usize].level as usize;
        self.free_lists[level].push((idx, epoch));
    }

    /// Pops a valid free block at exactly `level`, skipping stale entries.
    fn pop_free(&mut self, level: usize) -> Option<u32> {
        while let Some((idx, epoch)) = self.free_lists[level].pop() {
            let n = &self.nodes[idx as usize];
            if n.epoch == epoch && n.state == BlockState::Free {
                return Some(idx);
            }
        }
        None
    }

    /// Ensures `idx`'s children exist, creating them on first split.
    fn ensure_children(&mut self, idx: u32) -> [u32; 4] {
        if let Some(c) = self.nodes[idx as usize].children {
            return c;
        }
        let quads = buddy::split_square(&self.nodes[idx as usize].sub);
        let level = self.nodes[idx as usize].level - 1;
        let mut ids = [0u32; 4];
        for (k, q) in quads.into_iter().enumerate() {
            // procsim-lint: allow(D005): the block tree holds at most ~4/3 * mesh size nodes, which fits u32
            let cid = self.nodes.len() as u32;
            self.nodes.push(BlockNode {
                sub: q,
                level,
                parent: Some(idx),
                children: None,
                state: BlockState::Absorbed,
                epoch: 0,
            });
            ids[k] = cid;
        }
        self.nodes[idx as usize].children = Some(ids);
        ids
    }

    /// Obtains a free block of exactly `level`, splitting a larger free
    /// block if necessary. Marks the returned block `Allocated`.
    fn take_block(&mut self, level: usize) -> Option<u32> {
        if let Some(idx) = self.pop_free(level) {
            self.set_state(idx, BlockState::Allocated);
            return Some(idx);
        }
        // find the smallest larger free block and split it down
        let mut donor = None;
        for l in (level + 1)..self.free_lists.len() {
            if let Some(idx) = self.pop_free(l) {
                donor = Some((idx, l));
                break;
            }
        }
        let (mut idx, mut l) = donor?;
        while l > level {
            self.set_state(idx, BlockState::Split);
            let kids = self.ensure_children(idx);
            // keep the first child on the split path, free the other three
            for &k in &kids[1..] {
                self.push_free(k);
            }
            idx = kids[0];
            l -= 1;
        }
        self.set_state(idx, BlockState::Allocated);
        Some(idx)
    }

    /// Frees a block and greedily merges complete buddy sets upward.
    fn free_and_merge(&mut self, idx: u32) {
        self.push_free(idx);
        let mut cur = idx;
        while let Some(parent) = self.nodes[cur as usize].parent {
            // procsim-lint: allow(D004): invariant: a node only gains a parent via split_block, which records all four children
            let kids = self.nodes[parent as usize]
                .children
                .expect("invariant: parent block without children");
            let all_free = kids
                .iter()
                .all(|&k| self.nodes[k as usize].state == BlockState::Free);
            if !all_free {
                break;
            }
            for &k in &kids {
                self.set_state(k, BlockState::Absorbed);
            }
            self.push_free(parent);
            cur = parent;
        }
    }
}

impl AllocationStrategy for Mbs {
    fn name(&self) -> String {
        "MBS".to_string()
    }

    fn allocate(&mut self, mesh: &mut Mesh, a: u16, b: u16) -> Option<Allocation> {
        let p = a as u32 * b as u32;
        if p == 0 || p > self.free_procs {
            return None;
        }
        // demand per level from the base-4 factorization
        let digits = buddy::base4_digits(p);
        let mut needed = vec![0u32; self.free_lists.len().max(digits.len())];
        for (i, &d) in digits.iter().enumerate() {
            needed[i] = d as u32;
        }
        // levels above the largest block can never be served directly
        let top = self.free_lists.len() - 1;
        for i in ((top + 1)..needed.len()).rev() {
            needed[i - 1] += needed[i] * 4;
            needed[i] = 0;
        }

        let mut taken: Vec<u32> = Vec::new();
        let mut level = top as isize;
        while level >= 0 {
            let l = level as usize;
            while needed[l] > 0 {
                match self.take_block(l) {
                    Some(idx) => {
                        needed[l] -= 1;
                        taken.push(idx);
                    }
                    None => {
                        if l == 0 {
                            // cannot happen while free_procs >= p; undo
                            for idx in taken {
                                self.free_and_merge(idx);
                            }
                            return None;
                        }
                        // break the demand into four buddies one level down
                        needed[l - 1] += needed[l] * 4;
                        needed[l] = 0;
                    }
                }
            }
            level -= 1;
        }

        let submeshes: Vec<SubMesh> = taken.iter().map(|&i| self.nodes[i as usize].sub).collect();
        for s in &submeshes {
            mesh.occupy_submesh(s);
        }
        self.free_procs -= p;
        debug_assert_eq!(submeshes.iter().map(|s| s.size()).sum::<u32>(), p);
        let id = AllocId(self.next_id);
        self.next_id += 1;
        self.live.insert(id.0, taken);
        Some(Allocation::new(id, submeshes))
    }

    fn release(&mut self, mesh: &mut Mesh, alloc: Allocation) {
        let blocks = self
            .live
            // procsim-lint: allow(D004): invariant: the simulator only releases allocations this allocator minted, exactly once
            .remove(&alloc.id.0)
            .expect("invariant: release of unknown allocation");
        for idx in blocks {
            let sub = self.nodes[idx as usize].sub;
            debug_assert_eq!(self.nodes[idx as usize].state, BlockState::Allocated);
            mesh.release_submesh(&sub);
            self.free_procs += sub.size();
            self.free_and_merge(idx);
        }
    }

    fn reset(&mut self, mesh: &Mesh) {
        debug_assert_eq!(mesh.used_count(), 0, "reset on a non-empty mesh");
        self.init(mesh);
    }

    fn always_succeeds_when_free(&self) -> bool {
        true
    }

    fn feasible(&self, _mesh: &Mesh, a: u16, b: u16) -> bool {
        // exact mirror of allocate's early-out against the buddy
        // forest's own free counter (kept in lockstep with the mesh)
        let p = a as u32 * b as u32;
        p != 0 && p <= self.free_procs
    }

    // failure_persists_until_release: a failed allocate returns before
    // any block is taken, and p > free_procs is monotone under further
    // occupies.
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimRng;

    #[test]
    fn power_of_four_request_is_one_block() {
        let mut mesh = Mesh::new(16, 16);
        let mut mbs = Mbs::new(&mesh);
        let a = mbs.allocate(&mut mesh, 4, 4).unwrap();
        assert_eq!(a.fragments(), 1, "16 = 4^2 processors -> one 4x4 block");
        assert_eq!(a.submeshes()[0].width(), 4);
    }

    #[test]
    fn factorized_request_block_sizes() {
        let mut mesh = Mesh::new(16, 16);
        let mut mbs = Mbs::new(&mesh);
        // 13 = 1*1 + 3*4: one 1x1 + three 2x2
        let a = mbs.allocate(&mut mesh, 13, 1).unwrap();
        assert_eq!(a.size(), 13);
        let mut sides: Vec<u16> = a.submeshes().iter().map(|s| s.width()).collect();
        sides.sort_unstable();
        assert_eq!(sides, vec![1, 2, 2, 2]);
    }

    #[test]
    fn succeeds_exactly_when_enough_free() {
        let mut mesh = Mesh::new(16, 22);
        let mut mbs = Mbs::new(&mesh);
        let a = mbs.allocate(&mut mesh, 16, 20).unwrap(); // 320 of 352
        assert_eq!(mesh.used_count(), 320);
        assert!(mbs.allocate(&mut mesh, 11, 3).is_none()); // 33 > 32
        let b = mbs.allocate(&mut mesh, 8, 4).unwrap(); // exactly 32
        assert_eq!(mesh.free_count(), 0);
        mbs.release(&mut mesh, b);
        mbs.release(&mut mesh, a);
        assert_eq!(mesh.free_count(), 352);
    }

    #[test]
    fn merge_restores_large_blocks() {
        let mut mesh = Mesh::new(16, 16);
        let mut mbs = Mbs::new(&mesh);
        // fragment the mesh with many small allocations
        let mut allocs = Vec::new();
        for _ in 0..64 {
            allocs.push(mbs.allocate(&mut mesh, 2, 2).unwrap());
        }
        assert_eq!(mesh.free_count(), 0);
        for a in allocs {
            mbs.release(&mut mesh, a);
        }
        // after all releases the full 16x16 block must be mergeable again:
        // a 256-processor request must come back as a single block
        let big = mbs.allocate(&mut mesh, 16, 16).unwrap();
        assert_eq!(big.fragments(), 1);
    }

    #[test]
    fn paper_mesh_nonpow2_requests() {
        // On 16x22 the forest is 16x16 + 4x(4x4) + 8x(2x2). A 5x7=35
        // request (non-power-of-two, like the trace jobs) must still be
        // served exactly: 35 = 3 + 0*4 + 2*16 -> 2 blocks 4x4 + 3 blocks 1x1.
        let mut mesh = Mesh::new(16, 22);
        let mut mbs = Mbs::new(&mesh);
        let a = mbs.allocate(&mut mesh, 5, 7).unwrap();
        assert_eq!(a.size(), 35);
        let mut sides: Vec<u16> = a.submeshes().iter().map(|s| s.width()).collect();
        sides.sort_unstable();
        assert_eq!(sides, vec![1, 1, 1, 4, 4]);
        mbs.release(&mut mesh, a);
        assert_eq!(mesh.free_count(), 352);
    }

    #[test]
    fn breaks_demand_down_when_large_blocks_exhausted() {
        let mut mesh = Mesh::new(8, 8);
        let mut mbs = Mbs::new(&mesh);
        // carve the single 8x8 root into pieces so no 4x4 block survives
        let hold: Vec<_> = (0..3).map(|_| mbs.allocate(&mut mesh, 4, 4).unwrap()).collect();
        let small = mbs.allocate(&mut mesh, 3, 3).unwrap(); // 9 procs of last 16
        // now request 4 more processors: must be served from fragments
        let four = mbs.allocate(&mut mesh, 2, 2).unwrap();
        assert_eq!(four.size(), 4);
        drop(hold);
        drop(small);
    }

    #[test]
    fn random_churn_preserves_consistency() {
        let mut mesh = Mesh::new(16, 22);
        let mut mbs = Mbs::new(&mesh);
        let mut rng = SimRng::new(404);
        let mut live = Vec::new();
        for _ in 0..2000 {
            if rng.chance(0.6) || live.is_empty() {
                let a = rng.uniform_incl(1, 16) as u16;
                let b = rng.uniform_incl(1, 22) as u16;
                let before = mesh.free_count();
                match mbs.allocate(&mut mesh, a, b) {
                    Some(al) => {
                        assert_eq!(al.size(), a as u32 * b as u32);
                        assert_eq!(mesh.free_count(), before - al.size());
                        live.push(al);
                    }
                    None => {
                        assert!(
                            (a as u32 * b as u32) > before,
                            "MBS refused {}x{} with {} free",
                            a,
                            b,
                            before
                        );
                    }
                }
            } else {
                let i = rng.index(live.len());
                let al = live.swap_remove(i);
                mbs.release(&mut mesh, al);
            }
        }
        let total_live: u32 = live.iter().map(|a| a.size()).sum();
        assert_eq!(mesh.used_count(), total_live);
    }

    #[test]
    fn reset_rebuilds_forest() {
        let mut mesh = Mesh::new(16, 16);
        let mut mbs = Mbs::new(&mesh);
        let _ = mbs.allocate(&mut mesh, 16, 16).unwrap();
        mesh.clear();
        mbs.reset(&mesh);
        let a = mbs.allocate(&mut mesh, 16, 16).unwrap();
        assert_eq!(a.fragments(), 1);
    }
}
