//! MC — contention-minimizing shell allocation (Mache, Lo & Windisch,
//! PDCS 1997; reference \[7\] of the paper, the same work the paper's
//! trace-scaling methodology comes from).
//!
//! MC is non-contiguous but *shape-aware*: a request is granted the
//! `p` free processors forming the tightest cluster available. For each
//! candidate centre, free processors are collected in expanding
//! "shells" (rings of growing Chebyshev radius); the candidate whose
//! cluster has the smallest final radius — i.e. the allocation closest
//! to a square — wins. This minimizes the spatial extent messages cross
//! and hence inter-job message-passing contention, at a higher
//! allocation cost than GABL (a scan per candidate centre).
//!
//! Like the paper's three strategies, MC always succeeds when at least
//! `p` processors are free.

use crate::{AllocId, Allocation, AllocationStrategy};
use mesh2d::{Coord, Mesh, SubMesh};

/// The MC shell allocator.
#[derive(Debug, Default)]
pub struct Mc {
    next_id: u64,
}

impl Mc {
    /// A fresh MC allocator.
    pub fn new() -> Self {
        Mc::default()
    }

    /// Collects up to `p` free processors around `centre` in expanding
    /// Chebyshev shells; returns (radius used, chosen cells) or `None`
    /// if fewer than `p` free processors exist in the whole mesh
    /// (caller pre-checks, so shells eventually cover everything).
    fn cluster_from(mesh: &Mesh, centre: Coord, p: u32) -> (u32, Vec<Coord>) {
        let (w, l) = (mesh.width() as i32, mesh.length() as i32);
        let (cx, cy) = (centre.x as i32, centre.y as i32);
        let mut cells = Vec::with_capacity(p as usize);
        let max_r = w.max(l);
        for r in 0..=max_r {
            // ring of Chebyshev radius r around the centre, clipped
            let (x0, x1) = ((cx - r).max(0), (cx + r).min(w - 1));
            let (y0, y1) = ((cy - r).max(0), (cy + r).min(l - 1));
            for y in y0..=y1 {
                for x in x0..=x1 {
                    let on_ring = x == cx - r || x == cx + r || y == cy - r || y == cy + r;
                    if !on_ring {
                        continue;
                    }
                    let c = Coord::new(x as u16, y as u16);
                    if mesh.is_free(c) {
                        cells.push(c);
                        // procsim-lint: allow(D005): cells never exceeds p, a job size bounded by the u32 mesh size
                        if cells.len() as u32 == p {
                            return (r as u32, cells);
                        }
                    }
                }
            }
        }
        (max_r as u32, cells)
    }
}

impl AllocationStrategy for Mc {
    fn name(&self) -> String {
        "MC".to_string()
    }

    fn allocate(&mut self, mesh: &mut Mesh, a: u16, b: u16) -> Option<Allocation> {
        let p = a as u32 * b as u32;
        if p == 0 || p > mesh.free_count() {
            return None;
        }
        // score every free processor as a candidate centre; keep the
        // tightest cluster (smallest radius, ties to the earliest centre
        // in row-major order for determinism)
        let mut best: Option<(u32, Vec<Coord>)> = None;
        for centre in mesh.iter_free().collect::<Vec<_>>() {
            let (r, cells) = Self::cluster_from(mesh, centre, p);
            // procsim-lint: allow(D005): cluster_from caps cells at p, a job size bounded by the u32 mesh size
            if cells.len() as u32 != p {
                continue;
            }
            if best.as_ref().is_none_or(|(br, _)| r < *br) {
                let done = r == 0;
                best = Some((r, cells));
                if done {
                    break; // can't beat radius 0
                }
            }
        }
        let (_, cells) = best?;
        let mut submeshes = Vec::with_capacity(cells.len());
        for &c in &cells {
            mesh.occupy(c);
            submeshes.push(SubMesh::from_base_size(c, 1, 1));
        }
        let id = AllocId(self.next_id);
        self.next_id += 1;
        Some(Allocation::new(id, submeshes))
    }

    fn release(&mut self, mesh: &mut Mesh, alloc: Allocation) {
        for s in alloc.submeshes() {
            mesh.release_submesh(s);
        }
    }

    fn reset(&mut self, _mesh: &Mesh) {
        self.next_id = 0;
    }

    fn always_succeeds_when_free(&self) -> bool {
        true
    }

    fn feasible(&self, mesh: &Mesh, a: u16, b: u16) -> bool {
        // exact mirror of allocate's only failure condition: when p
        // processors are free, growing the shell from any free centre
        // eventually collects all of them, so the cluster search cannot
        // come up short
        let p = a as u32 * b as u32;
        p != 0 && p <= mesh.free_count()
    }

    // failure_persists_until_release: the cluster search is a pure
    // function of the occupancy, a failed call never touches the id
    // counter, and p > free_count is monotone under further occupies.
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SimRng;

    #[test]
    fn empty_mesh_allocation_is_compact() {
        let mut mesh = Mesh::new(16, 22);
        let mut mc = Mc::new();
        let al = mc.allocate(&mut mesh, 3, 3).unwrap();
        assert_eq!(al.size(), 9);
        // 9 cells around some centre: all within Chebyshev radius <= 2
        let nodes = al.nodes();
        let min_x = nodes.iter().map(|c| c.x).min().unwrap();
        let max_x = nodes.iter().map(|c| c.x).max().unwrap();
        let min_y = nodes.iter().map(|c| c.y).min().unwrap();
        let max_y = nodes.iter().map(|c| c.y).max().unwrap();
        assert!(max_x - min_x <= 4 && max_y - min_y <= 4, "{nodes:?}");
    }

    #[test]
    fn succeeds_iff_enough_free() {
        let mut mesh = Mesh::new(6, 6);
        let mut mc = Mc::new();
        let a = mc.allocate(&mut mesh, 5, 5).unwrap();
        assert_eq!(mesh.used_count(), 25);
        assert!(mc.allocate(&mut mesh, 4, 3).is_none()); // 12 > 11 free
        assert!(mc.allocate(&mut mesh, 11, 1).is_some()); // exactly 11
        assert_eq!(mesh.free_count(), 0);
        mc.release(&mut mesh, a);
        assert_eq!(mesh.free_count(), 25);
    }

    #[test]
    fn clusters_tighter_than_random_scatter() {
        // fragment the mesh, then compare MC's allocation spread to a
        // random strategy's on the same state
        let mut mesh = Mesh::new(16, 22);
        let mut rng = SimRng::new(8);
        for y in 0..22u16 {
            for x in 0..16u16 {
                if rng.chance(0.5) {
                    mesh.occupy(Coord::new(x, y));
                }
            }
        }
        let spread = |nodes: &[Coord]| {
            let n = nodes.len() as f64;
            let mx = nodes.iter().map(|c| c.x as f64).sum::<f64>() / n;
            let my = nodes.iter().map(|c| c.y as f64).sum::<f64>() / n;
            nodes
                .iter()
                .map(|c| (c.x as f64 - mx).abs() + (c.y as f64 - my).abs())
                .sum::<f64>()
                / n
        };
        let mut mc = Mc::new();
        let mc_alloc = mc.allocate(&mut mesh.clone(), 5, 5).unwrap();
        let mut rnd = crate::RandomNc::new(1);
        let rnd_alloc = rnd.allocate(&mut mesh.clone(), 5, 5).unwrap();
        assert!(
            spread(mc_alloc.nodes()) < spread(rnd_alloc.nodes()),
            "MC {} vs Random {}",
            spread(mc_alloc.nodes()),
            spread(rnd_alloc.nodes())
        );
    }

    #[test]
    fn deterministic() {
        let build = || {
            let mut mesh = Mesh::new(8, 8);
            mesh.occupy(Coord::new(3, 3));
            let mut mc = Mc::new();
            mc.allocate(&mut mesh, 3, 2).unwrap().nodes().to_vec()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn churn_consistency() {
        let mut mesh = Mesh::new(12, 12);
        let mut mc = Mc::new();
        let mut rng = SimRng::new(77);
        let mut live = Vec::new();
        for _ in 0..400 {
            if rng.chance(0.6) || live.is_empty() {
                let a = rng.uniform_incl(1, 5) as u16;
                let b = rng.uniform_incl(1, 5) as u16;
                let free = mesh.free_count();
                match mc.allocate(&mut mesh, a, b) {
                    Some(al) => {
                        assert_eq!(al.size(), a as u32 * b as u32);
                        live.push(al);
                    }
                    None => assert!(a as u32 * b as u32 > free),
                }
            } else {
                let al = live.swap_remove(rng.index(live.len()));
                mc.release(&mut mesh, al);
            }
        }
        let total: u32 = live.iter().map(|a| a.size()).sum();
        assert_eq!(mesh.used_count(), total);
    }
}
