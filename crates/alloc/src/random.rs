//! Random non-contiguous scatter allocation (ProcSimity's `Random`).
//!
//! Grants a request any `a·b` free processors chosen uniformly at random.
//! It is the zero-contiguity extreme: like Paging(0) and MBS it never
//! fails while enough processors are free, but its jobs are maximally
//! dispersed, maximizing communication distance and contention. Used by
//! the ablation benches as a lower bound on contiguity.

use crate::{AllocId, Allocation, AllocationStrategy};
use desim::SimRng;
use mesh2d::{Mesh, SubMesh};

/// Random scatter allocator.
#[derive(Debug)]
pub struct RandomNc {
    rng: SimRng,
    seed: u64,
    next_id: u64,
}

impl RandomNc {
    /// A scatter allocator drawing from the given seed's stream.
    pub fn new(seed: u64) -> Self {
        RandomNc {
            rng: SimRng::new(seed),
            seed,
            next_id: 0,
        }
    }
}

impl AllocationStrategy for RandomNc {
    fn name(&self) -> String {
        "Random".to_string()
    }

    fn allocate(&mut self, mesh: &mut Mesh, a: u16, b: u16) -> Option<Allocation> {
        let p = a as u32 * b as u32;
        if p == 0 || p > mesh.free_count() {
            return None;
        }
        // reservoir-free approach: collect free nodes, partial shuffle
        let mut free: Vec<_> = mesh.iter_free().collect();
        for i in 0..p as usize {
            let j = i + self.rng.index(free.len() - i);
            free.swap(i, j);
        }
        let chosen = &free[..p as usize];
        let mut submeshes = Vec::with_capacity(p as usize);
        for &c in chosen {
            mesh.occupy(c);
            submeshes.push(SubMesh::from_base_size(c, 1, 1));
        }
        let id = AllocId(self.next_id);
        self.next_id += 1;
        Some(Allocation::new(id, submeshes))
    }

    fn release(&mut self, mesh: &mut Mesh, alloc: Allocation) {
        for s in alloc.submeshes() {
            mesh.release_submesh(s);
        }
    }

    fn reset(&mut self, _mesh: &Mesh) {
        self.rng = SimRng::new(self.seed);
        self.next_id = 0;
    }

    fn always_succeeds_when_free(&self) -> bool {
        true
    }

    fn feasible(&self, mesh: &Mesh, a: u16, b: u16) -> bool {
        // exact mirror of allocate's early-out. Crucially the check runs
        // BEFORE any RNG draw, so a skipped doomed attempt leaves the
        // random stream exactly where a failed attempt would have
        let p = a as u32 * b as u32;
        p != 0 && p <= mesh.free_count()
    }

    // failure_persists_until_release: the failure path consumes no
    // randomness and mutates nothing, and p > free_count is monotone
    // under further occupies.
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_exact_count_of_singletons() {
        let mut mesh = Mesh::new(8, 8);
        let mut r = RandomNc::new(1);
        let a = r.allocate(&mut mesh, 3, 4).unwrap();
        assert_eq!(a.size(), 12);
        assert_eq!(a.fragments(), 12);
        assert_eq!(mesh.used_count(), 12);
    }

    #[test]
    fn succeeds_iff_enough_free() {
        let mut mesh = Mesh::new(4, 4);
        let mut r = RandomNc::new(2);
        let a = r.allocate(&mut mesh, 4, 3).unwrap();
        assert!(r.allocate(&mut mesh, 5, 1).is_none());
        assert!(r.allocate(&mut mesh, 4, 1).is_some());
        r.release(&mut mesh, a);
        assert_eq!(mesh.free_count(), 12);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut mesh = Mesh::new(8, 8);
            let mut r = RandomNc::new(seed);
            r.allocate(&mut mesh, 4, 4).unwrap().nodes().to_vec()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn reset_restores_stream() {
        let mut mesh = Mesh::new(8, 8);
        let mut r = RandomNc::new(3);
        let first = r.allocate(&mut mesh, 2, 2).unwrap();
        let first_nodes = first.nodes().to_vec();
        r.release(&mut mesh, first);
        r.reset(&mesh);
        let again = r.allocate(&mut mesh, 2, 2).unwrap();
        assert_eq!(again.nodes(), first_nodes);
    }
}
