//! # mesh-alloc — processor allocation strategies for 2D meshes
//!
//! Implements the three non-contiguous strategies the paper evaluates
//! (§3) plus the contiguous and random baselines the surrounding
//! literature compares against:
//!
//! * [`Paging`] — the Lo et al. paging strategy `Paging(size_index)`,
//!   with all four page indexing schemes,
//! * [`Mbs`] — the Multiple Buddy Strategy,
//! * [`Gabl`] — Greedy Available Busy List (the authors' own strategy),
//! * [`FirstFit`] / [`BestFit`] — classic contiguous sub-mesh allocation
//!   (these exhibit the external fragmentation that motivates
//!   non-contiguous allocation),
//! * [`RandomNc`] — scatter allocation of arbitrary free processors, the
//!   contiguity-free extreme.
//!
//! Every strategy implements [`AllocationStrategy`]: it receives an
//! `a × b` request, mutates the shared [`Mesh`] occupancy, and returns an
//! [`Allocation`] listing the disjoint sub-meshes given to the job. The
//! three paper strategies share a guarantee the paper leans on for its
//! utilization results (§5): *allocation succeeds whenever the number of
//! free processors is at least the request size*.

pub mod contiguous;
pub mod gabl;
pub mod mbs;
pub mod mc;
pub mod paging;
pub mod random;

use mesh2d::{Coord, Mesh, SubMesh};

pub use contiguous::{BestFit, FirstFit};
pub use gabl::Gabl;
pub use mbs::Mbs;
pub use mc::Mc;
pub use paging::Paging;
pub use random::RandomNc;

pub use mesh2d::PageIndexing;

/// Identifier a strategy assigns to one job's allocation, used to look up
/// strategy-internal bookkeeping on release.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocId(pub u64);

/// The processors granted to one job: a list of disjoint sub-meshes, in
/// allocation order (the order defines the job's processor ranks for
/// communication patterns).
///
/// The rank → coordinate layout is expanded **once** at construction and
/// cached for the allocation's lifetime: the simulator's per-job setup
/// and every closed-loop send index straight into it instead of
/// re-flattening the sub-mesh list.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Strategy-assigned identifier.
    pub id: AllocId,
    /// Disjoint sub-meshes, largest/first-allocated first. Private so it
    /// cannot drift out of sync with the cached `nodes` layout.
    submeshes: Vec<SubMesh>,
    /// Cached processor coordinates in allocation (rank) order.
    nodes: Vec<Coord>,
}

impl Allocation {
    /// Builds an allocation over `submeshes`, expanding and caching the
    /// rank → coordinate layout.
    pub fn new(id: AllocId, submeshes: Vec<SubMesh>) -> Self {
        let mut nodes = Vec::with_capacity(submeshes.iter().map(|s| s.size() as usize).sum());
        for s in &submeshes {
            nodes.extend(s.iter());
        }
        Allocation {
            id,
            submeshes,
            nodes,
        }
    }

    /// Total processors allocated.
    pub fn size(&self) -> u32 {
        // procsim-lint: allow(D005): node count is bounded by the mesh size (u16 x u16 dimensions), which fits u32
        self.nodes.len() as u32
    }

    /// All processor coordinates in allocation (rank) order.
    pub fn nodes(&self) -> &[Coord] {
        &self.nodes
    }

    /// The granted sub-meshes, largest/first-allocated first.
    pub fn submeshes(&self) -> &[SubMesh] {
        &self.submeshes
    }

    /// Number of disjoint sub-meshes (1 = fully contiguous). The paper's
    /// argument for GABL is that it keeps this number small.
    pub fn fragments(&self) -> usize {
        self.submeshes.len()
    }
}

/// A processor allocation strategy.
pub trait AllocationStrategy {
    /// Human-readable name as used in the paper's figures,
    /// e.g. `"GABL"`, `"Paging(0)"`, `"MBS"`.
    fn name(&self) -> String;

    /// Attempts to allocate an `a × b` request. On success the mesh
    /// occupancy has been updated and the returned allocation lists the
    /// granted sub-meshes; on failure the mesh is unchanged.
    fn allocate(&mut self, mesh: &mut Mesh, a: u16, b: u16) -> Option<Allocation>;

    /// Releases a previously granted allocation, freeing its processors.
    fn release(&mut self, mesh: &mut Mesh, alloc: Allocation);

    /// Clears internal state for a fresh (empty) mesh — called between
    /// simulation replications.
    fn reset(&mut self, mesh: &Mesh);

    /// Whether this strategy is guaranteed to satisfy any request when at
    /// least `a × b` processors are free (true for the paper's three
    /// non-contiguous strategies).
    fn always_succeeds_when_free(&self) -> bool;

    /// O(1) feasibility pre-check for an `a × b` request: `false` means
    /// a call to [`AllocationStrategy::allocate`] with these arguments
    /// would certainly return `None` given the current mesh and strategy
    /// state; `true` means it *may* succeed. The scheduling hot loop
    /// uses this to reject queued requests without running a search.
    ///
    /// Exactness contract: an implementation must never return `false`
    /// for a request its `allocate` would grant. The default is the area
    /// bound every strategy shares (no allocation can exceed the free
    /// count); strategies with a cheaper-to-check internal counter or a
    /// contiguity requirement override it to mirror their own failure
    /// condition exactly.
    fn feasible(&self, mesh: &Mesh, a: u16, b: u16) -> bool {
        let p = a as u32 * b as u32;
        p != 0 && p <= mesh.free_count()
    }

    /// Whether a failed [`AllocationStrategy::allocate`] for a shape is
    /// guaranteed to keep failing until a release frees processors
    /// (i.e. until [`Mesh::release_epoch`] advances). This holds when
    /// `allocate` is a deterministic function of the mesh and internal
    /// strategy state, a failed call mutates nothing (and consumes no
    /// randomness), and occupying more processors can never turn the
    /// failure into a success. Every built-in strategy qualifies — see
    /// each implementation's note; a future strategy that does not must
    /// override this to `false` to disable the simulator's shape-keyed
    /// failure memoization.
    fn failure_persists_until_release(&self) -> bool {
        true
    }
}

/// Strategy selector used by configs, experiment sweeps and the CLI
/// harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// Greedy Available Busy List.
    Gabl,
    /// Paging with pages of side `2^size_index`.
    Paging {
        /// Page side exponent (the paper evaluates 0..=3).
        size_index: u8,
        /// Page traversal order for index-order allocation.
        indexing: PageIndexing,
    },
    /// Multiple Buddy Strategy.
    Mbs,
    /// Contiguous first-fit.
    FirstFit,
    /// Contiguous best-fit.
    BestFit,
    /// Random non-contiguous scatter.
    Random,
    /// MC shell allocation (Mache/Lo/Windisch, the paper's ref. \[7\]).
    Mc,
}

impl StrategyKind {
    /// The paper's three strategies with its parameters
    /// (row-major Paging(0)).
    pub const PAPER: [StrategyKind; 3] = [
        StrategyKind::Gabl,
        StrategyKind::Paging {
            size_index: 0,
            indexing: PageIndexing::RowMajor,
        },
        StrategyKind::Mbs,
    ];

    /// Instantiates the strategy for a given mesh. `seed` is only used by
    /// stochastic strategies (Random).
    pub fn build(&self, mesh: &Mesh, seed: u64) -> Box<dyn AllocationStrategy> {
        match *self {
            StrategyKind::Gabl => Box::new(Gabl::new()),
            StrategyKind::Paging {
                size_index,
                indexing,
            } => Box::new(Paging::new(mesh, size_index, indexing)),
            StrategyKind::Mbs => Box::new(Mbs::new(mesh)),
            StrategyKind::FirstFit => Box::new(FirstFit::new()),
            StrategyKind::BestFit => Box::new(BestFit::new()),
            StrategyKind::Random => Box::new(RandomNc::new(seed)),
            StrategyKind::Mc => Box::new(Mc::new()),
        }
    }
}

impl core::str::FromStr for StrategyKind {
    type Err = String;

    /// Parses the CLI / scenario-file spelling: `gabl`, `paging0` ..
    /// `paging3` (row-major), `mbs`, `ff`, `bf`, `random`, `mc`
    /// (case-insensitive).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "gabl" => Ok(StrategyKind::Gabl),
            "mbs" => Ok(StrategyKind::Mbs),
            "ff" => Ok(StrategyKind::FirstFit),
            "bf" => Ok(StrategyKind::BestFit),
            "random" => Ok(StrategyKind::Random),
            "mc" => Ok(StrategyKind::Mc),
            other => {
                if let Some(idx) = other.strip_prefix("paging") {
                    if let Ok(size_index) = idx.parse::<u8>() {
                        if size_index <= 3 {
                            return Ok(StrategyKind::Paging {
                                size_index,
                                indexing: PageIndexing::RowMajor,
                            });
                        }
                    }
                    return Err(format!(
                        "unknown paging variant '{other}' (paging0 .. paging3)"
                    ));
                }
                Err(format!(
                    "unknown strategy '{other}' (gabl, paging0..paging3, mbs, ff, bf, random, mc)"
                ))
            }
        }
    }
}

impl core::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            StrategyKind::Gabl => write!(f, "GABL"),
            StrategyKind::Paging { size_index, .. } => write!(f, "Paging({size_index})"),
            StrategyKind::Mbs => write!(f, "MBS"),
            StrategyKind::FirstFit => write!(f, "FF"),
            StrategyKind::BestFit => write!(f, "BF"),
            StrategyKind::Random => write!(f, "Random"),
            StrategyKind::Mc => write!(f, "MC"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_accessors() {
        let a = Allocation::new(
            AllocId(1),
            vec![
                SubMesh::from_base_size(Coord::new(0, 0), 2, 2),
                SubMesh::from_base_size(Coord::new(4, 4), 1, 3),
            ],
        );
        assert_eq!(a.size(), 7);
        assert_eq!(a.fragments(), 2);
        let nodes = a.nodes();
        assert_eq!(nodes.len(), 7);
        assert_eq!(nodes[0], Coord::new(0, 0));
        assert_eq!(nodes[4], Coord::new(4, 4));
    }

    #[test]
    fn kind_display_matches_paper_notation() {
        assert_eq!(StrategyKind::Gabl.to_string(), "GABL");
        assert_eq!(
            StrategyKind::Paging {
                size_index: 0,
                indexing: PageIndexing::RowMajor
            }
            .to_string(),
            "Paging(0)"
        );
        assert_eq!(StrategyKind::Mbs.to_string(), "MBS");
    }

    #[test]
    fn build_all_kinds() {
        let mesh = Mesh::new(16, 22);
        for kind in [
            StrategyKind::Gabl,
            StrategyKind::Paging {
                size_index: 1,
                indexing: PageIndexing::SnakeLike,
            },
            StrategyKind::Mbs,
            StrategyKind::FirstFit,
            StrategyKind::BestFit,
            StrategyKind::Random,
            StrategyKind::Mc,
        ] {
            let s = kind.build(&mesh, 42);
            assert!(!s.name().is_empty());
        }
    }
}
