//! The Paging strategy (Lo et al. 1997; paper §3).
//!
//! The mesh is divided into pages — square sub-meshes of side
//! `2^size_index` — and the page is the allocation unit. A request for
//! `a × b` processors receives the first free pages in index order until
//! at least `a·b` processors have been granted. Larger pages give more
//! contiguity but more internal fragmentation; `Paging(0)` (the paper's
//! configuration) has neither, allocating individual processors in index
//! order.

use crate::{AllocId, Allocation, AllocationStrategy};
use mesh2d::{Mesh, PageGrid, PageIndexing, SubMesh};
use std::collections::HashMap;

/// Paging(`size_index`) under a chosen page indexing scheme.
#[derive(Debug)]
pub struct Paging {
    grid: PageGrid,
    size_index: u8,
    /// Free flag per page (index-order position).
    free: Vec<bool>,
    /// Free processors summed over free pages.
    free_procs: u32,
    /// Page positions granted to each live allocation. Accessed only by
    /// key (insert/remove), never iterated, so the RandomState hash
    /// order cannot leak into results (D001-audited).
    live: HashMap<u64, Vec<usize>>,
    next_id: u64,
}

impl Paging {
    /// Builds the page grid for `mesh` with pages of side `2^size_index`.
    pub fn new(mesh: &Mesh, size_index: u8, indexing: PageIndexing) -> Self {
        let grid = PageGrid::new(mesh.width(), mesh.length(), size_index, indexing);
        let n = grid.page_count();
        let free_procs = mesh.size();
        Paging {
            grid,
            size_index,
            free: vec![true; n],
            free_procs,
            live: HashMap::new(),
            next_id: 0,
        }
    }

    /// The page side `2^size_index`.
    pub fn page_side(&self) -> u16 {
        self.grid.page_side()
    }
}

impl AllocationStrategy for Paging {
    fn name(&self) -> String {
        format!("Paging({})", self.size_index)
    }

    fn allocate(&mut self, mesh: &mut Mesh, a: u16, b: u16) -> Option<Allocation> {
        let need = a as u32 * b as u32;
        if need == 0 || need > self.free_procs {
            return None;
        }
        let mut chosen = Vec::new();
        let mut granted = 0u32;
        for (i, page) in self.grid.pages().iter().enumerate() {
            if !self.free[i] {
                continue;
            }
            chosen.push(i);
            granted += page.size();
            if granted >= need {
                break;
            }
        }
        debug_assert!(granted >= need, "free_procs accounting is broken");
        let submeshes: Vec<SubMesh> = chosen.iter().map(|&i| self.grid.pages()[i]).collect();
        for (&i, s) in chosen.iter().zip(&submeshes) {
            self.free[i] = false;
            mesh.occupy_submesh(s);
        }
        self.free_procs -= granted;
        let id = AllocId(self.next_id);
        self.next_id += 1;
        self.live.insert(id.0, chosen);
        Some(Allocation::new(id, submeshes))
    }

    fn release(&mut self, mesh: &mut Mesh, alloc: Allocation) {
        let pages = self
            .live
            // procsim-lint: allow(D004): invariant: the simulator only releases allocations this allocator minted, exactly once
            .remove(&alloc.id.0)
            .expect("invariant: release of unknown allocation");
        for &i in &pages {
            debug_assert!(!self.free[i], "page double free");
            self.free[i] = true;
            let s = self.grid.pages()[i];
            self.free_procs += s.size();
            mesh.release_submesh(&s);
        }
    }

    fn reset(&mut self, mesh: &Mesh) {
        debug_assert_eq!(mesh.used_count(), 0, "reset on a non-empty mesh");
        self.free.fill(true);
        self.free_procs = mesh.size();
        self.live.clear();
        self.next_id = 0;
    }

    fn always_succeeds_when_free(&self) -> bool {
        // exact for Paging(0); for larger pages success is guaranteed
        // whenever enough *page* capacity is free, which the free_procs
        // counter tracks
        true
    }

    fn feasible(&self, _mesh: &Mesh, a: u16, b: u16) -> bool {
        // exact mirror of allocate's early-out against the free *page*
        // capacity (which equals the mesh free count: pages are occupied
        // and released whole)
        let need = a as u32 * b as u32;
        need != 0 && need <= self.free_procs
    }

    // failure_persists_until_release: a failed allocate returns before
    // any page is marked, and need > free_procs is monotone under
    // further occupies.
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh2d::Coord;

    fn paging0(mesh: &Mesh) -> Paging {
        Paging::new(mesh, 0, PageIndexing::RowMajor)
    }

    #[test]
    fn paging0_allocates_exactly_and_in_index_order() {
        let mut mesh = Mesh::new(16, 22);
        let mut p = paging0(&mesh);
        let a = p.allocate(&mut mesh, 3, 2).unwrap();
        assert_eq!(a.size(), 6);
        // first six processors in row-major order
        let nodes = a.nodes();
        assert_eq!(nodes[0], Coord::new(0, 0));
        assert_eq!(nodes[5], Coord::new(5, 0));
        assert_eq!(mesh.used_count(), 6);
    }

    #[test]
    fn paging0_succeeds_iff_enough_free() {
        let mut mesh = Mesh::new(4, 4);
        let mut p = paging0(&mesh);
        let a = p.allocate(&mut mesh, 4, 3).unwrap(); // 12 of 16
        assert!(p.allocate(&mut mesh, 5, 1).is_none()); // 5 > 4 free
        let b = p.allocate(&mut mesh, 2, 2).unwrap(); // exactly 4
        assert_eq!(mesh.free_count(), 0);
        p.release(&mut mesh, a);
        p.release(&mut mesh, b);
        assert_eq!(mesh.free_count(), 16);
    }

    #[test]
    fn paging0_fills_holes_left_by_departures() {
        let mut mesh = Mesh::new(4, 4);
        let mut p = paging0(&mesh);
        let a = p.allocate(&mut mesh, 4, 1).unwrap(); // row 0
        let _b = p.allocate(&mut mesh, 4, 1).unwrap(); // row 1
        p.release(&mut mesh, a);
        let c = p.allocate(&mut mesh, 2, 1).unwrap();
        // reuses the lowest-index pages (row 0), not fresh ones
        assert_eq!(c.nodes()[0], Coord::new(0, 0));
    }

    #[test]
    fn paging2_internal_fragmentation() {
        // Paging(2) = 4x4 pages: a 1x1 request occupies a whole page.
        let mut mesh = Mesh::new(16, 16);
        let mut p = Paging::new(&mesh, 2, PageIndexing::RowMajor);
        assert_eq!(p.page_side(), 4);
        let a = p.allocate(&mut mesh, 1, 1).unwrap();
        assert_eq!(a.size(), 16, "whole page granted");
        assert_eq!(mesh.used_count(), 16);
        p.release(&mut mesh, a);
        assert_eq!(mesh.used_count(), 0);
    }

    #[test]
    fn paging1_multiple_pages_until_covered() {
        let mut mesh = Mesh::new(8, 8);
        let mut p = Paging::new(&mesh, 1, PageIndexing::RowMajor); // 2x2 pages
        let a = p.allocate(&mut mesh, 3, 3).unwrap(); // 9 procs -> 3 pages = 12
        assert_eq!(a.fragments(), 3);
        assert_eq!(a.size(), 12);
    }

    #[test]
    fn release_unknown_panics() {
        let mut mesh = Mesh::new(4, 4);
        let mut p = paging0(&mesh);
        let bogus = Allocation::new(AllocId(999), vec![]);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.release(&mut mesh, bogus);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn reset_restores_capacity() {
        let mut mesh = Mesh::new(4, 4);
        let mut p = paging0(&mesh);
        let _leak = p.allocate(&mut mesh, 4, 4).unwrap();
        mesh.clear();
        p.reset(&mesh);
        assert!(p.allocate(&mut mesh, 4, 4).is_some());
    }

    #[test]
    fn snake_indexing_changes_order_not_capacity() {
        let mut mesh = Mesh::new(4, 4);
        let mut p = Paging::new(&mesh, 0, PageIndexing::SnakeLike);
        let a = p.allocate(&mut mesh, 4, 2).unwrap();
        assert_eq!(a.size(), 8);
        // snake order: row 0 L->R then row 1 R->L
        let nodes = a.nodes();
        assert_eq!(nodes[3], Coord::new(3, 0));
        assert_eq!(nodes[4], Coord::new(3, 1));
    }
}
