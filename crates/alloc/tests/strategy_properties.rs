//! Cross-strategy invariants, property-tested against random churn.
//!
//! These are the load-bearing guarantees of the paper's §5 analysis:
//! 1. non-contiguous strategies (GABL, Paging(0), MBS, Random) succeed
//!    exactly when enough processors are free;
//! 2. allocations are disjoint and tracked exactly by the mesh;
//! 3. release fully restores state (no leaks over arbitrary schedules);
//! 4. allocated processor counts match the request (no over/under grant,
//!    Paging(k>0) internal fragmentation excepted).

use mesh2d::{Mesh, PageIndexing};
use mesh_alloc::StrategyKind;
use proptest::prelude::*;

fn kinds() -> Vec<StrategyKind> {
    vec![
        StrategyKind::Gabl,
        StrategyKind::Paging {
            size_index: 0,
            indexing: PageIndexing::RowMajor,
        },
        StrategyKind::Mbs,
        StrategyKind::Random,
    ]
}

/// A random schedule of allocate/release operations.
#[derive(Debug, Clone)]
enum Op {
    Alloc(u16, u16),
    /// Release the i-th (mod len) live allocation.
    Release(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (1u16..=16, 1u16..=22).prop_map(|(a, b)| Op::Alloc(a, b)),
            2 => (0usize..64).prop_map(Op::Release),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn noncontiguous_succeed_iff_free(ops in arb_ops(), kind_i in 0usize..4) {
        let kind = kinds()[kind_i];
        let mut mesh = Mesh::new(16, 22);
        let mut strat = kind.build(&mesh, 42);
        let mut live = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(a, b) => {
                    let p = a as u32 * b as u32;
                    let free = mesh.free_count();
                    match strat.allocate(&mut mesh, a, b) {
                        Some(al) => {
                            // granted at least the request (Paging(0)/MBS/
                            // GABL/Random grant exactly)
                            prop_assert_eq!(al.size(), p);
                            prop_assert_eq!(mesh.free_count(), free - p);
                            live.push(al);
                        }
                        None => {
                            prop_assert!(p > free,
                                "{} failed with {} free for request {}",
                                strat.name(), free, p);
                        }
                    }
                }
                Op::Release(i) => {
                    if !live.is_empty() {
                        let al = live.swap_remove(i % live.len());
                        let free = mesh.free_count();
                        let sz = al.size();
                        strat.release(&mut mesh, al);
                        prop_assert_eq!(mesh.free_count(), free + sz);
                    }
                }
            }
        }
        // drain: releasing everything restores the empty mesh
        for al in live {
            strat.release(&mut mesh, al);
        }
        prop_assert_eq!(mesh.free_count(), 352);
    }

    #[test]
    fn allocations_are_disjoint(ops in arb_ops(), kind_i in 0usize..4) {
        let kind = kinds()[kind_i];
        let mut mesh = Mesh::new(16, 22);
        let mut strat = kind.build(&mesh, 7);
        let mut live: Vec<mesh_alloc::Allocation> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(a, b) => {
                    if let Some(al) = strat.allocate(&mut mesh, a, b) {
                        live.push(al);
                    }
                }
                Op::Release(i) => {
                    if !live.is_empty() {
                        let al = live.swap_remove(i % live.len());
                        strat.release(&mut mesh, al);
                    }
                }
            }
        }
        // pairwise disjoint across all live allocations
        let mut seen = std::collections::HashSet::new();
        for al in &live {
            for &c in al.nodes() {
                prop_assert!(seen.insert(c), "{} double-allocated {}", strat.name(), c);
                prop_assert!(mesh.is_occupied(c));
            }
        }
        prop_assert_eq!(seen.len() as u32, mesh.used_count());
    }

    #[test]
    fn contiguous_never_splits(ops in arb_ops(), use_bf in any::<bool>()) {
        let kind = if use_bf { StrategyKind::BestFit } else { StrategyKind::FirstFit };
        let mut mesh = Mesh::new(16, 22);
        let mut strat = kind.build(&mesh, 0);
        let mut live = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(a, b) => {
                    if let Some(al) = strat.allocate(&mut mesh, a, b) {
                        prop_assert_eq!(al.fragments(), 1);
                        prop_assert_eq!(al.size(), a as u32 * b as u32);
                        live.push(al);
                    }
                }
                Op::Release(i) => {
                    if !live.is_empty() {
                        let al = live.swap_remove(i % live.len());
                        strat.release(&mut mesh, al);
                    }
                }
            }
        }
    }

    /// GABL produces no more fragments than Random would (sanity of the
    /// contiguity-greedy claim) and at least as few as possible (1 when a
    /// suitable sub-mesh exists is covered in unit tests).
    #[test]
    fn gabl_fragments_bounded_by_request(a in 1u16..=16, b in 1u16..=22, churn in arb_ops()) {
        let mut mesh = Mesh::new(16, 22);
        let mut strat = StrategyKind::Gabl.build(&mesh, 0);
        let mut live = Vec::new();
        for op in churn {
            match op {
                Op::Alloc(x, y) => {
                    if let Some(al) = strat.allocate(&mut mesh, x, y) {
                        live.push(al);
                    }
                }
                Op::Release(i) => {
                    if !live.is_empty() {
                        let al = live.swap_remove(i % live.len());
                        strat.release(&mut mesh, al);
                    }
                }
            }
        }
        if let Some(al) = strat.allocate(&mut mesh, a, b) {
            prop_assert!(al.fragments() as u32 <= al.size());
            // greedy: piece sizes (max side) never increase
            let sides: Vec<u16> = al.submeshes().iter().map(|s| s.width().max(s.length())).collect();
            for w in sides.windows(2) {
                prop_assert!(w[0] >= w[1]);
            }
        }
    }
}
