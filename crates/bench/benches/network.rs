//! Criterion micro-benchmarks: flit-level network engine throughput.
//!
//! The cycle engine's cost per simulated cycle bounds the wall-clock cost
//! of every experiment; these benches track it for a quiet network, a
//! contended all-to-all, and the routing/pattern helpers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use desim::SimRng;
use mesh2d::Coord;
use wormnet::{pattern_messages, xy_route, Network, Pattern, Topology};

fn bench_single_packet(c: &mut Criterion) {
    c.bench_function("network/single_packet_end_to_end", |b| {
        b.iter(|| {
            let mut n = Network::new(16, 22, 3);
            n.send(Coord::new(0, 0), Coord::new(15, 21), 8, 0, 0);
            black_box(n.run_until_idle(0))
        })
    });
}

fn bench_all_to_all(c: &mut Criterion) {
    c.bench_function("network/all_to_all_8x8_drain", |b| {
        b.iter(|| {
            let mut n = Network::new(16, 22, 3);
            let nodes: Vec<Coord> = (0..8u16)
                .flat_map(|y| (0..8u16).map(move |x| Coord::new(x, y)))
                .collect();
            let mut rng = SimRng::new(1);
            for (i, (s, d)) in pattern_messages(Pattern::AllToAll, &nodes, 5, &mut rng)
                .into_iter()
                .enumerate()
            {
                n.send(s, d, 8, i as u64, 0);
            }
            black_box(n.run_until_idle(0))
        })
    });
}

fn bench_step_cost(c: &mut Criterion) {
    // steady contended state: measure per-cycle cost
    c.bench_function("network/step_200_active_worms", |b| {
        let mut n = Network::new(16, 22, 3);
        let mut rng = SimRng::new(5);
        for i in 0..600u64 {
            let s = Coord::new(rng.index(16) as u16, rng.index(22) as u16);
            let d = Coord::new(rng.index(16) as u16, rng.index(22) as u16);
            n.send(s, d, 8, i, 0);
        }
        let mut t = 0;
        // warm into contention
        for _ in 0..50 {
            n.step(t);
            t += 1;
        }
        b.iter(|| {
            if n.is_idle() {
                // refill if drained mid-measurement
                for i in 0..600u64 {
                    let s = Coord::new(rng.index(16) as u16, rng.index(22) as u16);
                    let d = Coord::new(rng.index(16) as u16, rng.index(22) as u16);
                    n.send(s, d, 8, i, t);
                }
            }
            n.step(t);
            t += 1;
            black_box(n.active_count())
        })
    });
}

fn bench_queued_senders(c: &mut Criterion) {
    // hundreds of senders parked on busy injection channels: every node
    // floods a single hotspot destination, so each node's first worm
    // stalls with its tail still on the injection channel and the rest
    // of its queue waits at the source. Per-cycle progress is a trickle
    // (the hotspot ejects one flit per cycle), which makes the cost of
    // *accounting* for the parked senders the dominant term.
    c.bench_function("network/step_500_queued_senders", |b| {
        let dst = Coord::new(8, 11);
        let mut n = Network::new(16, 22, 3);
        let fill = |n: &mut Network, t: u64| {
            let mut tag = 0u64;
            for y in 0..22u16 {
                for x in 0..16u16 {
                    let s = Coord::new(x, y);
                    if s != dst {
                        for _ in 0..2 {
                            n.send(s, dst, 16, tag, t);
                            tag += 1;
                        }
                    }
                }
            }
        };
        fill(&mut n, 0);
        let mut t = 0;
        // warm until the first wave of worms is injected and wedged
        for _ in 0..64 {
            n.step(t);
            t += 1;
        }
        b.iter(|| {
            if n.queued_count() < 300 {
                fill(&mut n, t);
            }
            n.step(t);
            t += 1;
            black_box(n.queued_count())
        })
    });
}

fn bench_advance_until(c: &mut Criterion) {
    // contended: compressed advancement over a 64-cycle window while the
    // network is saturated with worms (compare against 64× step cost)
    c.bench_function("network/advance_until_64_cycles_contended", |b| {
        let mut n = Network::new(16, 22, 3);
        let mut rng = SimRng::new(5);
        let mut t = 0;
        b.iter(|| {
            if n.active_count() < 50 {
                for i in 0..600u64 {
                    let s = Coord::new(rng.index(16) as u16, rng.index(22) as u16);
                    let d = Coord::new(rng.index(16) as u16, rng.index(22) as u16);
                    n.send(s, d, 8, i, t);
                }
            }
            t = n.advance_until(t, t + 64);
            black_box(n.active_count())
        })
    });
    // sparse: a handful of uncontended worms — the regime where routing
    // delays make most cycles provably inert and compression dominates
    c.bench_function("network/advance_until_64_cycles_sparse", |b| {
        let mut n = Network::new(16, 22, 3);
        let mut rng = SimRng::new(9);
        let mut t = 0;
        b.iter(|| {
            if n.active_count() < 2 {
                for i in 0..4u64 {
                    let s = Coord::new(rng.index(16) as u16, rng.index(22) as u16);
                    let d = Coord::new(rng.index(16) as u16, rng.index(22) as u16);
                    n.send(s, d, 8, i, t);
                }
            }
            t = n.advance_until(t, t + 64);
            black_box(n.active_count())
        })
    });
}

fn bench_routing(c: &mut Criterion) {
    let topo = Topology::new(16, 22);
    c.bench_function("routing/xy_route_corner_to_corner", |b| {
        b.iter(|| black_box(xy_route(&topo, Coord::new(0, 0), Coord::new(15, 21))))
    });
    let nodes: Vec<Coord> = (0..6u16)
        .flat_map(|y| (0..6u16).map(move |x| Coord::new(x, y)))
        .collect();
    c.bench_function("pattern/all_to_all_36_nodes", |b| {
        let mut rng = SimRng::new(9);
        b.iter(|| black_box(pattern_messages(Pattern::AllToAll, &nodes, 5, &mut rng)))
    });
}

criterion_group!(
    benches,
    bench_single_packet,
    bench_all_to_all,
    bench_step_cost,
    bench_queued_senders,
    bench_advance_until,
    bench_routing
);
criterion_main!(benches);
