//! Criterion micro-benchmarks: allocation strategy operation cost.
//!
//! The paper argues GABL is practical because its busy list stays short
//! (§6); these benches measure the actual allocate+release cost of every
//! strategy under sustained churn on the 16×22 mesh, plus the
//! largest-free-rectangle search that dominates GABL's cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use desim::SimRng;
use mesh2d::{largest_free_rect, Coord, Mesh};
use mesh_alloc::{PageIndexing, StrategyKind};

/// Steady-state churn: keep ~60 % of the mesh allocated, measure one
/// allocate+release pair per iteration.
fn churn(c: &mut Criterion, kind: StrategyKind, name: &str) {
    let mut mesh = Mesh::new(16, 22);
    let mut strat = kind.build(&mesh, 42);
    let mut rng = SimRng::new(7);
    let mut live = Vec::new();
    // pre-churn to steady state
    for _ in 0..300 {
        if rng.chance(0.55) || live.is_empty() {
            let a = rng.uniform_incl(1, 8) as u16;
            let b = rng.uniform_incl(1, 8) as u16;
            if let Some(al) = strat.allocate(&mut mesh, a, b) {
                live.push(al);
            }
        } else {
            let al = live.swap_remove(rng.index(live.len()));
            strat.release(&mut mesh, al);
        }
    }
    c.bench_function(&format!("alloc_release/{name}"), |bch| {
        bch.iter(|| {
            let a = rng.uniform_incl(1, 8) as u16;
            let b = rng.uniform_incl(1, 8) as u16;
            if let Some(al) = strat.allocate(&mut mesh, black_box(a), black_box(b)) {
                // release a random live allocation to hold occupancy level
                live.push(al);
            }
            if live.len() > 20 {
                let al = live.swap_remove(rng.index(live.len()));
                strat.release(&mut mesh, al);
            }
        })
    });
}

fn bench_strategies(c: &mut Criterion) {
    churn(c, StrategyKind::Gabl, "gabl");
    churn(
        c,
        StrategyKind::Paging {
            size_index: 0,
            indexing: PageIndexing::RowMajor,
        },
        "paging0",
    );
    churn(c, StrategyKind::Mbs, "mbs");
    churn(c, StrategyKind::FirstFit, "first_fit");
    churn(c, StrategyKind::BestFit, "best_fit");
    churn(c, StrategyKind::Random, "random");
}

/// Full allocation lifecycle at moderate occupancy, where requests mostly
/// *succeed*: allocate, expand the rank → coordinate layout (the
/// simulator's per-job setup path), release. Unlike `alloc_release`,
/// which holds the mesh near saturation and so mostly measures the
/// cheap failure path, this bench exercises the search + bookkeeping
/// cost that each started job actually pays.
fn lifecycle(c: &mut Criterion, kind: StrategyKind, name: &str) {
    let mut mesh = Mesh::new(16, 22);
    let mut strat = kind.build(&mesh, 42);
    let mut rng = SimRng::new(11);
    let mut live: std::collections::VecDeque<mesh_alloc::Allocation> =
        std::collections::VecDeque::new();
    c.bench_function(&format!("alloc_churn/{name}"), |bch| {
        bch.iter(|| {
            let a = rng.uniform_incl(1, 6) as u16;
            let b = rng.uniform_incl(1, 6) as u16;
            // hold occupancy moderate: make room before allocating
            while mesh.free_count() < a as u32 * b as u32 || live.len() >= 12 {
                let al = live.pop_front().unwrap();
                strat.release(&mut mesh, al);
            }
            if let Some(al) = strat.allocate(&mut mesh, black_box(a), black_box(b)) {
                black_box(al.nodes().len());
                live.push_back(al);
            }
        })
    });
}

fn bench_lifecycle(c: &mut Criterion) {
    lifecycle(c, StrategyKind::Gabl, "gabl");
    lifecycle(
        c,
        StrategyKind::Paging {
            size_index: 0,
            indexing: PageIndexing::RowMajor,
        },
        "paging0",
    );
    lifecycle(c, StrategyKind::Mbs, "mbs");
    lifecycle(c, StrategyKind::FirstFit, "first_fit");
    lifecycle(c, StrategyKind::BestFit, "best_fit");
}

fn bench_rect_search(c: &mut Criterion) {
    let mut mesh = Mesh::new(16, 22);
    let mut rng = SimRng::new(3);
    for y in 0..22u16 {
        for x in 0..16u16 {
            if rng.chance(0.5) {
                mesh.occupy(Coord::new(x, y));
            }
        }
    }
    c.bench_function("largest_free_rect/16x22_half_full", |b| {
        b.iter(|| black_box(largest_free_rect(&mesh, 16, 22)))
    });
    let big = {
        let mut m = Mesh::new(64, 64);
        for y in 0..64u16 {
            for x in 0..64u16 {
                if rng.chance(0.5) {
                    m.occupy(Coord::new(x, y));
                }
            }
        }
        m
    };
    c.bench_function("largest_free_rect/64x64_half_full", |b| {
        b.iter(|| black_box(largest_free_rect(&big, 64, 64)))
    });
}

criterion_group!(benches, bench_strategies, bench_lifecycle, bench_rect_search);
criterion_main!(benches);
