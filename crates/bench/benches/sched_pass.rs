//! Criterion benchmark: the scheduling pass, memoized vs reference.
//!
//! `sched_pass/*` measures what the epoch-memoization PR bought: the
//! same deep-queue simulations driven once through the memoized pass
//! (`run_recorded`) and once through the kept pre-memoization oracle
//! (`run_reference_recorded`). The two sides make bit-identical
//! decisions (pinned by `crates/core/tests/sched_differential.rs`), so
//! any wall-clock gap is pure pass overhead: repeated doomed allocator
//! searches, per-iteration attempt-order clones, and per-pass
//! observation snapshot rebuilds.
//!
//! `watermark_reject` isolates the O(1) rejection itself: asking a
//! heavily fragmented mesh whether a too-large sub-mesh could fit, via
//! the watermark test versus the full row-scan search.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mesh2d::{find_free_submesh, Coord, Mesh};
use procsim_core::{
    SchedulerKind, SideDist, SimConfig, Simulator, StrategyKind, WorkloadSpec,
};

/// A deliberately over-loaded, communication-light configuration: the
/// queue stays deep, so most pass iterations are rejections — the case
/// memoization targets — while `num_mes` is kept small so the network
/// does not drown the scheduling cost it took PR 5/7 to tame.
fn deep_queue_cfg(strategy: StrategyKind, scheduler: SchedulerKind) -> SimConfig {
    let mut cfg = SimConfig::paper(
        strategy,
        scheduler,
        WorkloadSpec::Stochastic {
            sides: SideDist::Uniform,
            load: 0.05,
            num_mes: 0.5,
        },
        23,
    );
    cfg.warmup_jobs = 10;
    cfg.measured_jobs = 80;
    cfg
}

fn bench_sched_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched_pass");
    group.sample_size(10);
    for (name, strategy, scheduler) in [
        (
            "deep_queue_firstfit_fcfs",
            StrategyKind::FirstFit,
            SchedulerKind::Fcfs,
        ),
        (
            "mixed_shape_churn_bestfit_window",
            StrategyKind::BestFit,
            SchedulerKind::FcfsWindow(8),
        ),
    ] {
        let cfg = deep_queue_cfg(strategy, scheduler);
        group.bench_function(&format!("{name}/memoized"), |b| {
            b.iter(|| black_box(Simulator::new(&cfg, 0).run_recorded()))
        });
        group.bench_function(&format!("{name}/reference"), |b| {
            b.iter(|| black_box(Simulator::new(&cfg, 0).run_reference_recorded()))
        });
    }
    group.finish();
}

/// Checkerboard-fragment a mesh: no free run longer than 1, so a 4×4
/// request is infeasible — the case the watermarks reject in O(1)
/// (before them, the search scanned every row before giving up).
fn checkerboard_mesh() -> Mesh {
    let mut mesh = Mesh::new(16, 22);
    for y in 0..22u16 {
        for x in 0..16u16 {
            if (x + y) % 2 == 0 {
                mesh.occupy(Coord::new(x, y));
            }
        }
    }
    mesh
}

/// Occupy every other full row: long free runs (`max_free_run` = 16)
/// and many free rows, so a 4×4 request passes every watermark — but no
/// two consecutive rows are free, so the full search runs to the end
/// and fails. This is the price a doomed contiguous attempt paid per
/// pass before memoization, and still pays on its *first* attempt.
fn striped_mesh() -> Mesh {
    let mut mesh = Mesh::new(16, 22);
    for y in (0..22u16).step_by(2) {
        for x in 0..16u16 {
            mesh.occupy(Coord::new(x, y));
        }
    }
    mesh
}

fn bench_watermark_reject(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched_pass");
    let checker = checkerboard_mesh();
    let striped = striped_mesh();
    // what an infeasible contiguous request costs now: one O(1) check
    // (find_free_submesh itself leads with could_fit_rect, so the two
    // rows below are equal by construction)
    group.bench_function("watermark_reject/could_fit_rect", |b| {
        b.iter(|| black_box(checker.could_fit_rect(black_box(4), black_box(4))))
    });
    group.bench_function("watermark_reject/rejected_search", |b| {
        b.iter(|| black_box(find_free_submesh(&checker, black_box(4), black_box(4))))
    });
    // what the same rejection costs when the watermarks cannot decide
    // (and, order-of-magnitude, what every doomed attempt cost before):
    // the full row-by-row interval scan, ending in failure
    group.bench_function("watermark_reject/undecided_full_scan", |b| {
        b.iter(|| black_box(find_free_submesh(&striped, black_box(4), black_box(4))))
    });
    group.finish();
}

criterion_group!(benches, bench_sched_pass, bench_watermark_reject);
criterion_main!(benches);
