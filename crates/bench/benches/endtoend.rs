//! Criterion benchmark: end-to-end simulation throughput per strategy —
//! the wall-clock cost of one (small) replication of the paper's
//! experiment, which bounds how expensive the full figure sweeps are.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use procsim_core::{
    SchedulerKind, SideDist, SimConfig, Simulator, StrategyKind, WorkloadSpec,
};

fn small_cfg(strategy: StrategyKind) -> SimConfig {
    let mut cfg = SimConfig::paper(
        strategy,
        SchedulerKind::Fcfs,
        WorkloadSpec::Stochastic {
            sides: SideDist::Uniform,
            load: 0.0006,
            num_mes: 5.0,
        },
        11,
    );
    cfg.warmup_jobs = 10;
    cfg.measured_jobs = 60;
    cfg
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_60_jobs");
    group.sample_size(10);
    for (name, strat) in [
        ("gabl", StrategyKind::Gabl),
        (
            "paging0",
            StrategyKind::Paging {
                size_index: 0,
                indexing: procsim_core::PageIndexing::RowMajor,
            },
        ),
        ("mbs", StrategyKind::Mbs),
    ] {
        let cfg = small_cfg(strat);
        group.bench_function(name, |b| {
            b.iter(|| black_box(Simulator::new(&cfg, 0).run()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
