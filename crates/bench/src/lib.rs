//! # procsim-bench — the paper's experiment harness
//!
//! One binary per figure of the evaluation section (`fig02` … `fig16`),
//! an `all-figures` driver, and ablation binaries probing the design
//! choices DESIGN.md calls out. Each figure binary regenerates the
//! corresponding figure's data series (six curves:
//! {GABL, Paging(0), MBS} × {FCFS, SSD}) as a table on stdout and a CSV
//! under `results/`.
//!
//! ## Execution model
//!
//! Every binary funnels all of its (series × load) points — and all of
//! each point's replications — through the workspace-wide worker pool
//! ([`procsim_core::pool`]) as one batch: replications of different
//! points interleave, so the pool stays saturated even while a slow
//! saturated point converges. `--threads N` / `PROCSIM_THREADS` size the
//! pool; results are bit-identical for any thread count (see
//! `EXPERIMENTS.md` for the recorded runtimes).
//!
//! ## Load-axis calibration
//!
//! Our substrate is a reimplementation, not the authors' testbed: the
//! absolute service times differ by a constant-ish factor, which shifts
//! the saturation knee along the load axis. Figures therefore sweep loads
//! spanning the *same operating regimes* as the paper (light load →
//! saturation onset); EXPERIMENTS.md records the axis mapping and
//! compares shapes, not absolute values.

pub mod figures;
pub mod plot;
pub mod runner;

pub use figures::{figure, FigureSpec, Metric, WorkloadKind, ALL_FIGURES};
pub use plot::ascii_chart;
pub use runner::{ablation_args, run_figure, run_figure_main, run_sweep, FigureData, RunMode};
