//! # procsim-bench — the paper's experiment harness
//!
//! One binary per figure of the evaluation section (`fig02` … `fig16`),
//! an `all-figures` driver, and ablation binaries probing the design
//! choices DESIGN.md calls out. Each figure binary regenerates the
//! corresponding figure's data series (six curves:
//! {GABL, Paging(0), MBS} × {FCFS, SSD}) as a table on stdout and a CSV
//! under `results/`.
//!
//! ## Load-axis calibration
//!
//! Our substrate is a reimplementation, not the authors' testbed: the
//! absolute service times differ by a constant-ish factor, which shifts
//! the saturation knee along the load axis. Figures therefore sweep loads
//! spanning the *same operating regimes* as the paper (light load →
//! saturation onset); EXPERIMENTS.md records the axis mapping and
//! compares shapes, not absolute values.

pub mod figures;
pub mod plot;
pub mod runner;

pub use figures::{figure, FigureSpec, Metric, WorkloadKind, ALL_FIGURES};
pub use plot::ascii_chart;
pub use runner::{run_figure, run_figure_main, FigureData, RunMode};
