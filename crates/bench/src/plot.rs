//! Terminal line charts for the figure binaries — a rough visual of the
//! paper's plots without leaving the terminal.

/// Renders series as an ASCII scatter/line chart. `series` is a list of
/// `(label, points)` with shared x values; y is auto-scaled. Each series
/// is drawn with its own glyph; collisions show the later series.
pub fn ascii_chart(
    title: &str,
    xs: &[f64],
    series: &[(String, Vec<f64>)],
    width: usize,
    height: usize,
) -> String {
    assert!(width >= 16 && height >= 4);
    let glyphs = ['G', 'P', 'M', 'g', 'p', 'm', '*', '+', 'x', 'o'];
    let mut y_min = f64::INFINITY;
    let mut y_max = f64::NEG_INFINITY;
    for (_, ys) in series {
        for &y in ys {
            if y.is_finite() {
                y_min = y_min.min(y);
                y_max = y_max.max(y);
            }
        }
    }
    if !y_min.is_finite() || y_max <= y_min {
        y_max = y_min + 1.0;
    }
    let x_min = xs.first().copied().unwrap_or(0.0);
    let x_max = xs.last().copied().unwrap_or(1.0);
    let x_span = (x_max - x_min).max(f64::MIN_POSITIVE);
    let y_span = y_max - y_min;

    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, ys)) in series.iter().enumerate() {
        let g = glyphs[si % glyphs.len()];
        for (&x, &y) in xs.iter().zip(ys) {
            if !y.is_finite() {
                continue;
            }
            let col = (((x - x_min) / x_span) * (width - 1) as f64).round() as usize;
            let row = (((y - y_min) / y_span) * (height - 1) as f64).round() as usize;
            grid[height - 1 - row][col.min(width - 1)] = g;
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (i, row) in grid.iter().enumerate() {
        let y_here = y_max - y_span * i as f64 / (height - 1) as f64;
        out.push_str(&format!("{y_here:>10.1} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>10} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>10}  {:<width$.5}{:>.5}\n",
        "load", x_min, x_max,
        width = width.saturating_sub(7),
    ));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (label, _))| format!("{} = {label}", glyphs[i % glyphs.len()]))
        .collect();
    out.push_str(&format!("{:>10}  {}\n", "", legend.join("   ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_expected_shape() {
        let xs = vec![1.0, 2.0, 3.0, 4.0];
        let series = vec![
            ("up".to_string(), vec![1.0, 2.0, 3.0, 4.0]),
            ("down".to_string(), vec![4.0, 3.0, 2.0, 1.0]),
        ];
        let chart = ascii_chart("test", &xs, &series, 40, 10);
        assert!(chart.contains("test"));
        assert!(chart.contains("G = up"));
        assert!(chart.contains("P = down"));
        // both glyphs appear
        assert!(chart.matches('G').count() >= 4);
        // at least header + 10 rows + axis + labels
        assert!(chart.lines().count() >= 13);
    }

    #[test]
    fn constant_series_does_not_panic() {
        let xs = vec![1.0, 2.0];
        let series = vec![("flat".to_string(), vec![5.0, 5.0])];
        let chart = ascii_chart("flat", &xs, &series, 20, 5);
        assert!(chart.contains('G'));
    }

    #[test]
    fn handles_non_finite_points() {
        let xs = vec![1.0, 2.0, 3.0];
        let series = vec![("holes".to_string(), vec![1.0, f64::NAN, 3.0])];
        let chart = ascii_chart("holes", &xs, &series, 20, 5);
        // two plotted points plus the glyph in the legend line
        assert_eq!(chart.matches('G').count(), 3);
    }
}
