//! Figure specifications: one entry per figure of the paper.

/// Which response variable a figure plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Mean job turnaround time (queue wait + service).
    Turnaround,
    /// Mean job service time (allocation to departure).
    Service,
    /// Mean system utilization under saturation.
    Utilization,
    /// Mean per-packet blocking time in the network.
    Blocking,
    /// Mean per-packet network latency.
    Latency,
}

impl Metric {
    /// Index into [`procsim_core::RunMetrics::response_vector`].
    pub fn index(&self) -> usize {
        match self {
            Metric::Turnaround => 0,
            Metric::Service => 1,
            Metric::Utilization => 2,
            Metric::Blocking => 3,
            Metric::Latency => 4,
        }
    }

    /// Axis label as printed on the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Metric::Turnaround => "avg turnaround time",
            Metric::Service => "avg service time",
            Metric::Utilization => "mean system utilization",
            Metric::Blocking => "avg packet blocking time",
            Metric::Latency => "avg packet latency",
        }
    }
}

/// Which of the paper's three workloads a figure uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Synthetic SDSC Paragon trace ("real workload").
    RealTrace,
    /// Stochastic, uniform side lengths.
    StochasticUniform,
    /// Stochastic, exponential side lengths.
    StochasticExponential,
}

impl WorkloadKind {
    /// Human-readable workload description for figure titles.
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadKind::RealTrace => "real workload (synthetic SDSC Paragon trace)",
            WorkloadKind::StochasticUniform => "stochastic workload, uniform side lengths",
            WorkloadKind::StochasticExponential => "stochastic workload, exponential side lengths",
        }
    }
}

/// Specification of one paper figure.
#[derive(Debug, Clone)]
pub struct FigureSpec {
    /// Paper figure number (2–16).
    pub id: u8,
    /// Response variable plotted.
    pub metric: Metric,
    /// Workload class driving the runs.
    pub workload: WorkloadKind,
    /// Load sweep (jobs per time unit). Utilization figures use a single
    /// heavy load that saturates the queue ("the waiting queue is filled
    /// very early", §5).
    pub loads: &'static [f64],
}

impl FigureSpec {
    /// Full figure title, matching the paper's caption style.
    pub fn title(&self) -> String {
        format!(
            "Figure {}: {} vs. system load, all-to-all, {} in a 16x22 mesh",
            self.id,
            self.metric.label(),
            self.workload.label()
        )
    }
}

/// Seconds of trace runtime per message (DESIGN.md §3): calibrated so the
/// mean per-processor message count of trace jobs ≈ 6, giving the ~5-10×
/// real-vs-stochastic service-time ratio of the paper's Figs. 5 vs 6.
pub const TRACE_RUNTIME_SCALE: f64 = 360.0;

// Calibrated load axes (see crate docs): same regimes as the paper's
// figures, shifted by our substrate's service-time scale.
const TRACE_LOADS: &[f64] = &[0.0005, 0.001, 0.0015, 0.002, 0.003, 0.004, 0.005, 0.006];
const UNIFORM_LOADS: &[f64] = &[0.0002, 0.0004, 0.0006, 0.0008, 0.001, 0.0012];
const EXP_LOADS: &[f64] = &[0.0003, 0.0006, 0.0009, 0.0012, 0.0015, 0.0018];
/// Saturating loads for the utilization bar charts (Figs. 8–10).
const TRACE_SAT: &[f64] = &[0.02];
const UNIFORM_SAT: &[f64] = &[0.004];
const EXP_SAT: &[f64] = &[0.006];

/// All fifteen figures of the paper's evaluation section.
pub const ALL_FIGURES: [FigureSpec; 15] = [
    FigureSpec { id: 2, metric: Metric::Turnaround, workload: WorkloadKind::RealTrace, loads: TRACE_LOADS },
    FigureSpec { id: 3, metric: Metric::Turnaround, workload: WorkloadKind::StochasticUniform, loads: UNIFORM_LOADS },
    FigureSpec { id: 4, metric: Metric::Turnaround, workload: WorkloadKind::StochasticExponential, loads: EXP_LOADS },
    FigureSpec { id: 5, metric: Metric::Service, workload: WorkloadKind::RealTrace, loads: TRACE_LOADS },
    FigureSpec { id: 6, metric: Metric::Service, workload: WorkloadKind::StochasticUniform, loads: UNIFORM_LOADS },
    FigureSpec { id: 7, metric: Metric::Service, workload: WorkloadKind::StochasticExponential, loads: EXP_LOADS },
    FigureSpec { id: 8, metric: Metric::Utilization, workload: WorkloadKind::RealTrace, loads: TRACE_SAT },
    FigureSpec { id: 9, metric: Metric::Utilization, workload: WorkloadKind::StochasticUniform, loads: UNIFORM_SAT },
    FigureSpec { id: 10, metric: Metric::Utilization, workload: WorkloadKind::StochasticExponential, loads: EXP_SAT },
    FigureSpec { id: 11, metric: Metric::Blocking, workload: WorkloadKind::RealTrace, loads: TRACE_LOADS },
    FigureSpec { id: 12, metric: Metric::Blocking, workload: WorkloadKind::StochasticUniform, loads: UNIFORM_LOADS },
    FigureSpec { id: 13, metric: Metric::Blocking, workload: WorkloadKind::StochasticExponential, loads: EXP_LOADS },
    FigureSpec { id: 14, metric: Metric::Latency, workload: WorkloadKind::RealTrace, loads: TRACE_LOADS },
    FigureSpec { id: 15, metric: Metric::Latency, workload: WorkloadKind::StochasticUniform, loads: UNIFORM_LOADS },
    FigureSpec { id: 16, metric: Metric::Latency, workload: WorkloadKind::StochasticExponential, loads: EXP_LOADS },
];

/// Looks up a figure by paper number.
pub fn figure(id: u8) -> &'static FigureSpec {
    ALL_FIGURES
        .iter()
        .find(|f| f.id == id)
        .unwrap_or_else(|| panic!("no figure {id}; valid ids are 2..=16"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fifteen_figures_present() {
        assert_eq!(ALL_FIGURES.len(), 15);
        for id in 2u8..=16 {
            assert_eq!(figure(id).id, id);
        }
    }

    #[test]
    fn metric_indices_match_response_vector() {
        use procsim_core::RunMetrics;
        assert_eq!(RunMetrics::RESPONSE_NAMES[Metric::Turnaround.index()], "turnaround");
        assert_eq!(RunMetrics::RESPONSE_NAMES[Metric::Service.index()], "service");
        assert_eq!(RunMetrics::RESPONSE_NAMES[Metric::Utilization.index()], "utilization");
        assert_eq!(RunMetrics::RESPONSE_NAMES[Metric::Blocking.index()], "blocking");
        assert_eq!(RunMetrics::RESPONSE_NAMES[Metric::Latency.index()], "latency");
    }

    #[test]
    #[should_panic(expected = "no figure")]
    fn unknown_figure_panics() {
        figure(1);
    }

    #[test]
    fn figure_groups_consistent() {
        // metrics appear in the paper's order: 2-4 turnaround, 5-7 service,
        // 8-10 utilization, 11-13 blocking, 14-16 latency; each triple is
        // (real, uniform, exponential)
        for (i, f) in ALL_FIGURES.iter().enumerate() {
            let triple = i / 3;
            let expect_metric = [
                Metric::Turnaround,
                Metric::Service,
                Metric::Utilization,
                Metric::Blocking,
                Metric::Latency,
            ][triple];
            assert_eq!(f.metric, expect_metric);
            let expect_wl = [
                WorkloadKind::RealTrace,
                WorkloadKind::StochasticUniform,
                WorkloadKind::StochasticExponential,
            ][i % 3];
            assert_eq!(f.workload, expect_wl);
        }
    }
}
