//! Figure execution: parallel sweep over (series × load), table + CSV
//! output.

use crate::figures::{FigureSpec, WorkloadKind, TRACE_RUNTIME_SCALE};
use procsim_core::{
    run_point, PointResult, ParagonModel, SchedulerKind, SideDist, SimConfig, StrategyKind,
    WorkloadSpec,
};
use std::io::Write;
use std::path::Path;

/// Experiment fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// Reduced job counts and replication caps — minutes per figure.
    Quick,
    /// The paper's protocol: 1000 measured jobs per run, replicate to the
    /// 95 % CI / 5 % relative-error criterion (capped at 20).
    Full,
}

impl RunMode {
    pub fn from_args() -> RunMode {
        if std::env::args().any(|a| a == "--full") {
            RunMode::Full
        } else {
            RunMode::Quick
        }
    }

    fn warmup(&self) -> usize {
        match self {
            RunMode::Quick => 100,
            RunMode::Full => 200,
        }
    }

    fn measured(&self) -> usize {
        match self {
            RunMode::Quick => 400,
            RunMode::Full => 1000,
        }
    }

    fn reps(&self) -> (usize, usize) {
        match self {
            RunMode::Quick => (3, 5),
            RunMode::Full => (5, 20),
        }
    }
}

/// One figure's regenerated data: a point per (series, load).
#[derive(Debug)]
pub struct FigureData {
    pub spec: &'static FigureSpec,
    /// Row-major: series outer, loads inner, matching
    /// [`FigureData::series_labels`].
    pub points: Vec<PointResult>,
    pub series_labels: Vec<String>,
}

/// The paper's six series.
fn series() -> Vec<(StrategyKind, SchedulerKind)> {
    let mut v = Vec::new();
    for sched in SchedulerKind::PAPER {
        for strat in StrategyKind::PAPER {
            v.push((strat, sched));
        }
    }
    v
}

fn workload_spec(kind: WorkloadKind, load: f64) -> WorkloadSpec {
    match kind {
        WorkloadKind::RealTrace => WorkloadSpec::SyntheticTrace {
            model: ParagonModel::default(),
            load,
            runtime_scale: TRACE_RUNTIME_SCALE,
        },
        WorkloadKind::StochasticUniform => WorkloadSpec::Stochastic {
            sides: SideDist::Uniform,
            load,
            num_mes: 5.0,
        },
        WorkloadKind::StochasticExponential => WorkloadSpec::Stochastic {
            sides: SideDist::Exponential,
            load,
            num_mes: 5.0,
        },
    }
}

/// Runs all points of a figure, parallelized over (series × load) with
/// scoped threads.
pub fn run_figure(spec: &'static FigureSpec, mode: RunMode, seed: u64) -> FigureData {
    let combos: Vec<(usize, StrategyKind, SchedulerKind, f64)> = {
        let mut v = Vec::new();
        let mut i = 0;
        for (strat, sched) in series() {
            for &load in spec.loads {
                v.push((i, strat, sched, load));
                i += 1;
            }
        }
        v
    };
    let (min_reps, max_reps) = mode.reps();
    let mut results: Vec<Option<PointResult>> = (0..combos.len()).map(|_| None).collect();

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(combos.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results_mx = std::sync::Mutex::new(&mut results);

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= combos.len() {
                    break;
                }
                let (slot, strat, sched, load) = combos[i];
                let mut cfg =
                    SimConfig::paper(strat, sched, workload_spec(spec.workload, load), seed);
                cfg.warmup_jobs = mode.warmup();
                cfg.measured_jobs = mode.measured();
                let point = run_point(&cfg, min_reps, max_reps);
                results_mx.lock().unwrap()[slot] = Some(point);
            });
        }
    });

    FigureData {
        spec,
        points: results.into_iter().map(|p| p.unwrap()).collect(),
        series_labels: series()
            .iter()
            .map(|(st, sc)| format!("{st}({sc})"))
            .collect(),
    }
}

impl FigureData {
    fn n_loads(&self) -> usize {
        self.spec.loads.len()
    }

    /// The figure's headline value at (series s, load l).
    pub fn value(&self, s: usize, l: usize) -> f64 {
        self.points[s * self.n_loads() + l].means[self.spec.metric.index()]
    }

    /// CI half-width of the headline value at (series s, load l).
    pub fn ci(&self, s: usize, l: usize) -> f64 {
        self.points[s * self.n_loads() + l].ci95[self.spec.metric.index()]
    }

    /// Renders the figure as a text table (loads as rows, series as
    /// columns), mirroring the paper's plotted curves.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}\n\n", self.spec.title()));
        out.push_str(&format!("{:>10}", "load"));
        for lbl in &self.series_labels {
            out.push_str(&format!(" {lbl:>16}"));
        }
        out.push('\n');
        for (l, load) in self.spec.loads.iter().enumerate() {
            out.push_str(&format!("{load:>10.5}"));
            for s in 0..self.series_labels.len() {
                out.push_str(&format!(" {:>16.2}", self.value(s, l)));
            }
            out.push('\n');
        }
        out
    }

    /// Writes `results/figNN.csv` with full metrics per point.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("fig{:02}.csv", self.spec.id));
        let mut f = std::fs::File::create(&path)?;
        writeln!(
            f,
            "figure,series,load,reps,turnaround,service,utilization,blocking,latency,fragments,\
             ci_turnaround,ci_service,ci_utilization,ci_blocking,ci_latency,ci_fragments"
        )?;
        for (s, lbl) in self.series_labels.iter().enumerate() {
            for (l, load) in self.spec.loads.iter().enumerate() {
                let p = &self.points[s * self.n_loads() + l];
                writeln!(
                    f,
                    "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                    self.spec.id,
                    lbl,
                    load,
                    p.replications,
                    p.means[0],
                    p.means[1],
                    p.means[2],
                    p.means[3],
                    p.means[4],
                    p.means[5],
                    p.ci95[0],
                    p.ci95[1],
                    p.ci95[2],
                    p.ci95[3],
                    p.ci95[4],
                    p.ci95[5],
                )?;
            }
        }
        Ok(path)
    }
}

/// Shared main() of the per-figure binaries: run, print, save CSV.
pub fn run_figure_main(id: u8) {
    let mode = RunMode::from_args();
    let spec = crate::figures::figure(id);
    eprintln!(
        "running figure {id} in {mode:?} mode ({} points)...",
        spec.loads.len() * 6
    );
    let t0 = std::time::Instant::now();
    let data = run_figure(spec, mode, 0xF16 + id as u64);
    println!("{}", data.table());
    if spec.loads.len() > 1 {
        let series: Vec<(String, Vec<f64>)> = data
            .series_labels
            .iter()
            .enumerate()
            .map(|(s, lbl)| {
                (
                    lbl.clone(),
                    (0..spec.loads.len()).map(|l| data.value(s, l)).collect(),
                )
            })
            .collect();
        println!(
            "{}",
            crate::plot::ascii_chart(&spec.title(), spec.loads, &series, 64, 18)
        );
    }
    match data.write_csv(Path::new("results")) {
        Ok(p) => eprintln!("wrote {} ({:.1}s)", p.display(), t0.elapsed().as_secs_f64()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_order_matches_paper_legend() {
        let s = series();
        assert_eq!(s.len(), 6);
        // FCFS block first, then SSD, GABL first within each
        assert_eq!(format!("{}({})", s[0].0, s[0].1), "GABL(FCFS)");
        assert_eq!(format!("{}({})", s[3].0, s[3].1), "GABL(SSD)");
        assert_eq!(format!("{}({})", s[5].0, s[5].1), "MBS(SSD)");
    }

    #[test]
    fn workload_spec_loads() {
        for kind in [
            WorkloadKind::RealTrace,
            WorkloadKind::StochasticUniform,
            WorkloadKind::StochasticExponential,
        ] {
            let w = workload_spec(kind, 0.003);
            assert!((w.load() - 0.003).abs() < 1e-12);
        }
    }
}
