//! Figure execution: every (series × load) point of a figure is
//! submitted to the shared worker pool as a batch of replications
//! (table + CSV output).

use crate::figures::{FigureSpec, WorkloadKind, TRACE_RUNTIME_SCALE};
use procsim_core::{
    derive_seed, pool, run_points_on, PointResult, ParagonModel, SchedulerKind, SideDist,
    SimConfig, StrategyKind, TopologyKind, WorkloadSpec,
};
use std::io::Write;
use std::path::Path;

/// Experiment fidelity and execution knobs.
///
/// Start from [`RunMode::quick`] or [`RunMode::full`] (the paper's
/// protocol) and adjust fields as needed; [`RunMode::from_args`] builds
/// one from a figure binary's command line. The `threads` knob only
/// changes wall-clock time, never results — see
/// [`procsim_core::run_points_on`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunMode {
    /// Completed jobs discarded as warmup per replication.
    pub warmup: usize,
    /// Completed jobs measured per replication.
    pub measured: usize,
    /// Minimum replications per point.
    pub min_reps: usize,
    /// Replication budget per point.
    pub max_reps: usize,
    /// Worker threads (`--threads N`); `None` defers to the global pool's
    /// size (`PROCSIM_THREADS` or the machine's available parallelism).
    pub threads: Option<usize>,
    /// Network topology (`--topology mesh|torus`); the paper's figures
    /// are mesh, the torus re-runs them under the §6 scenario (the CSV
    /// gains a `_torus` suffix so mesh results are never overwritten).
    pub topology: TopologyKind,
}

impl RunMode {
    /// Reduced job counts and replication caps — minutes per figure.
    pub fn quick() -> RunMode {
        RunMode {
            warmup: 100,
            measured: 400,
            min_reps: 3,
            max_reps: 5,
            threads: None,
            topology: TopologyKind::Mesh,
        }
    }

    /// The paper's protocol: 1000 measured jobs per run, replicate to the
    /// 95 % CI / 5 % relative-error criterion (capped at 20).
    pub fn full() -> RunMode {
        RunMode {
            warmup: 200,
            measured: 1000,
            min_reps: 5,
            max_reps: 20,
            threads: None,
            topology: TopologyKind::Mesh,
        }
    }

    /// Parses the figure-binary command line: `--full` selects the
    /// paper's protocol, `--threads N` pins the worker count,
    /// `--topology mesh|torus` selects the network.
    pub fn from_args() -> RunMode {
        let args: Vec<String> = std::env::args().collect();
        let mut mode = if args.iter().any(|a| a == "--full") {
            RunMode::full()
        } else {
            RunMode::quick()
        };
        if let Some(i) = args.iter().position(|a| a == "--threads") {
            let n = args
                .get(i + 1)
                .and_then(|s| s.parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| {
                    eprintln!("error: --threads needs a positive integer");
                    std::process::exit(2)
                });
            mode.threads = Some(n);
        }
        if let Some(i) = args.iter().position(|a| a == "--topology") {
            mode.topology = args
                .get(i + 1)
                .map(|s| {
                    s.parse::<TopologyKind>().unwrap_or_else(|e| {
                        eprintln!("error: {e}");
                        std::process::exit(2)
                    })
                })
                .unwrap_or_else(|| {
                    eprintln!("error: --topology needs a value (mesh or torus)");
                    std::process::exit(2)
                });
        }
        mode
    }

    /// Whether this mode is at (or beyond) paper-grade fidelity.
    pub fn is_full(&self) -> bool {
        self.measured >= RunMode::full().measured
    }

    /// Human-readable fidelity tag for progress messages.
    pub fn label(&self) -> &'static str {
        if self.is_full() {
            "full"
        } else {
            "quick"
        }
    }
}

/// One figure's regenerated data: a point per (series, load).
#[derive(Debug)]
pub struct FigureData {
    /// The figure this data regenerates.
    pub spec: &'static FigureSpec,
    /// Topology the figure was run on (mesh = the paper's protocol).
    pub topology: TopologyKind,
    /// Row-major: series outer, loads inner, matching
    /// [`FigureData::series_labels`].
    pub points: Vec<PointResult>,
    /// One label per series, in `points` row order.
    pub series_labels: Vec<String>,
}

/// The paper's six series.
fn series() -> Vec<(StrategyKind, SchedulerKind)> {
    let mut v = Vec::new();
    for sched in SchedulerKind::PAPER {
        for strat in StrategyKind::PAPER {
            v.push((strat, sched));
        }
    }
    v
}

fn workload_spec(kind: WorkloadKind, load: f64) -> WorkloadSpec {
    match kind {
        WorkloadKind::RealTrace => WorkloadSpec::SyntheticTrace {
            model: ParagonModel::default(),
            load,
            runtime_scale: TRACE_RUNTIME_SCALE,
        },
        WorkloadKind::StochasticUniform => WorkloadSpec::Stochastic {
            sides: SideDist::Uniform,
            load,
            num_mes: 5.0,
        },
        WorkloadKind::StochasticExponential => WorkloadSpec::Stochastic {
            sides: SideDist::Exponential,
            load,
            num_mes: 5.0,
        },
    }
}

/// Runs all points of a figure by submitting every (series × load)
/// combination — all replications of all points — to one shared worker
/// pool. Replications of different points interleave freely, so the pool
/// stays busy even while a slow saturated point converges.
///
/// Each point gets its own seed, derived from the figure seed by
/// [`derive_seed`], so no two points share replication random streams.
/// The result is bit-identical for any thread count.
pub fn run_figure(spec: &'static FigureSpec, mode: RunMode, seed: u64) -> FigureData {
    let cfgs: Vec<SimConfig> = series()
        .into_iter()
        .flat_map(|(strat, sched)| spec.loads.iter().map(move |&load| (strat, sched, load)))
        .enumerate()
        .map(|(slot, (strat, sched, load))| {
            let mut cfg = SimConfig::paper(
                strat,
                sched,
                workload_spec(spec.workload, load),
                derive_seed(seed, slot as u64),
            );
            cfg.topology = mode.topology;
            cfg.warmup_jobs = mode.warmup;
            cfg.measured_jobs = mode.measured;
            cfg
        })
        .collect();

    let pool = pool::pool_with(mode.threads);
    let points = run_points_on(&pool, &cfgs, mode.min_reps, mode.max_reps);

    FigureData {
        spec,
        topology: mode.topology,
        points,
        series_labels: series()
            .iter()
            .map(|(st, sc)| format!("{st}({sc})"))
            .collect(),
    }
}

impl FigureData {
    fn n_loads(&self) -> usize {
        self.spec.loads.len()
    }

    /// The figure's headline value at (series s, load l).
    pub fn value(&self, s: usize, l: usize) -> f64 {
        self.points[s * self.n_loads() + l].means[self.spec.metric.index()]
    }

    /// CI half-width of the headline value at (series s, load l).
    pub fn ci(&self, s: usize, l: usize) -> f64 {
        self.points[s * self.n_loads() + l].ci95[self.spec.metric.index()]
    }

    /// Renders the figure as a text table (loads as rows, series as
    /// columns), mirroring the paper's plotted curves.
    pub fn table(&self) -> String {
        let mut out = String::new();
        match self.topology {
            TopologyKind::Mesh => out.push_str(&format!("{}\n\n", self.spec.title())),
            topo => out.push_str(&format!("{} [{topo}]\n\n", self.spec.title())),
        }
        out.push_str(&format!("{:>10}", "load"));
        for lbl in &self.series_labels {
            out.push_str(&format!(" {lbl:>16}"));
        }
        out.push('\n');
        for (l, load) in self.spec.loads.iter().enumerate() {
            out.push_str(&format!("{load:>10.5}"));
            for s in 0..self.series_labels.len() {
                out.push_str(&format!(" {:>16.2}", self.value(s, l)));
            }
            out.push('\n');
        }
        out
    }

    /// Writes `results/figNN.csv` with full metrics per point — or
    /// `results/figNN_torus.csv` for a torus run, so the paper-protocol
    /// mesh results are never overwritten by a §6 re-run.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(match self.topology {
            TopologyKind::Mesh => format!("fig{:02}.csv", self.spec.id),
            topo => format!("fig{:02}_{topo}.csv", self.spec.id),
        });
        let mut f = std::fs::File::create(&path)?;
        writeln!(
            f,
            "figure,series,load,reps,turnaround,service,utilization,blocking,latency,fragments,\
             ci_turnaround,ci_service,ci_utilization,ci_blocking,ci_latency,ci_fragments"
        )?;
        for (s, lbl) in self.series_labels.iter().enumerate() {
            for (l, load) in self.spec.loads.iter().enumerate() {
                let p = &self.points[s * self.n_loads() + l];
                writeln!(
                    f,
                    "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                    self.spec.id,
                    lbl,
                    load,
                    p.replications,
                    p.means[0],
                    p.means[1],
                    p.means[2],
                    p.means[3],
                    p.means[4],
                    p.means[5],
                    p.ci95[0],
                    p.ci95[1],
                    p.ci95[2],
                    p.ci95[3],
                    p.ci95[4],
                    p.ci95[5],
                )?;
            }
        }
        Ok(path)
    }
}

/// Shared preamble of the ablation / future-work binaries: parses
/// `--full` and `--threads N`, sizes the global worker pool, and returns
/// whether paper-grade fidelity was requested. All the binary's points
/// then go through [`run_sweep`] as one batch.
pub fn ablation_args() -> bool {
    let mode = RunMode::from_args();
    if mode.topology != TopologyKind::Mesh {
        // the ablation/future-work bins build their own configs and
        // would silently run mesh regardless; refuse rather than mislabel
        eprintln!("error: this binary does not take --topology (its sweep fixes the topology)");
        std::process::exit(2);
    }
    if let Some(n) = mode.threads {
        if !procsim_core::pool::configure_global(n) {
            eprintln!("warning: global pool already sized; --threads {n} ignored");
        }
    }
    mode.is_full()
}

/// Shared engine of the ablation / future-work binaries: builds one
/// config per combo (`make_cfg` receives the combo's index, for seed
/// derivation à la [`derive_seed`]), runs the whole batch on the shared
/// worker pool, and hands each `(index, combo, result)` to `row` in
/// input order (print the table there; a blank group separator is
/// emitted every `group` rows).
pub fn run_sweep<T: Copy>(
    combos: &[T],
    group: usize,
    min_reps: usize,
    max_reps: usize,
    make_cfg: impl Fn(usize, T) -> SimConfig,
    mut row: impl FnMut(T, &PointResult),
) {
    let cfgs: Vec<SimConfig> = combos
        .iter()
        .enumerate()
        .map(|(i, &combo)| make_cfg(i, combo))
        .collect();
    let points = procsim_core::run_points(&cfgs, min_reps, max_reps);
    for (i, (&combo, p)) in combos.iter().zip(&points).enumerate() {
        row(combo, p);
        if group > 0 && (i + 1) % group == 0 {
            println!();
        }
    }
}

/// Shared main() of the per-figure binaries: run, print, save CSV.
///
/// Recognized flags: `--full` (paper-grade fidelity), `--threads N`
/// (worker-pool size; defaults to `PROCSIM_THREADS` or all cores),
/// `--topology mesh|torus` (the §6 torus re-run of a figure; its CSV is
/// suffixed `_torus` so the mesh results survive), and `--golden`
/// (pinned reduced fidelity; the CSV goes to `results/golden/` — the
/// regeneration protocol of the checked-in figure goldens the campaign
/// scenarios under `scenarios/` must byte-match, see `docs/CAMPAIGNS.md`).
pub fn run_figure_main(id: u8) {
    let mut mode = RunMode::from_args();
    let golden = std::env::args().any(|a| a == "--golden");
    if golden {
        // the fidelity of the checked-in golden CSVs: small enough for a
        // CI step, deterministic because min_reps == max_reps (mirrors
        // mesh_vs_torus --golden)
        mode.warmup = 30;
        mode.measured = 120;
        mode.min_reps = 2;
        mode.max_reps = 2;
    }
    if let Some(n) = mode.threads {
        // size the process-wide pool so every figure of this run (e.g.
        // all_figures) shares it; run_figure falls back to a dedicated
        // pool only if the global one was already sized differently
        let _ = procsim_core::pool::configure_global(n);
    }
    let spec = crate::figures::figure(id);
    eprintln!(
        "running figure {id} in {} mode on the {} ({} points, {} worker threads)...",
        mode.label(),
        mode.topology,
        spec.loads.len() * 6,
        mode.threads.unwrap_or_else(pool::default_threads)
    );
    let t0 = std::time::Instant::now();
    let data = run_figure(spec, mode, 0xF16 + id as u64);
    println!("{}", data.table());
    if spec.loads.len() > 1 {
        let series: Vec<(String, Vec<f64>)> = data
            .series_labels
            .iter()
            .enumerate()
            .map(|(s, lbl)| {
                (
                    lbl.clone(),
                    (0..spec.loads.len()).map(|l| data.value(s, l)).collect(),
                )
            })
            .collect();
        println!(
            "{}",
            crate::plot::ascii_chart(&spec.title(), spec.loads, &series, 64, 18)
        );
    }
    let out_dir = if golden {
        Path::new("results/golden")
    } else {
        Path::new("results")
    };
    match data.write_csv(out_dir) {
        Ok(p) => eprintln!("wrote {} ({:.1}s)", p.display(), t0.elapsed().as_secs_f64()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Metric;

    #[test]
    fn series_order_matches_paper_legend() {
        let s = series();
        assert_eq!(s.len(), 6);
        // FCFS block first, then SSD, GABL first within each
        assert_eq!(format!("{}({})", s[0].0, s[0].1), "GABL(FCFS)");
        assert_eq!(format!("{}({})", s[3].0, s[3].1), "GABL(SSD)");
        assert_eq!(format!("{}({})", s[5].0, s[5].1), "MBS(SSD)");
    }

    #[test]
    fn figure_data_is_thread_count_invariant() {
        // A miniature figure: the full 6-series sweep at one load, with
        // job counts small enough for a unit test. The rendered table and
        // every point's statistics must be byte-identical whatever the
        // worker-pool size.
        static TINY: FigureSpec = FigureSpec {
            id: 99,
            metric: Metric::Turnaround,
            workload: WorkloadKind::StochasticUniform,
            loads: &[0.001],
        };
        let mut mode = RunMode::quick();
        mode.warmup = 5;
        mode.measured = 40;
        mode.min_reps = 2;
        mode.max_reps = 2;
        mode.threads = Some(1);
        let a = run_figure(&TINY, mode, 0xBEEF);
        mode.threads = Some(4);
        let b = run_figure(&TINY, mode, 0xBEEF);
        assert_eq!(a.table(), b.table());
        assert_eq!(a.points.len(), b.points.len());
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.means, pb.means);
            assert_eq!(pa.ci95, pb.ci95);
            assert_eq!(pa.replications, pb.replications);
            assert_eq!(pa.stop, pb.stop);
        }
    }

    #[test]
    fn figure_points_have_distinct_seeds() {
        // Two series at the same load must not produce correlated streams:
        // GABL and MBS columns of the tiny figure above would be identical
        // per-replication workloads if the per-point seed derivation
        // regressed to sharing the figure seed.
        static TINY: FigureSpec = FigureSpec {
            id: 98,
            metric: Metric::Turnaround,
            workload: WorkloadKind::StochasticUniform,
            loads: &[0.001, 0.002],
        };
        let mut mode = RunMode::quick();
        mode.warmup = 5;
        mode.measured = 40;
        mode.min_reps = 2;
        mode.max_reps = 2;
        let data = run_figure(&TINY, mode, 7);
        // same strategy, same scheduler block, different loads -> the
        // loads differ, so nothing to compare there; instead check the
        // same load under FCFS vs SSD at light load (queue rarely busy,
        // so identical streams would give identical means)
        let n_loads = TINY.loads.len();
        let p_fcfs = &data.points[n_loads]; // series 1 = Paging(FCFS), load 0
        let p_ssd = &data.points[4 * n_loads]; // series 4 = Paging(SSD), load 0
        assert_eq!(p_fcfs.load, p_ssd.load);
        assert_ne!(
            p_fcfs.means, p_ssd.means,
            "distinct points produced identical statistics: shared seed streams?"
        );
    }

    #[test]
    fn run_mode_flags() {
        let q = RunMode::quick();
        let f = RunMode::full();
        assert!(q.measured < f.measured);
        assert_eq!(f.measured, 1000, "paper protocol: 1000 measured jobs");
        assert_eq!((f.min_reps, f.max_reps), (5, 20));
        assert_eq!(q.threads, None);
        assert_eq!(q.topology, TopologyKind::Mesh, "paper protocol is mesh");
        assert_eq!(q.label(), "quick");
        assert_eq!(f.label(), "full");
    }

    #[test]
    fn torus_figure_is_labelled_and_separately_named() {
        static TINY: FigureSpec = FigureSpec {
            id: 97,
            metric: Metric::Turnaround,
            workload: WorkloadKind::StochasticUniform,
            loads: &[0.001],
        };
        let mut mode = RunMode::quick();
        mode.warmup = 5;
        mode.measured = 40;
        mode.min_reps = 2;
        mode.max_reps = 2;
        mode.topology = TopologyKind::Torus;
        let data = run_figure(&TINY, mode, 0xF16);
        assert!(data.table().contains("[torus]"), "{}", data.table());
        // the torus CSV must not clobber the mesh figure's results
        let dir = std::env::temp_dir().join("procsim_torus_fig_test");
        let path = data.write_csv(&dir).unwrap();
        assert!(path.ends_with("fig97_torus.csv"), "{}", path.display());
        mode.topology = TopologyKind::Mesh;
        let mesh = run_figure(&TINY, mode, 0xF16);
        assert!(!mesh.table().contains("[mesh]"), "mesh is the unmarked default");
        assert_ne!(
            data.points[0].means, mesh.points[0].means,
            "same seeds, different topology must change the physics"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn workload_spec_loads() {
        for kind in [
            WorkloadKind::RealTrace,
            WorkloadKind::StochasticUniform,
            WorkloadKind::StochasticExponential,
        ] {
            let w = workload_spec(kind, 0.003);
            assert!((w.load() - 0.003).abs() < 1e-12);
        }
    }
}
