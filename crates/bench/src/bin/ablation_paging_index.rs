//! Ablation: the four Paging page-indexing schemes.
//!
//! Probes the paper's §3 claim (citing Lo et al.) that the indexing
//! scheme "has only a slight impact on the performance of Paging", which
//! is why the paper uses row-major only.

use procsim_bench::{ablation_args, run_sweep};
use procsim_core::{
    derive_seed, PageIndexing, SchedulerKind, SideDist, SimConfig, StrategyKind, WorkloadSpec,
};

fn main() {
    let full = ablation_args();
    let (measured, reps) = if full { (1000, 10) } else { (400, 4) };
    let combos: Vec<(f64, PageIndexing)> = [0.0004, 0.0008, 0.0012]
        .iter()
        .flat_map(|&load| PageIndexing::ALL.iter().map(move |&ix| (load, ix)))
        .collect();
    println!("Paging(0) indexing-scheme ablation, uniform stochastic workload, FCFS\n");
    println!(
        "{:<22} {:>10} {:>12} {:>10} {:>10} {:>10}",
        "indexing", "load", "turnaround", "service", "latency", "blocking"
    );
    run_sweep(
        &combos,
        PageIndexing::ALL.len(),
        3,
        reps,
        |i, (load, indexing)| {
            let mut cfg = SimConfig::paper(
                StrategyKind::Paging {
                    size_index: 0,
                    indexing,
                },
                SchedulerKind::Fcfs,
                WorkloadSpec::Stochastic {
                    sides: SideDist::Uniform,
                    load,
                    num_mes: 5.0,
                },
                derive_seed(77, i as u64),
            );
            cfg.warmup_jobs = 100;
            cfg.measured_jobs = measured;
            cfg
        },
        |(load, indexing), p| {
            println!(
                "{:<22} {:>10.4} {:>12.1} {:>10.1} {:>10.1} {:>10.1}",
                indexing.to_string(),
                load,
                p.turnaround(),
                p.service(),
                p.latency(),
                p.blocking()
            );
        },
    );
}
