//! Figure-style validation of the synthetic Paragon model against a real
//! replayed trace: sweep offered load on the checked-in SWF sample
//! (`results/traces/sdsc_sample.swf`) and overlay the paper's stochastic
//! trace model (`ParagonModel` via `WorkloadSpec::SyntheticTrace`, a
//! fresh statistical draw per replication) at the *same* offered loads.
//!
//! If the model is a faithful stand-in, the two curve families should
//! track each other per strategy — same ordering, same knee — which is
//! exactly the calibration claim DESIGN.md §3 makes. CSV lands in
//! `results/trace_vs_synthetic.csv`.
//!
//! ```text
//! cargo run --release -p procsim_bench --bin trace_vs_synthetic [-- --full --threads N]
//! ```

use procsim_bench::{ascii_chart, RunMode};
use procsim_core::{
    derive_seed, pool, run_points_on, ParagonModel, SchedulerKind, SimConfig, StrategyKind,
    TraceWorkload, WorkloadSpec,
};
use std::io::Write;
use std::sync::Arc;

/// Offered-load sweep (fraction of machine capacity in trace time):
/// light load through past the native 1.0 point.
const RHOS: &[f64] = &[0.3, 0.5, 0.7, 0.9, 1.1];

/// Seconds of trace runtime per message, as everywhere in the harness.
const RUNTIME_SCALE: f64 = 360.0;

fn main() {
    let mut mode = RunMode::from_args();
    if let Some(n) = mode.threads {
        let _ = pool::configure_global(n);
    }

    // the checked-in sample, resolved relative to this crate so the
    // binary works from any working directory
    let sample_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/traces/sdsc_sample.swf"
    );
    let trace = Arc::new(
        TraceWorkload::open(sample_path)
            .unwrap_or_else(|e| panic!("cannot open {sample_path}: {e} (run `procsim gen-trace`?)")),
    );
    // a replication consumes at most one pass over the trace: cap the
    // per-replication job budget to the sample's length (--full would
    // otherwise silently measure fewer jobs than the paper protocol)
    let (warmup, measured) = trace.capped_budget(mode.warmup, mode.measured);
    if (warmup, measured) != (mode.warmup, mode.measured) {
        eprintln!(
            "note: sample has {} jobs; capping to {measured} measured after {warmup} warmup per replication",
            trace.len(),
        );
    }
    mode.warmup = warmup;
    mode.measured = measured;

    // reference draw of the model, used only to convert offered load ->
    // the arrival-rate load SyntheticTrace expects (same conversion the
    // replay side does internally, so both sides target the same rho)
    let reference = TraceWorkload::new(
        ParagonModel::default().generate(&mut desim::SimRng::new(0xCA11)),
    )
    .expect("model trace");
    let machine = 16u32 * 22;

    let strategies = StrategyKind::PAPER;
    let sources = ["trace", "model"];
    // trace series first, then model series, so the chart glyphs line up
    // as G/P/M = replay and g/p/m = model
    let series_labels: Vec<String> = sources
        .iter()
        .flat_map(|src| strategies.iter().map(move |s| format!("{s}/{src}")))
        .collect();

    // row-major (series outer, loads inner), one derived seed per point
    let cfgs: Vec<SimConfig> = sources
        .iter()
        .flat_map(|&src| strategies.iter().map(move |&strat| (strat, src)))
        .flat_map(|combo| RHOS.iter().map(move |&rho| (combo, rho)))
        .enumerate()
        .map(|(slot, ((strat, src), rho))| {
            let workload = match src {
                "trace" => WorkloadSpec::Trace {
                    trace: trace.clone(),
                    load: rho,
                    runtime_scale: RUNTIME_SCALE,
                },
                _ => WorkloadSpec::SyntheticTrace {
                    model: ParagonModel::default(),
                    load: reference.arrival_load(machine, rho),
                    runtime_scale: RUNTIME_SCALE,
                },
            };
            let mut cfg = SimConfig::paper(
                strat,
                SchedulerKind::Fcfs,
                workload,
                derive_seed(0x72ACE, slot as u64),
            );
            cfg.warmup_jobs = mode.warmup;
            cfg.measured_jobs = mode.measured;
            cfg
        })
        .collect();

    eprintln!(
        "trace_vs_synthetic: {} points ({} series x {} loads), {} mode...",
        cfgs.len(),
        series_labels.len(),
        RHOS.len(),
        mode.label()
    );
    let t0 = std::time::Instant::now();
    let pool = pool::pool_with(mode.threads);
    let points = run_points_on(&pool, &cfgs, mode.min_reps, mode.max_reps);

    // table: loads as rows, series as columns, headline = turnaround
    println!("Replayed SWF sample vs synthetic Paragon model, turnaround vs offered load, FCFS\n");
    print!("{:>8}", "rho");
    for lbl in &series_labels {
        print!(" {lbl:>18}");
    }
    println!();
    for (l, rho) in RHOS.iter().enumerate() {
        print!("{rho:>8.2}");
        for s in 0..series_labels.len() {
            print!(" {:>18.1}", points[s * RHOS.len() + l].turnaround());
        }
        println!();
    }

    let chart_series: Vec<(String, Vec<f64>)> = series_labels
        .iter()
        .enumerate()
        .map(|(s, lbl)| {
            (
                lbl.clone(),
                (0..RHOS.len())
                    .map(|l| points[s * RHOS.len() + l].turnaround())
                    .collect(),
            )
        })
        .collect();
    println!(
        "\n{}",
        ascii_chart(
            "turnaround vs offered load (trace glyphs G/P/M, model g/p/m)",
            RHOS,
            &chart_series,
            64,
            18
        )
    );

    // anchored like the input: the CSV lands in the repo's results/
    // whatever the working directory
    let results_dir = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"));
    let csv = results_dir.join("trace_vs_synthetic.csv");
    let write = || -> std::io::Result<()> {
        std::fs::create_dir_all(results_dir)?;
        let mut f = std::fs::File::create(&csv)?;
        writeln!(
            f,
            "series,source,rho,reps,turnaround,service,utilization,blocking,latency,fragments"
        )?;
        for (s, lbl) in series_labels.iter().enumerate() {
            let (strat, src) = lbl.split_once('/').unwrap();
            for (l, rho) in RHOS.iter().enumerate() {
                let p = &points[s * RHOS.len() + l];
                writeln!(
                    f,
                    "{},{},{},{},{},{},{},{},{},{}",
                    strat,
                    src,
                    rho,
                    p.replications,
                    p.means[0],
                    p.means[1],
                    p.means[2],
                    p.means[3],
                    p.means[4],
                    p.means[5],
                )?;
            }
        }
        Ok(())
    };
    match write() {
        Ok(()) => eprintln!("wrote {} ({:.1}s)", csv.display(), t0.elapsed().as_secs_f64()),
        Err(e) => eprintln!("CSV write failed: {e}"),
    }
}
