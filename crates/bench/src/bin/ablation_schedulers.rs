//! Ablation: scheduling policies beyond the paper's FCFS/SSD.
//!
//! The paper's §4 cites Krueger et al.: "job scheduling is more important
//! than processor allocation". This sweep quantifies that for our
//! substrate: the spread across schedulers at fixed allocation strategy
//! vs the spread across strategies at fixed scheduler.

use procsim_core::{run_point, SchedulerKind, SideDist, SimConfig, StrategyKind, WorkloadSpec};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (measured, reps) = if full { (1000, 10) } else { (400, 4) };
    let scheds = [
        SchedulerKind::Fcfs,
        SchedulerKind::Ssd,
        SchedulerKind::SjfArea,
        SchedulerKind::LjfArea,
        SchedulerKind::FcfsWindow(4),
        SchedulerKind::EasyBackfill,
    ];
    println!("scheduler ablation, GABL allocation, uniform stochastic workload\n");
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>12}",
        "scheduler", "load", "turnaround", "wait", "utilization"
    );
    for load in [0.0006, 0.0012] {
        for sched in scheds {
            let mut cfg = SimConfig::paper(
                StrategyKind::Gabl,
                sched,
                WorkloadSpec::Stochastic {
                    sides: SideDist::Uniform,
                    load,
                    num_mes: 5.0,
                },
                92,
            );
            cfg.warmup_jobs = 100;
            cfg.measured_jobs = measured;
            let p = run_point(&cfg, 3, reps);
            println!(
                "{:<10} {:>10.4} {:>12.1} {:>10.1} {:>12.3}",
                sched.to_string(),
                load,
                p.turnaround(),
                p.turnaround() - p.service(),
                p.utilization()
            );
        }
        println!();
    }
    println!("LJF illustrates the anti-policy; SSD/SJF/EASY all attack FCFS head blocking.");
}
