//! Ablation: scheduling policies beyond the paper's FCFS/SSD.
//!
//! The paper's §4 cites Krueger et al.: "job scheduling is more important
//! than processor allocation". This sweep quantifies that for our
//! substrate: the spread across schedulers at fixed allocation strategy
//! vs the spread across strategies at fixed scheduler.

use procsim_bench::{ablation_args, run_sweep};
use procsim_core::{
    derive_seed, SchedulerKind, SideDist, SimConfig, StrategyKind, WorkloadSpec,
};

fn main() {
    let full = ablation_args();
    let (measured, reps) = if full { (1000, 10) } else { (400, 4) };
    let scheds = [
        SchedulerKind::Fcfs,
        SchedulerKind::Ssd,
        SchedulerKind::SjfArea,
        SchedulerKind::LjfArea,
        SchedulerKind::FcfsWindow(4),
        SchedulerKind::EasyBackfill,
    ];
    let combos: Vec<(f64, SchedulerKind)> = [0.0006, 0.0012]
        .iter()
        .flat_map(|&load| scheds.iter().map(move |&sched| (load, sched)))
        .collect();
    println!("scheduler ablation, GABL allocation, uniform stochastic workload\n");
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>12}",
        "scheduler", "load", "turnaround", "wait", "utilization"
    );
    run_sweep(
        &combos,
        scheds.len(),
        3,
        reps,
        |i, (load, sched)| {
            let mut cfg = SimConfig::paper(
                StrategyKind::Gabl,
                sched,
                WorkloadSpec::Stochastic {
                    sides: SideDist::Uniform,
                    load,
                    num_mes: 5.0,
                },
                derive_seed(92, i as u64),
            );
            cfg.warmup_jobs = 100;
            cfg.measured_jobs = measured;
            cfg
        },
        |(load, sched), p| {
            println!(
                "{:<10} {:>10.4} {:>12.1} {:>10.1} {:>12.3}",
                sched.to_string(),
                load,
                p.turnaround(),
                p.turnaround() - p.service(),
                p.utilization()
            );
        },
    );
    println!("LJF illustrates the anti-policy; SSD/SJF/EASY all attack FCFS head blocking.");
}
