//! Ablation: communication patterns.
//!
//! The paper uses all-to-all because it "causes much message collision
//! and is known as the weak point for non-contiguous allocation" (§5).
//! This ablation quantifies that: under gentler patterns (ring,
//! near-neighbour) the gap between GABL and the scattered strategies
//! should shrink, because contiguity matters less when traffic stays
//! local or light.

use procsim_bench::{ablation_args, run_sweep};
use procsim_core::{
    derive_seed, PageIndexing, Pattern, SchedulerKind, SideDist, SimConfig, StrategyKind,
    WorkloadSpec,
};

fn main() {
    let full = ablation_args();
    let (measured, reps) = if full { (1000, 10) } else { (300, 3) };
    let kinds = [
        StrategyKind::Gabl,
        StrategyKind::Paging {
            size_index: 0,
            indexing: PageIndexing::RowMajor,
        },
        StrategyKind::Random,
    ];
    let combos: Vec<(Pattern, StrategyKind)> = Pattern::ALL
        .iter()
        .flat_map(|&pattern| kinds.iter().map(move |&kind| (pattern, kind)))
        .collect();
    println!("communication-pattern ablation, uniform stochastic, load 0.0008, FCFS\n");
    println!(
        "{:<16} {:<12} {:>12} {:>10} {:>10}",
        "pattern", "strategy", "turnaround", "service", "latency"
    );
    run_sweep(
        &combos,
        kinds.len(),
        3,
        reps,
        |i, (pattern, kind)| {
            let mut cfg = SimConfig::paper(
                kind,
                SchedulerKind::Fcfs,
                WorkloadSpec::Stochastic {
                    sides: SideDist::Uniform,
                    load: 0.0008,
                    num_mes: 5.0,
                },
                derive_seed(80, i as u64),
            );
            cfg.pattern = pattern;
            cfg.warmup_jobs = 80;
            cfg.measured_jobs = measured;
            cfg
        },
        |(pattern, kind), p| {
            println!(
                "{:<16} {:<12} {:>12.1} {:>10.1} {:>10.1}",
                pattern.to_string(),
                kind.to_string(),
                p.turnaround(),
                p.service(),
                p.latency()
            );
        },
    );
}
