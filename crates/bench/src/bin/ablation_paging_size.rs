//! Ablation: Paging page size (`size_index` 0–3).
//!
//! Probes the paper's §3 trade-off: "contiguity can be increased by
//! increasing size_index; however, there is internal processor
//! fragmentation for size_index >= 1, and it increases with size_index".
//! Larger pages should show better latency (more contiguity) but worse
//! turnaround/utilization at load (wasted processors).

use procsim_bench::{ablation_args, run_sweep};
use procsim_core::{
    derive_seed, PageIndexing, SchedulerKind, SideDist, SimConfig, StrategyKind, WorkloadSpec,
};

fn main() {
    let full = ablation_args();
    let (measured, reps) = if full { (1000, 10) } else { (400, 4) };
    let combos: Vec<(f64, u8)> = [0.0004, 0.0008]
        .iter()
        .flat_map(|&load| (0..=3u8).map(move |k| (load, k)))
        .collect();
    println!("Paging page-size ablation (pages 2^k x 2^k), uniform stochastic, FCFS\n");
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>10} {:>12}",
        "paging", "load", "turnaround", "latency", "blocking", "utilization"
    );
    run_sweep(
        &combos,
        4, // one group per load: size_index 0..=3
        3,
        reps,
        |i, (load, k)| {
            let mut cfg = SimConfig::paper(
                StrategyKind::Paging {
                    size_index: k,
                    indexing: PageIndexing::RowMajor,
                },
                SchedulerKind::Fcfs,
                WorkloadSpec::Stochastic {
                    sides: SideDist::Uniform,
                    load,
                    num_mes: 5.0,
                },
                derive_seed(78, i as u64),
            );
            cfg.warmup_jobs = 100;
            cfg.measured_jobs = measured;
            cfg
        },
        |(load, k), p| {
            println!(
                "Paging({k})  {:>10.4} {:>12.1} {:>10.1} {:>10.1} {:>12.3}",
                load,
                p.turnaround(),
                p.latency(),
                p.blocking(),
                p.utilization()
            );
        },
    );
}
