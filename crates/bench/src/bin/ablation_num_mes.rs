//! Ablation: sensitivity to the mean message count `num_mes`.
//!
//! The paper fixes `num_mes = 5`; this sweep shows how service time and
//! the GABL-vs-others gap scale with per-processor communication volume
//! (more messages -> contiguity matters more).

use procsim_bench::{ablation_args, run_sweep};
use procsim_core::{
    derive_seed, PageIndexing, SchedulerKind, SideDist, SimConfig, StrategyKind, WorkloadSpec,
};

fn main() {
    let full = ablation_args();
    let (measured, reps) = if full { (1000, 10) } else { (300, 3) };
    let kinds = [
        StrategyKind::Gabl,
        StrategyKind::Paging {
            size_index: 0,
            indexing: PageIndexing::RowMajor,
        },
        StrategyKind::Mbs,
    ];
    let combos: Vec<(f64, StrategyKind)> = [1.0, 2.0, 5.0, 10.0, 20.0]
        .iter()
        .flat_map(|&num_mes| kinds.iter().map(move |&kind| (num_mes, kind)))
        .collect();
    println!("num_mes sensitivity, uniform stochastic, load 0.0004, FCFS\n");
    println!(
        "{:<9} {:<12} {:>12} {:>10} {:>10}",
        "num_mes", "strategy", "turnaround", "service", "latency"
    );
    run_sweep(
        &combos,
        kinds.len(),
        3,
        reps,
        |i, (num_mes, kind)| {
            let mut cfg = SimConfig::paper(
                kind,
                SchedulerKind::Fcfs,
                WorkloadSpec::Stochastic {
                    sides: SideDist::Uniform,
                    load: 0.0004,
                    num_mes,
                },
                derive_seed(81, i as u64),
            );
            cfg.warmup_jobs = 80;
            cfg.measured_jobs = measured;
            cfg
        },
        |(num_mes, kind), p| {
            println!(
                "{:<9} {:<12} {:>12.1} {:>10.1} {:>10.1}",
                num_mes,
                kind.to_string(),
                p.turnaround(),
                p.service(),
                p.latency()
            );
        },
    );
}
