//! Ablation: sensitivity to the mean message count `num_mes`.
//!
//! The paper fixes `num_mes = 5`; this sweep shows how service time and
//! the GABL-vs-others gap scale with per-processor communication volume
//! (more messages -> contiguity matters more).

use procsim_core::{
    run_point, PageIndexing, SchedulerKind, SideDist, SimConfig, StrategyKind, WorkloadSpec,
};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (measured, reps) = if full { (1000, 10) } else { (300, 3) };
    println!("num_mes sensitivity, uniform stochastic, load 0.0004, FCFS\n");
    println!(
        "{:<9} {:<12} {:>12} {:>10} {:>10}",
        "num_mes", "strategy", "turnaround", "service", "latency"
    );
    for num_mes in [1.0, 2.0, 5.0, 10.0, 20.0] {
        for kind in [
            StrategyKind::Gabl,
            StrategyKind::Paging {
                size_index: 0,
                indexing: PageIndexing::RowMajor,
            },
            StrategyKind::Mbs,
        ] {
            let mut cfg = SimConfig::paper(
                kind,
                SchedulerKind::Fcfs,
                WorkloadSpec::Stochastic {
                    sides: SideDist::Uniform,
                    load: 0.0004,
                    num_mes,
                },
                81,
            );
            cfg.warmup_jobs = 80;
            cfg.measured_jobs = measured;
            let p = run_point(&cfg, 3, reps);
            println!(
                "{:<9} {:<12} {:>12.1} {:>10.1} {:>10.1}",
                num_mes,
                kind.to_string(),
                p.turnaround(),
                p.service(),
                p.latency()
            );
        }
        println!();
    }
}
