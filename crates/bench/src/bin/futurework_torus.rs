//! Future work (paper §6): "assess the performance of the allocation
//! strategies on other common multicomputer networks, such as torus
//! networks".
//!
//! Runs the paper's three strategies on the 16×22 **torus** (wraparound
//! links, minimal dimension-ordered routing, dateline virtual channels)
//! and prints them side by side with the mesh results. Expected physics:
//! wraparound halves worst-case distances, so the penalty of a dispersed
//! allocation shrinks and the strategies move closer together — the
//! contiguity-preserving strategy matters most on the mesh.

use procsim_core::{
    run_point, PageIndexing, SchedulerKind, SideDist, SimConfig, StrategyKind, TopologyKind,
    WorkloadSpec,
};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (measured, reps) = if full { (1000, 10) } else { (400, 4) };
    println!("mesh vs torus, uniform stochastic workload, FCFS\n");
    println!(
        "{:<8} {:<12} {:>10} {:>12} {:>10} {:>10} {:>10}",
        "topo", "strategy", "load", "turnaround", "service", "latency", "blocking"
    );
    for load in [0.0004, 0.0008, 0.0012] {
        for topology in [TopologyKind::Mesh, TopologyKind::Torus] {
            for kind in [
                StrategyKind::Gabl,
                StrategyKind::Paging {
                    size_index: 0,
                    indexing: PageIndexing::RowMajor,
                },
                StrategyKind::Mbs,
            ] {
                let mut cfg = SimConfig::paper(
                    kind,
                    SchedulerKind::Fcfs,
                    WorkloadSpec::Stochastic {
                        sides: SideDist::Uniform,
                        load,
                        num_mes: 5.0,
                    },
                    90,
                );
                cfg.topology = topology;
                cfg.warmup_jobs = 100;
                cfg.measured_jobs = measured;
                let p = run_point(&cfg, 3, reps);
                println!(
                    "{:<8} {:<12} {:>10.4} {:>12.1} {:>10.1} {:>10.1} {:>10.1}",
                    format!("{topology:?}"),
                    kind.to_string(),
                    load,
                    p.turnaround(),
                    p.service(),
                    p.latency(),
                    p.blocking()
                );
            }
        }
        println!();
    }
}
