//! Future work (paper §6): "assess the performance of the allocation
//! strategies on other common multicomputer networks, such as torus
//! networks".
//!
//! Runs the paper's three strategies on the 16×22 **torus** (wraparound
//! links, minimal dimension-ordered routing, dateline virtual channels)
//! and prints them side by side with the mesh results. Expected physics:
//! wraparound halves worst-case distances, so the penalty of a dispersed
//! allocation shrinks and the strategies move closer together — the
//! contiguity-preserving strategy matters most on the mesh.

use procsim_bench::{ablation_args, run_sweep};
use procsim_core::{
    derive_seed, PageIndexing, SchedulerKind, SideDist, SimConfig, StrategyKind, TopologyKind,
    WorkloadSpec,
};

fn main() {
    let full = ablation_args();
    let (measured, reps) = if full { (1000, 10) } else { (400, 4) };
    let kinds = [
        StrategyKind::Gabl,
        StrategyKind::Paging {
            size_index: 0,
            indexing: PageIndexing::RowMajor,
        },
        StrategyKind::Mbs,
    ];
    let mut combos: Vec<(f64, TopologyKind, StrategyKind)> = Vec::new();
    for load in [0.0004, 0.0008, 0.0012] {
        for topo in [TopologyKind::Mesh, TopologyKind::Torus] {
            for kind in kinds {
                combos.push((load, topo, kind));
            }
        }
    }
    println!("mesh vs torus, uniform stochastic workload, FCFS\n");
    println!(
        "{:<8} {:<12} {:>10} {:>12} {:>10} {:>10} {:>10}",
        "topo", "strategy", "load", "turnaround", "service", "latency", "blocking"
    );
    run_sweep(
        &combos,
        2 * kinds.len(), // one group per load: {mesh, torus} × kinds
        3,
        reps,
        |i, (load, topology, kind)| {
            let mut cfg = SimConfig::paper(
                kind,
                SchedulerKind::Fcfs,
                WorkloadSpec::Stochastic {
                    sides: SideDist::Uniform,
                    load,
                    num_mes: 5.0,
                },
                derive_seed(90, i as u64),
            );
            cfg.topology = topology;
            cfg.warmup_jobs = 100;
            cfg.measured_jobs = measured;
            cfg
        },
        |(load, topology, kind), p| {
            println!(
                "{:<8} {:<12} {:>10.4} {:>12.1} {:>10.1} {:>10.1} {:>10.1}",
                format!("{topology:?}"),
                kind.to_string(),
                load,
                p.turnaround(),
                p.service(),
                p.latency(),
                p.blocking()
            );
        },
    );
}
