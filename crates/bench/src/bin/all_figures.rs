//! Regenerates every figure of the paper (2-16), writing tables to stdout
//! and CSVs under results/. Pass --full for paper-grade replications.

use procsim_bench::{run_figure, RunMode, ALL_FIGURES};
use std::path::Path;

fn main() {
    let mode = RunMode::from_args();
    let t0 = std::time::Instant::now();
    for spec in &ALL_FIGURES {
        eprintln!("figure {} ...", spec.id);
        let data = run_figure(spec, mode, 0xF16 + spec.id as u64);
        println!("{}", data.table());
        if let Ok(p) = data.write_csv(Path::new("results")) {
            eprintln!("  wrote {}", p.display());
        }
    }
    eprintln!("all figures done in {:.1}s", t0.elapsed().as_secs_f64());
}
