//! Future work (paper §6): "implement the allocation strategies based on
//! other real workload traces from different parallel machines".
//!
//! Compares the strategy ranking under the paper's Paragon-style trace
//! (sizes favouring non-powers-of-two) against a LANL CM-5-style trace
//! (all sizes powers of two — the CM-5 scheduler only offered 32/64/128/
//! 256-node partitions). The paper attributes MBS's trace behaviour to
//! the power-of-two question; this experiment isolates exactly that
//! variable while holding everything else fixed.

use procsim_bench::{ablation_args, run_sweep};
use procsim_core::{
    derive_seed, PageIndexing, SchedulerKind, SimConfig, StrategyKind, WorkloadSpec,
};
use std::sync::Arc;
use workload::{factor_for_load, trace_to_jobs, Cm5Model, ParagonModel};

fn main() {
    let full = ablation_args();
    let (measured, reps) = if full { (1000, 10) } else { (400, 4) };
    let load = 0.001;
    let runtime_scale = 360.0;
    let f = factor_for_load(1186.7, load);

    let mut rng = desim::SimRng::new(606);
    let paragon = Arc::new(trace_to_jobs(
        &ParagonModel::default().generate(&mut rng.substream(1)),
        16,
        22,
        f,
        runtime_scale,
    ));
    let cm5 = Arc::new(trace_to_jobs(
        &Cm5Model::default().generate(&mut rng.substream(2)),
        16,
        22,
        f,
        runtime_scale,
    ));

    let kinds = [
        StrategyKind::Gabl,
        StrategyKind::Paging {
            size_index: 0,
            indexing: PageIndexing::RowMajor,
        },
        StrategyKind::Mbs,
    ];
    let traces = [("paragon", &paragon), ("cm5", &cm5)];
    // combos carry an index into `traces` (the Arc'd job streams are not
    // Copy); make_cfg and the row printer look the trace back up
    let combos: Vec<(usize, StrategyKind)> = (0..traces.len())
        .flat_map(|t| kinds.iter().map(move |&kind| (t, kind)))
        .collect();

    println!("Paragon-style (non-power-of-two sizes) vs CM-5-style (all powers of two)");
    println!("trace workloads, load {load}, FCFS\n");
    println!(
        "{:<10} {:<12} {:>12} {:>10} {:>10} {:>8}",
        "trace", "strategy", "turnaround", "service", "latency", "frags"
    );
    run_sweep(
        &combos,
        kinds.len(),
        3,
        reps,
        |i, (t, kind)| {
            let mut cfg = SimConfig::paper(
                kind,
                SchedulerKind::Fcfs,
                WorkloadSpec::FixedTrace(traces[t].1.clone()),
                derive_seed(91, i as u64),
            );
            cfg.warmup_jobs = 100;
            cfg.measured_jobs = measured;
            cfg
        },
        |(t, kind), p| {
            println!(
                "{:<10} {:<12} {:>12.1} {:>10.1} {:>10.1} {:>8.1}",
                traces[t].0,
                kind.to_string(),
                p.turnaround(),
                p.service(),
                p.latency(),
                p.fragments()
            );
        },
    );
    println!("expectation: MBS's fragment count collapses on the CM-5 trace (32- and");
    println!("128-node jobs still need two buddy blocks — contiguity is guaranteed only");
    println!("for 2^2n sizes, exactly the paper's §3 remark), closing its service-time");
    println!("gap to GABL.");
}
