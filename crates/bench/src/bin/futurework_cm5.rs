//! Future work (paper §6): "implement the allocation strategies based on
//! other real workload traces from different parallel machines".
//!
//! Compares the strategy ranking under the paper's Paragon-style trace
//! (sizes favouring non-powers-of-two) against a LANL CM-5-style trace
//! (all sizes powers of two — the CM-5 scheduler only offered 32/64/128/
//! 256-node partitions). The paper attributes MBS's trace behaviour to
//! the power-of-two question; this experiment isolates exactly that
//! variable while holding everything else fixed.

use procsim_core::{
    run_point, PageIndexing, SchedulerKind, SimConfig, StrategyKind, WorkloadSpec,
};
use std::sync::Arc;
use workload::{factor_for_load, trace_to_jobs, Cm5Model, ParagonModel};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (measured, reps) = if full { (1000, 10) } else { (400, 4) };
    let load = 0.001;
    let runtime_scale = 360.0;
    let f = factor_for_load(1186.7, load);

    let mut rng = desim::SimRng::new(606);
    let paragon = Arc::new(trace_to_jobs(
        &ParagonModel::default().generate(&mut rng.substream(1)),
        16,
        22,
        f,
        runtime_scale,
    ));
    let cm5 = Arc::new(trace_to_jobs(
        &Cm5Model::default().generate(&mut rng.substream(2)),
        16,
        22,
        f,
        runtime_scale,
    ));

    println!("Paragon-style (non-power-of-two sizes) vs CM-5-style (all powers of two)");
    println!("trace workloads, load {load}, FCFS\n");
    println!(
        "{:<10} {:<12} {:>12} {:>10} {:>10} {:>8}",
        "trace", "strategy", "turnaround", "service", "latency", "frags"
    );
    for (name, jobs) in [("paragon", &paragon), ("cm5", &cm5)] {
        for kind in [
            StrategyKind::Gabl,
            StrategyKind::Paging {
                size_index: 0,
                indexing: PageIndexing::RowMajor,
            },
            StrategyKind::Mbs,
        ] {
            let mut cfg = SimConfig::paper(
                kind,
                SchedulerKind::Fcfs,
                WorkloadSpec::FixedTrace(jobs.clone()),
                91,
            );
            cfg.warmup_jobs = 100;
            cfg.measured_jobs = measured;
            let p = run_point(&cfg, 3, reps);
            println!(
                "{:<10} {:<12} {:>12.1} {:>10.1} {:>10.1} {:>8.1}",
                name,
                kind.to_string(),
                p.turnaround(),
                p.service(),
                p.latency(),
                p.fragments()
            );
        }
        println!();
    }
    println!("expectation: MBS's fragment count collapses on the CM-5 trace (32- and");
    println!("128-node jobs still need two buddy blocks — contiguity is guaranteed only");
    println!("for 2^2n sizes, exactly the paper's §3 remark), closing its service-time");
    println!("gap to GABL.");
}
