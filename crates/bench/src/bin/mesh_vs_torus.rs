//! Figure-style mesh-vs-torus comparison — the paper's §6 future work
//! ("assess the performance of the allocation strategies on other common
//! multicomputer networks, such as torus networks") promoted to a
//! first-class scenario.
//!
//! Sweeps system load across all paper strategies (GABL, Paging(0), MBS;
//! FCFS) on the 16×22 **mesh** and the 16×22 **torus** (wraparound links,
//! minimal dimension-ordered routing, dateline virtual channels). Each
//! (strategy, load) point uses the *same* derived seed on both topologies,
//! so a mesh point and its torus twin consume identical workload streams:
//! the comparison is paired, and differences are topology, not noise.
//!
//! Expected physics (see `docs/TOPOLOGIES.md`): wraparound halves
//! worst-case distances, so the penalty of a dispersed allocation shrinks
//! and the strategies move closer together — contiguity matters most on
//! the mesh.
//!
//! ```text
//! cargo run --release -p procsim_bench --bin mesh_vs_torus [-- --full --threads N]
//! cargo run --release -p procsim_bench --bin mesh_vs_torus -- --golden [--csv PATH]
//! ```
//!
//! Output: table + ASCII chart on stdout (glyphs `G/P/M` = mesh,
//! `g/p/m` = torus), full-precision CSV in `results/mesh_vs_torus.csv`
//! (or `--csv PATH`). `--golden` pins the reduced fidelity of the
//! checked-in `results/golden/mesh_vs_torus.csv` that CI diffs — see the
//! regeneration protocol in `docs/TOPOLOGIES.md`.

use procsim_bench::{ascii_chart, RunMode};
use procsim_core::{
    derive_seed, pool, run_points_on, PointResult, SchedulerKind, SideDist, SimConfig,
    StrategyKind, TopologyKind, WorkloadSpec,
};
use std::io::Write;

/// System loads (jobs per time unit), light load through saturation onset
/// — the same operating regimes as the paper's figures (see the load-axis
/// calibration note in the crate docs).
const LOADS: &[f64] = &[0.0002, 0.0004, 0.0006, 0.0008, 0.001, 0.0012];

/// Master seed; each (strategy, load) slot derives one substream shared
/// by its mesh and torus twins.
const SEED: u64 = 0x7025;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--topology") {
        // this bin's whole point is to sweep both; accepting the flag
        // and ignoring it would mislabel the results
        eprintln!("error: mesh_vs_torus always runs both topologies; --topology is not applicable");
        std::process::exit(2);
    }
    let mut mode = RunMode::from_args();
    if args.iter().any(|a| a == "--golden") {
        // the pinned fidelity of the checked-in golden CSV: small enough
        // for a CI step, deterministic because min_reps == max_reps
        mode.warmup = 30;
        mode.measured = 120;
        mode.min_reps = 2;
        mode.max_reps = 2;
    }
    if let Some(n) = mode.threads {
        let _ = pool::configure_global(n);
    }
    let csv_path = args
        .iter()
        .position(|a| a == "--csv")
        .map(|i| {
            std::path::PathBuf::from(args.get(i + 1).unwrap_or_else(|| {
                eprintln!("error: --csv needs a path");
                std::process::exit(2)
            }))
        })
        .unwrap_or_else(|| {
            std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"))
                .join("mesh_vs_torus.csv")
        });

    let strategies = StrategyKind::PAPER;
    // mesh series first, then torus, so the chart glyphs line up as
    // G/P/M = mesh and g/p/m = torus
    let series: Vec<(TopologyKind, StrategyKind)> = TopologyKind::ALL
        .iter()
        .flat_map(|&topo| strategies.iter().map(move |&s| (topo, s)))
        .collect();
    let series_labels: Vec<String> = series
        .iter()
        .map(|(topo, s)| format!("{s}/{topo}"))
        .collect();

    // row-major (series outer, loads inner); the seed slot deliberately
    // ignores the topology so mesh/torus twins share workload streams
    let cfgs: Vec<SimConfig> = series
        .iter()
        .flat_map(|&(topo, strat)| LOADS.iter().map(move |&load| (topo, strat, load)))
        .map(|(topo, strat, load)| {
            let slot = strategies.iter().position(|&s| s == strat).unwrap() * LOADS.len()
                + LOADS.iter().position(|&l| l == load).unwrap();
            let mut cfg = SimConfig::paper(
                strat,
                SchedulerKind::Fcfs,
                WorkloadSpec::Stochastic {
                    sides: SideDist::Uniform,
                    load,
                    num_mes: 5.0,
                },
                derive_seed(SEED, slot as u64),
            );
            cfg.topology = topo;
            cfg.warmup_jobs = mode.warmup;
            cfg.measured_jobs = mode.measured;
            cfg
        })
        .collect();

    eprintln!(
        "mesh_vs_torus: {} points ({} series x {} loads), {} mode...",
        cfgs.len(),
        series_labels.len(),
        LOADS.len(),
        mode.label()
    );
    let t0 = std::time::Instant::now();
    let pool = pool::pool_with(mode.threads);
    let points = run_points_on(&pool, &cfgs, mode.min_reps, mode.max_reps);

    // table: loads as rows, series as columns, headline = turnaround
    println!("Mesh vs torus, uniform stochastic workload, FCFS — turnaround vs load\n");
    print!("{:>10}", "load");
    for lbl in &series_labels {
        print!(" {lbl:>16}");
    }
    println!();
    for (l, load) in LOADS.iter().enumerate() {
        print!("{load:>10.5}");
        for s in 0..series_labels.len() {
            print!(" {:>16.1}", points[s * LOADS.len() + l].turnaround());
        }
        println!();
    }

    let chart_series: Vec<(String, Vec<f64>)> = series_labels
        .iter()
        .enumerate()
        .map(|(s, lbl)| {
            (
                lbl.clone(),
                (0..LOADS.len())
                    .map(|l| points[s * LOADS.len() + l].turnaround())
                    .collect(),
            )
        })
        .collect();
    println!(
        "\n{}",
        ascii_chart(
            "turnaround vs load (mesh glyphs G/P/M, torus g/p/m)",
            LOADS,
            &chart_series,
            64,
            18
        )
    );

    match write_csv(&csv_path, &series, &points) {
        Ok(()) => eprintln!(
            "wrote {} ({:.1}s)",
            csv_path.display(),
            t0.elapsed().as_secs_f64()
        ),
        Err(e) => {
            eprintln!("CSV write failed: {e}");
            std::process::exit(1)
        }
    }
}

/// One row per (topology, strategy, load) point with all six response
/// means and their CI half-widths, full float precision (shortest
/// round-trip representation) so goldens diff cleanly.
fn write_csv(
    path: &std::path::Path,
    series: &[(TopologyKind, StrategyKind)],
    points: &[PointResult],
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(
        f,
        "topology,series,load,reps,turnaround,service,utilization,blocking,latency,fragments,\
         ci_turnaround,ci_service,ci_utilization,ci_blocking,ci_latency,ci_fragments"
    )?;
    for (s, &(topo, _)) in series.iter().enumerate() {
        for l in 0..LOADS.len() {
            let p = &points[s * LOADS.len() + l];
            write!(f, "{},{},{},{}", topo, p.label, p.load, p.replications)?;
            for m in p.means {
                write!(f, ",{m}")?;
            }
            for c in p.ci95 {
                write!(f, ",{c}")?;
            }
            writeln!(f)?;
        }
    }
    Ok(())
}
