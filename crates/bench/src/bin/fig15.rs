//! Regenerates Figure 15 of the paper. Pass --full for paper-grade
//! replication counts.

fn main() {
    procsim_bench::run_figure_main(15);
}
