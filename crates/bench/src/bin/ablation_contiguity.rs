//! Ablation: contiguous baselines vs the non-contiguous strategies.
//!
//! Reproduces the paper's §1 motivation: contiguous allocation (FF/BF)
//! suffers external fragmentation — jobs wait while enough (scattered)
//! processors are free — so non-contiguous strategies win on turnaround
//! even though their packets travel further. Random scatter shows the
//! other extreme: no fragmentation but maximal dispersal; MC (the
//! paper's ref. [7]) shows shape-free clustering between the two.

use procsim_core::{
    run_point, PageIndexing, SchedulerKind, SideDist, SimConfig, StrategyKind, WorkloadSpec,
};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (measured, reps) = if full { (1000, 10) } else { (300, 3) };
    let kinds = [
        StrategyKind::FirstFit,
        StrategyKind::BestFit,
        StrategyKind::Gabl,
        StrategyKind::Paging {
            size_index: 0,
            indexing: PageIndexing::RowMajor,
        },
        StrategyKind::Mbs,
        StrategyKind::Mc,
        StrategyKind::Random,
    ];
    println!("contiguity spectrum, uniform stochastic workload, FCFS\n");
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "strategy", "load", "turnaround", "service", "latency", "util", "frags"
    );
    for load in [0.0004, 0.0008] {
        for kind in kinds {
            let mut cfg = SimConfig::paper(
                kind,
                SchedulerKind::Fcfs,
                WorkloadSpec::Stochastic {
                    sides: SideDist::Uniform,
                    load,
                    num_mes: 5.0,
                },
                79,
            );
            cfg.warmup_jobs = 80;
            cfg.measured_jobs = measured;
            let p = run_point(&cfg, 3, reps);
            println!(
                "{:<10} {:>10.4} {:>12.1} {:>10.1} {:>10.1} {:>10.3} {:>10.1}",
                kind.to_string(),
                load,
                p.turnaround(),
                p.service(),
                p.latency(),
                p.utilization(),
                p.fragments()
            );
        }
        println!();
    }
}
