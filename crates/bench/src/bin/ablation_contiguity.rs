//! Ablation: contiguous baselines vs the non-contiguous strategies.
//!
//! Reproduces the paper's §1 motivation: contiguous allocation (FF/BF)
//! suffers external fragmentation — jobs wait while enough (scattered)
//! processors are free — so non-contiguous strategies win on turnaround
//! even though their packets travel further. Random scatter shows the
//! other extreme: no fragmentation but maximal dispersal; MC (the
//! paper's ref. \[7\]) shows shape-free clustering between the two.

use procsim_bench::{ablation_args, run_sweep};
use procsim_core::{
    derive_seed, PageIndexing, SchedulerKind, SideDist, SimConfig, StrategyKind, WorkloadSpec,
};

fn main() {
    let full = ablation_args();
    let (measured, reps) = if full { (1000, 10) } else { (300, 3) };
    let kinds = [
        StrategyKind::FirstFit,
        StrategyKind::BestFit,
        StrategyKind::Gabl,
        StrategyKind::Paging {
            size_index: 0,
            indexing: PageIndexing::RowMajor,
        },
        StrategyKind::Mbs,
        StrategyKind::Mc,
        StrategyKind::Random,
    ];
    let loads = [0.0004, 0.0008];

    // one config per (load, strategy), all submitted to the shared pool
    // as a single batch; each point gets its own derived seed
    let combos: Vec<(f64, StrategyKind)> = loads
        .iter()
        .flat_map(|&load| kinds.iter().map(move |&kind| (load, kind)))
        .collect();

    println!("contiguity spectrum, uniform stochastic workload, FCFS\n");
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "strategy", "load", "turnaround", "service", "latency", "util", "frags"
    );
    run_sweep(
        &combos,
        kinds.len(),
        3,
        reps,
        |i, (load, kind)| {
            let mut cfg = SimConfig::paper(
                kind,
                SchedulerKind::Fcfs,
                WorkloadSpec::Stochastic {
                    sides: SideDist::Uniform,
                    load,
                    num_mes: 5.0,
                },
                derive_seed(79, i as u64),
            );
            cfg.warmup_jobs = 80;
            cfg.measured_jobs = measured;
            cfg
        },
        |(load, kind), p| {
            println!(
                "{:<10} {:>10.4} {:>12.1} {:>10.1} {:>10.1} {:>10.3} {:>10.1}",
                kind.to_string(),
                load,
                p.turnaround(),
                p.service(),
                p.latency(),
                p.utilization(),
                p.fragments()
            );
        },
    );
}
