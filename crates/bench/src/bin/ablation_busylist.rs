//! Ablation: GABL busy-list length vs mesh size.
//!
//! Probes the paper's §6 claim that GABL "achieves this by using a busy
//! list whose length is often small even when the size of the mesh
//! scales up": we run the same offered load per processor on growing
//! meshes and report the peak busy-list length.

use desim::SimRng;
use mesh2d::Mesh;
use mesh_alloc::{AllocationStrategy, Gabl};

fn main() {
    println!("GABL busy-list scaling (synthetic churn at ~70% occupancy)\n");
    println!(
        "{:<10} {:>8} {:>12} {:>14}",
        "mesh", "procs", "peak busy", "peak/sqrt(P)"
    );
    for (w, l) in [(8u16, 8u16), (16, 16), (16, 22), (32, 32), (64, 64), (128, 128)] {
        let mut mesh = Mesh::new(w, l);
        let mut gabl = Gabl::new();
        let mut rng = SimRng::new(999);
        let mut live = Vec::new();
        // procsim-lint: allow(D005): 0.7 * mesh size is below the u32 mesh size
        let target = (mesh.size() as f64 * 0.7) as u32;
        for _ in 0..5000 {
            if mesh.used_count() < target || live.is_empty() {
                let a = rng.uniform_incl(1, (w / 2) as u64) as u16;
                let b = rng.uniform_incl(1, (l / 2) as u64) as u16;
                if let Some(al) = gabl.allocate(&mut mesh, a, b) {
                    live.push(al);
                }
            } else {
                let al = live.swap_remove(rng.index(live.len()));
                gabl.release(&mut mesh, al);
            }
        }
        let peak = gabl.peak_busy_len();
        println!(
            "{:<10} {:>8} {:>12} {:>14.2}",
            format!("{w}x{l}"),
            mesh.size(),
            peak,
            peak as f64 / (mesh.size() as f64).sqrt()
        );
    }
}
