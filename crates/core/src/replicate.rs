//! Replication driver: run experimental points to the paper's precision
//! criterion, in parallel over a shared worker pool.
//!
//! Each *point* (one strategy × scheduler × workload × load combination)
//! is estimated by independent replications until the 95 % CI relative
//! error of the mean turnaround is at most 5 % (the paper's §5 protocol).
//! Replications are pure functions of `(SimConfig, replication seed)`, so
//! they execute concurrently on the [`crate::pool`] worker pool; the
//! coordinator here re-imposes replication order when feeding the
//! [`Replications`] controller, which makes the result **bit-identical to
//! the sequential path for any thread count**:
//!
//! 1. submit the first `min_reps` replications of every point up front,
//! 2. record finished replications strictly in replication-index order
//!    (out-of-order arrivals are buffered),
//! 3. while a point still [`Replications::needs_more`], top up with
//!    another wave; replications that arrive after the controller stopped
//!    are discarded — exactly the runs the sequential loop never starts.
//!
//! Replication seeds come from [`derive_seed`]`(point_seed, rep)`, one
//! decorrelated substream per replication, so no two replications — and,
//! because figure runners also derive one seed per point, no two points —
//! ever share a random stream.

use crate::config::SimConfig;
use crate::metrics::RunMetrics;
use crate::pool::{self, WorkerPool};
use crate::simulator::Simulator;
use desim::SimRng;
use simstats::{Replications, StopReason};
use std::sync::{mpsc, Arc};

/// Derives the seed of stream `index` from a master seed: an independent
/// SplitMix64-mixed substream per index (see [`SimRng::substream`]).
///
/// Used at both levels of the experiment hierarchy: a figure derives one
/// *point seed* per (series, load) from the figure seed, and
/// [`run_point`] derives one *replication seed* per replication from the
/// point seed. Deriving rather than offsetting (`seed + index`, or the
/// raw replication counter) guarantees streams never collide across
/// levels.
pub fn derive_seed(master: u64, index: u64) -> u64 {
    SimRng::new(master).substream(index).raw()
}

/// The converged estimate for one experimental point (one strategy ×
/// scheduler × workload × load combination).
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Series label, e.g. `"GABL(SSD)"`.
    pub label: String,
    /// Nominal system load.
    pub load: f64,
    /// Replications executed.
    pub replications: usize,
    /// Why replication stopped.
    pub stop: StopReason,
    /// Means over replications, ordered as
    /// [`RunMetrics::RESPONSE_NAMES`]: turnaround, service, utilization,
    /// blocking, latency, fragments.
    pub means: [f64; 6],
    /// 95 % CI half-widths, same order.
    pub ci95: [f64; 6],
}

impl PointResult {
    /// Mean turnaround time (arrival → departure).
    pub fn turnaround(&self) -> f64 {
        self.means[0]
    }
    /// Mean service time (allocation → departure).
    pub fn service(&self) -> f64 {
        self.means[1]
    }
    /// Mean system utilization over the measurement window.
    pub fn utilization(&self) -> f64 {
        self.means[2]
    }
    /// Mean packet blocking time.
    pub fn blocking(&self) -> f64 {
        self.means[3]
    }
    /// Mean packet network latency.
    pub fn latency(&self) -> f64 {
        self.means[4]
    }
    /// Mean disjoint sub-meshes per allocation (1 = fully contiguous).
    pub fn fragments(&self) -> f64 {
        self.means[5]
    }

    fn from_controller(cfg: &SimConfig, ctl: &Replications) -> PointResult {
        let mut means = [0.0; 6];
        let mut ci = [0.0; 6];
        for i in 0..6 {
            means[i] = ctl.mean(i);
            ci[i] = ctl.ci95(i);
        }
        PointResult {
            label: cfg.series_label(),
            load: cfg.workload.load(),
            replications: ctl.count(),
            stop: ctl.stop_reason(),
            means,
            ci95: ci,
        }
    }
}

/// Per-point coordinator state while its replications are in flight.
struct PointState {
    cfg: Arc<SimConfig>,
    ctl: Replications,
    /// Finished replications, indexed by replication number; out-of-order
    /// arrivals wait here until the prefix below them is recorded. Kept
    /// as `thread::Result` so a panic from a replication the controller
    /// never consumes (an over-submitted wave tail) is dropped, exactly
    /// like the sequential path that never starts that run.
    results: Vec<Option<std::thread::Result<RunMetrics>>>,
    /// Contiguous replications fed to the controller so far.
    recorded: usize,
    /// Replications submitted to the pool so far.
    submitted: usize,
    done: bool,
}

/// Runs a batch of experimental points on `pool`, returning one
/// [`PointResult`] per input config, in input order.
///
/// All points share the pool: their replications interleave freely, so a
/// slow point cannot serialize the batch. Output is bit-identical to
/// calling [`run_point_seq`] on each config, whatever `pool.threads()`
/// is. Must not be called from inside a pool worker (workers are not
/// reentrant); call it from a coordinator thread such as `main`.
pub fn run_points_on(
    pool: &WorkerPool,
    cfgs: &[SimConfig],
    min_reps: usize,
    max_reps: usize,
) -> Vec<PointResult> {
    assert!(
        (2..=max_reps).contains(&min_reps),
        "need 2 <= min_reps <= max_reps"
    );
    run_points_controlled(pool, cfgs, || Replications::paper(6, min_reps, max_reps))
}

/// [`run_points_on`] with a caller-supplied replication controller
/// (e.g. a non-paper precision target). `make_ctl` must produce a
/// controller over the 6 response variables of
/// [`RunMetrics::response_vector`]; one fresh controller is created per
/// point.
pub fn run_points_controlled(
    pool: &WorkerPool,
    cfgs: &[SimConfig],
    make_ctl: impl Fn() -> Replications,
) -> Vec<PointResult> {
    let (tx, rx) = mpsc::channel::<RepMsg>();
    let mut pending = 0usize;
    let mut states: Vec<PointState> = cfgs
        .iter()
        .map(|cfg| {
            let ctl = make_ctl();
            assert_eq!(ctl.stats().len(), 6, "controller must track 6 variables");
            PointState {
                cfg: Arc::new(cfg.clone()),
                ctl,
                results: Vec::new(),
                recorded: 0,
                submitted: 0,
                done: false,
            }
        })
        .collect();

    // Wave 1: the sequential path always runs at least min_reps.
    for (point, st) in states.iter_mut().enumerate() {
        let first_wave = st.ctl.min_reps();
        submit_wave(pool, &tx, point, st, first_wave, &mut pending);
    }

    while pending > 0 {
        // procsim-lint: allow(D004): invariant: tx is alive in this scope and pending > 0 means a worker still holds a clone
        let (point, rep, result) = rx.recv().expect("invariant: pool worker result");
        pending -= 1;
        let st = &mut states[point];
        st.results[rep] = Some(result);
        if st.done {
            continue; // over-submitted wave tail; sequential never ran it
        }
        // Feed the controller in replication order, exactly as the
        // sequential loop would: record only while it still needs more.
        // A panic is re-raised only when its replication is actually
        // consumed — precisely when the sequential path would have hit it.
        while st.ctl.needs_more() {
            let Some(result) = st.results.get_mut(st.recorded).and_then(Option::take) else {
                break; // waiting on an earlier replication
            };
            let metrics = result.unwrap_or_else(|payload| std::panic::resume_unwind(payload));
            st.ctl.record(&metrics.response_vector());
            st.recorded += 1;
        }
        if !st.ctl.needs_more() {
            st.done = true;
        } else if st.recorded == st.submitted {
            // Everything submitted is recorded and the CI is still too
            // wide: top up with another wave (bounded by the budget).
            let budget = st.ctl.max_reps().saturating_sub(st.submitted);
            let batch = pool.threads().min(budget).max(1);
            submit_wave(pool, &tx, point, st, batch, &mut pending);
        }
    }

    states
        .iter()
        .map(|st| {
            debug_assert!(st.done);
            PointResult::from_controller(&st.cfg, &st.ctl)
        })
        .collect()
}

/// One replication's outcome: `(point index, replication index, metrics
/// or the panic payload of a failed simulation)`.
type RepMsg = (usize, usize, std::thread::Result<RunMetrics>);

/// Submits the next `count` replications of one point to the pool.
fn submit_wave(
    pool: &WorkerPool,
    tx: &mpsc::Sender<RepMsg>,
    point: usize,
    st: &mut PointState,
    count: usize,
    pending: &mut usize,
) {
    st.results.resize_with(st.submitted + count, || None);
    for _ in 0..count {
        let rep = st.submitted;
        st.submitted += 1;
        *pending += 1;
        let cfg = st.cfg.clone();
        let tx = tx.clone();
        pool.submit(move || {
            // Catch simulation panics so the coordinator always receives
            // one message per submission (otherwise `pending` never
            // drains and run_points hangs) and can re-raise them.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                Simulator::new(&cfg, rep as u64).run()
            }));
            // The receiver hangs up only on coordinator panic.
            let _ = tx.send((point, rep, result));
        });
    }
}

/// Runs a batch of points on the shared [`pool::global`] worker pool.
/// See [`run_points_on`].
pub fn run_points(cfgs: &[SimConfig], min_reps: usize, max_reps: usize) -> Vec<PointResult> {
    run_points_on(pool::global(), cfgs, min_reps, max_reps)
}

/// Runs independent replications of `cfg` until the 95 % CI relative
/// error of the mean turnaround is at most 5 % (the paper's criterion),
/// bounded by `[min_reps, max_reps]`. Replications execute in parallel
/// on the shared worker pool; the result is identical to [`run_point_seq`].
pub fn run_point(cfg: &SimConfig, min_reps: usize, max_reps: usize) -> PointResult {
    run_point_on(pool::global(), cfg, min_reps, max_reps)
}

/// [`run_point`] on an explicit pool (thread count still cannot change
/// the result; tests use this to prove it).
pub fn run_point_on(
    pool: &WorkerPool,
    cfg: &SimConfig,
    min_reps: usize,
    max_reps: usize,
) -> PointResult {
    run_points_on(pool, std::slice::from_ref(cfg), min_reps, max_reps)
        .pop()
        // procsim-lint: allow(D004): invariant: run_points_on returns exactly one result per input config
        .expect("invariant: one result per config")
}

/// The sequential reference path: one replication at a time on the
/// calling thread. Kept as the semantic definition the parallel engine
/// must match bit-for-bit (and for contexts without a pool).
pub fn run_point_seq(cfg: &SimConfig, min_reps: usize, max_reps: usize) -> PointResult {
    let mut ctl = Replications::paper(6, min_reps, max_reps);
    let mut rep = 0u64;
    while ctl.needs_more() {
        let metrics: RunMetrics = Simulator::new(cfg, rep).run();
        ctl.record(&metrics.response_vector());
        rep += 1;
    }
    PointResult::from_controller(cfg, &ctl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadSpec;
    use mesh_alloc::StrategyKind;
    use mesh_sched::SchedulerKind;
    use workload::SideDist;

    fn small_cfg(load: f64, seed: u64) -> SimConfig {
        let mut cfg = SimConfig::paper(
            StrategyKind::Gabl,
            SchedulerKind::Fcfs,
            WorkloadSpec::Stochastic {
                sides: SideDist::Uniform,
                load,
                num_mes: 5.0,
            },
            seed,
        );
        cfg.warmup_jobs = 10;
        cfg.measured_jobs = 80;
        cfg
    }

    #[test]
    fn point_converges_or_hits_budget() {
        let cfg = small_cfg(0.002, 99);
        let p = run_point(&cfg, 3, 6);
        assert!(p.replications >= 3 && p.replications <= 6);
        assert!(p.turnaround() > 0.0);
        assert!(p.utilization() > 0.0 && p.utilization() <= 1.0);
        assert_eq!(p.label, "GABL(FCFS)");
        assert!((p.load - 0.002).abs() < 1e-12);
        assert!(matches!(p.stop, StopReason::Converged | StopReason::Budget));
    }

    #[test]
    fn derive_seed_is_deterministic_and_spreads() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
        assert_ne!(derive_seed(42, 7), derive_seed(42, 8));
        assert_ne!(derive_seed(42, 7), derive_seed(43, 7));
        // no collisions over a figure-sized index range
        let mut seen: Vec<u64> = (0..1000).map(|i| derive_seed(5, i)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 1000);
    }

    #[test]
    fn batch_preserves_input_order() {
        let cfgs = [small_cfg(0.001, 1), small_cfg(0.002, 2), small_cfg(0.003, 3)];
        let ps = run_points(&cfgs, 2, 3);
        assert_eq!(ps.len(), 3);
        for (p, cfg) in ps.iter().zip(&cfgs) {
            assert!((p.load - cfg.workload.load()).abs() < 1e-12);
        }
    }
}
