//! Replication driver: run one experimental point to the paper's
//! precision criterion.

use crate::config::SimConfig;
use crate::metrics::RunMetrics;
use crate::simulator::Simulator;
use simstats::{Replications, StopReason};

/// The converged estimate for one experimental point (one strategy ×
/// scheduler × workload × load combination).
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Series label, e.g. `"GABL(SSD)"`.
    pub label: String,
    /// Nominal system load.
    pub load: f64,
    /// Replications executed.
    pub replications: usize,
    /// Why replication stopped.
    pub stop: StopReason,
    /// Means over replications, ordered as
    /// [`RunMetrics::RESPONSE_NAMES`]: turnaround, service, utilization,
    /// blocking, latency, fragments.
    pub means: [f64; 6],
    /// 95 % CI half-widths, same order.
    pub ci95: [f64; 6],
}

impl PointResult {
    pub fn turnaround(&self) -> f64 {
        self.means[0]
    }
    pub fn service(&self) -> f64 {
        self.means[1]
    }
    pub fn utilization(&self) -> f64 {
        self.means[2]
    }
    pub fn blocking(&self) -> f64 {
        self.means[3]
    }
    pub fn latency(&self) -> f64 {
        self.means[4]
    }
    pub fn fragments(&self) -> f64 {
        self.means[5]
    }
}

/// Runs independent replications of `cfg` until the 95 % CI relative
/// error of the mean turnaround is at most 5 % (the paper's criterion),
/// bounded by `[min_reps, max_reps]`.
pub fn run_point(cfg: &SimConfig, min_reps: usize, max_reps: usize) -> PointResult {
    let mut ctl = Replications::paper(6, min_reps, max_reps);
    let mut rep = 0u64;
    while ctl.needs_more() {
        let metrics: RunMetrics = Simulator::new(cfg, rep).run();
        ctl.record(&metrics.response_vector());
        rep += 1;
    }
    let mut means = [0.0; 6];
    let mut ci = [0.0; 6];
    for i in 0..6 {
        means[i] = ctl.mean(i);
        ci[i] = ctl.ci95(i);
    }
    PointResult {
        label: cfg.series_label(),
        load: cfg.workload.load(),
        replications: ctl.count(),
        stop: ctl.stop_reason(),
        means,
        ci95: ci,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadSpec;
    use mesh_alloc::StrategyKind;
    use mesh_sched::SchedulerKind;
    use workload::SideDist;

    #[test]
    fn point_converges_or_hits_budget() {
        let mut cfg = SimConfig::paper(
            StrategyKind::Gabl,
            SchedulerKind::Fcfs,
            WorkloadSpec::Stochastic {
                sides: SideDist::Uniform,
                load: 0.002,
                num_mes: 5.0,
            },
            99,
        );
        cfg.warmup_jobs = 10;
        cfg.measured_jobs = 80;
        let p = run_point(&cfg, 3, 6);
        assert!(p.replications >= 3 && p.replications <= 6);
        assert!(p.turnaround() > 0.0);
        assert!(p.utilization() > 0.0 && p.utilization() <= 1.0);
        assert_eq!(p.label, "GABL(FCFS)");
        assert!((p.load - 0.002).abs() < 1e-12);
        assert!(matches!(p.stop, StopReason::Converged | StopReason::Budget));
    }
}
