//! # procsim-core — the integrated mesh multicomputer simulator
//!
//! Ties the substrates together into the experiment the paper runs
//! (§5): jobs arrive (stochastic generator or trace), wait in a scheduling
//! queue (FCFS / SSD), receive processors from an allocation strategy
//! (GABL / Paging(0) / MBS / baselines), perform their communication on
//! the flit-level wormhole network (all-to-all, `Plen = 8`, `ts = 3`),
//! and depart, freeing their processors.
//!
//! The simulator is a hybrid: job-level events (arrivals, single-processor
//! job completions) live in a discrete-event queue, while the network is
//! stepped cycle-by-cycle whenever packets are in flight. A job's *service
//! time* is an output of the network simulation — the span from allocation
//! to the ejection of its last packet — exactly as in ProcSimity, where
//! "the execution times of jobs are not simulator inputs".
//!
//! Entry points:
//! * [`Simulator::run`] — one replication, returning [`RunMetrics`],
//! * [`replicate::run_point`] — replications until the paper's 95 % CI /
//!   5 % relative error criterion is met, executed in parallel on the
//!   shared [`pool`] worker pool (bit-identical to the sequential
//!   reference [`replicate::run_point_seq`] at any thread count),
//! * [`replicate::run_points`] — a whole batch of points (e.g. every
//!   (series × load) combination of a figure) multiplexed over the same
//!   pool.
//!
//! Parallelism is controlled by the CLI `--threads N` flag or the
//! `PROCSIM_THREADS` environment variable; see [`pool`].

pub mod campaign;
pub mod config;
pub mod metrics;
pub mod pool;
pub mod replicate;
pub mod scenario;
pub mod simulator;

pub use campaign::{
    cached_count, expand, run_campaign, CampaignError, CampaignOptions, CampaignOutcome,
    CampaignPoint,
};
pub use config::{SimConfig, WorkloadSpec};
pub use scenario::{PointSettings, Scenario, ScenarioError};
pub use metrics::RunMetrics;
pub use pool::WorkerPool;
pub use replicate::{
    derive_seed, run_point, run_point_on, run_point_seq, run_points, run_points_controlled,
    run_points_on, PointResult,
};
pub use simulator::{Simulator, StartDecision};

// Re-export the vocabulary types callers configure with.
pub use mesh_alloc::{PageIndexing, StrategyKind};
pub use mesh_sched::SchedulerKind;
pub use workload::{ParagonModel, SideDist, TraceWorkload};
pub use wormnet::{Pattern, TopologyKind};
