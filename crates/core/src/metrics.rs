//! Per-run output metrics (the paper's five performance parameters).

use desim::Time;
use simstats::Welford;

/// Aggregated results of one simulation run (one replication).
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Measured completed jobs.
    pub jobs: u64,
    /// Average turnaround time: arrival → departure (Figs. 2–4).
    pub mean_turnaround: f64,
    /// Average service time: allocation → departure (Figs. 5–7).
    pub mean_service: f64,
    /// Mean system utilization over the measurement window (Figs. 8–10).
    pub utilization: f64,
    /// Average packet blocking time (Figs. 11–13).
    pub mean_packet_blocking: f64,
    /// Average packet network latency (Figs. 14–16).
    pub mean_packet_latency: f64,
    /// Average waiting time in the scheduler queue (turnaround − service).
    pub mean_wait: f64,
    /// Average number of disjoint sub-meshes per allocation
    /// (1 = fully contiguous).
    pub mean_fragments: f64,
    /// Measured packets delivered.
    pub packets: u64,
    /// Simulated end time of the run.
    pub end_time: Time,
    /// Full turnaround distribution (for CI computation across runs the
    /// replication layer uses the mean; the Welford is kept for
    /// within-run variance diagnostics).
    pub turnaround_stats: Welford,
}

impl RunMetrics {
    /// The headline response-variable vector handed to the replication
    /// controller, ordered: turnaround, service, utilization, blocking,
    /// latency, fragments.
    pub fn response_vector(&self) -> [f64; 6] {
        [
            self.mean_turnaround,
            self.mean_service,
            self.utilization,
            self.mean_packet_blocking,
            self.mean_packet_latency,
            self.mean_fragments,
        ]
    }

    /// Names matching [`RunMetrics::response_vector`] positions.
    pub const RESPONSE_NAMES: [&'static str; 6] = [
        "turnaround",
        "service",
        "utilization",
        "blocking",
        "latency",
        "fragments",
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_vector_order() {
        let m = RunMetrics {
            jobs: 10,
            mean_turnaround: 1.0,
            mean_service: 2.0,
            utilization: 3.0,
            mean_packet_blocking: 4.0,
            mean_packet_latency: 5.0,
            mean_wait: 0.0,
            mean_fragments: 6.0,
            packets: 0,
            end_time: 0,
            turnaround_stats: Welford::new(),
        };
        assert_eq!(m.response_vector(), [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(RunMetrics::RESPONSE_NAMES.len(), 6);
    }
}
