//! Resumable campaign runner: expands a [`Scenario`] into its full
//! cross-product of experimental points, shards the missing ones through
//! the shared worker pool ([`crate::replicate::run_points_on`]), and
//! caches each completed point on disk under a content hash of its spec —
//! so an interrupted or extended campaign resumes for free, rerunning
//! only points whose results are not already cached.
//!
//! Determinism contract (pinned by `crates/core/tests/campaign_resume.rs`
//! and the CI golden steps):
//!
//! * Each point's seed derives from the campaign seed and its *seed
//!   slot* ([`derive_seed`]), never from execution order, and each point
//!   is an independent batch of replications — so running any subset of
//!   points produces bit-identical per-point results to running them
//!   all, at any thread count.
//! * Cache keys are FNV-1a content hashes of the canonical *spec string*
//!   (every code-relevant knob: mesh geometry, network constants,
//!   topology, strategy, scheduler, workload + load, fidelity and
//!   stopping knobs, seed, and a format version). Any fidelity change
//!   re-keys exactly the affected points; cosmetic scenario edits
//!   (comments, output columns) change nothing.
//! * Expansion order is the declared matrix order (later axes fastest);
//!   all internal maps are `BTreeMap`s, so the merged CSV is identical
//!   however the campaign was sliced across runs (D001).
//!
//! Cache entries are written via temp-file + rename, so a campaign
//! killed mid-write never leaves a torn entry — at worst the in-flight
//! point is rerun on resume.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use simstats::StopReason;

use crate::pool;
use crate::replicate::{derive_seed, run_points_on, PointResult};
use crate::scenario::{OutputSpec, PointSettings, Scenario, ScenarioError};

/// Bump when the cache entry format or the spec string changes meaning:
/// stale-format entries then miss instead of corrupting a merge.
const CACHE_FORMAT: &str = "v1";

/// One expanded experimental point of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignPoint {
    /// Position in expansion order (matrix order, later axes fastest).
    pub index: usize,
    /// Seed slot (over the `[seed]` axes; equals `index` by default).
    pub slot: u64,
    /// Fully resolved knobs.
    pub settings: PointSettings,
    /// The derived per-point seed ([`derive_seed`] of campaign seed and
    /// slot).
    pub seed: u64,
    /// Canonical spec string — the cache key preimage.
    pub spec: String,
    /// FNV-1a 64 hash of [`CampaignPoint::spec`], as 16 hex digits.
    pub hash: String,
}

/// FNV-1a 64-bit over a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Builds the canonical spec string of a point: every knob that can
/// change simulation output, in fixed order, plus the cache format
/// version. Cosmetic scenario properties (name, output layout) are
/// deliberately absent.
fn spec_string(s: &PointSettings, seed: u64) -> String {
    format!(
        "{CACHE_FORMAT}|mesh={}x{}|ts={}|plen={}|pattern=all-to-all|topology={}|strategy={}|\
         scheduler={}|workload={}|load={}|num_mes={}|runtime_scale={}|warmup={}|measured={}|\
         min_reps={}|max_reps={}|precision=paper95-5|seed={}",
        s.mesh_w,
        s.mesh_l,
        s.ts,
        s.plen,
        s.topology,
        s.strategy,
        s.scheduler,
        s.workload.name(),
        s.load,
        s.num_mes,
        s.runtime_scale,
        s.warmup,
        s.measured,
        s.min_reps,
        s.max_reps,
        seed,
    )
}

/// Expands a scenario into its full cross-product of points, applying
/// knob precedence (builtin < defaults < matrix < override) and deriving
/// per-point seeds from the seed slot.
pub fn expand(s: &Scenario) -> Result<Vec<CampaignPoint>, ScenarioError> {
    // sizes of each axis, and which axes advance the seed slot
    let sizes: Vec<usize> = s.matrix.iter().map(|(_, vs)| vs.len()).collect();
    let total: usize = sizes.iter().product();
    let seed_axis: Vec<bool> = match &s.seed_axes {
        None => vec![true; s.matrix.len()],
        Some(axes) => s
            .matrix
            .iter()
            .map(|(k, _)| axes.iter().any(|a| a == k))
            .collect(),
    };

    let mut points = Vec::with_capacity(total);
    // odometer over the axes: later axes vary fastest
    let mut idx = vec![0usize; s.matrix.len()];
    for index in 0..total {
        let mut settings = PointSettings::default();
        for (k, v) in &s.defaults {
            settings.apply(k, v, 0, &format!("defaults.{k}"))?;
        }
        for (axis, &i) in s.matrix.iter().zip(&idx) {
            let (k, vs) = axis;
            settings.apply(k, &vs[i], 0, &format!("matrix.{k}"))?;
        }
        for rule in &s.overrides {
            // match on the bare rendering of the point's current setting
            // (matrix axes and defaults knobs both work)
            let Some(current) = settings.knob_value(&rule.axis) else {
                return Err(ScenarioError::new(
                    rule.line,
                    format!("override.{}={}", rule.axis, rule.value),
                    "unknown axis",
                ));
            };
            if current == rule.value {
                for (k, v) in &rule.set {
                    settings.apply(k, v, rule.line, &format!("override.{}={}.{k}", rule.axis, rule.value))?;
                }
            }
        }
        settings.validate(&format!("matrix point {index}"))?;

        // seed slot: odometer restricted to the seed axes, later fastest
        let mut slot = 0u64;
        for ((&i, &size), &counts) in idx.iter().zip(&sizes).zip(&seed_axis) {
            if counts {
                slot = slot * size as u64 + i as u64;
            }
        }
        let seed = derive_seed(s.seed, slot);
        let spec = spec_string(&settings, seed);
        let hash = format!("{:016x}", fnv1a(spec.as_bytes()));
        points.push(CampaignPoint {
            index,
            slot,
            settings,
            seed,
            spec,
            hash,
        });

        // advance the odometer
        for a in (0..idx.len()).rev() {
            idx[a] += 1;
            if idx[a] < sizes[a] {
                break;
            }
            idx[a] = 0;
        }
    }
    Ok(points)
}

// ---------------------------------------------------------------------------
// the on-disk point cache
// ---------------------------------------------------------------------------

/// A campaign-runner failure: cache I/O or a scenario validation error
/// surfaced at run time.
#[derive(Debug)]
pub enum CampaignError {
    /// Scenario expansion failed.
    Scenario(ScenarioError),
    /// Cache directory or CSV I/O failed.
    Io {
        /// What the runner was doing.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl core::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CampaignError::Scenario(e) => write!(f, "{e}"),
            CampaignError::Io { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<ScenarioError> for CampaignError {
    fn from(e: ScenarioError) -> Self {
        CampaignError::Scenario(e)
    }
}

fn io_err(context: impl Into<String>) -> impl FnOnce(std::io::Error) -> CampaignError {
    let context = context.into();
    move |source| CampaignError::Io { context, source }
}

/// Serializes a completed point for the cache: the spec string (verified
/// on load, so a hash collision degrades to a rerun, never a wrong
/// merge) and the full-precision result.
fn render_entry(spec: &str, p: &PointResult) -> String {
    use core::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "procsim-campaign-point {CACHE_FORMAT}");
    let _ = writeln!(out, "spec {spec}");
    let _ = writeln!(out, "label {}", p.label);
    let _ = writeln!(out, "load {}", p.load);
    let _ = writeln!(out, "replications {}", p.replications);
    let stop = match p.stop {
        StopReason::Converged => "converged",
        StopReason::Budget => "budget",
        StopReason::NotStopped => "not-stopped",
    };
    let _ = writeln!(out, "stop {stop}");
    let means: Vec<String> = p.means.iter().map(|m| format!("{m}")).collect();
    let _ = writeln!(out, "means {}", means.join(" "));
    let cis: Vec<String> = p.ci95.iter().map(|c| format!("{c}")).collect();
    let _ = writeln!(out, "ci95 {}", cis.join(" "));
    out
}

/// Parses a cache entry back. `None` = unusable (wrong version, spec
/// mismatch, or corruption) — the caller treats it as a miss and reruns.
fn parse_entry(text: &str, want_spec: &str) -> Option<PointResult> {
    let mut lines = text.lines();
    if lines.next()? != format!("procsim-campaign-point {CACHE_FORMAT}") {
        return None;
    }
    let spec = lines.next()?.strip_prefix("spec ")?;
    if spec != want_spec {
        return None;
    }
    let label = lines.next()?.strip_prefix("label ")?.to_string();
    let load: f64 = lines.next()?.strip_prefix("load ")?.parse().ok()?;
    let replications: usize = lines.next()?.strip_prefix("replications ")?.parse().ok()?;
    let stop = match lines.next()?.strip_prefix("stop ")? {
        "converged" => StopReason::Converged,
        "budget" => StopReason::Budget,
        "not-stopped" => StopReason::NotStopped,
        _ => return None,
    };
    let mut means = [0.0f64; 6];
    for (slot, tok) in means
        .iter_mut()
        .zip(lines.next()?.strip_prefix("means ")?.split(' '))
    {
        *slot = tok.parse().ok()?;
    }
    let mut ci95 = [0.0f64; 6];
    for (slot, tok) in ci95
        .iter_mut()
        .zip(lines.next()?.strip_prefix("ci95 ")?.split(' '))
    {
        *slot = tok.parse().ok()?;
    }
    Some(PointResult {
        label,
        load,
        replications,
        stop,
        means,
        ci95,
    })
}

/// Atomically persists one completed point: write to a `.tmp` sibling,
/// then rename into place.
fn write_entry(dir: &Path, point: &CampaignPoint, p: &PointResult) -> Result<(), CampaignError> {
    let path = dir.join(format!("{}.point", point.hash));
    let tmp = dir.join(format!("{}.tmp", point.hash));
    std::fs::write(&tmp, render_entry(&point.spec, p))
        .map_err(io_err(format!("cannot write cache entry {}", tmp.display())))?;
    std::fs::rename(&tmp, &path)
        .map_err(io_err(format!("cannot commit cache entry {}", path.display())))
}

/// Loads a cached result for `point`, or `None` on any miss.
fn load_entry(dir: &Path, point: &CampaignPoint) -> Option<PointResult> {
    let path = dir.join(format!("{}.point", point.hash));
    let text = std::fs::read_to_string(path).ok()?;
    parse_entry(&text, &point.spec)
}

/// How many of `points` already have a usable cache entry in `dir`
/// (spec-verified, not just file-present) — the read-only probe behind
/// `procsim campaign --dry-run` and the pre-run status line.
pub fn cached_count(points: &[CampaignPoint], dir: &Path) -> usize {
    points.iter().filter(|p| load_entry(dir, p).is_some()).count()
}

// ---------------------------------------------------------------------------
// the runner
// ---------------------------------------------------------------------------

/// Execution knobs of one `run_campaign` invocation (all orthogonal to
/// the results: thread count and caching change wall-clock only).
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Worker threads (`None` = the shared global pool's size).
    pub threads: Option<usize>,
    /// Cache directory for completed points.
    pub cache_dir: PathBuf,
    /// Ignore (and overwrite) existing cache entries.
    pub force: bool,
}

/// The outcome of a campaign run.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// One result per point, in expansion order.
    pub points: Vec<PointResult>,
    /// Which points were served from the cache (parallel to `points`).
    pub from_cache: Vec<bool>,
    /// Points executed this run.
    pub executed: usize,
    /// Points served from the cache.
    pub cached: usize,
    /// The merged CSV (header + one row per point, expansion order).
    pub csv: String,
}

/// Expands `scenario`, loads every cached point, runs the missing ones
/// on the worker pool, persists them, and merges everything into the
/// scenario's CSV layout. The merged CSV is byte-identical to an
/// uninterrupted fresh run at any thread count, however the campaign was
/// previously sliced.
pub fn run_campaign(
    scenario: &Scenario,
    opts: &CampaignOptions,
) -> Result<CampaignOutcome, CampaignError> {
    let points = expand(scenario)?;
    std::fs::create_dir_all(&opts.cache_dir).map_err(io_err(format!(
        "cannot create cache dir {}",
        opts.cache_dir.display()
    )))?;

    let mut results: Vec<Option<PointResult>> = Vec::with_capacity(points.len());
    for point in &points {
        results.push(if opts.force {
            None
        } else {
            load_entry(&opts.cache_dir, point)
        });
    }
    let cached = results.iter().filter(|r| r.is_some()).count();
    let from_cache: Vec<bool> = results.iter().map(Option::is_some).collect();

    // Group the missing points by their replication bounds: each group is
    // one `run_points_on` batch (the controller is per-batch). BTreeMap
    // keeps group order deterministic; within a group, expansion order is
    // preserved. Per-point results are independent of the grouping.
    let mut groups: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
    for (i, r) in results.iter().enumerate() {
        if r.is_none() {
            groups
                .entry((points[i].settings.min_reps, points[i].settings.max_reps))
                .or_default()
                .push(i);
        }
    }
    let executed: usize = groups.values().map(Vec::len).sum();

    if executed > 0 {
        let pool = pool::pool_with(opts.threads);
        for ((min_reps, max_reps), members) in &groups {
            let cfgs: Vec<crate::SimConfig> = members
                .iter()
                .map(|&i| points[i].settings.sim_config(points[i].seed))
                .collect();
            let fresh = run_points_on(&pool, &cfgs, *min_reps, *max_reps);
            for (&i, p) in members.iter().zip(fresh) {
                write_entry(&opts.cache_dir, &points[i], &p)?;
                results[i] = Some(p);
            }
        }
    }

    let merged: Vec<PointResult> = results
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            debug_assert!(r.is_some(), "point {i} neither cached nor executed");
            // procsim-lint: allow(D004): invariant: every point was either loaded from cache or just executed above
            r.expect("invariant: campaign point resolved")
        })
        .collect();
    let csv = render_csv(scenario, &points, &merged)?;

    Ok(CampaignOutcome {
        points: merged,
        from_cache,
        executed,
        cached,
        csv,
    })
}

/// The six response metric names, in `PointResult::means` order.
const METRICS: [&str; 6] = [
    "turnaround",
    "service",
    "utilization",
    "blocking",
    "latency",
    "fragments",
];

/// Assembles the campaign CSV per the scenario's `[output]` spec.
/// Unknown column names are a validation error (named here rather than
/// silently emitting empty cells).
fn render_csv(
    scenario: &Scenario,
    points: &[CampaignPoint],
    results: &[PointResult],
) -> Result<String, CampaignError> {
    let out_spec: &OutputSpec = &scenario.output;

    // header
    let mut header: Vec<String> = Vec::new();
    for col in &out_spec.columns {
        match col.as_str() {
            "means" => header.extend(METRICS.iter().map(|m| m.to_string())),
            "cis" => header.extend(METRICS.iter().map(|m| format!("ci_{m}"))),
            other => header.push(other.to_string()),
        }
    }
    let mut csv = header.join(",");
    csv.push('\n');

    for (point, r) in points.iter().zip(results) {
        let mut row: Vec<String> = Vec::new();
        for col in &out_spec.columns {
            match col.as_str() {
                "series" => row.push(r.label.clone()),
                "topology" => row.push(point.settings.topology.to_string()),
                "load" => row.push(format!("{}", r.load)),
                "reps" => row.push(r.replications.to_string()),
                "means" => row.extend(r.means.iter().map(|m| format!("{m}"))),
                "cis" => row.extend(r.ci95.iter().map(|c| format!("{c}"))),
                other => {
                    if let Some((_, v)) = out_spec.values.iter().find(|(k, _)| k == other) {
                        row.push(v.clone());
                    } else if let Some(v) = point.settings.knob_value(other) {
                        row.push(v);
                    } else {
                        return Err(CampaignError::Scenario(ScenarioError::new(
                            0,
                            format!("output.columns.{other}"),
                            "unknown column (built-ins: series, topology, load, reps, means, \
                             cis; or an [output.values] constant or knob name)",
                        )));
                    }
                }
            }
        }
        csv.push_str(&row.join(","));
        csv.push('\n');
    }
    Ok(csv)
}
