//! Declarative scenario configs — the file format behind
//! `procsim campaign`.
//!
//! A scenario file declares a *matrix* of experimental points (workloads ×
//! strategies × schedulers × topologies × loads × fidelity knobs) plus
//! defaults and targeted overrides, in a small TOML subset that the
//! in-repo parser below reads without any external dependency (the build
//! environment has no registry access, so serde/toml stay out — see
//! `docs/CAMPAIGNS.md` for the format reference):
//!
//! ```toml
//! [campaign]
//! name = "fig09"
//! seed = 0xF1F
//!
//! [defaults]
//! warmup = 30
//! measured = 120
//! min_reps = 2
//! max_reps = 2
//!
//! [matrix]
//! scheduler = ["fcfs", "ssd"]
//! strategy = ["gabl", "paging0", "mbs"]
//! load = [0.004]
//!
//! [output]
//! columns = ["figure", "series", "load", "reps", "means", "cis"]
//! [output.values]
//! figure = "9"
//! ```
//!
//! The TOML subset: `[section]` / `[section.sub]` headers, `key = value`
//! pairs where a value is a quoted string, an integer (decimal or `0x`
//! hex), a float, or a flat array of those; `#` comments. Parse errors
//! are structured ([`ScenarioError`]: 1-based line, dotted place, and
//! message), mirroring the SWF parser's `SwfError` style.
//!
//! **Precedence** (later wins): built-in paper defaults < `[defaults]` <
//! matrix axis value < matching `[override.axis=value]` sections in file
//! order. Every knob is validated as it is applied, so a malformed value
//! is reported against the exact line that set it.
//!
//! [`render`](Scenario::render) writes a scenario back out in canonical
//! form; `parse(render(s)) == s` is pinned by a property test.

use mesh_alloc::StrategyKind;
use mesh_sched::SchedulerKind;
use workload::{ParagonModel, SideDist};
use wormnet::TopologyKind;

use crate::config::{SimConfig, WorkloadSpec};

/// A parse or validation error, pointing at the offending line and the
/// dotted `section.key` place, in the style of `workload::SwfError`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based line number in the scenario text (0 = whole-file error,
    /// e.g. a missing required section).
    pub line: usize,
    /// Dotted location, e.g. `"matrix.strategy"` or `"campaign.seed"`.
    pub place: String,
    /// What went wrong, human-readable.
    pub msg: String,
}

impl core::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.line == 0 {
            write!(f, "scenario: [{}]: {}", self.place, self.msg)
        } else {
            write!(f, "scenario line {}: [{}]: {}", self.line, self.place, self.msg)
        }
    }
}

impl std::error::Error for ScenarioError {}

impl ScenarioError {
    /// Builds an error at `line` (0 = whole-file) about `place`.
    pub fn new(line: usize, place: impl Into<String>, msg: impl Into<String>) -> ScenarioError {
        ScenarioError {
            line,
            place: place.into(),
            msg: msg.into(),
        }
    }
}

/// A scalar value of the scenario format: the three literal kinds the
/// TOML subset distinguishes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string, e.g. `"gabl"`.
    Str(String),
    /// An integer literal (decimal or `0x` hex).
    Int(i64),
    /// A float literal (contains `.` or an exponent).
    Float(f64),
}

impl Value {
    /// Canonical rendering as a TOML literal (strings quoted; floats
    /// always carry a decimal point so they re-parse as floats).
    pub fn render(&self) -> String {
        match self {
            Value::Str(s) => format!("{s:?}"),
            Value::Int(i) => format!("{i}"),
            Value::Float(v) => render_float(*v),
        }
    }

    /// Bare rendering without string quotes — the spelling used in
    /// `[override.axis=value]` section names and output columns.
    pub fn render_bare(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::Int(i) => format!("{i}"),
            Value::Float(v) => render_float(*v),
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
        }
    }
}

/// Shortest round-trip float rendering that always re-parses as a float
/// (Rust's `Display` drops the `.0` on integral values).
fn render_float(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') || s.contains("inf") || s.contains("NaN")
    {
        s
    } else {
        format!("{s}.0")
    }
}

/// One `[override.axis=value]` rule: extra knob assignments applied to
/// every matrix point whose `axis` equals `value` (compared on the bare
/// rendering, so `strategy=mbs` matches the string `"mbs"`).
#[derive(Debug, Clone, PartialEq)]
pub struct OverrideRule {
    /// The matrix axis (or defaults knob) the rule matches on.
    pub axis: String,
    /// Bare-rendered value the axis must equal for the rule to apply.
    pub value: String,
    /// Knob assignments applied to matching points, in file order.
    pub set: Vec<(String, Value)>,
    /// Line of the `[override...]` header, for match-time errors.
    pub line: usize,
}

/// The CSV layout a campaign writes: a column list drawn from the
/// built-ins (`series`, `topology`, `load`, `reps`, `means`, `cis`), the
/// literal `[output.values]` constants, and knob names (rendered from
/// the point's settings).
#[derive(Debug, Clone, PartialEq)]
pub struct OutputSpec {
    /// Column names, in CSV order. `means` and `cis` expand to the six
    /// response metrics (`turnaround..fragments`, `ci_*`).
    pub columns: Vec<String>,
    /// Literal per-campaign constants usable as columns (name, value).
    pub values: Vec<(String, String)>,
    /// Default CSV path (CLI `--csv` overrides;
    /// `results/campaign_<name>.csv` when absent).
    pub csv: Option<String>,
}

impl OutputSpec {
    /// The default column set when a scenario has no `[output]` section.
    pub fn default_columns() -> Vec<String> {
        ["series", "topology", "load", "reps", "means", "cis"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }
}

impl Default for OutputSpec {
    fn default() -> Self {
        OutputSpec {
            columns: Self::default_columns(),
            values: Vec::new(),
            csv: None,
        }
    }
}

/// A parsed scenario file: the declarative description `procsim
/// campaign` expands into experimental points (see
/// [`crate::campaign::expand`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Campaign name (cache directory and default CSV name stem).
    pub name: String,
    /// Master seed; point seeds derive from it by slot (see `[seed]`
    /// axes and [`crate::replicate::derive_seed`]).
    pub seed: u64,
    /// `[defaults]` assignments, in file order.
    pub defaults: Vec<(String, Value)>,
    /// `[matrix]` axes in file order; the cross-product is expanded with
    /// **later axes varying fastest**.
    pub matrix: Vec<(String, Vec<Value>)>,
    /// `[seed] axes = [...]`: the matrix axes that advance the seed slot
    /// (`None` = all axes, i.e. slot = expansion index). Axes listed here
    /// are taken in **matrix order**; excluded axes produce *paired*
    /// points that share workload streams (e.g. a mesh/torus twin).
    pub seed_axes: Option<Vec<String>>,
    /// `[override.axis=value]` rules, in file order.
    pub overrides: Vec<OverrideRule>,
    /// CSV layout.
    pub output: OutputSpec,
}

// ---------------------------------------------------------------------------
// parsing
// ---------------------------------------------------------------------------

/// Splits `line` at the first `#` that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escape = false;
    for (i, c) in line.char_indices() {
        if escape {
            escape = false;
            continue;
        }
        match c {
            '\\' if in_str => escape = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses one scalar literal (string, hex/decimal integer, or float).
fn parse_scalar(tok: &str, line: usize, place: &str) -> Result<Value, ScenarioError> {
    let tok = tok.trim();
    if tok.is_empty() {
        return Err(ScenarioError::new(line, place, "missing value"));
    }
    if let Some(body) = tok.strip_prefix('"') {
        let Some(body) = body.strip_suffix('"') else {
            return Err(ScenarioError::new(
                line,
                place,
                format!("unterminated string {tok:?}"),
            ));
        };
        if body.contains('"') {
            return Err(ScenarioError::new(
                line,
                place,
                format!("stray quote inside string {tok:?}"),
            ));
        }
        // the only escape the renderer emits is none (plain names); keep
        // backslashes verbatim so render/parse stay inverse on plain text
        return Ok(Value::Str(body.to_string()));
    }
    if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        return i64::from_str_radix(hex, 16)
            .map(Value::Int)
            .map_err(|_| ScenarioError::new(line, place, format!("invalid hex integer {tok:?}")));
    }
    if !tok.contains('.') && !tok.contains('e') && !tok.contains('E') {
        if let Ok(i) = tok.parse::<i64>() {
            return Ok(Value::Int(i));
        }
    }
    if let Ok(v) = tok.parse::<f64>() {
        if tok.contains('.') || tok.contains('e') || tok.contains('E') {
            return Ok(Value::Float(v));
        }
    }
    Err(ScenarioError::new(
        line,
        place,
        format!("invalid value {tok:?} (expected a quoted string, integer, float, or [array])"),
    ))
}

/// Parses a value: a flat array `[a, b, c]` or one scalar.
fn parse_value(tok: &str, line: usize, place: &str) -> Result<ParsedValue, ScenarioError> {
    let tok = tok.trim();
    if let Some(body) = tok.strip_prefix('[') {
        let Some(body) = body.strip_suffix(']') else {
            return Err(ScenarioError::new(
                line,
                place,
                format!("unterminated array {tok:?}"),
            ));
        };
        let body = body.trim();
        if body.is_empty() {
            return Ok(ParsedValue::List(Vec::new()));
        }
        // split on commas outside quotes (scalars contain no brackets)
        let mut items = Vec::new();
        let mut depth_str = false;
        let mut start = 0usize;
        for (i, c) in body.char_indices() {
            match c {
                '"' => depth_str = !depth_str,
                ',' if !depth_str => {
                    items.push(parse_scalar(&body[start..i], line, place)?);
                    start = i + 1;
                }
                _ => {}
            }
        }
        items.push(parse_scalar(&body[start..], line, place)?);
        Ok(ParsedValue::List(items))
    } else {
        Ok(ParsedValue::Scalar(parse_scalar(tok, line, place)?))
    }
}

enum ParsedValue {
    Scalar(Value),
    List(Vec<Value>),
}

impl ParsedValue {
    fn scalar(self, line: usize, place: &str) -> Result<Value, ScenarioError> {
        match self {
            ParsedValue::Scalar(v) => Ok(v),
            ParsedValue::List(_) => Err(ScenarioError::new(
                line,
                place,
                "expected a single value, got an array",
            )),
        }
    }

    fn list(self, line: usize, place: &str) -> Result<Vec<Value>, ScenarioError> {
        match self {
            ParsedValue::List(v) => Ok(v),
            ParsedValue::Scalar(v) => Err(ScenarioError::new(
                line,
                place,
                format!("expected an array, got {}", v.type_name()),
            )),
        }
    }
}

/// Validates a section/key name token: bare identifiers only.
fn check_name(tok: &str, line: usize, place: &str) -> Result<(), ScenarioError> {
    if !tok.is_empty()
        && tok
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        Ok(())
    } else {
        Err(ScenarioError::new(
            line,
            place,
            format!("invalid name {tok:?} (letters, digits, '_', '-')"),
        ))
    }
}

impl Scenario {
    /// Parses a scenario from its TOML-subset text. Errors carry the
    /// 1-based line and the dotted place of the offending token.
    pub fn parse(text: &str) -> Result<Scenario, ScenarioError> {
        #[derive(PartialEq)]
        enum Section {
            None,
            Campaign,
            Defaults,
            Matrix,
            Seed,
            Override(usize),
            Output,
            OutputValues,
        }

        let mut name: Option<String> = None;
        let mut seed: Option<u64> = None;
        let mut defaults: Vec<(String, Value)> = Vec::new();
        let mut matrix: Vec<(String, Vec<Value>)> = Vec::new();
        let mut seed_axes: Option<Vec<String>> = None;
        let mut overrides: Vec<OverrideRule> = Vec::new();
        let mut out_columns: Option<Vec<String>> = None;
        let mut out_values: Vec<(String, String)> = Vec::new();
        let mut out_csv: Option<String> = None;
        let mut section = Section::None;
        let mut seen_sections: Vec<String> = Vec::new();

        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }

            if let Some(header) = line.strip_prefix('[') {
                let Some(header) = header.strip_suffix(']') else {
                    return Err(ScenarioError::new(
                        lineno,
                        "section",
                        format!("unterminated section header {line:?}"),
                    ));
                };
                let header = header.trim();
                section = match header {
                    "campaign" => Section::Campaign,
                    "defaults" => Section::Defaults,
                    "matrix" => Section::Matrix,
                    "seed" => Section::Seed,
                    "output" => Section::Output,
                    "output.values" => Section::OutputValues,
                    other => {
                        if let Some(rule) = other.strip_prefix("override.") {
                            let Some((axis, value)) = rule.split_once('=') else {
                                return Err(ScenarioError::new(
                                    lineno,
                                    "override",
                                    format!(
                                        "override section must be [override.axis=value], got {other:?}"
                                    ),
                                ));
                            };
                            check_name(axis.trim(), lineno, "override")?;
                            overrides.push(OverrideRule {
                                axis: axis.trim().to_string(),
                                value: value.trim().to_string(),
                                set: Vec::new(),
                                line: lineno,
                            });
                            section = Section::Override(overrides.len() - 1);
                            continue;
                        }
                        return Err(ScenarioError::new(
                            lineno,
                            "section",
                            format!(
                                "unknown section [{other}] (campaign, defaults, matrix, seed, \
                                 override.axis=value, output, output.values)"
                            ),
                        ));
                    }
                };
                // a duplicate plain section would silently merge; refuse
                if seen_sections.iter().any(|s| s == header) {
                    return Err(ScenarioError::new(
                        lineno,
                        "section",
                        format!("duplicate section [{header}]"),
                    ));
                }
                seen_sections.push(header.to_string());
                continue;
            }

            let Some((key, rawval)) = line.split_once('=') else {
                return Err(ScenarioError::new(
                    lineno,
                    "line",
                    format!("expected `key = value` or a [section] header, got {line:?}"),
                ));
            };
            let key = key.trim();

            match section {
                Section::None => {
                    return Err(ScenarioError::new(
                        lineno,
                        "line",
                        "key/value pair before any [section] header",
                    ));
                }
                Section::Campaign => {
                    let place = format!("campaign.{key}");
                    match key {
                        "name" => {
                            let v = parse_value(rawval, lineno, &place)?.scalar(lineno, &place)?;
                            match v {
                                Value::Str(s) if !s.trim().is_empty() => name = Some(s),
                                Value::Str(_) => {
                                    return Err(ScenarioError::new(
                                        lineno,
                                        place,
                                        "campaign name must be non-empty",
                                    ))
                                }
                                other => {
                                    return Err(ScenarioError::new(
                                        lineno,
                                        place,
                                        format!("name must be a string, got {}", other.type_name()),
                                    ))
                                }
                            }
                        }
                        "seed" => {
                            let v = parse_value(rawval, lineno, &place)?.scalar(lineno, &place)?;
                            match v {
                                Value::Int(i) if i >= 0 => {
                                    // i64 -> u64 is lossless for non-negative values
                                    seed = Some(i.unsigned_abs());
                                }
                                Value::Int(_) => {
                                    return Err(ScenarioError::new(
                                        lineno,
                                        place,
                                        "seed must be non-negative",
                                    ))
                                }
                                other => {
                                    return Err(ScenarioError::new(
                                        lineno,
                                        place,
                                        format!("seed must be an integer, got {}", other.type_name()),
                                    ))
                                }
                            }
                        }
                        other => {
                            return Err(ScenarioError::new(
                                lineno,
                                format!("campaign.{other}"),
                                "unknown key (campaign takes: name, seed)",
                            ))
                        }
                    }
                }
                Section::Defaults => {
                    check_name(key, lineno, "defaults")?;
                    let place = format!("defaults.{key}");
                    let v = parse_value(rawval, lineno, &place)?.scalar(lineno, &place)?;
                    // validate eagerly so the error points at this line
                    PointSettings::check_knob(key, &v, lineno, &place)?;
                    defaults.push((key.to_string(), v));
                }
                Section::Matrix => {
                    check_name(key, lineno, "matrix")?;
                    let place = format!("matrix.{key}");
                    if matrix.iter().any(|(k, _)| k == key) {
                        return Err(ScenarioError::new(lineno, place, "duplicate matrix axis"));
                    }
                    let vs = parse_value(rawval, lineno, &place)?.list(lineno, &place)?;
                    if vs.is_empty() {
                        return Err(ScenarioError::new(
                            lineno,
                            place,
                            "matrix axis needs at least one value",
                        ));
                    }
                    for v in &vs {
                        PointSettings::check_knob(key, v, lineno, &place)?;
                    }
                    matrix.push((key.to_string(), vs));
                }
                Section::Seed => {
                    let place = format!("seed.{key}");
                    if key != "axes" {
                        return Err(ScenarioError::new(lineno, place, "unknown key (seed takes: axes)"));
                    }
                    let vs = parse_value(rawval, lineno, &place)?.list(lineno, &place)?;
                    let mut axes = Vec::new();
                    for v in vs {
                        match v {
                            Value::Str(s) => axes.push(s),
                            other => {
                                return Err(ScenarioError::new(
                                    lineno,
                                    place,
                                    format!("axis names must be strings, got {}", other.type_name()),
                                ))
                            }
                        }
                    }
                    seed_axes = Some(axes);
                }
                Section::Override(idx) => {
                    check_name(key, lineno, "override")?;
                    let rule = &overrides[idx];
                    let place = format!("override.{}={}.{key}", rule.axis, rule.value);
                    let v = parse_value(rawval, lineno, &place)?.scalar(lineno, &place)?;
                    PointSettings::check_knob(key, &v, lineno, &place)?;
                    overrides[idx].set.push((key.to_string(), v));
                }
                Section::Output => {
                    let place = format!("output.{key}");
                    match key {
                        "columns" => {
                            let vs = parse_value(rawval, lineno, &place)?.list(lineno, &place)?;
                            let mut cols = Vec::new();
                            for v in vs {
                                match v {
                                    Value::Str(s) => cols.push(s),
                                    other => {
                                        return Err(ScenarioError::new(
                                            lineno,
                                            place,
                                            format!(
                                                "column names must be strings, got {}",
                                                other.type_name()
                                            ),
                                        ))
                                    }
                                }
                            }
                            if cols.is_empty() {
                                return Err(ScenarioError::new(
                                    lineno,
                                    place,
                                    "columns needs at least one name",
                                ));
                            }
                            out_columns = Some(cols);
                        }
                        "csv" => {
                            match parse_value(rawval, lineno, &place)?.scalar(lineno, &place)? {
                                Value::Str(s) => out_csv = Some(s),
                                other => {
                                    return Err(ScenarioError::new(
                                        lineno,
                                        place,
                                        format!("csv must be a string path, got {}", other.type_name()),
                                    ))
                                }
                            }
                        }
                        other => {
                            return Err(ScenarioError::new(
                                lineno,
                                format!("output.{other}"),
                                "unknown key (output takes: columns, csv)",
                            ))
                        }
                    }
                }
                Section::OutputValues => {
                    check_name(key, lineno, "output.values")?;
                    let place = format!("output.values.{key}");
                    let v = parse_value(rawval, lineno, &place)?.scalar(lineno, &place)?;
                    out_values.push((key.to_string(), v.render_bare()));
                }
            }
        }

        let name = name.ok_or_else(|| {
            ScenarioError::new(0, "campaign.name", "missing (every scenario needs a name)")
        })?;
        let seed =
            seed.ok_or_else(|| ScenarioError::new(0, "campaign.seed", "missing (master seed)"))?;
        if matrix.is_empty() {
            return Err(ScenarioError::new(
                0,
                "matrix",
                "missing or empty (a campaign needs at least one axis)",
            ));
        }
        if let Some(axes) = &seed_axes {
            for a in axes {
                if !matrix.iter().any(|(k, _)| k == a) {
                    return Err(ScenarioError::new(
                        0,
                        "seed.axes",
                        format!("{a:?} is not a matrix axis"),
                    ));
                }
            }
            let mut dedup = axes.clone();
            dedup.sort();
            dedup.dedup();
            if dedup.len() != axes.len() {
                return Err(ScenarioError::new(0, "seed.axes", "duplicate axis name"));
            }
        }
        for rule in &overrides {
            if !matrix.iter().any(|(k, _)| k == &rule.axis)
                && !defaults.iter().any(|(k, _)| k == &rule.axis)
            {
                return Err(ScenarioError::new(
                    rule.line,
                    format!("override.{}={}", rule.axis, rule.value),
                    "axis is neither a matrix axis nor a defaults knob",
                ));
            }
        }

        Ok(Scenario {
            name,
            seed,
            defaults,
            matrix,
            seed_axes,
            overrides,
            output: OutputSpec {
                columns: out_columns.unwrap_or_else(OutputSpec::default_columns),
                values: out_values,
                csv: out_csv,
            },
        })
    }

    /// Reads and parses a scenario file. I/O failures are reported as a
    /// whole-file [`ScenarioError`].
    pub fn load(path: &std::path::Path) -> Result<Scenario, ScenarioError> {
        let text = std::fs::read_to_string(path).map_err(|e| {
            ScenarioError::new(0, "file", format!("cannot read {}: {e}", path.display()))
        })?;
        Scenario::parse(&text)
    }

    /// Renders the scenario in canonical form: fixed section order,
    /// assignments in stored order. `Scenario::parse(s.render()) == s`
    /// for every valid scenario (property-tested).
    pub fn render(&self) -> String {
        use core::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "[campaign]");
        let _ = writeln!(out, "name = {:?}", self.name);
        let _ = writeln!(out, "seed = {}", self.seed);
        if !self.defaults.is_empty() {
            let _ = writeln!(out, "\n[defaults]");
            for (k, v) in &self.defaults {
                let _ = writeln!(out, "{k} = {}", v.render());
            }
        }
        let _ = writeln!(out, "\n[matrix]");
        for (k, vs) in &self.matrix {
            let items: Vec<String> = vs.iter().map(Value::render).collect();
            let _ = writeln!(out, "{k} = [{}]", items.join(", "));
        }
        if let Some(axes) = &self.seed_axes {
            let items: Vec<String> = axes.iter().map(|a| format!("{a:?}")).collect();
            let _ = writeln!(out, "\n[seed]\naxes = [{}]", items.join(", "));
        }
        for rule in &self.overrides {
            let _ = writeln!(out, "\n[override.{}={}]", rule.axis, rule.value);
            for (k, v) in &rule.set {
                let _ = writeln!(out, "{k} = {}", v.render());
            }
        }
        let _ = writeln!(out, "\n[output]");
        let items: Vec<String> = self.output.columns.iter().map(|c| format!("{c:?}")).collect();
        let _ = writeln!(out, "columns = [{}]", items.join(", "));
        if let Some(csv) = &self.output.csv {
            let _ = writeln!(out, "csv = {csv:?}");
        }
        if !self.output.values.is_empty() {
            let _ = writeln!(out, "\n[output.values]");
            for (k, v) in &self.output.values {
                let _ = writeln!(out, "{k} = {v:?}");
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// point settings: the knob vocabulary and its precedence
// ---------------------------------------------------------------------------

/// Which job-stream generator a point uses (the subset of
/// [`WorkloadSpec`] that is expressible declaratively; SWF trace replay
/// keeps its dedicated `procsim trace` front-end).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadName {
    /// Stochastic, uniform side lengths (the paper's default).
    Uniform,
    /// Stochastic, exponential side lengths.
    Exponential,
    /// Synthetic SDSC Paragon trace model.
    Paragon,
}

impl WorkloadName {
    /// Scenario-file spelling.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadName::Uniform => "uniform",
            WorkloadName::Exponential => "exponential",
            WorkloadName::Paragon => "paragon",
        }
    }
}

/// The fully resolved knob set of one experimental point, after
/// precedence (builtin < defaults < matrix < override) has been applied.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSettings {
    /// Mesh width `W`.
    pub mesh_w: u16,
    /// Mesh length `L`.
    pub mesh_l: u16,
    /// Per-node routing delay in cycles.
    pub ts: u32,
    /// Packet length in flits.
    pub plen: u32,
    /// Network topology.
    pub topology: TopologyKind,
    /// Allocation strategy.
    pub strategy: StrategyKind,
    /// Scheduling policy.
    pub scheduler: SchedulerKind,
    /// Job-stream generator.
    pub workload: WorkloadName,
    /// System load (jobs per time unit).
    pub load: f64,
    /// Mean per-processor message count (stochastic workloads).
    pub num_mes: f64,
    /// Seconds of trace runtime per message (paragon workload).
    pub runtime_scale: f64,
    /// Warmup jobs discarded per replication.
    pub warmup: usize,
    /// Measured jobs per replication.
    pub measured: usize,
    /// Minimum replications per point (>= 2).
    pub min_reps: usize,
    /// Replication budget per point.
    pub max_reps: usize,
}

/// Every knob name, in the canonical spec-string order.
pub const KNOBS: [&str; 16] = [
    "mesh_w", "mesh_l", "ts", "plen", "topology", "strategy", "scheduler", "workload", "load",
    "num_mes", "runtime_scale", "warmup", "measured", "min_reps", "max_reps", "seed",
];

impl Default for PointSettings {
    /// Built-in paper defaults: 16×22 mesh, ts 3, Plen 8, mesh topology,
    /// GABL under FCFS, uniform stochastic workload at the CLI's default
    /// light load, quick fidelity.
    fn default() -> Self {
        PointSettings {
            mesh_w: 16,
            mesh_l: 22,
            ts: 3,
            plen: 8,
            topology: TopologyKind::Mesh,
            strategy: StrategyKind::Gabl,
            scheduler: SchedulerKind::Fcfs,
            workload: WorkloadName::Uniform,
            load: 0.0008,
            num_mes: 5.0,
            runtime_scale: 360.0,
            warmup: 100,
            measured: 400,
            min_reps: 3,
            max_reps: 5,
        }
    }
}

fn knob_str<'v>(v: &'v Value, line: usize, place: &str) -> Result<&'v str, ScenarioError> {
    match v {
        Value::Str(s) => Ok(s),
        other => Err(ScenarioError::new(
            line,
            place,
            format!("expected a quoted string, got {}", other.type_name()),
        )),
    }
}

fn knob_pos_float(v: &Value, line: usize, place: &str) -> Result<f64, ScenarioError> {
    let x = match v {
        Value::Float(f) => *f,
        Value::Int(i) => *i as f64,
        Value::Str(_) => {
            return Err(ScenarioError::new(line, place, "expected a number, got string"))
        }
    };
    // `!(x > 0.0)` also rejects NaN
    if x > 0.0 && x.is_finite() {
        Ok(x)
    } else {
        Err(ScenarioError::new(
            line,
            place,
            format!("must be a positive finite number, got {}", v.render_bare()),
        ))
    }
}

fn knob_uint<T: TryFrom<i64>>(v: &Value, line: usize, place: &str) -> Result<T, ScenarioError> {
    match v {
        Value::Int(i) => T::try_from(*i).map_err(|_| {
            ScenarioError::new(line, place, format!("integer {i} out of range for this knob"))
        }),
        other => Err(ScenarioError::new(
            line,
            place,
            format!("expected an integer, got {}", other.type_name()),
        )),
    }
}

impl PointSettings {
    /// Validates one knob assignment without mutating anything — used by
    /// the parser so errors carry the defining line. (`seed` is listed in
    /// [`KNOBS`] for the spec string but is campaign-level, not a point
    /// knob.)
    pub fn check_knob(key: &str, v: &Value, line: usize, place: &str) -> Result<(), ScenarioError> {
        // apply onto a scratch copy: same validation, result discarded
        let mut scratch = PointSettings::default();
        scratch.apply(key, v, line, place)
    }

    /// Applies one knob assignment with validation.
    pub fn apply(&mut self, key: &str, v: &Value, line: usize, place: &str) -> Result<(), ScenarioError> {
        match key {
            "mesh_w" => self.mesh_w = nonzero(knob_uint::<u16>(v, line, place)?, line, place)?,
            "mesh_l" => self.mesh_l = nonzero(knob_uint::<u16>(v, line, place)?, line, place)?,
            "ts" => self.ts = knob_uint::<u32>(v, line, place)?,
            "plen" => self.plen = nonzero(knob_uint::<u32>(v, line, place)?, line, place)?,
            "topology" => {
                self.topology = knob_str(v, line, place)?
                    .parse::<TopologyKind>()
                    .map_err(|e| ScenarioError::new(line, place, e))?;
            }
            "strategy" => {
                self.strategy = knob_str(v, line, place)?
                    .parse::<StrategyKind>()
                    .map_err(|e| ScenarioError::new(line, place, e))?;
            }
            "scheduler" => {
                self.scheduler = knob_str(v, line, place)?
                    .parse::<SchedulerKind>()
                    .map_err(|e| ScenarioError::new(line, place, e))?;
            }
            "workload" => {
                self.workload = match knob_str(v, line, place)? {
                    "uniform" => WorkloadName::Uniform,
                    "exponential" => WorkloadName::Exponential,
                    "paragon" => WorkloadName::Paragon,
                    other => {
                        return Err(ScenarioError::new(
                            line,
                            place,
                            format!("unknown workload {other:?} (uniform, exponential, paragon)"),
                        ))
                    }
                };
            }
            "load" => self.load = knob_pos_float(v, line, place)?,
            "num_mes" => self.num_mes = knob_pos_float(v, line, place)?,
            "runtime_scale" => self.runtime_scale = knob_pos_float(v, line, place)?,
            "warmup" => self.warmup = knob_uint::<usize>(v, line, place)?,
            "measured" => self.measured = nonzero(knob_uint::<usize>(v, line, place)?, line, place)?,
            "min_reps" => {
                let n = knob_uint::<usize>(v, line, place)?;
                if n < 2 {
                    return Err(ScenarioError::new(
                        line,
                        place,
                        "min_reps must be >= 2 (a confidence interval needs two samples)",
                    ));
                }
                self.min_reps = n;
            }
            "max_reps" => self.max_reps = nonzero(knob_uint::<usize>(v, line, place)?, line, place)?,
            other => {
                return Err(ScenarioError::new(
                    line,
                    place,
                    format!("unknown knob {other:?} (known: {})", KNOBS[..15].join(", ")),
                ))
            }
        }
        Ok(())
    }

    /// Cross-knob validation after precedence resolution.
    pub fn validate(&self, place: &str) -> Result<(), ScenarioError> {
        if self.max_reps < self.min_reps {
            return Err(ScenarioError::new(
                0,
                place,
                format!(
                    "max_reps ({}) < min_reps ({}) after overrides",
                    self.max_reps, self.min_reps
                ),
            ));
        }
        Ok(())
    }

    /// The canonical rendered spelling of one knob, as it would appear
    /// in a scenario file (used for knob-named output columns and the
    /// spec string).
    pub fn knob_value(&self, key: &str) -> Option<String> {
        Some(match key {
            "mesh_w" => self.mesh_w.to_string(),
            "mesh_l" => self.mesh_l.to_string(),
            "ts" => self.ts.to_string(),
            "plen" => self.plen.to_string(),
            "topology" => self.topology.to_string(),
            "strategy" => cli_strategy_name(self.strategy),
            "scheduler" => cli_scheduler_name(self.scheduler),
            "workload" => self.workload.name().to_string(),
            "load" => render_float(self.load),
            "num_mes" => render_float(self.num_mes),
            "runtime_scale" => render_float(self.runtime_scale),
            "warmup" => self.warmup.to_string(),
            "measured" => self.measured.to_string(),
            "min_reps" => self.min_reps.to_string(),
            "max_reps" => self.max_reps.to_string(),
            _ => return None,
        })
    }

    /// Builds the [`SimConfig`] of this point (its workload spec and
    /// simulator knobs; `seed` is the derived per-point seed).
    pub fn sim_config(&self, seed: u64) -> SimConfig {
        let workload = match self.workload {
            WorkloadName::Uniform => WorkloadSpec::Stochastic {
                sides: SideDist::Uniform,
                load: self.load,
                num_mes: self.num_mes,
            },
            WorkloadName::Exponential => WorkloadSpec::Stochastic {
                sides: SideDist::Exponential,
                load: self.load,
                num_mes: self.num_mes,
            },
            WorkloadName::Paragon => WorkloadSpec::SyntheticTrace {
                model: ParagonModel::default(),
                load: self.load,
                runtime_scale: self.runtime_scale,
            },
        };
        let mut cfg = SimConfig::paper(self.strategy, self.scheduler, workload, seed);
        cfg.mesh_w = self.mesh_w;
        cfg.mesh_l = self.mesh_l;
        cfg.ts = self.ts;
        cfg.plen = self.plen;
        cfg.topology = self.topology;
        cfg.warmup_jobs = self.warmup;
        cfg.measured_jobs = self.measured;
        cfg
    }
}

fn nonzero<T: PartialEq + From<u8> + core::fmt::Display>(
    v: T,
    line: usize,
    place: &str,
) -> Result<T, ScenarioError> {
    if v == T::from(0u8) {
        Err(ScenarioError::new(line, place, "must be non-zero"))
    } else {
        Ok(v)
    }
}

/// The scenario-file spelling of a strategy (inverse of its `FromStr`).
pub fn cli_strategy_name(s: StrategyKind) -> String {
    match s {
        StrategyKind::Gabl => "gabl".into(),
        StrategyKind::Paging { size_index, .. } => format!("paging{size_index}"),
        StrategyKind::Mbs => "mbs".into(),
        StrategyKind::FirstFit => "ff".into(),
        StrategyKind::BestFit => "bf".into(),
        StrategyKind::Random => "random".into(),
        StrategyKind::Mc => "mc".into(),
    }
}

/// The scenario-file spelling of a scheduler (inverse of its `FromStr`
/// for the named policies; window policies render with their width).
pub fn cli_scheduler_name(s: SchedulerKind) -> String {
    match s {
        SchedulerKind::Fcfs => "fcfs".into(),
        SchedulerKind::Ssd => "ssd".into(),
        SchedulerKind::SjfArea => "sjf".into(),
        SchedulerKind::LjfArea => "ljf".into(),
        SchedulerKind::FcfsWindow(w) => format!("fcfs-window{w}"),
        SchedulerKind::EasyBackfill => "easy".into(),
    }
}
