//! Shared worker pool for replication-level parallelism.
//!
//! Every figure of the paper is a mean over dozens of independent
//! replications per (strategy, scheduler, load) point. Those replications
//! are embarrassingly parallel — each one is a pure function of
//! `(SimConfig, replication seed)` — so the whole workspace shares **one**
//! pool of worker threads through which every experiment submits its
//! `Simulator::run` calls, instead of each figure binary spinning up its
//! own scoped threads.
//!
//! Design rules:
//!
//! * **Workers never coordinate.** A worker thread only ever executes one
//!   closed job (one simulation replication). All wave logic — which
//!   replication to submit next, when a point has converged — lives in the
//!   coordinator on the *caller's* thread (see [`crate::replicate`]).
//!   Consequently nothing submitted to the pool may block on the pool,
//!   and the pool cannot deadlock.
//! * **Thread count never changes results.** The pool only affects *when*
//!   a job runs, never what it computes; result ordering is re-imposed by
//!   the coordinator. `PROCSIM_THREADS=1` is byte-identical to
//!   `PROCSIM_THREADS=64`.
//!
//! The pool size is resolved, in order, from an explicit
//! [`configure_global`] call (the CLI's `--threads N`), the
//! `PROCSIM_THREADS` environment variable, and
//! [`std::thread::available_parallelism`].

use std::collections::VecDeque;
use std::ops::Deref;
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A unit of work: one closed, `'static` closure (in practice one
/// simulation replication).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the submitting side and the worker threads.
struct Shared {
    state: Mutex<State>,
    /// Signalled when a job is pushed or shutdown begins.
    available: Condvar,
}

struct State {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// A fixed-size pool of worker threads executing FIFO-submitted jobs.
///
/// Dropping the pool finishes all queued jobs, then joins every worker.
/// Most callers want the process-wide [`global`] pool rather than a
/// dedicated instance; dedicated instances exist so tests can pin exact
/// thread counts (and prove results do not depend on them).
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns a pool with exactly `threads` worker threads (at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("procsim-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    // procsim-lint: allow(D004): OS thread spawn failing at pool construction is unrecoverable; abort with a clear message
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Queues a job for execution on some worker thread.
    ///
    /// Jobs run in FIFO submission order (up to `threads()` concurrently).
    /// The job must not block on this pool — workers are not reentrant.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        // workers catch job panics, so a poisoned lock still guards
        // coherent state; recover rather than cascade the panic
        let mut st = self
            .shared
            .state
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        st.jobs.push_back(Box::new(job));
        drop(st);
        self.shared.available.notify_one();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .shutdown = true;
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(job) = st.jobs.pop_front() {
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = shared
                    .available
                    .wait(st)
                    .unwrap_or_else(|p| p.into_inner());
            }
        };
        // A panicking job must not kill the worker — on a small pool that
        // would permanently lose capacity and eventually wedge every
        // submitter. Callers that need the panic (e.g. the replication
        // coordinator) catch it themselves and ship it over their result
        // channel; here it is logged and the worker moves on.
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
            eprintln!("procsim worker pool: a submitted job panicked; worker continues");
        }
    }
}

/// Either the process-wide pool or a dedicated one; derefs to
/// [`WorkerPool`] so call sites are agnostic.
pub enum Pool {
    /// Borrow of the process-wide shared pool.
    Global(&'static WorkerPool),
    /// A dedicated pool owned by the caller (joined on drop).
    Owned(WorkerPool),
}

impl Deref for Pool {
    type Target = WorkerPool;
    fn deref(&self) -> &WorkerPool {
        match self {
            Pool::Global(p) => p,
            Pool::Owned(p) => p,
        }
    }
}

static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();

/// Pool size used when nothing was configured: `PROCSIM_THREADS` if set
/// to a positive integer, else the machine's available parallelism.
pub fn default_threads() -> usize {
    std::env::var("PROCSIM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .or_else(|| std::thread::available_parallelism().ok().map(|n| n.get()))
        .unwrap_or(4)
}

/// The process-wide shared worker pool, created on first use with
/// [`default_threads`] workers.
pub fn global() -> &'static WorkerPool {
    GLOBAL.get_or_init(|| WorkerPool::new(default_threads()))
}

/// Initializes the global pool with exactly `threads` workers.
///
/// Returns `true` if the global pool now has that many workers — either
/// because this call created it or it already matched. Returns `false`
/// if the pool was already created with a different size (it is left
/// untouched; callers wanting an exact size then use [`pool_with`]).
pub fn configure_global(threads: usize) -> bool {
    let threads = threads.max(1);
    GLOBAL.get_or_init(|| WorkerPool::new(threads)).threads() == threads
}

/// Resolves a pool for a requested thread count: `None` borrows the
/// shared global pool; an explicit count borrows the global pool only
/// if it already exists with that exact size, and otherwise gets a
/// dedicated pool. An explicit request never creates or pins the global
/// pool — use [`configure_global`] for that (the CLIs do, so their
/// `--threads` sizes the pool every later call shares).
pub fn pool_with(threads: Option<usize>) -> Pool {
    match threads {
        None => Pool::Global(global()),
        Some(n) => match GLOBAL.get() {
            Some(g) if g.threads() == n.max(1) => Pool::Global(g),
            _ => Pool::Owned(WorkerPool::new(n)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn runs_every_submitted_job() {
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..100 {
            let counter = counter.clone();
            let tx = tx.clone();
            pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                let _ = tx.send(());
            });
        }
        for _ in 0..100 {
            rx.recv_timeout(std::time::Duration::from_secs(30))
                .expect("job completion");
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn drop_finishes_queued_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..50 {
                let counter = counter.clone();
                pool.submit(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            // drop: must drain the queue, then join
        }
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn single_thread_pool_preserves_fifo_order() {
        let pool = WorkerPool::new(1);
        let (tx, rx) = mpsc::channel();
        for i in 0..20 {
            let tx = tx.clone();
            pool.submit(move || {
                let _ = tx.send(i);
            });
        }
        drop(tx);
        drop(pool);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn worker_survives_a_panicking_job() {
        let pool = WorkerPool::new(1);
        pool.submit(|| panic!("boom"));
        let (tx, rx) = mpsc::channel();
        pool.submit(move || {
            let _ = tx.send(42);
        });
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(30)),
            Ok(42),
            "the single worker died with the panicking job"
        );
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn pool_with_none_is_global() {
        let p = pool_with(None);
        assert!(p.threads() >= 1);
    }
}
