//! Experiment configuration.

use mesh_alloc::StrategyKind;
use mesh_sched::SchedulerKind;
use workload::{JobSpec, ParagonModel, SideDist, TraceWorkload};
use wormnet::{Pattern, TopologyKind};

/// Which job stream drives a run.
#[derive(Debug, Clone)]
pub enum WorkloadSpec {
    /// The paper's stochastic workload at a given system load
    /// (jobs per time unit).
    Stochastic {
        /// Distribution of requested sub-mesh side lengths.
        sides: SideDist,
        /// System load (jobs per time unit) driving the arrival rate.
        load: f64,
        /// Mean per-processor message count (`num_mes`, paper value 5).
        num_mes: f64,
    },
    /// The synthetic SDSC Paragon trace at a given system load; the
    /// arrival-scaling factor `f` is derived as `1 / (mean_ia · load)`.
    /// Each replication draws a fresh trace from the model.
    SyntheticTrace {
        /// Statistical model of the SDSC Paragon trace to draw from.
        model: ParagonModel,
        /// System load (jobs per time unit); sets the arrival-scaling
        /// factor `f`.
        load: f64,
        /// Seconds of trace runtime per message (DESIGN.md §3; mean
        /// runtime / runtime_scale becomes the mean per-processor message
        /// count).
        runtime_scale: f64,
    },
    /// A fixed externally supplied job stream (e.g. parsed from SWF).
    /// Replication `r` replays the stream starting at job offset
    /// `r × (warmup_jobs + measured_jobs)` (mod stream length) so
    /// independent replications see disjoint segments; when the stream is
    /// too short for disjointness the offset degrades to one job per
    /// replication, keeping replications distinct. A replication supplies
    /// at most one full pass over the stream — ask for more jobs than the
    /// trace holds and the run ends early with fewer measured jobs
    /// (front-ends should cap and warn, as `procsim trace` does).
    FixedTrace(std::sync::Arc<Vec<JobSpec>>),
    /// A real trace (e.g. an SWF archive file) replayed at a target
    /// **offered load**: arrivals are rescaled by the factor
    /// [`TraceWorkload::factor_for_offered_load`] derives (via the
    /// paper's `factor_for_load`) so that the trace-domain offered load
    /// on this mesh equals `load`. Replications replay segments offset
    /// exactly like [`WorkloadSpec::FixedTrace`] (disjoint when the trace
    /// is long enough), and the same one-pass length cap applies.
    ///
    /// Replay is **streaming**: records are parsed (for file-backed
    /// workloads from [`TraceWorkload::open`]) and scaled lazily, one
    /// per arrival, so simulator memory is bounded by the live-job count
    /// — a million-job archive log replays without ever being
    /// materialized. Metrics are bit-identical to pre-scaling the whole
    /// stream into a [`WorkloadSpec::FixedTrace`]
    /// (`crates/core/tests/streaming_trace.rs` proves it).
    Trace {
        /// The wrapped trace.
        trace: std::sync::Arc<TraceWorkload>,
        /// Target offered load ρ — the fraction of machine capacity the
        /// scaled trace occupies in its own time domain (0.7 = 70 %).
        /// Unlike the other variants this is *not* jobs per time unit;
        /// the equivalent arrival-rate load is
        /// [`TraceWorkload::arrival_load`]`(W·L, ρ)`.
        load: f64,
        /// Seconds of trace runtime per message (as in
        /// [`WorkloadSpec::SyntheticTrace`]).
        runtime_scale: f64,
    },
}

impl WorkloadSpec {
    /// The nominal load of this workload: jobs per time unit for the
    /// stochastic and synthetic-trace variants, the offered-load fraction
    /// for [`WorkloadSpec::Trace`].
    pub fn load(&self) -> f64 {
        match self {
            WorkloadSpec::Stochastic { load, .. } => *load,
            WorkloadSpec::SyntheticTrace { load, .. } => *load,
            WorkloadSpec::Trace { load, .. } => *load,
            WorkloadSpec::FixedTrace(jobs) => {
                if jobs.len() < 2 {
                    return 0.0;
                }
                // procsim-lint: allow(D004): invariant: the len < 2 guard above means last() is Some
                let span = jobs
                    .last()
                    .expect("invariant: non-empty job list")
                    .arrive
                    .saturating_sub(jobs[0].arrive);
                if span == 0 {
                    0.0
                } else {
                    (jobs.len() - 1) as f64 / span as f64
                }
            }
        }
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Mesh width `W` (paper: 16).
    pub mesh_w: u16,
    /// Mesh length `L` (paper: 22).
    pub mesh_l: u16,
    /// Per-node routing delay `ts` in cycles (paper: 3).
    pub ts: u32,
    /// Packet length in flits `Plen` (paper: 8).
    pub plen: u32,
    /// Communication pattern (paper: all-to-all).
    pub pattern: Pattern,
    /// Network topology (paper: mesh; torus is the paper's §6 future
    /// work, with dateline virtual channels).
    pub topology: TopologyKind,
    /// Allocation strategy under test.
    pub strategy: StrategyKind,
    /// Scheduling strategy under test.
    pub scheduler: SchedulerKind,
    /// Job stream.
    pub workload: WorkloadSpec,
    /// Completed jobs discarded as warmup before measurement starts.
    pub warmup_jobs: usize,
    /// Completed jobs measured per run (paper: 1000).
    pub measured_jobs: usize,
    /// Master seed; replications derive substreams from it.
    pub seed: u64,
}

impl SimConfig {
    /// Paper defaults: 16×22 mesh, ts = 3, Plen = 8, all-to-all,
    /// 1000 measured jobs after a 200-job warmup.
    pub fn paper(
        strategy: StrategyKind,
        scheduler: SchedulerKind,
        workload: WorkloadSpec,
        seed: u64,
    ) -> Self {
        SimConfig {
            mesh_w: 16,
            mesh_l: 22,
            ts: 3,
            plen: 8,
            pattern: Pattern::AllToAll,
            topology: TopologyKind::Mesh,
            strategy,
            scheduler,
            workload,
            warmup_jobs: 200,
            measured_jobs: 1000,
            seed,
        }
    }

    /// Short label like `"GABL(SSD)"`, the paper's series notation.
    pub fn series_label(&self) -> String {
        format!("{}({})", self.strategy, self.scheduler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = SimConfig::paper(
            StrategyKind::Gabl,
            SchedulerKind::Ssd,
            WorkloadSpec::Stochastic {
                sides: SideDist::Uniform,
                load: 0.01,
                num_mes: 5.0,
            },
            1,
        );
        assert_eq!((c.mesh_w, c.mesh_l), (16, 22));
        assert_eq!(c.ts, 3);
        assert_eq!(c.plen, 8);
        assert_eq!(c.measured_jobs, 1000);
        assert_eq!(c.series_label(), "GABL(SSD)");
    }

    #[test]
    fn fixed_trace_load_estimate() {
        let jobs: Vec<JobSpec> = (0..11)
            .map(|i| JobSpec {
                id: i,
                arrive: i * 100,
                a: 1,
                b: 1,
                msgs_per_node: 1,
                service_demand: 1.0,
            })
            .collect();
        let w = WorkloadSpec::FixedTrace(std::sync::Arc::new(jobs));
        assert!((w.load() - 0.01).abs() < 1e-12);
    }
}
