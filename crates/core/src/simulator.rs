//! The hybrid job-level / flit-level simulator.

use crate::config::{SimConfig, WorkloadSpec};
use crate::metrics::RunMetrics;
use desim::{EventQueue, SimRng, Time};
use mesh2d::Mesh;
use mesh_alloc::{Allocation, AllocationStrategy};
use mesh_sched::{QueuedJob, RunningJob, Scheduler};
use simstats::{TimeWeighted, Welford};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use workload::{trace_to_jobs, JobSpec, StochasticGen};
use wormnet::{pattern_messages, Network, Topology, TopologyKind};

/// Job-level events.
#[derive(Debug)]
enum Ev {
    /// A job arrives and joins the scheduling queue.
    Arrival(JobSpec),
    /// A single-processor job finished its local computation.
    LocalDone(u64),
}

/// Packet tags encode (job id, sender rank) so a delivery can trigger the
/// sender's next message: closed-loop (synchronous) sends, one outstanding
/// packet per processor, as in a compute/send/wait application loop.
const RANK_BITS: u32 = 20;

fn encode_tag(job: u64, rank: usize) -> u64 {
    debug_assert!((rank as u64) < (1 << RANK_BITS));
    (job << RANK_BITS) | rank as u64
}

fn decode_tag(tag: u64) -> (u64, usize) {
    (tag >> RANK_BITS, (tag & ((1 << RANK_BITS) - 1)) as usize)
}

#[derive(Debug)]
struct JobState {
    spec: JobSpec,
    /// Allocation time (service start); `Time::MAX` while queued.
    start: Time,
    alloc: Option<Allocation>,
    /// Per-rank remaining destinations (closed loop: rank r's next message
    /// is sent when its previous one is delivered). The rank → coordinate
    /// map itself lives in `alloc` (cached once per allocation).
    sends: Vec<std::collections::VecDeque<mesh2d::Coord>>,
    /// Packets still in flight or unsent.
    outstanding: u32,
    /// Per-job packet accumulators (folded into run metrics at departure
    /// so only measured jobs contribute).
    lat_sum: u64,
    blk_sum: u64,
    pkts: u64,
}

/// Builds the trace source for replication `rep`: each replication
/// starts `needed` jobs further into the (wrapping) stream so
/// replications see disjoint segments. When the trace is too short for
/// that — `needed` a multiple of its length would leave every
/// replication at offset 0, replaying identical segments — the stride
/// degrades to rotating the stream one job per replication, which keeps
/// replications distinct (the queueing transient differs) even though
/// their job populations overlap.
fn trace_source(jobs: Arc<Vec<JobSpec>>, rep: u64, needed: usize) -> Source {
    let len = jobs.len();
    let (pos, _) = segment_start(len, rep, needed);
    let base = jobs[pos].arrive;
    Source::Fixed {
        jobs,
        pos,
        base,
        shift: 0,
        remaining: len,
    }
}

/// The per-replication segment offset shared by the materialized
/// ([`Source::Fixed`]) and streaming ([`Source::Stream`]) replay paths:
/// `(start index, stride)` for replication `rep` of a `len`-record trace
/// when a run consumes `needed` jobs.
fn segment_start(len: usize, rep: u64, needed: usize) -> (usize, usize) {
    let stride = (needed % len).max(1);
    ((rep as usize).wrapping_mul(stride) % len, stride)
}

/// Where the next arrival comes from.
enum Source {
    Stochastic {
        gen: StochasticGen,
        clock: Time,
        next_id: u64,
    },
    /// A materialized, pre-scaled job list (`FixedTrace` /
    /// `SyntheticTrace`). Also the retained equivalence oracle for
    /// [`Source::Stream`]: both replay segments with identical
    /// rebase/wrap arithmetic, and
    /// `crates/core/tests/streaming_trace.rs` pins the two paths to
    /// bit-identical metrics.
    Fixed {
        jobs: Arc<Vec<JobSpec>>,
        pos: usize,
        /// Arrival-time rebase so the segment starts at 0 (subtracted).
        base: Time,
        /// Accumulated offset added after a wrap-around, so the wrapped
        /// prefix continues seamlessly after the tail with its original
        /// inter-arrival gaps instead of flooding in at the current
        /// clock.
        shift: Time,
        /// Wrap-around segment end (exclusive index distance).
        remaining: usize,
    },
    /// Streaming replay of a [`workload::TraceWorkload`]
    /// (`WorkloadSpec::Trace`): records are parsed and scaled lazily,
    /// one per arrival, so memory holds only the cursor and the live
    /// jobs — never the trace. The cursor's job ids are the record
    /// indexes, which is what makes lazy rebasing possible.
    Stream {
        jobs: workload::ScaledJobs,
        /// Record index of the last record (wrap detection: the cursor
        /// itself is endless).
        last_id: u64,
        /// Arrival-time rebase, captured lazily from the first job the
        /// cursor yields (equivalently to [`Source::Fixed`]'s eager
        /// `jobs[pos].arrive`: the first yielded job *is* record `pos`,
        /// and after a wrap it is record 0).
        base: Option<Time>,
        /// Accumulated post-wrap offset, as in [`Source::Fixed`].
        shift: Time,
        /// Wrap-around segment end (exclusive index distance).
        remaining: usize,
    },
}

/// One simulation replication. Create with [`Simulator::new`], consume
/// with [`Simulator::run`].
pub struct Simulator {
    cfg: SimConfig,
    mesh: Mesh,
    strategy: Box<dyn AllocationStrategy>,
    scheduler: Box<dyn Scheduler>,
    net: Network,
    events: EventQueue<Ev>,
    now: Time,
    wl_rng: SimRng,
    pat_rng: SimRng,
    source: Source,
    /// Live job states keyed by internal id. A BTreeMap, not a HashMap:
    /// `schedule_pass` iterates this map to build the running-job
    /// snapshot for reservation-aware schedulers, and EASY's
    /// reservation sort is stable — HashMap's RandomState order would
    /// escape into backfilling decisions through equal-completion ties.
    /// BTreeMap iterates in internal-id (arrival) order, identically in
    /// every process.
    jobs: BTreeMap<u64, JobState>,
    completed: usize,
    util: TimeWeighted,
    turn: Welford,
    serv: Welford,
    wait: Welford,
    frag: Welford,
    pkt_lat_sum: u64,
    pkt_blk_sum: u64,
    pkt_count: u64,
    /// Monotone internal job-id counter (trace wrap-around can repeat
    /// source ids, so every arrival gets a fresh simulator-side id).
    next_internal_id: u64,
    /// Online EWMA of observed service-time / service-demand, used to
    /// turn demand estimates into time estimates for reservation-aware
    /// schedulers (EASY backfilling).
    demand_time_factor: f64,
    /// Reused scratch buffer for the scheduler's per-pass attempt order
    /// (filled via [`Scheduler::attempt_order_into`], never reallocated
    /// in steady state).
    attempt_buf: Vec<u64>,
    /// Cached running-set snapshot for reservation-aware schedulers,
    /// rebuilt only when a start or departure invalidated it.
    running_snapshot: Vec<RunningJob>,
    /// Set by [`Simulator::start_job`] / [`Simulator::depart`]; cleared
    /// when the snapshot is rebuilt. (`demand_time_factor`, which the
    /// snapshot's completion estimates use, changes only at departures,
    /// so this flag also covers it.)
    snapshot_stale: bool,
    /// Shape-keyed failure memo: `(a, b)` → the mesh release-epoch at
    /// which an `a × b` allocation last failed. While the release epoch
    /// is unchanged the shape is skipped without an allocator call —
    /// exact because every strategy's failure persists until a release
    /// (see [`AllocationStrategy::failure_persists_until_release`]).
    /// Accessed only by key, never iterated, so `HashMap`'s random
    /// bucket order cannot escape into results.
    failed_shapes: HashMap<(u16, u16), u64>,
    /// Whether the active strategy's failures are stable until release
    /// (queried once at construction).
    memo_enabled: bool,
    /// When present, every start decision is appended (differential-test
    /// support; `None` in normal runs, costing one branch per start).
    start_log: Option<Vec<StartDecision>>,
    /// Drive [`Simulator::schedule_pass_reference`] instead of the
    /// memoized pass (the differential oracle).
    reference_pass: bool,
}

/// One job-start decision — the complete observable outcome of a
/// scheduling pass. Recorded by [`Simulator::run_recorded`] /
/// [`Simulator::run_reference_recorded`] so differential tests can
/// assert that the memoized scheduling pass and the reference oracle
/// start the same jobs at the same times with the same allocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartDecision {
    /// Internal (arrival-order) job id.
    pub job_id: u64,
    /// Simulation time the job started service.
    pub at: Time,
    /// Requested shape `(a, b)`.
    pub shape: (u16, u16),
    /// Processors granted.
    pub procs: u32,
    /// Number of disjoint sub-meshes granted.
    pub fragments: usize,
}

impl Simulator {
    /// Builds replication `rep` of the configured experiment. Different
    /// `rep` values use provably independent random substreams — the
    /// replication seed is [`crate::derive_seed`]`(cfg.seed, rep)`, a
    /// SplitMix64-mixed substream rather than an offset of the raw
    /// replication counter, so replication streams never collide across
    /// points that were themselves given derived seeds. The same
    /// `(seed, rep)` pair is fully reproducible.
    pub fn new(cfg: &SimConfig, rep: u64) -> Self {
        let mut rep_rng = SimRng::new(crate::replicate::derive_seed(cfg.seed, rep));
        let mut wl_rng = rep_rng.substream(1);
        let pat_rng = rep_rng.substream(2);
        let strat_seed = rep_rng.substream(3).raw();

        let mesh = Mesh::new(cfg.mesh_w, cfg.mesh_l);
        let strategy = cfg.strategy.build(&mesh, strat_seed);
        let scheduler = cfg.scheduler.build();
        let topo = match cfg.topology {
            TopologyKind::Mesh => Topology::new(cfg.mesh_w, cfg.mesh_l),
            TopologyKind::Torus => Topology::new_torus(cfg.mesh_w, cfg.mesh_l),
        };
        let net = Network::with_topology(topo, cfg.ts);

        let needed = cfg.warmup_jobs + cfg.measured_jobs;
        let source = match &cfg.workload {
            WorkloadSpec::Stochastic {
                sides,
                load,
                num_mes,
            } => Source::Stochastic {
                gen: StochasticGen {
                    mesh_w: cfg.mesh_w,
                    mesh_l: cfg.mesh_l,
                    sides: *sides,
                    load: *load,
                    num_mes_mean: *num_mes,
                },
                clock: 0,
                next_id: 0,
            },
            WorkloadSpec::SyntheticTrace {
                model,
                load,
                runtime_scale,
            } => {
                // fresh trace draw per replication; generate only as many
                // jobs as a run can consume (plus slack for queue growth)
                let mut m = model.clone();
                m.jobs = (needed * 3 / 2 + 100).min(m.jobs.max(needed + 50));
                let records = m.generate(&mut wl_rng.substream(99));
                let f = workload::paragon::factor_for_load(m.mean_interarrival_s, *load);
                let jobs = trace_to_jobs(&records, cfg.mesh_w, cfg.mesh_l, f, *runtime_scale);
                let remaining = jobs.len();
                Source::Fixed {
                    jobs: Arc::new(jobs),
                    pos: 0,
                    base: 0,
                    shift: 0,
                    remaining,
                }
            }
            WorkloadSpec::FixedTrace(jobs) => {
                assert!(!jobs.is_empty(), "empty fixed trace");
                trace_source(jobs.clone(), rep, needed)
            }
            WorkloadSpec::Trace {
                trace,
                load,
                runtime_scale,
            } => {
                // streaming replay: the scaled stream is never
                // materialized — each replication opens its own lazy
                // cursor at its segment offset, and concurrent
                // replications of the same (trace, mesh, rho) share only
                // the trace source (no per-point cache to double-fill)
                let len = trace.len();
                let (pos, _) = segment_start(len, rep, needed);
                Source::Stream {
                    jobs: trace.stream_jobs(cfg.mesh_w, cfg.mesh_l, *load, *runtime_scale, pos),
                    last_id: (len - 1) as u64,
                    base: None,
                    shift: 0,
                    remaining: len,
                }
            }
        };

        let memo_enabled = strategy.failure_persists_until_release();
        Simulator {
            cfg: cfg.clone(),
            mesh,
            strategy,
            scheduler,
            net,
            events: EventQueue::new(),
            now: 0,
            wl_rng,
            pat_rng,
            source,
            jobs: BTreeMap::new(),
            completed: 0,
            util: TimeWeighted::new(0, 0.0),
            turn: Welford::new(),
            serv: Welford::new(),
            wait: Welford::new(),
            frag: Welford::new(),
            pkt_lat_sum: 0,
            pkt_blk_sum: 0,
            pkt_count: 0,
            next_internal_id: 0,
            demand_time_factor: 1.0,
            attempt_buf: Vec::new(),
            running_snapshot: Vec::new(),
            snapshot_stale: false,
            failed_shapes: HashMap::new(),
            memo_enabled,
            start_log: None,
            reference_pass: false,
        }
    }

    /// Schedules the next arrival from the job source, if any.
    fn schedule_next_arrival(&mut self) {
        match &mut self.source {
            Source::Stochastic {
                gen,
                clock,
                next_id,
            } => {
                let job = gen.next_job(*next_id, clock, &mut self.wl_rng);
                *next_id += 1;
                self.events.schedule(job.arrive.max(self.now), Ev::Arrival(job));
            }
            Source::Fixed {
                jobs,
                pos,
                base,
                shift,
                remaining,
            } => {
                if *remaining == 0 {
                    return;
                }
                *remaining -= 1;
                let mut job = jobs[*pos];
                // rebase the segment to start at 0 (saturating: guards
                // against an unsorted stream)
                let rebased = jobs[*pos].arrive.saturating_sub(*base) + *shift;
                job.arrive = self.now.max(rebased);
                job.id = (*pos) as u64; // unique within segment
                *pos += 1;
                if *pos == jobs.len() {
                    // wrap-around: the prefix continues right after the
                    // tail, preserving its original inter-arrival gaps
                    // (rebasing to the tail time, not the current clock,
                    // so no burst of "past" arrivals floods the queue)
                    *pos = 0;
                    *base = jobs[0].arrive;
                    *shift = rebased + 1;
                }
                self.events.schedule(job.arrive.max(self.now), Ev::Arrival(job));
            }
            Source::Stream {
                jobs,
                last_id,
                base,
                shift,
                remaining,
            } => {
                if *remaining == 0 {
                    return;
                }
                *remaining -= 1;
                let Some(mut job) = jobs.next() else {
                    return; // unreachable: the cursor is endless
                };
                // same rebase/wrap arithmetic as Source::Fixed, with the
                // base captured lazily: the first job yielded after
                // construction (or after a wrap) is exactly the record
                // Fixed would have read its base from
                let b = *base.get_or_insert(job.arrive);
                let rebased = job.arrive.saturating_sub(b) + *shift;
                if job.id == *last_id {
                    // wrap-around next: the prefix continues right after
                    // the tail with its original inter-arrival gaps
                    *base = None;
                    *shift = rebased + 1;
                }
                job.arrive = self.now.max(rebased);
                self.events.schedule(job.arrive.max(self.now), Ev::Arrival(job));
            }
        }
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Arrival(spec) => {
                let id = self.next_internal_id;
                self.next_internal_id += 1;
                let mut spec = spec;
                spec.id = id;
                self.scheduler.enqueue(QueuedJob {
                    job_id: id,
                    arrive: spec.arrive,
                    a: spec.a,
                    b: spec.b,
                    service_demand: spec.service_demand,
                });
                self.jobs.insert(
                    id,
                    JobState {
                        spec,
                        start: Time::MAX,
                        alloc: None,
                        sends: Vec::new(),
                        outstanding: 0,
                        lat_sum: 0,
                        blk_sum: 0,
                        pkts: 0,
                    },
                );
                self.schedule_next_arrival();
            }
            Ev::LocalDone(id) => self.depart(id),
        }
    }

    /// One scheduling pass: repeatedly attempt the policy's candidates
    /// until a full pass starts nothing. Dispatches to the memoized pass
    /// or, for differential runs, the pre-memoization reference.
    fn schedule_pass(&mut self) {
        if self.reference_pass {
            self.schedule_pass_reference();
        } else {
            self.schedule_pass_fast();
        }
    }

    /// The memoized scheduling pass. Identical decisions to
    /// [`Simulator::schedule_pass_reference`] (pinned by the
    /// `sched_differential` battery), reached with O(1) rejections:
    ///
    /// * the running-set snapshot for reservation-aware schedulers is
    ///   rebuilt only when a start/departure invalidated it (the clock
    ///   and free count are still passed fresh every pass — EASY's
    ///   backfill decisions depend on `now` even when nothing ran);
    /// * the attempt order is written into a reused buffer instead of a
    ///   fresh `Vec` per loop iteration;
    /// * a shape that exceeds the strategy's O(1) feasibility bound
    ///   ([`AllocationStrategy::feasible`] — free count or free-space
    ///   watermarks) is rejected without a search;
    /// * a shape that failed at the current mesh release-epoch is
    ///   skipped outright: failures are deterministic functions of the
    ///   mesh/strategy state, mutate nothing, and stay failures until a
    ///   release frees processors (successes only shrink free space) —
    ///   so skipping the doomed search is bit-exact. This also covers
    ///   later same-shape jobs within one pass, since the release epoch
    ///   cannot advance mid-pass.
    fn schedule_pass_fast(&mut self) {
        if self.scheduler.wants_observation() {
            if self.snapshot_stale {
                let factor = self.demand_time_factor;
                self.running_snapshot.clear();
                self.running_snapshot.extend(
                    self.jobs
                        .values()
                        .filter(|js| js.start != Time::MAX)
                        .map(|js| RunningJob {
                            procs: js.alloc.as_ref().map_or(0, |a| a.size()),
                            est_completion: js.start
                                + (js.spec.service_demand * factor).round() as Time,
                        }),
                );
                self.snapshot_stale = false;
            }
            self.scheduler
                .observe(&self.running_snapshot, self.mesh.free_count(), self.now);
            self.scheduler.set_demand_time_factor(self.demand_time_factor);
        }
        let mut order = std::mem::take(&mut self.attempt_buf);
        loop {
            self.scheduler.attempt_order_into(&mut order);
            if order.is_empty() {
                break;
            }
            let mut started = false;
            for &id in &order {
                let (a, b) = {
                    // procsim-lint: allow(D004): invariant: every id in attempt_order was enqueued with a JobState in Ev::Arrival
                    let js = self.jobs.get(&id).expect("invariant: queued job without state");
                    (js.spec.a, js.spec.b)
                };
                let rel = self.mesh.release_epoch();
                if self.memo_enabled && self.failed_shapes.get(&(a, b)) == Some(&rel) {
                    continue; // this exact shape already failed since the last release
                }
                if !self.strategy.feasible(&self.mesh, a, b) {
                    if self.memo_enabled {
                        self.failed_shapes.insert((a, b), rel);
                    }
                    continue;
                }
                if let Some(alloc) = self.strategy.allocate(&mut self.mesh, a, b) {
                    // procsim-lint: allow(D004): invariant: id came from this scheduler's own attempt_order this pass
                    self.scheduler.remove(id).expect("invariant: job vanished from queue");
                    self.start_job(id, alloc);
                    started = true;
                    break;
                }
                if self.memo_enabled {
                    self.failed_shapes.insert((a, b), rel);
                }
            }
            if !started {
                break;
            }
        }
        self.attempt_buf = order;
    }

    /// The pre-memoization scheduling pass, kept verbatim as the
    /// differential oracle: rebuilds the observation snapshot and clones
    /// the attempt order every iteration, and runs the full allocator
    /// search for every candidate. `tests/sched_differential.rs` pins
    /// [`Simulator::schedule_pass_fast`] to this across strategies,
    /// schedulers, topologies and seeds.
    fn schedule_pass_reference(&mut self) {
        if self.scheduler.wants_observation() {
            let running: Vec<RunningJob> = self
                .jobs
                .values()
                .filter(|js| js.start != Time::MAX)
                .map(|js| RunningJob {
                    procs: js.alloc.as_ref().map_or(0, |a| a.size()),
                    est_completion: js.start
                        + (js.spec.service_demand * self.demand_time_factor).round() as Time,
                })
                .collect();
            self.scheduler
                .observe(&running, self.mesh.free_count(), self.now);
            self.scheduler.set_demand_time_factor(self.demand_time_factor);
        }
        loop {
            let order = self.scheduler.attempt_order();
            if order.is_empty() {
                return;
            }
            let mut started = false;
            for id in order {
                let (a, b) = {
                    // procsim-lint: allow(D004): invariant: every id in attempt_order was enqueued with a JobState in Ev::Arrival
                    let js = self.jobs.get(&id).expect("invariant: queued job without state");
                    (js.spec.a, js.spec.b)
                };
                if let Some(alloc) = self.strategy.allocate(&mut self.mesh, a, b) {
                    // procsim-lint: allow(D004): invariant: id came from this scheduler's own attempt_order this pass
                    self.scheduler.remove(id).expect("invariant: job vanished from queue");
                    self.start_job(id, alloc);
                    started = true;
                    break;
                }
            }
            if !started {
                return;
            }
        }
    }

    fn start_job(&mut self, id: u64, alloc: Allocation) {
        self.util.update(self.now, self.mesh.used_count() as f64);
        // a new running job invalidates the cached observation snapshot
        self.snapshot_stale = true;
        let (procs, fragments) = (alloc.size(), alloc.fragments());
        // procsim-lint: allow(D004): invariant: start_job is only reached from schedule_pass with a live queued id
        let js = self.jobs.get_mut(&id).expect("invariant: started job without state");
        js.start = self.now;
        js.alloc = Some(alloc);
        if let Some(log) = self.start_log.as_mut() {
            log.push(StartDecision {
                job_id: id,
                at: js.start,
                shape: (js.spec.a, js.spec.b),
                procs,
                fragments,
            });
        }
        // the rank → coordinate layout was expanded once when the
        // allocation was built; every use below indexes the cached slice
        // procsim-lint: allow(D004): invariant: js.alloc was assigned Some two lines above
        let nodes = js.alloc.as_ref().expect("invariant: alloc just set").nodes();
        let msgs_per_node = js.spec.msgs_per_node;
        let msgs = pattern_messages(self.cfg.pattern, nodes, msgs_per_node, &mut self.pat_rng);
        if msgs.is_empty() {
            // single-processor job (or pattern with a silent role):
            // local-computation proxy with the same per-message cost a
            // network-free send would have
            let local = msgs_per_node as Time * (self.cfg.plen + self.cfg.ts) as Time;
            self.events.schedule(self.now + local.max(1), Ev::LocalDone(id));
            return;
        }
        // group messages into per-rank destination queues through a
        // sorted coordinate → rank index (nodes are unique, so binary
        // search replaces the old per-job hash map)
        let mut rank_index: Vec<(mesh2d::Coord, u32)> = nodes
            .iter()
            .enumerate()
            .map(|(r, &c)| (c, r as u32))
            .collect();
        rank_index.sort_unstable_by_key(|&(c, _)| (c.y, c.x));
        let mut sends: Vec<std::collections::VecDeque<mesh2d::Coord>> =
            vec![std::collections::VecDeque::new(); nodes.len()];
        for (src, dst) in &msgs {
            let i = rank_index
                // procsim-lint: allow(D004): invariant: pattern_messages only emits sources drawn from `nodes` itself
                .binary_search_by_key(&(src.y, src.x), |&(c, _)| (c.y, c.x))
                .expect("invariant: pattern message from a coordinate outside the allocation");
            sends[rank_index[i].1 as usize].push_back(*dst);
        }
        // procsim-lint: allow(D005): message count <= nodes * msgs_per_node <= 2^20 * 2^16, and outstanding mirrors per-send decrements
        js.outstanding = msgs.len() as u32;
        js.sends = sends;
        // closed loop: every rank launches its first message; subsequent
        // messages go out as deliveries come back
        // procsim-lint: allow(D004): invariant: alloc was set Some at the top of start_job
        let alloc = js.alloc.as_ref().expect("invariant: alloc set above");
        let first: Vec<(usize, mesh2d::Coord, mesh2d::Coord)> = js
            .sends
            .iter_mut()
            .enumerate()
            .filter_map(|(r, q)| q.pop_front().map(|d| (r, alloc.nodes()[r], d)))
            .collect();
        for (rank, src, dst) in first {
            self.net
                .send(src, dst, self.cfg.plen, encode_tag(id, rank), self.now);
        }
    }

    fn depart(&mut self, id: u64) {
        // a departure invalidates the cached observation snapshot (and,
        // below, possibly the demand->time factor baked into est_completion)
        self.snapshot_stale = true;
        // procsim-lint: allow(D004): invariant: depart is driven by LocalDone/last-packet events of jobs still in the map
        let js = self.jobs.remove(&id).expect("invariant: departure of unknown job");
        debug_assert_eq!(js.outstanding, 0);
        if let Some(alloc) = js.alloc {
            let frags = alloc.fragments();
            self.strategy.release(&mut self.mesh, alloc);
            self.util.update(self.now, self.mesh.used_count() as f64);
            self.completed += 1;
            if self.completed == self.cfg.warmup_jobs {
                // measurement starts now: discard the warmup transient
                self.util.reset_at(self.now);
            }
            if js.spec.service_demand > 0.0 {
                // calibrate the demand->time factor for reservation-aware
                // scheduling (EWMA, alpha = 0.05)
                let obs = (self.now - js.start) as f64 / js.spec.service_demand;
                self.demand_time_factor = 0.95 * self.demand_time_factor + 0.05 * obs;
            }
            if self.completed > self.cfg.warmup_jobs {
                self.turn.push((self.now - js.spec.arrive) as f64);
                self.serv.push((self.now - js.start) as f64);
                self.wait.push((js.start - js.spec.arrive) as f64);
                self.frag.push(frags as f64);
                self.pkt_lat_sum += js.lat_sum;
                self.pkt_blk_sum += js.blk_sum;
                self.pkt_count += js.pkts;
            }
        }
    }

    /// Collects delivered packets; departs jobs whose last packet landed.
    fn absorb_network_completions(&mut self) -> bool {
        let completions = self.net.drain_completions();
        if completions.is_empty() {
            return false;
        }
        let mut done: Vec<u64> = Vec::new();
        for c in completions {
            let (job_id, rank) = decode_tag(c.tag);
            let js = self
                .jobs
                // procsim-lint: allow(D004): invariant: packet tags are minted from live job ids and jobs outlive their outstanding packets
                .get_mut(&job_id)
                .expect("invariant: packet completion for unknown job");
            js.lat_sum += c.latency;
            js.blk_sum += c.blocked;
            js.pkts += 1;
            js.outstanding -= 1;
            // closed loop: the sender's next message goes out now
            if let Some(dst) = js.sends[rank].pop_front() {
                // procsim-lint: allow(D004): invariant: a job with packets in flight was started, so alloc is Some
                let src = js.alloc.as_ref().expect("invariant: send for unallocated job").nodes()[rank];
                self.net
                    .send(src, dst, self.cfg.plen, encode_tag(job_id, rank), self.now);
            }
            if js.outstanding == 0 {
                done.push(job_id);
            }
        }
        let any = !done.is_empty();
        for id in done {
            self.depart(id);
        }
        any
    }

    /// Processes all events due at or before the current time. Returns
    /// whether anything was handled.
    fn drain_due(&mut self) -> bool {
        let mut any = false;
        while let Some((_, ev)) = self.events.pop_due(self.now) {
            self.handle(ev);
            any = true;
        }
        any
    }

    /// Runs like [`Simulator::run`] but also returns the mean hop count
    /// over every delivered packet — a placement-quality diagnostic (the
    /// distance argument of the paper's §6).
    pub fn run_with_netstats(self) -> (RunMetrics, f64) {
        let mut sim = self;
        let metrics = sim.run_inner();
        let c = sim.net.counters();
        let hops = if c.delivered == 0 {
            0.0
        } else {
            c.total_hops as f64 / c.delivered as f64
        };
        (metrics, hops)
    }

    /// Runs the replication to completion and returns its metrics.
    pub fn run(mut self) -> RunMetrics {
        self.run_inner()
    }

    /// Runs to completion recording every start decision (job, time,
    /// shape, placement size/fragments) alongside the metrics. The log
    /// is the memoized pass's observable behaviour: two runs that agree
    /// on it and on the metrics made identical scheduling decisions.
    pub fn run_recorded(mut self) -> (RunMetrics, Vec<StartDecision>) {
        self.start_log = Some(Vec::new());
        let metrics = self.run_inner();
        (metrics, self.start_log.take().unwrap_or_default())
    }

    /// Like [`Simulator::run_recorded`] but drives every pass through
    /// the pre-memoization `schedule_pass_reference` — the oracle side
    /// of the differential battery.
    pub fn run_reference_recorded(mut self) -> (RunMetrics, Vec<StartDecision>) {
        self.reference_pass = true;
        self.start_log = Some(Vec::new());
        let metrics = self.run_inner();
        (metrics, self.start_log.take().unwrap_or_default())
    }

    fn run_inner(&mut self) -> RunMetrics {
        self.schedule_next_arrival();
        let target = self.cfg.warmup_jobs + self.cfg.measured_jobs;
        while self.completed < target {
            if self.net.is_idle() {
                // jump straight to the next job-level event
                match self.events.pop() {
                    Some((t, ev)) => {
                        debug_assert!(t >= self.now);
                        self.now = t;
                        self.handle(ev);
                        self.drain_due();
                        self.schedule_pass();
                    }
                    None => break, // job source exhausted
                }
            } else if let leap @ 1.. = self.net.skippable_cycles() {
                // Event-compressed advancement: the network has proven
                // that the next `leap` cycles are inert (every worm is in
                // routing delay or blocked on a channel that cannot be
                // released before then, and every queued sender is parked
                // behind its own busy injection channel). Since senders
                // became waiter-driven the proof itself is O(1) — parked
                // nodes need no rescan — so leap to the next job-level
                // event or the network's next possible progress, whichever
                // comes first. The skipped cycles are applied to the
                // network in O(1); nothing observable differs from
                // stepping them one by one.
                let mut stop = self.now + leap;
                if let Some(te) = self.events.peek_time() {
                    stop = stop.min(te);
                }
                self.net.skip_cycles(stop - self.now);
                self.now = stop;
                if self.drain_due() {
                    self.schedule_pass();
                }
            } else {
                self.now += 1;
                self.net.step(self.now);
                let departed = self.absorb_network_completions();
                let evented = self.drain_due();
                if departed || evented {
                    self.schedule_pass();
                }
            }
        }

        let measured = self.completed.saturating_sub(self.cfg.warmup_jobs) as u64;
        RunMetrics {
            jobs: measured,
            mean_turnaround: self.turn.mean(),
            mean_service: self.serv.mean(),
            utilization: self.util.average(self.now) / self.mesh.size() as f64,
            mean_packet_blocking: if self.pkt_count == 0 {
                0.0
            } else {
                self.pkt_blk_sum as f64 / self.pkt_count as f64
            },
            mean_packet_latency: if self.pkt_count == 0 {
                0.0
            } else {
                self.pkt_lat_sum as f64 / self.pkt_count as f64
            },
            mean_wait: self.wait.mean(),
            mean_fragments: self.frag.mean(),
            packets: self.pkt_count,
            end_time: self.now,
            turnaround_stats: self.turn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh_alloc::StrategyKind;
    use mesh_sched::SchedulerKind;
    use workload::SideDist;

    fn quick_cfg(strategy: StrategyKind, scheduler: SchedulerKind, load: f64) -> SimConfig {
        let mut c = SimConfig::paper(
            strategy,
            scheduler,
            WorkloadSpec::Stochastic {
                sides: SideDist::Uniform,
                load,
                num_mes: 5.0,
            },
            12345,
        );
        c.warmup_jobs = 20;
        c.measured_jobs = 120;
        c
    }

    #[test]
    fn light_load_completes_all_jobs() {
        let cfg = quick_cfg(StrategyKind::Gabl, SchedulerKind::Fcfs, 0.001);
        let m = Simulator::new(&cfg, 0).run();
        assert_eq!(m.jobs, 120);
        assert!(m.mean_turnaround > 0.0);
        assert!(m.mean_service > 0.0);
        assert!(m.mean_turnaround >= m.mean_service);
        assert!(m.packets > 0);
        assert!(m.utilization > 0.0 && m.utilization <= 1.0);
    }

    #[test]
    fn deterministic_per_seed_and_rep() {
        let cfg = quick_cfg(StrategyKind::Mbs, SchedulerKind::Ssd, 0.005);
        let a = Simulator::new(&cfg, 3).run();
        let b = Simulator::new(&cfg, 3).run();
        assert_eq!(a.mean_turnaround, b.mean_turnaround);
        assert_eq!(a.end_time, b.end_time);
        let c = Simulator::new(&cfg, 4).run();
        assert_ne!(a.end_time, c.end_time, "different reps must differ");
    }

    #[test]
    fn turnaround_grows_with_load() {
        let lo = Simulator::new(&quick_cfg(StrategyKind::Gabl, SchedulerKind::Fcfs, 0.0005), 0)
            .run();
        let hi =
            Simulator::new(&quick_cfg(StrategyKind::Gabl, SchedulerKind::Fcfs, 0.03), 0).run();
        assert!(
            hi.mean_turnaround > lo.mean_turnaround,
            "lo {} hi {}",
            lo.mean_turnaround,
            hi.mean_turnaround
        );
    }

    #[test]
    fn gabl_more_contiguous_than_paging() {
        let g = Simulator::new(&quick_cfg(StrategyKind::Gabl, SchedulerKind::Fcfs, 0.02), 0).run();
        let p = Simulator::new(
            &quick_cfg(
                StrategyKind::Paging {
                    size_index: 0,
                    indexing: mesh_alloc::PageIndexing::RowMajor,
                },
                SchedulerKind::Fcfs,
                0.02,
            ),
            0,
        )
        .run();
        assert!(
            g.mean_fragments < p.mean_fragments,
            "GABL {} vs Paging(0) {}",
            g.mean_fragments,
            p.mean_fragments
        );
    }

    #[test]
    fn service_time_excludes_waiting() {
        // at saturation waiting dominates turnaround but not service
        let cfg = quick_cfg(StrategyKind::Gabl, SchedulerKind::Fcfs, 0.05);
        let m = Simulator::new(&cfg, 0).run();
        assert!(m.mean_wait > 0.0);
        assert!((m.mean_turnaround - (m.mean_service + m.mean_wait)).abs() < 1e-6);
    }

    #[test]
    fn synthetic_trace_runs() {
        let mut cfg = SimConfig::paper(
            StrategyKind::Gabl,
            SchedulerKind::Fcfs,
            WorkloadSpec::SyntheticTrace {
                model: workload::ParagonModel::default(),
                load: 0.002,
                runtime_scale: 60.0,
            },
            7,
        );
        cfg.warmup_jobs = 10;
        cfg.measured_jobs = 60;
        let m = Simulator::new(&cfg, 0).run();
        assert_eq!(m.jobs, 60);
        assert!(m.mean_service > 0.0);
    }

    #[test]
    fn swf_trace_workload_replays_at_offered_load() {
        use workload::TraceWorkload;
        let recs = workload::ParagonModel {
            jobs: 700,
            ..Default::default()
        }
        .generate(&mut desim::SimRng::new(11));
        let trace = Arc::new(TraceWorkload::new(recs).unwrap());
        let run_at = |rho: f64, rep: u64| {
            let mut cfg = SimConfig::paper(
                StrategyKind::Gabl,
                SchedulerKind::Fcfs,
                WorkloadSpec::Trace {
                    trace: trace.clone(),
                    load: rho,
                    runtime_scale: 360.0,
                },
                13,
            );
            cfg.warmup_jobs = 10;
            cfg.measured_jobs = 80;
            assert!((cfg.workload.load() - rho).abs() < 1e-12);
            Simulator::new(&cfg, rep).run()
        };
        let light = run_at(0.3, 0);
        let heavy = run_at(1.5, 0);
        assert_eq!(light.jobs, 80);
        assert_eq!(heavy.jobs, 80);
        assert!(
            heavy.mean_turnaround > light.mean_turnaround,
            "rho=1.5 {} vs rho=0.3 {}",
            heavy.mean_turnaround,
            light.mean_turnaround
        );
        // replications replay disjoint segments
        let rep1 = run_at(0.3, 1);
        assert_ne!(light.end_time, rep1.end_time);
        // same (seed, rep) is reproducible
        let again = run_at(0.3, 0);
        assert_eq!(light.mean_turnaround, again.mean_turnaround);
    }

    #[test]
    fn fixed_trace_replays_segments() {
        let jobs: Vec<JobSpec> = (0..500)
            .map(|i| JobSpec {
                id: i,
                arrive: i * 50,
                a: 1 + (i % 4) as u16,
                b: 1 + (i % 5) as u16,
                msgs_per_node: 3,
                service_demand: 3.0,
            })
            .collect();
        let mut cfg = SimConfig::paper(
            StrategyKind::Mbs,
            SchedulerKind::Fcfs,
            WorkloadSpec::FixedTrace(Arc::new(jobs)),
            7,
        );
        cfg.warmup_jobs = 5;
        cfg.measured_jobs = 50;
        let a = Simulator::new(&cfg, 0).run();
        let b = Simulator::new(&cfg, 1).run();
        assert_eq!(a.jobs, 50);
        assert_eq!(b.jobs, 50);
    }

    #[test]
    fn short_trace_replications_stay_distinct() {
        // needed (warmup + measured) equals the trace length: the naive
        // offset rep*needed % len would be 0 for every replication,
        // making them identical; the stride fallback rotates the stream
        // one job per replication instead
        let jobs: Vec<JobSpec> = (0..60)
            .map(|i| JobSpec {
                id: i,
                arrive: i * 40,
                a: 1 + (i % 5) as u16,
                b: 1 + (i % 7) as u16,
                msgs_per_node: 2,
                service_demand: 2.0,
            })
            .collect();
        let mut cfg = SimConfig::paper(
            StrategyKind::Gabl,
            SchedulerKind::Fcfs,
            WorkloadSpec::FixedTrace(Arc::new(jobs)),
            3,
        );
        cfg.warmup_jobs = 10;
        cfg.measured_jobs = 50;
        let a = Simulator::new(&cfg, 0).run();
        let b = Simulator::new(&cfg, 1).run();
        assert_eq!(a.jobs, 50);
        assert_eq!(b.jobs, 50);
        assert_ne!(
            (a.mean_turnaround, a.end_time),
            (b.mean_turnaround, b.end_time),
            "replications of a short trace must not be identical"
        );
    }

    #[test]
    fn ssd_beats_fcfs_on_turnaround_under_load() {
        // the paper's §4 claim, checked at a congesting load
        let f = Simulator::new(&quick_cfg(StrategyKind::Gabl, SchedulerKind::Fcfs, 0.03), 1).run();
        let s = Simulator::new(&quick_cfg(StrategyKind::Gabl, SchedulerKind::Ssd, 0.03), 1).run();
        assert!(
            s.mean_turnaround < f.mean_turnaround,
            "SSD {} vs FCFS {}",
            s.mean_turnaround,
            f.mean_turnaround
        );
    }
}
