//! Smoke test for the `invariants` feature: drive a small end-to-end
//! simulation through every subsystem that carries deep checks — the
//! mesh free-interval index, the wormhole network's arbitration and
//! waiter-list bookkeeping, and the event queue's monotone clock.
//!
//! Under `cargo test` this is an ordinary regression test; under
//! `cargo test --features invariants` (the CI invariants job) the same
//! run executes with the always-compiled checked paths, so any
//! bookkeeping drift aborts here rather than silently skewing results.

use mesh_sched::SchedulerKind;
use procsim_core::{SimConfig, Simulator, StrategyKind, WorkloadSpec};
use workload::SideDist;

fn small_cfg(strategy: StrategyKind, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper(
        strategy,
        SchedulerKind::Fcfs,
        WorkloadSpec::Stochastic {
            sides: SideDist::Uniform,
            load: 0.003,
            num_mes: 5.0,
        },
        seed,
    );
    cfg.warmup_jobs = 5;
    cfg.measured_jobs = 40;
    cfg
}

#[test]
fn checked_paths_survive_a_small_run() {
    for strategy in StrategyKind::PAPER {
        let m = Simulator::new(&small_cfg(strategy, 99), 0).run();
        assert!(m.jobs >= 40, "{strategy:?}: {m:?}");
        assert!(m.mean_turnaround.is_finite());
    }
}

#[cfg(feature = "invariants")]
#[test]
fn deep_checks_are_callable_directly() {
    use mesh2d::{Coord, Mesh, SubMesh};

    let mut mesh = Mesh::new(8, 8);
    mesh.occupy_submesh(&SubMesh::from_base_size(Coord::new(1, 1), 3, 2));
    mesh.check_index_consistency();
    mesh.release_submesh(&SubMesh::from_base_size(Coord::new(1, 1), 3, 2));
    mesh.check_index_consistency();
}
