//! Differential tests of the campaign cache/resume protocol:
//!
//! * interrupt-then-resume (half the cache entries deleted) merges to a
//!   CSV byte-identical to an uninterrupted run, rerunning only the
//!   missing points;
//! * a changed fidelity knob re-keys — and so reruns — exactly the
//!   affected points;
//! * an extended matrix runs only the new points;
//! * corrupt or stale-spec entries degrade to misses, never to wrong
//!   merges;
//! * thread count and `--force` never change bytes.

use procsim_core::{run_campaign, CampaignOptions, Scenario};
use std::path::{Path, PathBuf};

/// A 4-point campaign tiny enough for a debug-profile test (8×8 mesh,
/// a handful of measured jobs, two replications pinned).
const TINY: &str = "\
[campaign]
name = \"resume_test\"
seed = 99

[defaults]
mesh_w = 8
mesh_l = 8
warmup = 2
measured = 15
min_reps = 2
max_reps = 2

[matrix]
strategy = [\"gabl\", \"mbs\"]
load = [0.002, 0.003]
";

fn scenario() -> Scenario {
    Scenario::parse(TINY).expect("TINY is valid")
}

/// Fresh per-test cache dir under the target tmpdir.
fn cache_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("procsim_campaign_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(dir: &Path, threads: usize) -> CampaignOptions {
    CampaignOptions {
        threads: Some(threads),
        cache_dir: dir.to_path_buf(),
        force: false,
    }
}

fn point_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("cache dir exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "point"))
        .collect();
    files.sort();
    files
}

#[test]
fn interrupted_campaign_resumes_byte_identical() {
    let dir = cache_dir("resume");
    let s = scenario();

    // uninterrupted reference run
    let fresh = run_campaign(&s, &opts(&dir, 2)).expect("fresh run");
    assert_eq!((fresh.executed, fresh.cached), (4, 0));
    assert!(fresh.from_cache.iter().all(|&c| !c));
    let files = point_files(&dir);
    assert_eq!(files.len(), 4, "one cache entry per point");
    // no stray .tmp files survive the atomic rename protocol
    assert!(std::fs::read_dir(&dir)
        .unwrap()
        .all(|e| e.unwrap().path().extension().is_some_and(|x| x == "point")));

    // "kill it mid-way": drop half the entries, resume
    for f in files.iter().step_by(2) {
        std::fs::remove_file(f).unwrap();
    }
    let resumed = run_campaign(&s, &opts(&dir, 2)).expect("resumed run");
    assert_eq!(
        (resumed.executed, resumed.cached),
        (2, 2),
        "resume reruns exactly the missing points"
    );
    assert_eq!(resumed.csv, fresh.csv, "merged CSV is byte-identical");
    for (a, b) in fresh.points.iter().zip(&resumed.points) {
        assert_eq!(a.means, b.means);
        assert_eq!(a.ci95, b.ci95);
        assert_eq!(a.replications, b.replications);
    }

    // warm: everything cached, nothing executed, same bytes again
    let warm = run_campaign(&s, &opts(&dir, 2)).expect("warm run");
    assert_eq!((warm.executed, warm.cached), (0, 4));
    assert!(warm.from_cache.iter().all(|&c| c));
    assert_eq!(warm.csv, fresh.csv);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn thread_count_and_force_never_change_bytes() {
    let dir1 = cache_dir("t1");
    let dir4 = cache_dir("t4");
    let s = scenario();
    let a = run_campaign(&s, &opts(&dir1, 1)).expect("1 thread");
    let b = run_campaign(&s, &opts(&dir4, 4)).expect("4 threads");
    assert_eq!(a.csv, b.csv, "thread count changes wall-clock only");

    // --force ignores (and rewrites) a warm cache, same bytes
    let forced = run_campaign(
        &s,
        &CampaignOptions {
            threads: Some(4),
            cache_dir: dir4.clone(),
            force: true,
        },
    )
    .expect("forced run");
    assert_eq!((forced.executed, forced.cached), (4, 0));
    assert_eq!(forced.csv, a.csv);

    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir4);
}

#[test]
fn changed_fidelity_knob_reruns_exactly_the_affected_points() {
    let dir = cache_dir("invalidate");
    let s = scenario();
    let base = run_campaign(&s, &opts(&dir, 2)).expect("base run");
    assert_eq!((base.executed, base.cached), (4, 0));

    // bump the measured-job budget for MBS points only: their specs (and
    // so cache keys) change; the GABL points must stay cache hits
    let s2 = Scenario::parse(&format!("{TINY}[override.strategy=mbs]\nmeasured = 18\n"))
        .expect("override variant is valid");
    let bumped = run_campaign(&s2, &opts(&dir, 2)).expect("bumped run");
    assert_eq!(
        (bumped.executed, bumped.cached),
        (2, 2),
        "exactly the MBS points rerun"
    );
    for (i, p) in bumped.points.iter().enumerate() {
        let is_mbs = p.label.starts_with("MBS");
        assert_eq!(
            bumped.from_cache[i], !is_mbs,
            "point {i} ({}) cache status",
            p.label
        );
    }
    // the untouched points carry identical statistics through the cache
    for (a, b) in base.points.iter().zip(&bumped.points) {
        if a.label.starts_with("GABL") {
            assert_eq!(a.means, b.means);
            assert_eq!(a.ci95, b.ci95);
        }
    }
    // and rerunning the *original* scenario is still fully warm: the
    // bumped entries landed under new keys without evicting the old ones
    let warm = run_campaign(&s, &opts(&dir, 2)).expect("original still warm");
    assert_eq!((warm.executed, warm.cached), (0, 4));
    assert_eq!(warm.csv, base.csv);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn extended_matrix_runs_only_the_new_points() {
    let dir = cache_dir("extend");
    let s = scenario();
    let base = run_campaign(&s, &opts(&dir, 2)).expect("base run");

    // a third strategy extends the campaign. Appending to the FIRST
    // axis keeps every existing point's seed slot (the slot is the
    // expansion index, later axes fastest), so the old points stay
    // cache hits; appending to a later axis would re-seed the points
    // after the insertion and rerun them — correct either way, cheap
    // only this way (see docs/CAMPAIGNS.md).
    let extended = TINY.replace(
        "strategy = [\"gabl\", \"mbs\"]",
        "strategy = [\"gabl\", \"mbs\", \"ff\"]",
    );
    let s2 = Scenario::parse(&extended).expect("extended scenario is valid");
    let ext = run_campaign(&s2, &opts(&dir, 2)).expect("extended run");
    assert_eq!((ext.executed, ext.cached), (2, 4), "only the new strategy runs");

    // the shared points' CSV rows are identical — the new rows interleave
    // per the expansion order, so compare row sets
    let base_rows: Vec<&str> = base.csv.lines().collect();
    let ext_rows: Vec<&str> = ext.csv.lines().collect();
    assert_eq!(ext_rows.len(), base_rows.len() + 2);
    for row in &base_rows {
        assert!(ext_rows.contains(row), "base row {row:?} survives extension");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_or_mismatched_entries_degrade_to_misses() {
    let dir = cache_dir("corrupt");
    let s = scenario();
    let base = run_campaign(&s, &opts(&dir, 2)).expect("base run");
    let files = point_files(&dir);

    // truncate one entry mid-file; overwrite another with a wrong spec
    // (simulating a hash collision or a stale format)
    let text = std::fs::read_to_string(&files[0]).unwrap();
    std::fs::write(&files[0], &text[..text.len() / 2]).unwrap();
    let text = std::fs::read_to_string(&files[1]).unwrap();
    let swapped = text.replacen("spec ", "spec STALE|", 1);
    std::fs::write(&files[1], swapped).unwrap();

    let again = run_campaign(&s, &opts(&dir, 2)).expect("rerun over damage");
    assert_eq!(
        (again.executed, again.cached),
        (2, 2),
        "damaged entries rerun; intact entries serve"
    );
    assert_eq!(again.csv, base.csv, "damage never corrupts the merge");

    let _ = std::fs::remove_dir_all(&dir);
}
