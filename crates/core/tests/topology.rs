//! `SimConfig`-level integration tests of the torus scenario (the
//! paper's §6 future work promoted to a first-class run dimension):
//! torus runs are sane, bit-identical at any worker-pool size, and the
//! expected mesh-vs-torus physics holds under paired seeds.

use procsim_core::{
    run_points_on, Simulator, SimConfig, StrategyKind, TopologyKind, WorkerPool, WorkloadSpec,
};
use mesh_sched::SchedulerKind;
use simstats::StopReason;
use workload::SideDist;

/// A small paired config: identical everything except the topology, so a
/// mesh run and its torus twin consume identical workload streams.
fn cfg(topology: TopologyKind, strategy: StrategyKind, load: f64, seed: u64) -> SimConfig {
    let mut c = SimConfig::paper(
        strategy,
        SchedulerKind::Fcfs,
        WorkloadSpec::Stochastic {
            sides: SideDist::Uniform,
            load,
            num_mes: 5.0,
        },
        seed,
    );
    c.topology = topology;
    c.warmup_jobs = 10;
    c.measured_jobs = 80;
    c
}

#[test]
fn torus_point_metrics_and_stop_reason_are_sane() {
    let pool = WorkerPool::new(2);
    let points = run_points_on(
        &pool,
        &[cfg(TopologyKind::Torus, StrategyKind::Gabl, 0.002, 77)],
        2,
        4,
    );
    let p = &points[0];
    assert!(matches!(p.stop, StopReason::Converged | StopReason::Budget));
    assert!(p.replications >= 2 && p.replications <= 4);
    assert!(p.turnaround() > 0.0);
    assert!(p.turnaround() >= p.service());
    assert!(p.utilization() > 0.0 && p.utilization() <= 1.0);
    assert!(p.latency() > 0.0, "torus packets must traverse the network");
    assert!(p.fragments() >= 1.0);
}

#[test]
fn torus_replication_completes_all_jobs() {
    let c = cfg(TopologyKind::Torus, StrategyKind::Mbs, 0.005, 3);
    let m = Simulator::new(&c, 0).run();
    assert_eq!(m.jobs, 80);
    assert!(m.packets > 0);
    // reproducible per (seed, rep), distinct across reps — the
    // determinism contract holds on the torus exactly as on the mesh
    let m2 = Simulator::new(&c, 0).run();
    assert_eq!(m.mean_turnaround, m2.mean_turnaround);
    assert_eq!(m.end_time, m2.end_time);
    let m3 = Simulator::new(&c, 1).run();
    assert_ne!(m.end_time, m3.end_time);
}

#[test]
fn torus_batch_is_thread_count_invariant() {
    // a miniature mesh_vs_torus batch: every point's statistics must be
    // byte-identical whatever the worker-pool size
    let cfgs: Vec<SimConfig> = [TopologyKind::Mesh, TopologyKind::Torus]
        .into_iter()
        .flat_map(|t| {
            [0.001, 0.01]
                .into_iter()
                .map(move |load| cfg(t, StrategyKind::Gabl, load, 0xBEEF))
        })
        .collect();
    let p1 = run_points_on(&WorkerPool::new(1), &cfgs, 2, 3);
    let p4 = run_points_on(&WorkerPool::new(4), &cfgs, 2, 3);
    assert_eq!(p1.len(), p4.len());
    for (a, b) in p1.iter().zip(&p4) {
        assert_eq!(a.means, b.means, "thread count changed results");
        assert_eq!(a.ci95, b.ci95);
        assert_eq!(a.replications, b.replications);
        assert_eq!(a.stop, b.stop);
    }
}

#[test]
fn torus_shortens_routes_under_paired_seeds() {
    // wraparound links can only shorten minimal routes; with identical
    // workload streams the torus twin must deliver packets over fewer
    // hops on average, for every paper strategy
    for strategy in StrategyKind::PAPER {
        let seed = 0x70125;
        let load = 0.01; // enough concurrency that allocations disperse
        let (_, mesh_hops) =
            Simulator::new(&cfg(TopologyKind::Mesh, strategy, load, seed), 0).run_with_netstats();
        let (_, torus_hops) =
            Simulator::new(&cfg(TopologyKind::Torus, strategy, load, seed), 0).run_with_netstats();
        assert!(
            torus_hops <= mesh_hops,
            "{strategy}: torus mean hops {torus_hops} > mesh {mesh_hops}"
        );
        assert!(torus_hops > 0.0);
    }
}

#[test]
fn torus_outperforms_mesh_when_saturated() {
    // the §6 conjecture at a congesting load: shorter routes mean less
    // wormhole blocking, so the torus turns jobs around no slower than
    // the mesh under the non-contiguous strategies (paired seeds; GABL
    // keeps allocations compact so the gap there can be within noise)
    let seed = 11;
    let load = 0.03;
    let run = |t| {
        let pool = WorkerPool::new(2);
        run_points_on(&pool, &[cfg(t, StrategyKind::Mbs, load, seed)], 3, 3)
            .pop()
            .unwrap()
    };
    let mesh = run(TopologyKind::Mesh);
    let torus = run(TopologyKind::Torus);
    assert!(
        torus.blocking() < mesh.blocking(),
        "torus blocking {} vs mesh {}",
        torus.blocking(),
        mesh.blocking()
    );
    assert!(
        torus.turnaround() < mesh.turnaround(),
        "torus turnaround {} vs mesh {}",
        torus.turnaround(),
        mesh.turnaround()
    );
}
