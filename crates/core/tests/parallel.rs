//! Determinism guarantees of the parallel replication engine: results,
//! replication counts, and stop reasons must be bit-identical whatever
//! the worker-pool thread count, and identical to the sequential
//! reference path.

use procsim_core::{
    derive_seed, run_point_on, run_point_seq, run_points_controlled, run_points_on, SchedulerKind,
    SideDist, SimConfig, Simulator, StrategyKind, WorkerPool, WorkloadSpec,
};
use simstats::{Replications, StopReason};

fn cfg(strategy: StrategyKind, load: f64, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper(
        strategy,
        SchedulerKind::Fcfs,
        WorkloadSpec::Stochastic {
            sides: SideDist::Uniform,
            load,
            num_mes: 5.0,
        },
        seed,
    );
    cfg.warmup_jobs = 10;
    cfg.measured_jobs = 70;
    cfg
}

#[test]
fn run_point_identical_for_1_2_and_8_threads() {
    let c = cfg(StrategyKind::Gabl, 0.002, 1234);
    let reference = run_point_seq(&c, 3, 8);
    for threads in [1, 2, 8] {
        let pool = WorkerPool::new(threads);
        let p = run_point_on(&pool, &c, 3, 8);
        assert_eq!(p.means, reference.means, "means @ {threads} threads");
        assert_eq!(p.ci95, reference.ci95, "ci95 @ {threads} threads");
        assert_eq!(
            p.replications, reference.replications,
            "replication count @ {threads} threads"
        );
        assert_eq!(p.stop, reference.stop, "stop reason @ {threads} threads");
        assert_eq!(p.label, reference.label);
        assert_eq!(p.load, reference.load);
    }
}

#[test]
fn stop_reason_unchanged_under_parallel_execution() {
    // Budget stop: max_reps too small for a 5 % CI on a short noisy run.
    let noisy = cfg(StrategyKind::Mbs, 0.004, 77);
    let seq = run_point_seq(&noisy, 2, 3);
    let pool = WorkerPool::new(8);
    let par = run_point_on(&pool, &noisy, 2, 3);
    assert_eq!(par.stop, seq.stop);
    assert_eq!(par.replications, seq.replications);

    // Converged stop: a loose precision target the short runs CAN reach,
    // so the CI-width criterion is what stops replication — early
    // stopping must not be washed out by the wave over-submission (extra
    // results are discarded, not recorded). The paper's 5 % target needs
    // 1000-job runs to converge, far too slow for a unit test.
    let steady = cfg(StrategyKind::Gabl, 0.001, 31);
    let make_ctl = || Replications::new(6, 3, 30, 0.5);
    // sequential reference with the same controller
    let mut ctl = make_ctl();
    let mut rep = 0u64;
    while ctl.needs_more() {
        ctl.record(&Simulator::new(&steady, rep).run().response_vector());
        rep += 1;
    }
    assert_eq!(
        ctl.stop_reason(),
        StopReason::Converged,
        "want an early stop case"
    );
    assert!(ctl.count() < 30, "converged before budget");
    let par = run_points_controlled(&pool, std::slice::from_ref(&steady), make_ctl)
        .pop()
        .unwrap();
    assert_eq!(par.stop, StopReason::Converged);
    assert_eq!(par.replications, ctl.count());
    for i in 0..6 {
        assert_eq!(par.means[i], ctl.mean(i));
        assert_eq!(par.ci95[i], ctl.ci95(i));
    }
}

#[test]
fn batch_of_points_matches_sequential_at_any_thread_count() {
    // A miniature figure: 3 strategies × 2 loads, one derived seed per
    // point exactly as run_figure derives them.
    let figure_seed = 0xF16;
    let cfgs: Vec<SimConfig> = [StrategyKind::Gabl, StrategyKind::Mbs]
        .into_iter()
        .flat_map(|s| [0.001, 0.002].into_iter().map(move |l| (s, l)))
        .enumerate()
        .map(|(i, (s, l))| cfg(s, l, derive_seed(figure_seed, i as u64)))
        .collect();
    let reference: Vec<_> = cfgs.iter().map(|c| run_point_seq(c, 2, 4)).collect();
    for threads in [1, 3] {
        let pool = WorkerPool::new(threads);
        let batch = run_points_on(&pool, &cfgs, 2, 4);
        assert_eq!(batch.len(), reference.len());
        for (b, r) in batch.iter().zip(&reference) {
            assert_eq!(b.means, r.means, "@ {threads} threads");
            assert_eq!(b.ci95, r.ci95);
            assert_eq!(b.replications, r.replications);
            assert_eq!(b.stop, r.stop);
        }
    }
}

#[test]
fn points_with_distinct_derived_seeds_use_distinct_streams() {
    // Two points differing only in their derived seed must not replay the
    // same replication streams (the pre-fix footgun: every point of a
    // figure shared cfg.seed, so rep r was the same random run anywhere).
    let a = run_point_seq(&cfg(StrategyKind::Gabl, 0.002, derive_seed(9, 0)), 2, 2);
    let b = run_point_seq(&cfg(StrategyKind::Gabl, 0.002, derive_seed(9, 1)), 2, 2);
    assert_ne!(
        a.means, b.means,
        "identical streams across points: seeding footgun is back"
    );
}
