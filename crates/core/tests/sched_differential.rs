//! Differential battery for the memoized scheduling pass.
//!
//! `Simulator::schedule_pass_fast` (epoch-memoized failure skipping,
//! O(1) watermark feasibility rejection, reused attempt/observation
//! buffers) must make bit-for-bit the same decisions as the
//! pre-memoization `schedule_pass_reference`, which is kept verbatim in
//! the simulator as the oracle. Both sides run the same configuration
//! and the full per-job start logs (job id, start time, request shape,
//! granted processors, fragment count) plus the end-of-run metrics are
//! compared for equality.
//!
//! The matrix deliberately crosses every axis that reaches a different
//! code path in the pass:
//!
//! * all 7 allocation strategies (including both contiguous ones, whose
//!   `feasible` is the watermark test, and Random, whose RNG stream
//!   must not be perturbed by skipped attempts);
//! * all 6 scheduling policies (including EASY backfilling, whose
//!   observation snapshot is the cached part, and the window scheduler,
//!   which exercises within-pass same-shape memo hits);
//! * both topologies;
//! * several seeds per cell, giving well over 100 seed-runs total.
//!
//! Runs in the plain and `--features invariants` CI jobs.

use mesh_sched::SchedulerKind;
use procsim_core::{PageIndexing, SimConfig, Simulator, StrategyKind, WorkloadSpec};
use wormnet::TopologyKind;
use workload::SideDist;

const STRATEGIES: [StrategyKind; 7] = [
    StrategyKind::Gabl,
    StrategyKind::Mbs,
    StrategyKind::Paging {
        size_index: 0,
        indexing: PageIndexing::RowMajor,
    },
    StrategyKind::FirstFit,
    StrategyKind::BestFit,
    StrategyKind::Random,
    StrategyKind::Mc,
];

const SCHEDULERS: [SchedulerKind; 6] = [
    SchedulerKind::Fcfs,
    SchedulerKind::Ssd,
    SchedulerKind::SjfArea,
    SchedulerKind::LjfArea,
    SchedulerKind::FcfsWindow(4),
    SchedulerKind::EasyBackfill,
];

fn cfg(
    strategy: StrategyKind,
    scheduler: SchedulerKind,
    topology: TopologyKind,
    sides: SideDist,
    load: f64,
    seed: u64,
) -> SimConfig {
    let mut cfg = SimConfig::paper(
        strategy,
        scheduler,
        WorkloadSpec::Stochastic {
            sides,
            load,
            num_mes: 5.0,
        },
        seed,
    );
    cfg.topology = topology;
    // heavy enough load on a small mesh that queues build up and the
    // pass actually re-attempts (and memo-skips) blocked shapes
    cfg.mesh_w = 8;
    cfg.mesh_l = 8;
    cfg.warmup_jobs = 3;
    cfg.measured_jobs = 30;
    cfg
}

fn assert_identical(c: &SimConfig, rep: u64, tag: &str) {
    let (fast_m, fast_log) = Simulator::new(c, rep).run_recorded();
    let (ref_m, ref_log) = Simulator::new(c, rep).run_reference_recorded();
    assert_eq!(
        fast_log.len(),
        ref_log.len(),
        "{tag}: start counts diverge ({} vs {})",
        fast_log.len(),
        ref_log.len()
    );
    for (i, (f, r)) in fast_log.iter().zip(&ref_log).enumerate() {
        assert_eq!(f, r, "{tag}: start decision {i} diverges");
    }
    // bit-level metric comparison (f64::to_bits: "identical" here means
    // identical arithmetic, not approximately equal results)
    assert_eq!(fast_m.jobs, ref_m.jobs, "{tag}: job counts diverge");
    assert_eq!(fast_m.packets, ref_m.packets, "{tag}: packet counts diverge");
    assert_eq!(fast_m.end_time, ref_m.end_time, "{tag}: end times diverge");
    let bits = |m: &procsim_core::RunMetrics| {
        [
            m.mean_turnaround,
            m.mean_service,
            m.utilization,
            m.mean_packet_blocking,
            m.mean_packet_latency,
            m.mean_wait,
            m.mean_fragments,
        ]
        .map(f64::to_bits)
    };
    assert_eq!(bits(&fast_m), bits(&ref_m), "{tag}: metrics diverge");
}

/// The full cross: 7 strategies x 6 schedulers x 2 topologies, one
/// moderately loaded run each (84 seed-runs).
#[test]
fn full_matrix_is_bit_identical() {
    for (si, &strategy) in STRATEGIES.iter().enumerate() {
        for (qi, &scheduler) in SCHEDULERS.iter().enumerate() {
            for (ti, &topology) in [TopologyKind::Mesh, TopologyKind::Torus].iter().enumerate() {
                let seed = 0xD1FF + (si * 100 + qi * 10 + ti) as u64;
                let c = cfg(
                    strategy,
                    scheduler,
                    topology,
                    SideDist::Uniform,
                    0.004,
                    seed,
                );
                assert_identical(&c, 0, &format!("{strategy:?}/{scheduler:?}/{topology:?}"));
            }
        }
    }
}

/// Seed sweep over the paper's own cells (3 strategies x 2 schedulers),
/// two side distributions, three seeds, two replications: 72 more
/// seed-runs, pushing the battery past 150 total.
#[test]
fn paper_cells_across_seeds_and_reps() {
    for &strategy in &StrategyKind::PAPER {
        for &scheduler in &SchedulerKind::PAPER {
            for &sides in &[SideDist::Uniform, SideDist::Exponential] {
                for seed in [11u64, 12, 13] {
                    for rep in [0u64, 1] {
                        let c = cfg(
                            strategy,
                            scheduler,
                            TopologyKind::Mesh,
                            sides,
                            0.005,
                            seed,
                        );
                        assert_identical(
                            &c,
                            rep,
                            &format!("{strategy:?}/{scheduler:?}/{sides:?}/s{seed}/r{rep}"),
                        );
                    }
                }
            }
        }
    }
}

/// Saturating load: the queue stays deep for long stretches, so almost
/// every pass exercises the memo-skip path (many repeated shapes) and
/// the contiguous strategies reject through the watermarks.
#[test]
fn saturated_queue_stress() {
    for &strategy in &[StrategyKind::FirstFit, StrategyKind::BestFit, StrategyKind::Gabl] {
        for &scheduler in &[
            SchedulerKind::FcfsWindow(8),
            SchedulerKind::EasyBackfill,
            SchedulerKind::SjfArea,
        ] {
            let c = cfg(
                strategy,
                scheduler,
                TopologyKind::Mesh,
                SideDist::Uniform,
                0.02,
                0xBEEF,
            );
            assert_identical(&c, 0, &format!("sat/{strategy:?}/{scheduler:?}"));
        }
    }
}
