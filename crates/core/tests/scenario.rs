//! Test battery of the scenario format (`procsim campaign` config
//! files): per-field malformed-input coverage with structured errors
//! (line + dotted place, mirroring `SwfError`'s style), the
//! defaults/override precedence table, expansion order and seed-slot
//! semantics, and a property test pinning the canonical-render round
//! trip `parse(render(s)) == s`.

use procsim_core::scenario::{Scenario, ScenarioError, Value};
use procsim_core::{expand, PointSettings};
use proptest::prelude::*;

/// A minimal valid scenario to splice malformed fragments into.
const MINIMAL: &str = "[campaign]\nname = \"t\"\nseed = 1\n\n[matrix]\nload = [0.001]\n";

fn parse_err(text: &str) -> ScenarioError {
    match Scenario::parse(text) {
        Err(e) => e,
        Ok(s) => panic!("expected a parse error, got {s:?}"),
    }
}

/// Asserts one malformed input: the error's line, and substrings of its
/// dotted place and message.
fn assert_err(text: &str, line: usize, place: &str, msg: &str) {
    let e = parse_err(text);
    assert_eq!(e.line, line, "line of {text:?}: got {e}");
    assert!(
        e.place.contains(place),
        "place of {text:?}: want {place:?} in {e}"
    );
    assert!(e.msg.contains(msg), "msg of {text:?}: want {msg:?} in {e}");
}

#[test]
fn minimal_scenario_parses() {
    let s = Scenario::parse(MINIMAL).expect("minimal scenario is valid");
    assert_eq!(s.name, "t");
    assert_eq!(s.seed, 1);
    assert_eq!(s.matrix.len(), 1);
    assert_eq!(s.matrix[0].0, "load");
}

#[test]
fn hex_seed_parses() {
    let s = Scenario::parse(&MINIMAL.replace("seed = 1", "seed = 0xF1F")).unwrap();
    assert_eq!(s.seed, 0xF1F);
}

// ---------------------------------------------------------------------------
// the malformed-input battery: every field, structured errors
// ---------------------------------------------------------------------------

#[test]
fn campaign_section_errors() {
    // missing required fields are whole-file errors (line 0)
    assert_err("[matrix]\nload = [0.001]\n", 0, "campaign.name", "missing");
    assert_err(
        "[campaign]\nname = \"t\"\n[matrix]\nload = [0.001]\n",
        0,
        "campaign.seed",
        "missing",
    );
    assert_err("[campaign]\nname = \"\"\nseed = 1\n", 2, "campaign.name", "non-empty");
    assert_err("[campaign]\nname = 3\nseed = 1\n", 2, "campaign.name", "must be a string");
    assert_err("[campaign]\nname = \"t\"\nseed = -4\n", 3, "campaign.seed", "non-negative");
    assert_err("[campaign]\nname = \"t\"\nseed = 1.5\n", 3, "campaign.seed", "integer");
    assert_err("[campaign]\nname = \"t\"\nseed = 0xZZ\n", 3, "campaign.seed", "invalid hex");
    assert_err("[campaign]\nname = \"t\"\nseed = 1\ncolor = \"red\"\n", 4, "campaign.color", "unknown key");
}

#[test]
fn structural_errors() {
    assert_err("[campaign\nname = \"t\"\n", 1, "section", "unterminated section header");
    assert_err("[frobnicate]\n", 1, "section", "unknown section");
    assert_err("name = \"t\"\n", 1, "line", "before any [section]");
    assert_err("[campaign]\nname \"t\"\n", 2, "line", "expected `key = value`");
    assert_err(
        &format!("{MINIMAL}[matrix]\nts = [3]\n"),
        7,
        "section",
        "duplicate section",
    );
    // a required section missing entirely
    assert_err("[campaign]\nname = \"t\"\nseed = 1\n", 0, "matrix", "at least one axis");
}

#[test]
fn value_literal_errors() {
    assert_err(&MINIMAL.replace("\"t\"", "\"t"), 2, "campaign.name", "unterminated string");
    assert_err(
        &MINIMAL.replace("[0.001]", "[0.001"),
        6,
        "matrix.load",
        "unterminated array",
    );
    assert_err(&MINIMAL.replace("[0.001]", "@bad"), 6, "matrix.load", "invalid value");
    assert_err(&MINIMAL.replace("[0.001]", "[]"), 6, "matrix.load", "at least one value");
    assert_err(&MINIMAL.replace("[0.001]", "0.001"), 6, "matrix.load", "expected an array");
    assert_err(&MINIMAL.replace("seed = 1", "seed = [1]"), 3, "campaign.seed", "single value");
}

#[test]
fn matrix_knob_errors() {
    // every error points at the exact defining line (line 6 of MINIMAL+1 fragment)
    let with = |axis: &str| format!("{MINIMAL}{axis}\n");
    assert_err(&with("load = [0.002]").replace("load = [0.001]", "load = [0.001]\nload = [0.002]"),
        7, "matrix.load", "duplicate matrix axis");
    assert_err(&with("frobnicate = [1]"), 7, "matrix.frobnicate", "unknown knob");
    assert_err(&with("strategy = [\"warpdrive\"]"), 7, "matrix.strategy", "unknown strategy");
    assert_err(&with("strategy = [3]"), 7, "matrix.strategy", "expected a quoted string");
    assert_err(&with("scheduler = [\"lifo\"]"), 7, "matrix.scheduler", "unknown scheduler");
    assert_err(&with("topology = [\"hypercube\"]"), 7, "matrix.topology", "");
    assert_err(&with("workload = [\"netflix\"]"), 7, "matrix.workload", "unknown workload");
    assert_err(&with("mesh_w = [0]"), 7, "matrix.mesh_w", "non-zero");
    assert_err(&with("mesh_w = [-3]"), 7, "matrix.mesh_w", "out of range");
    assert_err(&with("mesh_w = [70000]"), 7, "matrix.mesh_w", "out of range");
    assert_err(&with("min_reps = [1]"), 7, "matrix.min_reps", ">= 2");
    assert_err(&with("num_mes = [0.0]"), 7, "matrix.num_mes", "positive finite");
    assert_err(&with("num_mes = [\"five\"]"), 7, "matrix.num_mes", "expected a number");
    assert_err(&with("measured = [0]"), 7, "matrix.measured", "non-zero");
    assert_err(&with("warmup = [2.5]"), 7, "matrix.warmup", "expected an integer");
}

#[test]
fn defaults_knob_errors() {
    let text = "[campaign]\nname = \"t\"\nseed = 1\n[defaults]\nload = -1.0\n[matrix]\nts = [3]\n".to_string();
    assert_err(&text, 5, "defaults.load", "positive finite");
}

#[test]
fn seed_section_errors() {
    let base = |frag: &str| format!("{MINIMAL}[seed]\n{frag}\n");
    assert_err(&base("axis = [\"load\"]"), 8, "seed.axis", "unknown key");
    assert_err(&base("axes = [\"strategy\"]"), 0, "seed.axes", "not a matrix axis");
    assert_err(
        &base("axes = [\"load\", \"load\"]"),
        0,
        "seed.axes",
        "duplicate axis",
    );
    assert_err(&base("axes = [3]"), 8, "seed.axes", "must be strings");
}

#[test]
fn override_errors() {
    assert_err(
        &format!("{MINIMAL}[override.load]\nwarmup = 1\n"),
        7,
        "override",
        "must be [override.axis=value]",
    );
    assert_err(
        &format!("{MINIMAL}[override.strategy=mbs]\nwarmup = 1\n"),
        7,
        "override.strategy=mbs",
        "neither a matrix axis nor a defaults knob",
    );
    assert_err(
        &format!("{MINIMAL}[override.load=0.001]\nmin_reps = 0\n"),
        8,
        "override.load=0.001.min_reps",
        ">= 2",
    );
}

#[test]
fn output_section_errors() {
    assert_err(&format!("{MINIMAL}[output]\ncolumns = []\n"), 8, "output.columns", "at least one");
    assert_err(&format!("{MINIMAL}[output]\ncolumns = [9]\n"), 8, "output.columns", "must be strings");
    assert_err(&format!("{MINIMAL}[output]\ncsv = 9\n"), 8, "output.csv", "string path");
    assert_err(&format!("{MINIMAL}[output]\nshape = \"wide\"\n"), 8, "output.shape", "unknown key");
}

#[test]
fn error_display_carries_line_and_place() {
    let e = parse_err(&MINIMAL.replace("[0.001]", "[0.0]"));
    let shown = e.to_string();
    assert!(shown.contains("line 6"), "{shown}");
    assert!(shown.contains("[matrix.load]"), "{shown}");
}

// ---------------------------------------------------------------------------
// precedence and expansion semantics
// ---------------------------------------------------------------------------

#[test]
fn precedence_table() {
    // built-in < [defaults] < matrix < [override]; each point witnesses
    // one rung of the ladder
    let s = Scenario::parse(
        "[campaign]\nname = \"prec\"\nseed = 7\n\
         [defaults]\nwarmup = 7\nts = 4\n\
         [matrix]\nmeasured = [50, 60]\n\
         [override.measured=60]\nwarmup = 9\n",
    )
    .unwrap();
    let points = expand(&s).unwrap();
    assert_eq!(points.len(), 2);

    let builtin = PointSettings::default();
    let p0 = &points[0].settings;
    let p1 = &points[1].settings;
    // untouched knobs keep the built-in paper defaults
    assert_eq!(p0.mesh_w, builtin.mesh_w);
    assert_eq!(p0.plen, builtin.plen);
    // [defaults] overrides built-ins
    assert_eq!(p0.ts, 4);
    assert_ne!(builtin.ts, 4);
    // matrix value overrides defaults (and the axis varies per point)
    assert_eq!((p0.measured, p1.measured), (50, 60));
    // the override fires only on the matching point and beats [defaults]
    assert_eq!((p0.warmup, p1.warmup), (7, 9));
}

#[test]
fn expansion_is_later_axes_fastest() {
    let s = Scenario::parse(
        "[campaign]\nname = \"order\"\nseed = 7\n\
         [matrix]\nstrategy = [\"gabl\", \"mbs\"]\nload = [0.001, 0.002, 0.003]\n",
    )
    .unwrap();
    let points = expand(&s).unwrap();
    assert_eq!(points.len(), 6);
    let got: Vec<(String, f64)> = points
        .iter()
        .map(|p| (p.settings.knob_value("strategy").unwrap(), p.settings.load))
        .collect();
    // strategy outer, load fastest — matrix file order
    assert_eq!(got[0], ("gabl".into(), 0.001));
    assert_eq!(got[1], ("gabl".into(), 0.002));
    assert_eq!(got[2], ("gabl".into(), 0.003));
    assert_eq!(got[3], ("mbs".into(), 0.001));
    // default seed slot = expansion index
    for (i, p) in points.iter().enumerate() {
        assert_eq!(p.slot, i as u64);
        assert_eq!(p.index, i);
        assert_eq!(p.seed, procsim_core::derive_seed(7, i as u64));
    }
    // all six points get distinct seeds
    let mut seeds: Vec<u64> = points.iter().map(|p| p.seed).collect();
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(seeds.len(), 6);
}

#[test]
fn seed_axes_pair_excluded_axes() {
    // the mesh_vs_torus pattern: topology excluded from the slot, so a
    // mesh point and its torus twin share the derived seed
    let s = Scenario::parse(
        "[campaign]\nname = \"pair\"\nseed = 7\n\
         [matrix]\ntopology = [\"mesh\", \"torus\"]\nload = [0.001, 0.002]\n\
         [seed]\naxes = [\"load\"]\n",
    )
    .unwrap();
    let points = expand(&s).unwrap();
    assert_eq!(points.len(), 4);
    assert_eq!(points[0].seed, points[2].seed, "mesh/torus twins share streams");
    assert_eq!(points[1].seed, points[3].seed);
    assert_ne!(points[0].seed, points[1].seed, "different loads differ");
    // specs (and so cache keys) still differ: topology is in the spec
    assert_ne!(points[0].hash, points[2].hash);
}

#[test]
fn expand_rejects_contradictory_reps() {
    let s = Scenario::parse(
        "[campaign]\nname = \"bad\"\nseed = 1\n\
         [defaults]\nmax_reps = 3\n\
         [matrix]\nmin_reps = [4]\n",
    )
    .unwrap();
    let e = expand(&s).unwrap_err();
    assert!(e.msg.contains("max_reps"), "{e}");
}

// ---------------------------------------------------------------------------
// canonical-render round trip (property)
// ---------------------------------------------------------------------------

/// Distinct load values (duplicates within an axis would make two
/// expansion points genuinely identical, which is valid but defeats the
/// hash-uniqueness property below).
fn arb_floats() -> impl Strategy<Value = Vec<Value>> {
    collection::vec(1u32..100_000, 1..4).prop_map(|mut ns| {
        ns.sort_unstable();
        ns.dedup();
        ns.into_iter()
            .map(|n| Value::Float(n as f64 / 1000.0))
            .collect()
    })
}

/// A non-empty subset of the strategy spellings (bitmask => no dups).
fn arb_strategy_axis() -> impl Strategy<Value = Vec<Value>> {
    const NAMES: [&str; 8] = [
        "gabl", "paging0", "paging2", "mbs", "ff", "bf", "random", "mc",
    ];
    (1u16..256).prop_map(|mask| {
        NAMES
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, s)| Value::Str((*s).into()))
            .collect()
    })
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        (
            // name, seed, defaults knobs (warmup, optional num_mes)
            (0u32..1000).prop_map(|n| format!("camp{n}")),
            0u64..(1 << 62),
            0u64..300,
            prop_oneof![
                Just(None),
                (1u32..10_000).prop_map(|n| Some(Value::Float(n as f64 / 100.0))),
            ],
        ),
        (
            // matrix: always a load axis; optional strategy/scheduler/topology
            arb_floats(),
            prop_oneof![Just(None), arb_strategy_axis().prop_map(Some)],
            any::<bool>(),
            any::<bool>(),
        ),
        // seed axes bitmask, override toggle, output toggles
        (0u8..8, any::<bool>(), any::<bool>(), any::<bool>()),
    )
        .prop_map(
            |((name, seed, warmup, num_mes), (loads, strategies, scheds, topos), knobs)| {
                let (seed_mask, with_override, with_columns, with_csv) = knobs;
                let mut defaults: Vec<(String, Value)> =
                    vec![("warmup".into(), Value::Int(warmup as i64))];
                if let Some(v) = num_mes {
                    defaults.push(("num_mes".into(), v));
                }
                let mut matrix: Vec<(String, Vec<Value>)> = vec![("load".into(), loads)];
                if let Some(vs) = strategies {
                    matrix.push(("strategy".into(), vs));
                }
                if scheds {
                    matrix.push((
                        "scheduler".into(),
                        vec![Value::Str("fcfs".into()), Value::Str("ssd".into())],
                    ));
                }
                if topos {
                    matrix.push((
                        "topology".into(),
                        vec![Value::Str("mesh".into()), Value::Str("torus".into())],
                    ));
                }
                let seed_axes = if seed_mask == 0 {
                    None
                } else {
                    Some(
                        matrix
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| seed_mask & (1 << i) != 0)
                            .map(|(_, (k, _))| k.clone())
                            .collect(),
                    )
                };
                let overrides = if with_override {
                    vec![procsim_core::scenario::OverrideRule {
                        axis: "load".into(),
                        value: matrix[0].1[0].render_bare(),
                        set: vec![("measured".into(), Value::Int(33))],
                        line: 0,
                    }]
                } else {
                    Vec::new()
                };
                let mut output = procsim_core::scenario::OutputSpec::default();
                if with_columns {
                    output.columns = vec!["series".into(), "load".into(), "means".into()];
                    output.values = vec![("figure".into(), "9".into())];
                }
                if with_csv {
                    output.csv = Some(format!("results/{name}.csv"));
                }
                Scenario {
                    name,
                    seed,
                    defaults,
                    matrix,
                    seed_axes,
                    overrides,
                    output,
                }
            },
        )
}

/// `OverrideRule::line` is provenance (where the section header sat in
/// the file), not content — zero it before comparing a constructed
/// scenario with its re-parse.
fn strip_lines(mut s: Scenario) -> Scenario {
    for r in &mut s.overrides {
        r.line = 0;
    }
    s
}

proptest! {
    #[test]
    fn render_parse_round_trip(s in arb_scenario()) {
        let rendered = s.render();
        let back = Scenario::parse(&rendered)
            .unwrap_or_else(|e| panic!("render produced unparseable text: {e}\n{rendered}"));
        prop_assert_eq!(strip_lines(back.clone()), strip_lines(s));
        // and render∘parse is a fixed point (canonical form is stable)
        prop_assert_eq!(back.render(), rendered);
    }

    #[test]
    fn expansion_size_is_the_axis_product(s in arb_scenario()) {
        let want: usize = s.matrix.iter().map(|(_, vs)| vs.len()).product();
        let points = expand(&s).unwrap();
        prop_assert_eq!(points.len(), want);
        // hashes are unique across the expansion: every point caches
        // under its own key (seed or knobs must differ somewhere)
        let mut hashes: Vec<&str> = points.iter().map(|p| p.hash.as_str()).collect();
        hashes.sort_unstable();
        hashes.dedup();
        prop_assert_eq!(hashes.len(), points.len());
    }
}
