//! End-to-end equivalence of the streaming trace replay
//! (`WorkloadSpec::Trace` → `Source::Stream`, lazy cursor, lazy rebase)
//! against the materialized oracle (`WorkloadSpec::FixedTrace` →
//! `Source::Fixed`, the pre-refactor replay path): for the same config
//! and seeds the two must produce **bit-identical** metrics, per
//! replication, including the segment-offset and wrap-around regimes —
//! and a file-backed workload from [`TraceWorkload::open`] must match a
//! memory-backed one from the same bytes.

use procsim_core::{RunMetrics, SchedulerKind, SimConfig, Simulator, StrategyKind, WorkloadSpec};
use std::sync::Arc;
use workload::{write_swf, ParagonModel, TraceWorkload};

const RUNTIME_SCALE: f64 = 360.0;
const RHO: f64 = 0.7;

/// A ~300-job synthetic Paragon trace, round-tripped through SWF so the
/// memory- and file-backed workloads are built from identical bytes
/// (the writer emits whole seconds).
fn sample_text(jobs: usize) -> String {
    let model = ParagonModel {
        jobs,
        ..ParagonModel::default()
    };
    write_swf(&model.generate(&mut desim::SimRng::new(0x57AE)))
}

fn cfg_with(workload: WorkloadSpec, warmup: usize, measured: usize) -> SimConfig {
    let mut cfg = SimConfig::paper(StrategyKind::Gabl, SchedulerKind::Fcfs, workload, 2024);
    cfg.warmup_jobs = warmup;
    cfg.measured_jobs = measured;
    cfg
}

fn bits(m: &RunMetrics) -> [u64; 6] {
    m.response_vector().map(f64::to_bits)
}

/// Runs replication `rep` of the streaming spec and of the fixed oracle
/// built by materializing the same trace, and asserts exact equality.
fn assert_rep_equivalent(trace: &Arc<TraceWorkload>, warmup: usize, measured: usize, rep: u64) {
    let streaming = cfg_with(
        WorkloadSpec::Trace {
            trace: trace.clone(),
            load: RHO,
            runtime_scale: RUNTIME_SCALE,
        },
        warmup,
        measured,
    );
    let fixed = cfg_with(
        WorkloadSpec::FixedTrace(Arc::new(trace.jobs_at_load(16, 22, RHO, RUNTIME_SCALE))),
        warmup,
        measured,
    );
    let m_stream = Simulator::new(&streaming, rep).run();
    let m_fixed = Simulator::new(&fixed, rep).run();
    assert_eq!(m_stream.jobs, m_fixed.jobs, "rep {rep}: measured job count");
    assert_eq!(
        bits(&m_stream),
        bits(&m_fixed),
        "rep {rep}: streaming replay must be bit-identical to the \
         materialized oracle (stream {:?} vs fixed {:?})",
        m_stream.response_vector(),
        m_fixed.response_vector()
    );
}

#[test]
fn streaming_replay_matches_materialized_oracle() {
    let trace = Arc::new(TraceWorkload::from_swf(&sample_text(300)).unwrap());
    // reps 0..3 exercise segment offset 0 and mid-trace starts; the
    // budget (40 + 160 = 200 of 300) keeps offset reps crossing the
    // trace end, so the lazy wrap rebase runs too
    for rep in 0..3 {
        assert_rep_equivalent(&trace, 40, 160, rep);
    }
}

#[test]
fn streaming_replay_matches_oracle_through_wraparound() {
    // a short trace with a budget near its length: every offset
    // replication wraps past the end and continues into the prefix —
    // the regime where Stream's lazy base recapture must reproduce
    // Fixed's eager `jobs[0].arrive` rebase exactly
    let trace = Arc::new(TraceWorkload::from_swf(&sample_text(80)).unwrap());
    for rep in 0..4 {
        assert_rep_equivalent(&trace, 10, 45, rep);
    }
}

#[test]
fn file_backed_workload_matches_memory_backed() {
    let text = sample_text(250);
    let dir = std::env::temp_dir();
    let path = dir.join(format!("procsim_streaming_trace_{}.swf", std::process::id()));
    std::fs::write(&path, &text).unwrap();

    let memory = Arc::new(TraceWorkload::from_swf(&text).unwrap());
    let file = Arc::new(TraceWorkload::open(&path).unwrap());
    assert!(file.is_streaming(), "sorted SWF file must stream");

    for rep in 0..2 {
        let run = |trace: &Arc<TraceWorkload>| {
            let cfg = cfg_with(
                WorkloadSpec::Trace {
                    trace: trace.clone(),
                    load: RHO,
                    runtime_scale: RUNTIME_SCALE,
                },
                30,
                120,
            );
            Simulator::new(&cfg, rep).run()
        };
        let m_mem = run(&memory);
        let m_file = run(&file);
        assert_eq!(
            bits(&m_mem),
            bits(&m_file),
            "rep {rep}: file-backed streaming replay must match memory-backed"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn concurrent_replications_share_one_workload() {
    // several replications replaying the same Arc'd workload from
    // different threads must reproduce the sequential metrics exactly —
    // there is no per-(mesh, load) cache left to race on, only the
    // shared record source
    let trace = Arc::new(TraceWorkload::from_swf(&sample_text(200)).unwrap());
    let cfg = |trace: &Arc<TraceWorkload>| {
        cfg_with(
            WorkloadSpec::Trace {
                trace: trace.clone(),
                load: RHO,
                runtime_scale: RUNTIME_SCALE,
            },
            20,
            80,
        )
    };
    let sequential: Vec<[u64; 6]> = (0..4)
        .map(|rep| bits(&Simulator::new(&cfg(&trace), rep).run()))
        .collect();
    let handles: Vec<_> = (0..4)
        .map(|rep| {
            let trace = trace.clone();
            let cfg = cfg(&trace);
            std::thread::spawn(move || bits(&Simulator::new(&cfg, rep).run()))
        })
        .collect();
    let concurrent: Vec<[u64; 6]> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(concurrent, sequential);
}
