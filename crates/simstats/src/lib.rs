//! # simstats — output analysis for simulation experiments
//!
//! Implements the paper's output-analysis protocol (§5): "Each simulation
//! run consists of 1000 completed jobs. Simulation results are averaged
//! over enough independent runs so that the confidence level is 95% and
//! the relative errors do not exceed 5%."
//!
//! * [`Welford`] — numerically stable online mean/variance,
//! * [`student_t_95`] — two-sided 95 % Student-t critical values,
//! * [`Replications`] — the run-until-precise controller,
//! * [`TimeWeighted`] — time integrals for utilization,
//! * [`Histogram`] — fixed-width distribution summaries.

pub mod histogram;
pub mod replication;
pub mod timeweighted;
pub mod welford;

pub use histogram::Histogram;
pub use replication::{Replications, StopReason};
pub use timeweighted::TimeWeighted;
pub use welford::Welford;

/// Two-sided 95 % Student-t critical value for `df` degrees of freedom.
///
/// Exact table entries through df = 30, then the normal limit. This is
/// the constant used to form the paper's 95 % confidence intervals.
pub fn student_t_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
        2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[df - 1],
        31..=40 => 2.021,
        41..=60 => 2.000,
        61..=120 => 1.980,
        _ => 1.960,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_table_monotone_decreasing() {
        let mut last = f64::INFINITY;
        for df in 1..200 {
            let t = student_t_95(df);
            assert!(t <= last + 1e-9, "df {df}");
            last = t;
        }
    }

    #[test]
    fn t_known_values() {
        assert_eq!(student_t_95(1), 12.706);
        assert_eq!(student_t_95(9), 2.262);
        assert_eq!(student_t_95(30), 2.042);
        assert_eq!(student_t_95(1000), 1.960);
        assert!(student_t_95(0).is_infinite());
    }
}
