//! Time-weighted averages (the paper's mean system utilization).

use desim::Time;

/// Integrates a piecewise-constant value over simulated time. Used for
/// "the percentage of processors that are utilized over time" (paper §5):
/// feed it the allocated-processor count at every change and read the
/// time average.
#[derive(Debug, Clone, Copy)]
pub struct TimeWeighted {
    start: Time,
    last_t: Time,
    last_v: f64,
    integral: f64,
}

impl TimeWeighted {
    /// Starts integrating at `t0` with initial value `v0`.
    pub fn new(t0: Time, v0: f64) -> Self {
        TimeWeighted {
            start: t0,
            last_t: t0,
            last_v: v0,
            integral: 0.0,
        }
    }

    /// Records that the value changed to `v` at time `t`.
    ///
    /// # Panics
    /// Panics if `t` precedes the previous update.
    pub fn update(&mut self, t: Time, v: f64) {
        assert!(t >= self.last_t, "time went backwards");
        self.integral += self.last_v * (t - self.last_t) as f64;
        self.last_t = t;
        self.last_v = v;
    }

    /// Time average over `[start, t]` (extends the last value to `t`).
    pub fn average(&self, t: Time) -> f64 {
        assert!(t >= self.last_t);
        let total = (t - self.start) as f64;
        if total == 0.0 {
            return self.last_v;
        }
        (self.integral + self.last_v * (t - self.last_t) as f64) / total
    }

    /// Restarts the integral at `t` keeping the current value — used to
    /// discard a warmup transient.
    pub fn reset_at(&mut self, t: Time) {
        assert!(t >= self.last_t);
        self.start = t;
        self.last_t = t;
        self.integral = 0.0;
    }

    /// The current (last recorded) value.
    pub fn current(&self) -> f64 {
        self.last_v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_value() {
        let w = TimeWeighted::new(0, 5.0);
        assert_eq!(w.average(100), 5.0);
    }

    #[test]
    fn step_function() {
        let mut w = TimeWeighted::new(0, 0.0);
        w.update(10, 100.0); // 0 for 10, then 100
        assert_eq!(w.average(20), (0.0 * 10.0 + 100.0 * 10.0) / 20.0);
        w.update(20, 50.0);
        assert_eq!(w.average(40), (100.0 * 10.0 + 50.0 * 20.0) / 40.0);
    }

    #[test]
    fn zero_span_returns_current() {
        let w = TimeWeighted::new(7, 3.0);
        assert_eq!(w.average(7), 3.0);
    }

    #[test]
    fn warmup_reset() {
        let mut w = TimeWeighted::new(0, 352.0); // warmup at full usage
        w.update(50, 100.0);
        w.reset_at(100); // discard everything before t=100
        w.update(150, 200.0);
        // from 100: 100.0 for 50 cycles, then 200.0 for 50 cycles
        assert_eq!(w.average(200), 150.0);
    }

    #[test]
    fn repeated_updates_same_time() {
        let mut w = TimeWeighted::new(0, 1.0);
        w.update(10, 2.0);
        w.update(10, 3.0);
        assert_eq!(w.average(20), (1.0 * 10.0 + 3.0 * 10.0) / 20.0);
    }

    #[test]
    #[should_panic]
    fn backwards_time_panics() {
        let mut w = TimeWeighted::new(10, 0.0);
        w.update(5, 1.0);
    }
}
