//! Numerically stable online mean and variance (Welford's algorithm).

/// Online accumulator for mean, variance and extrema.
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Smallest observation (+inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Half-width of the 95 % confidence interval on the mean.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            f64::INFINITY
        } else {
            crate::student_t_95(self.n as usize - 1) * self.std_err()
        }
    }

    /// Relative error: CI half-width / |mean| (infinite for mean 0).
    pub fn relative_error(&self) -> f64 {
        let m = self.mean().abs();
        if m == 0.0 {
            f64::INFINITY
        } else {
            self.ci95_half_width() / m
        }
    }

    /// Merges another accumulator (parallel reduction; extrema included).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn matches_naive_two_pass() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.7 + 3.0).collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let (m, v) = naive(&xs);
        assert!((w.mean() - m).abs() < 1e-9);
        assert!((w.variance() - v).abs() < 1e-6);
        assert_eq!(w.count(), 1000);
    }

    #[test]
    fn stable_for_large_offsets() {
        let mut w = Welford::new();
        for i in 0..10_000 {
            w.push(1e9 + (i % 7) as f64);
        }
        // variance of the pattern 0..6 uniformly repeated is 4
        assert!((w.variance() - 4.0003).abs() < 0.01, "{}", w.variance());
    }

    #[test]
    fn extrema() {
        let mut w = Welford::new();
        for x in [3.0, -1.0, 7.5, 2.0] {
            w.push(x);
        }
        assert_eq!(w.min(), -1.0);
        assert_eq!(w.max(), 7.5);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let mut w = Welford::new();
        let mut prev = f64::INFINITY;
        let mut seed = 5u64;
        for i in 1..=10_000 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            w.push(((seed >> 33) % 1000) as f64);
            if i % 1000 == 0 {
                let hw = w.ci95_half_width();
                assert!(hw < prev);
                prev = hw;
            }
        }
        assert!(w.relative_error() < 0.05);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..200] {
            a.push(x);
        }
        for &x in &xs[200..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn empty_and_singleton() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert!(w.ci95_half_width().is_infinite());
        let mut w1 = Welford::new();
        w1.push(42.0);
        assert_eq!(w1.mean(), 42.0);
        assert_eq!(w1.variance(), 0.0);
        assert!(w1.ci95_half_width().is_infinite());
    }
}
