//! Fixed-width histograms for distribution summaries (latency spread,
//! job-size distributions in the workload validation tests).

/// A histogram over `[lo, hi)` with equal-width buckets plus underflow and
/// overflow counters.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// # Panics
    /// Panics unless `lo < hi` and `buckets >= 1`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo < hi && buckets >= 1);
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
        }
    }

    /// Records one observation, bucketing it (or counting it as
    /// under/overflow).
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.buckets.len() as f64;
            let i = (((x - self.lo) / w) as usize).min(self.buckets.len() - 1);
            self.buckets[i] += 1;
        }
    }

    /// Observations recorded so far (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all recorded observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Per-bucket counts, in bin order.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Observations below the histogram's lower bound.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the histogram's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate quantile (bucket lower edge containing the q-quantile
    /// of in-range samples).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        let in_range: u64 = self.buckets.iter().sum();
        if in_range == 0 {
            return self.lo;
        }
        let target = (q * in_range as f64).ceil().max(1.0) as u64;
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        let mut acc = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            acc += b;
            if acc >= target {
                return self.lo + i as f64 * w;
            }
        }
        self.hi
    }

    /// Renders a compact ASCII bar chart (for example binaries).
    pub fn ascii(&self, width: usize) -> String {
        let max = self.buckets.iter().copied().max().unwrap_or(1).max(1);
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        let mut s = String::new();
        for (i, &b) in self.buckets.iter().enumerate() {
            let bar = "#".repeat((b as usize * width).div_ceil(max as usize).min(width));
            s.push_str(&format!(
                "{:>10.1} | {:<width$} {}\n",
                self.lo + i as f64 * w,
                bar,
                b,
                width = width
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_land_in_right_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.9, 9.99] {
            h.push(x);
        }
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 2);
        assert_eq!(h.buckets()[9], 1);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn under_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(-5.0);
        h.push(2.0);
        h.push(1.0); // hi is exclusive
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
    }

    #[test]
    fn mean_tracks_all_samples() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [1.0, 2.0, 3.0, 100.0] {
            h.push(x);
        }
        assert!((h.mean() - 26.5).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.push(i as f64);
        }
        assert!((h.quantile(0.5) - 49.0).abs() <= 1.0);
        assert!((h.quantile(0.9) - 89.0).abs() <= 1.0);
        assert_eq!(h.quantile(0.0), 0.0);
    }

    #[test]
    fn ascii_renders() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        for x in [0.5, 1.5, 1.6, 3.9] {
            h.push(x);
        }
        let art = h.ascii(20);
        assert_eq!(art.lines().count(), 4);
        assert!(art.contains('#'));
    }
}
