//! Independent-replications controller.
//!
//! Drives the paper's stopping rule: keep running independent replications
//! (each a fresh simulation of 1000 completed jobs with its own RNG
//! substream) until the 95 % confidence interval's relative error drops
//! to 5 %, bounded by a minimum (statistical validity of the t interval)
//! and a maximum (runaway protection at saturation, where turnaround
//! variance grows without bound).

use crate::welford::Welford;

/// Why the controller stopped requesting replications.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Target relative error reached.
    Converged,
    /// Replication budget exhausted before convergence.
    Budget,
    /// Still running.
    NotStopped,
}

/// Controller for one experimental point, possibly tracking several
/// response variables at once (turnaround, utilization, latency, ...);
/// the stopping rule applies to the *primary* variable (index 0), which
/// matches the paper's practice of controlling precision on the headline
/// metric.
#[derive(Debug, Clone)]
pub struct Replications {
    stats: Vec<Welford>,
    min_reps: usize,
    max_reps: usize,
    target_rel_err: f64,
}

impl Replications {
    /// `vars` response variables; stop when variable 0's 95 % CI relative
    /// error is at most `target_rel_err`, after at least `min_reps` and at
    /// most `max_reps` replications.
    pub fn new(vars: usize, min_reps: usize, max_reps: usize, target_rel_err: f64) -> Self {
        assert!(vars >= 1);
        assert!(min_reps >= 2 && max_reps >= min_reps);
        assert!(target_rel_err > 0.0);
        Replications {
            stats: vec![Welford::new(); vars],
            min_reps,
            max_reps,
            target_rel_err,
        }
    }

    /// Paper configuration: 95 % CI, 5 % relative error.
    pub fn paper(vars: usize, min_reps: usize, max_reps: usize) -> Self {
        Self::new(vars, min_reps, max_reps, 0.05)
    }

    /// Records one replication's means (one value per response variable).
    ///
    /// # Panics
    /// Panics if the number of values differs from `vars`.
    pub fn record(&mut self, values: &[f64]) {
        assert_eq!(values.len(), self.stats.len(), "response variable count");
        for (w, &v) in self.stats.iter_mut().zip(values) {
            w.push(v);
        }
    }

    /// Replications recorded so far.
    pub fn count(&self) -> usize {
        self.stats[0].count() as usize
    }

    /// Minimum replications before the precision test applies.
    pub fn min_reps(&self) -> usize {
        self.min_reps
    }

    /// Replication budget (hard cap).
    pub fn max_reps(&self) -> usize {
        self.max_reps
    }

    /// Whether another replication is needed.
    pub fn needs_more(&self) -> bool {
        self.stop_reason() == StopReason::NotStopped
    }

    /// Current stopping state.
    pub fn stop_reason(&self) -> StopReason {
        let n = self.count();
        if n < self.min_reps {
            return StopReason::NotStopped;
        }
        if self.stats[0].relative_error() <= self.target_rel_err {
            return StopReason::Converged;
        }
        if n >= self.max_reps {
            return StopReason::Budget;
        }
        StopReason::NotStopped
    }

    /// Mean of variable `i` over replications.
    pub fn mean(&self, i: usize) -> f64 {
        self.stats[i].mean()
    }

    /// 95 % CI half-width of variable `i`.
    pub fn ci95(&self, i: usize) -> f64 {
        self.stats[i].ci95_half_width()
    }

    /// Relative error of the primary variable.
    pub fn relative_error(&self) -> f64 {
        self.stats[0].relative_error()
    }

    /// Per-variable accumulators.
    pub fn stats(&self) -> &[Welford] {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requires_min_reps() {
        let mut r = Replications::paper(1, 3, 10);
        r.record(&[100.0]);
        r.record(&[100.0]);
        assert!(r.needs_more(), "only 2 of min 3 reps");
        r.record(&[100.0]);
        // identical values: zero variance -> converged
        assert_eq!(r.stop_reason(), StopReason::Converged);
    }

    #[test]
    fn converges_on_tight_data() {
        let mut r = Replications::paper(1, 3, 50);
        let mut n = 0;
        let vals = [100.0, 101.0, 99.5, 100.2, 99.8, 100.1];
        while r.needs_more() {
            r.record(&[vals[n % vals.len()]]);
            n += 1;
            assert!(n < 100);
        }
        assert_eq!(r.stop_reason(), StopReason::Converged);
        assert!(n <= 10, "tight data should converge fast, took {n}");
        assert!((r.mean(0) - 100.0).abs() < 1.0);
    }

    #[test]
    fn budget_stops_noisy_data() {
        let mut r = Replications::paper(1, 3, 8);
        let mut x = 1.0;
        while r.needs_more() {
            x *= -2.1; // wildly oscillating: never converges
            r.record(&[x]);
        }
        assert_eq!(r.stop_reason(), StopReason::Budget);
        assert_eq!(r.count(), 8);
    }

    #[test]
    fn tracks_multiple_variables() {
        let mut r = Replications::paper(3, 2, 10);
        r.record(&[10.0, 0.5, 700.0]);
        r.record(&[12.0, 0.6, 710.0]);
        assert!((r.mean(0) - 11.0).abs() < 1e-12);
        assert!((r.mean(1) - 0.55).abs() < 1e-12);
        assert!((r.mean(2) - 705.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn wrong_arity_panics() {
        let mut r = Replications::paper(2, 2, 5);
        r.record(&[1.0]);
    }
}
