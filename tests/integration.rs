//! Cross-crate integration tests: end-to-end simulation scenarios
//! asserting the paper's qualitative results at test-friendly scale.

use procsim::{
    run_point, ParagonModel, SchedulerKind, SideDist, SimConfig, Simulator, StrategyKind,
    WorkloadSpec, PageIndexing,
};

fn stochastic(load: f64) -> WorkloadSpec {
    WorkloadSpec::Stochastic {
        sides: SideDist::Uniform,
        load,
        num_mes: 5.0,
    }
}

fn trace(load: f64) -> WorkloadSpec {
    WorkloadSpec::SyntheticTrace {
        model: ParagonModel::default(),
        load,
        runtime_scale: 360.0,
    }
}

fn quick(strategy: StrategyKind, scheduler: SchedulerKind, wl: WorkloadSpec) -> SimConfig {
    let mut cfg = SimConfig::paper(strategy, scheduler, wl, 2718);
    cfg.warmup_jobs = 30;
    cfg.measured_jobs = 150;
    cfg
}

const PAGING0: StrategyKind = StrategyKind::Paging {
    size_index: 0,
    indexing: PageIndexing::RowMajor,
};

#[test]
fn trace_ranking_gabl_first() {
    // the paper's headline: on the real workload GABL beats the other
    // non-contiguous strategies. Service/latency/blocking are
    // low-variance and asserted under FCFS; FCFS *turnaround* on a
    // heavy-tailed trace needs figure-scale replication (see fig02), so
    // the turnaround ranking is asserted under SSD here.
    let point = |strategy, scheduler| {
        let mut cfg = SimConfig::paper(strategy, scheduler, trace(0.001), 2718);
        cfg.warmup_jobs = 100;
        cfg.measured_jobs = 300;
        run_point(&cfg, 4, 4)
    };
    let g = point(StrategyKind::Gabl, SchedulerKind::Fcfs);
    let p = point(PAGING0, SchedulerKind::Fcfs);
    let m = point(StrategyKind::Mbs, SchedulerKind::Fcfs);
    assert!(g.service() < p.service(), "GABL {} vs Paging {}", g.service(), p.service());
    assert!(g.service() < m.service(), "GABL {} vs MBS {}", g.service(), m.service());
    assert!(g.latency() < p.latency());
    assert!(g.latency() < m.latency());
    assert!(g.blocking() < p.blocking());
    assert!(g.blocking() < m.blocking());

    let gs = point(StrategyKind::Gabl, SchedulerKind::Ssd);
    let ps = point(PAGING0, SchedulerKind::Ssd);
    let ms = point(StrategyKind::Mbs, SchedulerKind::Ssd);
    assert!(gs.turnaround() < ps.turnaround(), "GABL {} vs Paging {}", gs.turnaround(), ps.turnaround());
    assert!(gs.turnaround() < ms.turnaround(), "GABL {} vs MBS {}", gs.turnaround(), ms.turnaround());
}

#[test]
fn gabl_latency_blocking_best_on_trace() {
    // Figs. 11/14 analogue
    let g = Simulator::new(&quick(StrategyKind::Gabl, SchedulerKind::Ssd, trace(0.002)), 1).run();
    let p = Simulator::new(&quick(PAGING0, SchedulerKind::Ssd, trace(0.002)), 1).run();
    assert!(g.mean_packet_blocking < p.mean_packet_blocking);
    assert!(g.mean_packet_latency < p.mean_packet_latency);
}

#[test]
fn ssd_improves_turnaround_at_load() {
    // §4/§6: SSD beats FCFS on turnaround for every strategy once the
    // queue matters
    for strat in [StrategyKind::Gabl, PAGING0, StrategyKind::Mbs] {
        let f = Simulator::new(&quick(strat, SchedulerKind::Fcfs, stochastic(0.0015)), 2).run();
        let s = Simulator::new(&quick(strat, SchedulerKind::Ssd, stochastic(0.0015)), 2).run();
        assert!(
            s.mean_turnaround < f.mean_turnaround,
            "{strat}: SSD {} vs FCFS {}",
            s.mean_turnaround,
            f.mean_turnaround
        );
    }
}

#[test]
fn saturation_utilization_in_paper_band() {
    // Figs. 8-10: at heavy load the non-contiguous strategies reach
    // 72-89% utilization; at small test scale allow a slightly wider
    // band but require the qualitative plateau
    for strat in [StrategyKind::Gabl, PAGING0, StrategyKind::Mbs] {
        let m = Simulator::new(&quick(strat, SchedulerKind::Fcfs, stochastic(0.01)), 3).run();
        assert!(
            m.utilization > 0.55 && m.utilization < 0.95,
            "{strat}: utilization {} out of band",
            m.utilization
        );
    }
}

#[test]
fn utilization_similar_across_noncontiguous() {
    // §5: "the utilization of the three non-contiguous strategies is
    // approximately the same" at saturation
    let us: Vec<f64> = [StrategyKind::Gabl, PAGING0, StrategyKind::Mbs]
        .iter()
        .map(|&s| {
            Simulator::new(&quick(s, SchedulerKind::Fcfs, stochastic(0.01)), 4)
                .run()
                .utilization
        })
        .collect();
    let max = us.iter().cloned().fold(f64::MIN, f64::max);
    let min = us.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max - min < 0.15, "utilizations spread too far: {us:?}");
}

#[test]
fn turnaround_monotone_in_load() {
    let mut last = 0.0;
    for load in [0.0002, 0.0008, 0.0024] {
        let m =
            Simulator::new(&quick(StrategyKind::Gabl, SchedulerKind::Fcfs, stochastic(load)), 5)
                .run();
        assert!(
            m.mean_turnaround > last,
            "turnaround not increasing at load {load}"
        );
        last = m.mean_turnaround;
    }
}

#[test]
fn trace_runtime_scale_drives_service() {
    // DESIGN.md §3: trace runtimes become communication volume via
    // runtime_scale — quartering the scale (4x the messages) must
    // substantially raise observed service times
    let run = |scale: f64| {
        let wl = WorkloadSpec::SyntheticTrace {
            model: ParagonModel::default(),
            load: 0.001,
            runtime_scale: scale,
        };
        Simulator::new(&quick(StrategyKind::Gabl, SchedulerKind::Fcfs, wl), 6)
            .run()
            .mean_service
    };
    let coarse = run(360.0);
    let fine = run(90.0);
    assert!(
        fine > 2.0 * coarse,
        "service with 4x messages ({fine}) should dwarf baseline ({coarse})"
    );
}

#[test]
fn latency_at_least_uncontended_floor() {
    // mean packet latency can never fall below the shortest possible
    // uncontended packet time: (0+1)(ts+1)+Plen
    let m = Simulator::new(&quick(StrategyKind::Gabl, SchedulerKind::Fcfs, stochastic(0.0004)), 7)
        .run();
    assert!(m.mean_packet_latency >= (3 + 1) as f64 + 8.0);
    assert!(m.mean_packet_blocking >= 0.0);
    assert!(m.mean_packet_latency > m.mean_packet_blocking);
}

#[test]
fn run_point_full_pipeline() {
    let mut cfg = SimConfig::paper(StrategyKind::Mbs, SchedulerKind::Ssd, stochastic(0.0006), 11);
    cfg.warmup_jobs = 20;
    cfg.measured_jobs = 100;
    let p = run_point(&cfg, 3, 5);
    assert_eq!(p.label, "MBS(SSD)");
    assert!(p.replications >= 3);
    assert!(p.turnaround() >= p.service());
    for i in 0..6 {
        assert!(p.means[i].is_finite());
        assert!(p.ci95[i] >= 0.0);
    }
}

#[test]
fn contiguous_strategy_blocks_where_noncontiguous_proceeds() {
    // the motivating contrast of §1, end to end: at equal load FF's
    // turnaround exceeds GABL's because fragmented states stall it
    let ff =
        Simulator::new(&quick(StrategyKind::FirstFit, SchedulerKind::Fcfs, stochastic(0.001)), 8)
            .run();
    let g = Simulator::new(&quick(StrategyKind::Gabl, SchedulerKind::Fcfs, stochastic(0.001)), 8)
        .run();
    assert!(
        ff.mean_wait > g.mean_wait,
        "FF wait {} vs GABL wait {}",
        ff.mean_wait,
        g.mean_wait
    );
}

#[test]
fn deterministic_across_identical_configs() {
    let cfg = quick(StrategyKind::Gabl, SchedulerKind::Ssd, trace(0.002));
    let a = Simulator::new(&cfg, 5).run();
    let b = Simulator::new(&cfg, 5).run();
    assert_eq!(a.mean_turnaround, b.mean_turnaround);
    assert_eq!(a.packets, b.packets);
    assert_eq!(a.end_time, b.end_time);
}
