//! Property tests over the integrated simulator: invariants that must
//! hold for any strategy, scheduler, workload and seed.

use procsim::{
    PageIndexing, SchedulerKind, SideDist, SimConfig, Simulator, StrategyKind, WorkloadSpec,
};
use proptest::prelude::*;

fn strategies() -> Vec<StrategyKind> {
    vec![
        StrategyKind::Gabl,
        StrategyKind::Paging {
            size_index: 0,
            indexing: PageIndexing::RowMajor,
        },
        StrategyKind::Mbs,
        StrategyKind::Random,
    ]
}

fn schedulers() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::Fcfs,
        SchedulerKind::Ssd,
        SchedulerKind::SjfArea,
        SchedulerKind::FcfsWindow(4),
    ]
}

proptest! {
    // each case is a full (small) simulation; keep the counts modest
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn simulation_invariants(
        strat_i in 0usize..4,
        sched_i in 0usize..4,
        seed in 0u64..1000,
        load_scale in 1u32..40,
        uniform in any::<bool>(),
    ) {
        let load = load_scale as f64 * 1e-4;
        let mut cfg = SimConfig::paper(
            strategies()[strat_i],
            schedulers()[sched_i],
            WorkloadSpec::Stochastic {
                sides: if uniform { SideDist::Uniform } else { SideDist::Exponential },
                load,
                num_mes: 5.0,
            },
            seed,
        );
        cfg.warmup_jobs = 5;
        cfg.measured_jobs = 40;
        let m = Simulator::new(&cfg, 0).run();

        prop_assert_eq!(m.jobs, 40);
        prop_assert!(m.mean_turnaround >= m.mean_service,
            "turnaround {} < service {}", m.mean_turnaround, m.mean_service);
        prop_assert!((m.mean_turnaround - (m.mean_service + m.mean_wait)).abs() < 1e-6);
        prop_assert!(m.utilization >= 0.0 && m.utilization <= 1.0,
            "utilization {}", m.utilization);
        prop_assert!(m.mean_service > 0.0);
        prop_assert!(m.mean_fragments >= 1.0);
        if m.packets > 0 {
            // latency >= blocking + minimal transfer
            prop_assert!(m.mean_packet_latency > m.mean_packet_blocking);
            // floor: shortest possible packet (0 hops) takes (ts+1)+Plen
            prop_assert!(m.mean_packet_latency >= (cfg.ts as f64 + 1.0) + cfg.plen as f64);
        }
        prop_assert!(m.end_time > 0);
    }

    #[test]
    fn seed_determinism(strat_i in 0usize..4, seed in 0u64..50) {
        let mut cfg = SimConfig::paper(
            strategies()[strat_i],
            SchedulerKind::Fcfs,
            WorkloadSpec::Stochastic { sides: SideDist::Uniform, load: 0.001, num_mes: 5.0 },
            seed,
        );
        cfg.warmup_jobs = 5;
        cfg.measured_jobs = 30;
        let a = Simulator::new(&cfg, 0).run();
        let b = Simulator::new(&cfg, 0).run();
        prop_assert_eq!(a.mean_turnaround, b.mean_turnaround);
        prop_assert_eq!(a.end_time, b.end_time);
        prop_assert_eq!(a.packets, b.packets);
    }
}
