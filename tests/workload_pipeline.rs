//! Integration of the workload pipeline: SWF text -> records -> jobs ->
//! simulation, plus statistical validation of the synthetic trace at the
//! paper's published moments.

use procsim::{
    parse_swf, trace_to_jobs, write_swf, ParagonModel, SchedulerKind, SimConfig, SimRng,
    Simulator, StrategyKind, WorkloadSpec,
};
use std::sync::Arc;

#[test]
fn swf_round_trip_preserves_simulation() {
    let model = ParagonModel {
        jobs: 600,
        ..ParagonModel::default()
    };
    let recs = model.generate(&mut SimRng::new(33));
    let text = write_swf(&recs);
    let parsed = parse_swf(&text).unwrap();
    assert_eq!(parsed.len(), recs.len());

    let direct = trace_to_jobs(&recs, 16, 22, 0.5, 360.0);
    let via_swf = trace_to_jobs(&parsed, 16, 22, 0.5, 360.0);
    // submit seconds are written rounded; compare sizes and msgs exactly
    for (a, b) in direct.iter().zip(&via_swf) {
        assert_eq!((a.a, a.b), (b.a, b.b));
        assert_eq!(a.msgs_per_node, b.msgs_per_node);
    }

    let mut cfg = SimConfig::paper(
        StrategyKind::Gabl,
        SchedulerKind::Fcfs,
        WorkloadSpec::FixedTrace(Arc::new(via_swf)),
        9,
    );
    cfg.warmup_jobs = 20;
    cfg.measured_jobs = 150;
    let m = Simulator::new(&cfg, 0).run();
    assert_eq!(m.jobs, 150);
    assert!(m.mean_service > 0.0);
}

#[test]
fn synthetic_trace_matches_published_statistics() {
    // paper §5: 10658 jobs, mean inter-arrival 1186.7 s, mean size 34.5,
    // sizes favouring non-powers-of-two
    let recs = ParagonModel::default().generate(&mut SimRng::new(1));
    assert_eq!(recs.len(), 10_658);
    let n = recs.len() as f64;
    let mean_ia = recs.last().unwrap().submit_s / n;
    assert!((mean_ia - 1186.7).abs() / 1186.7 < 0.06, "mean ia {mean_ia}");
    let mean_size = recs.iter().map(|r| r.size as f64).sum::<f64>() / n;
    assert!((mean_size - 34.5).abs() < 6.0, "mean size {mean_size}");
    let pow2 = recs.iter().filter(|r| r.size.is_power_of_two()).count() as f64 / n;
    assert!(pow2 < 0.25, "{:.0}% power-of-two sizes", pow2 * 100.0);
}

#[test]
fn arrival_scaling_factor_increases_load() {
    // f < 1 compresses arrivals -> higher load -> strictly worse
    // turnaround for the same strategy and seed
    let model = ParagonModel {
        jobs: 800,
        ..ParagonModel::default()
    };
    let recs = model.generate(&mut SimRng::new(55));
    let run = |f: f64| {
        let jobs = Arc::new(trace_to_jobs(&recs, 16, 22, f, 360.0));
        let mut cfg = SimConfig::paper(
            StrategyKind::Gabl,
            SchedulerKind::Fcfs,
            WorkloadSpec::FixedTrace(jobs),
            10,
        );
        cfg.warmup_jobs = 20;
        cfg.measured_jobs = 200;
        Simulator::new(&cfg, 0).run()
    };
    let native = run(1.0);
    let compressed = run(0.05);
    assert!(
        compressed.mean_turnaround > native.mean_turnaround,
        "f=0.05 {} vs f=1 {}",
        compressed.mean_turnaround,
        native.mean_turnaround
    );
    assert!(compressed.utilization > native.utilization);
}

#[test]
fn non_power_of_two_sizes_penalize_mbs_fragments() {
    // the paper's explanation for MBS's trace behaviour: non-power-of-two
    // requests decompose into several blocks. Compare mean fragment count
    // for p=64 (one 8x8 block) vs p=63 (3x 1 + 3x 4 + 3x16 blocks...).
    use procsim::Mesh;
    let mesh0 = Mesh::new(16, 22);
    let mut mbs = StrategyKind::Mbs.build(&mesh0, 0);
    let mut mesh = Mesh::new(16, 22);
    let a64 = mbs.allocate(&mut mesh, 8, 8).unwrap();
    assert_eq!(a64.fragments(), 1);
    mbs.release(&mut mesh, a64);
    let a63 = mbs.allocate(&mut mesh, 9, 7).unwrap(); // 63 processors
    assert!(
        a63.fragments() >= 6,
        "63 = 3 + 3*4 + 3*16 needs >= 9 blocks in a pow2 forest, got {}",
        a63.fragments()
    );
}
