//! End-to-end tests of the beyond-paper extensions: torus topology
//! (paper §6 future work), the MC allocation baseline (paper ref. [7]),
//! the CM-5-style trace (future work), and EASY backfilling.

use procsim::{
    PageIndexing, SchedulerKind, SideDist, SimConfig, Simulator, StrategyKind, TopologyKind,
    WorkloadSpec,
};

fn stochastic(load: f64) -> WorkloadSpec {
    WorkloadSpec::Stochastic {
        sides: SideDist::Uniform,
        load,
        num_mes: 5.0,
    }
}

fn quick(strategy: StrategyKind, scheduler: SchedulerKind, wl: WorkloadSpec) -> SimConfig {
    let mut cfg = SimConfig::paper(strategy, scheduler, wl, 31415);
    cfg.warmup_jobs = 20;
    cfg.measured_jobs = 120;
    cfg
}

#[test]
fn torus_reduces_packet_latency() {
    // wraparound halves long distances; at equal load the torus must show
    // lower mean packet latency for scattered traffic
    let mut mesh_cfg = quick(StrategyKind::Random, SchedulerKind::Fcfs, stochastic(0.0006));
    let mut torus_cfg = mesh_cfg.clone();
    mesh_cfg.topology = TopologyKind::Mesh;
    torus_cfg.topology = TopologyKind::Torus;
    let m = Simulator::new(&mesh_cfg, 0).run();
    let t = Simulator::new(&torus_cfg, 0).run();
    assert!(
        t.mean_packet_latency < m.mean_packet_latency,
        "torus {} vs mesh {}",
        t.mean_packet_latency,
        m.mean_packet_latency
    );
    assert_eq!(t.jobs, 120);
}

#[test]
fn torus_full_simulation_for_paper_strategies() {
    for strat in StrategyKind::PAPER {
        let mut cfg = quick(strat, SchedulerKind::Ssd, stochastic(0.0008));
        cfg.topology = TopologyKind::Torus;
        let m = Simulator::new(&cfg, 1).run();
        assert_eq!(m.jobs, 120, "{strat}");
        assert!(m.utilization > 0.0 && m.utilization <= 1.0);
        assert!(m.mean_packet_latency > 0.0);
    }
}

#[test]
fn mc_runs_end_to_end_with_tight_clusters() {
    let mc = Simulator::new(&quick(StrategyKind::Mc, SchedulerKind::Fcfs, stochastic(0.0006)), 2)
        .run();
    let rnd = Simulator::new(
        &quick(StrategyKind::Random, SchedulerKind::Fcfs, stochastic(0.0006)),
        2,
    )
    .run();
    assert_eq!(mc.jobs, 120);
    // MC's clustering must beat random scatter on latency
    assert!(
        mc.mean_packet_latency < rnd.mean_packet_latency,
        "MC {} vs Random {}",
        mc.mean_packet_latency,
        rnd.mean_packet_latency
    );
}

#[test]
fn easy_backfill_beats_fcfs_under_blocked_heads() {
    // uniform workload has frequent huge jobs that block FCFS; EASY should
    // cut waiting time without starving the head
    let f = Simulator::new(&quick(StrategyKind::Gabl, SchedulerKind::Fcfs, stochastic(0.0012)), 3)
        .run();
    let e = Simulator::new(
        &quick(StrategyKind::Gabl, SchedulerKind::EasyBackfill, stochastic(0.0012)),
        3,
    )
    .run();
    assert!(
        e.mean_wait < f.mean_wait,
        "EASY wait {} vs FCFS wait {}",
        e.mean_wait,
        f.mean_wait
    );
}

#[test]
fn cm5_trace_collapses_mbs_fragments() {
    use procsim::{trace_to_jobs, Cm5Model, SimRng};
    use std::sync::Arc;
    let recs = Cm5Model {
        jobs: 600,
        ..Default::default()
    }
    .generate(&mut SimRng::new(1));
    let jobs = Arc::new(trace_to_jobs(&recs, 16, 22, 0.05, 360.0));
    let run = |strategy| {
        let mut cfg = SimConfig::paper(
            strategy,
            SchedulerKind::Fcfs,
            WorkloadSpec::FixedTrace(jobs.clone()),
            4,
        );
        cfg.warmup_jobs = 20;
        cfg.measured_jobs = 150;
        Simulator::new(&cfg, 0).run()
    };
    let mbs = run(StrategyKind::Mbs);
    let paging = run(StrategyKind::Paging {
        size_index: 0,
        indexing: PageIndexing::RowMajor,
    });
    // power-of-two sizes: MBS allocations are a handful of buddy blocks
    // (1 for 4^n sizes, 2 for 2*4^n, plus splits under contention), far
    // fewer fragments than per-processor paging
    assert!(mbs.mean_fragments <= 4.5, "MBS fragments {}", mbs.mean_fragments);
    assert!(paging.mean_fragments > 10.0);
}
