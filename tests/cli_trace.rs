//! Integration tests of the `procsim trace` pipeline on the checked-in
//! SWF sample (`results/traces/sdsc_sample.swf`): the CLI must reproduce
//! the committed golden CSV, be bit-identical at any worker-pool size,
//! and the sample must calibrate `factor_for_load` exactly.
//!
//! These run the real binary (integration tests execute from the package
//! root, where the relative `results/` paths resolve).

use procsim::{load_for_factor, TraceWorkload};
use std::process::Command;

const SAMPLE: &str = "results/traces/sdsc_sample.swf";
const GOLDEN: &str = "results/golden/trace_sample.csv";

fn run_trace_cli(extra: &[&str], csv_path: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_procsim"))
        .args(["trace", SAMPLE, "--load", "0.7", "--seed", "42", "--csv", csv_path])
        .args(extra)
        .output()
        .expect("procsim binary runs");
    assert!(
        out.status.success(),
        "procsim trace failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::read_to_string(csv_path).expect("CSV written")
}

#[test]
fn cli_reproduces_committed_golden_csv() {
    // exactly the CI command: any drift in workload generation, seeding,
    // scheduling, or CSV formatting shows up as a golden diff here first.
    // Run it at explicit worker-pool sizes 1 and 4: the streaming replay
    // refactor must be byte-invariant to both the old materialized path
    // (the golden pins that) and the thread count.
    let want = std::fs::read_to_string(GOLDEN).expect("golden file checked in");
    let dir = std::env::temp_dir();
    for threads in ["1", "4"] {
        let csv = dir.join(format!("procsim_trace_golden_check_t{threads}.csv"));
        let got = run_trace_cli(
            &["--jobs", "120", "--reps", "2", "--threads", threads],
            csv.to_str().unwrap(),
        );
        assert_eq!(
            got, want,
            "CSV from `procsim trace {SAMPLE} --load 0.7 --threads {threads}` diverged \
             from {GOLDEN}; if the change is intentional, regenerate the golden \
             (see docs/WORKLOADS.md)"
        );
    }
}

#[test]
fn cli_csv_is_thread_count_invariant() {
    let dir = std::env::temp_dir();
    let csv1 = dir.join("procsim_trace_t1.csv");
    let csv4 = dir.join("procsim_trace_t4.csv");
    let small = |threads: &str, path: &std::path::Path| {
        run_trace_cli(
            &["--jobs", "60", "--reps", "2", "--threads", threads],
            path.to_str().unwrap(),
        )
    };
    let a = small("1", &csv1);
    let b = small("4", &csv4);
    assert_eq!(a, b, "trace CSV must not depend on worker-pool size");
    assert!(a.lines().count() >= 4, "header + one row per PAPER strategy");
}

#[test]
fn cli_reports_malformed_swf_with_line_number() {
    let dir = std::env::temp_dir();
    let bad = dir.join("procsim_bad.swf");
    std::fs::write(&bad, "; header\n1 0 3 100 32 -1 -1 32\n2 oops 3 100 32 -1 -1 32\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_procsim"))
        .args(["trace", bad.to_str().unwrap()])
        .output()
        .expect("procsim binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("line 3") && stderr.contains("submit time"),
        "error should locate the bad line and field, got: {stderr}"
    );
}

#[test]
fn checked_in_sample_calibrates_factor_for_load() {
    let text = std::fs::read_to_string(SAMPLE).expect("sample checked in");
    let trace = TraceWorkload::from_swf(&text).expect("sample parses");
    assert_eq!(trace.len(), 600, "sample is the documented 600-job fixture");

    // the sample mirrors the paper's quoted SDSC Paragon statistics
    let mean_ia = trace.mean_interarrival_s();
    assert!(
        (mean_ia - 1186.7).abs() / 1186.7 < 0.05,
        "mean inter-arrival {mean_ia} drifted from the Paragon's 1186.7 s"
    );

    // factor_for_load round-trips: the factor derived for a target
    // offered load, pushed back through load_for_factor, recovers the
    // arrival-rate load it encodes...
    let machine = 352u32;
    for rho in [0.3, 0.5, 0.7, 1.0, 1.5] {
        let f = trace.factor_for_offered_load(machine, rho);
        let lambda = trace.arrival_load(machine, rho);
        assert!(
            (load_for_factor(mean_ia, f) - lambda).abs() < 1e-12,
            "factor_for_load/load_for_factor round trip at rho={rho}"
        );
        // ...and actually rescaling the sample's submit times by f
        // realizes the target offered load
        let scaled: Vec<_> = trace
            .iter_records()
            .map(|r| procsim::TraceRecord {
                submit_s: r.submit_s * f,
                ..r
            })
            .collect();
        let realized = TraceWorkload::new(scaled).unwrap().offered_load(machine);
        assert!(
            (realized - rho).abs() < 1e-9,
            "rho target {rho}, realized {realized}"
        );
    }

    // native load at factor 1
    let native = trace.offered_load(machine);
    assert!(
        (trace.factor_for_offered_load(machine, native) - 1.0).abs() < 1e-12,
        "replaying at the native load must leave arrivals untouched"
    );
}
