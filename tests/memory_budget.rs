//! Memory-budget regression test for the streaming trace pipeline: a
//! counting global allocator proves that opening and replaying a
//! generated trace keeps **peak live heap** under a fixed budget that is
//! independent of trace length — the property the streaming refactor
//! exists to provide. A retained pipeline (or a reintroduced per-point
//! scaled-job cache) fails this immediately: just the `TraceRecord`s of
//! the long trace exceed the whole-pipeline budget asserted here.
//!
//! Everything runs inside ONE `#[test]` so the allocator counters are
//! never raced by the harness's parallel tests (this file is its own
//! test binary, and the counting allocator is scoped to it).

use procsim::{
    expand, write_swf_to, ParagonModel, Scenario, SchedulerKind, SimConfig, SimRng, Simulator,
    StrategyKind, TraceWorkload, WorkloadSpec,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::sync::Arc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// `System`, with live/peak byte counters.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Relaxed) + layout.size();
            PEAK.fetch_max(live, Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, p: *mut u8, layout: Layout) {
        unsafe { System.dealloc(p, layout) };
        LIVE.fetch_sub(layout.size(), Relaxed);
    }

    unsafe fn realloc(&self, p: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let q = unsafe { System.realloc(p, layout, new_size) };
        if !q.is_null() {
            let old = layout.size();
            if new_size >= old {
                let live = LIVE.fetch_add(new_size - old, Relaxed) + (new_size - old);
                PEAK.fetch_max(live, Relaxed);
            } else {
                LIVE.fetch_sub(old - new_size, Relaxed);
            }
        }
        q
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `f` and returns (peak live-heap growth in bytes, result):
/// the high-water mark above the heap level at entry.
fn peak_during<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let baseline = LIVE.load(Relaxed);
    PEAK.store(baseline, Relaxed);
    let r = f();
    (PEAK.load(Relaxed).saturating_sub(baseline), r)
}

/// Streams a `jobs`-long synthetic Paragon trace to `path` (O(1) memory:
/// lazy model generator into a buffered writer, nothing materialized).
fn gen_trace(path: &Path, jobs: usize) {
    let model = ParagonModel {
        jobs,
        ..ParagonModel::default()
    };
    let mut w = BufWriter::new(std::fs::File::create(path).expect("create trace file"));
    let mut rng = SimRng::new(0xB0D6E7);
    let written = write_swf_to(&mut w, model.stream(&mut rng)).expect("write trace");
    w.flush().expect("flush trace");
    assert_eq!(written, jobs);
}

/// Opens `path` as a streaming workload and replays a fixed 300-job
/// budget through the full simulator; returns the run's peak heap
/// growth. The budget is fixed so the only thing that varies between
/// calls is the trace length — which a streaming pipeline must not see.
fn replay_peak(path: &Path, rep: u64) -> usize {
    let (peak, _) = peak_during(|| {
        let trace =
            Arc::new(TraceWorkload::open(path).expect("generated trace must open"));
        assert!(trace.is_streaming(), "generated trace must stream");
        let mut cfg = SimConfig::paper(
            StrategyKind::Gabl,
            SchedulerKind::Fcfs,
            WorkloadSpec::Trace {
                trace,
                load: 0.7,
                runtime_scale: 360.0,
            },
            77,
        );
        cfg.warmup_jobs = 50;
        cfg.measured_jobs = 250;
        Simulator::new(&cfg, rep).run()
    });
    peak
}

const MIB: usize = 1 << 20;

#[test]
fn streaming_replay_peak_heap_is_bounded_and_length_independent() {
    let dir = std::env::temp_dir();
    let short_path: PathBuf = dir.join(format!("procsim_membudget_20k_{}.swf", std::process::id()));
    let long_path: PathBuf = dir.join(format!("procsim_membudget_100k_{}.swf", std::process::id()));
    gen_trace(&short_path, 20_000);
    gen_trace(&long_path, 100_000);

    // --- workload layer: open + one full scaled pass, no simulator ---
    // open() makes a validating statistics pass and ScaledJobs re-reads
    // the file record by record; neither may retain the trace. 256 KiB
    // covers line buffers and workload bookkeeping with an order of
    // magnitude of headroom — while just the TraceRecords of the 100k
    // trace (24 B each) would need ~2.3 MiB, and scaled JobSpecs more.
    let (peak_open, trace) = peak_during(|| {
        TraceWorkload::open(&long_path).expect("generated trace must open")
    });
    assert!(
        peak_open < 256 * 1024,
        "TraceWorkload::open peak heap {peak_open} B exceeds 256 KiB: \
         the validating pass is retaining records"
    );
    let (peak_scan, n) = peak_during(|| {
        trace
            .stream_jobs(16, 22, 0.7, 360.0, 0)
            .take(trace.len())
            .count()
    });
    assert_eq!(n, 100_000);
    assert!(
        peak_scan < 256 * 1024,
        "full scaled pass peak heap {peak_scan} B exceeds 256 KiB: \
         the cursor is materializing jobs"
    );
    drop(trace);

    // --- full simulator replay: fixed job budget, varying trace length ---
    let peak_short = replay_peak(&short_path, 0);
    let peak_long = replay_peak(&long_path, 0);
    eprintln!(
        "peaks: open {peak_open} B, scaled pass {peak_scan} B, \
         replay 20k {peak_short} B, replay 100k {peak_long} B"
    );
    // absolute budget: the live set is the simulator (mesh, network,
    // queues, in-flight packets for <= 300 jobs), not the trace. The
    // observed peak is ~270 KiB; 2 MiB gives 7x headroom yet still trips
    // if even the raw 100k TraceRecords (~2.3 MiB) were materialized,
    // let alone the scaled JobSpecs (~4.6 MiB).
    assert!(
        peak_long < 2 * MIB,
        "replay of the 100k-job trace peaked at {peak_long} B (> 2 MiB budget)"
    );
    // length-independence: 5x the records may cost (almost) nothing; the
    // tolerance absorbs allocator and queueing noise only. A pipeline
    // that materializes records or scaled jobs adds >= ~2 MiB to the
    // long trace and trips this ratio.
    assert!(
        (peak_long as f64) < peak_short as f64 * 1.3 + 512.0 * 1024.0,
        "peak heap grew with trace length: 20k-job replay peaked at \
         {peak_short} B, 100k-job at {peak_long} B — replay is not streaming"
    );

    // --- no double-materialization across concurrent replications ---
    // two cursors over one shared workload may at most double the
    // simulator live-set — never add a per-replication copy of the trace
    let trace = Arc::new(TraceWorkload::open(&long_path).expect("open"));
    let (peak_pair, ()) = peak_during(|| {
        let handles: Vec<_> = (0..2)
            .map(|rep| {
                let trace = trace.clone();
                std::thread::spawn(move || {
                    let mut cfg = SimConfig::paper(
                        StrategyKind::Gabl,
                        SchedulerKind::Fcfs,
                        WorkloadSpec::Trace {
                            trace,
                            load: 0.7,
                            runtime_scale: 360.0,
                        },
                        77,
                    );
                    cfg.warmup_jobs = 50;
                    cfg.measured_jobs = 250;
                    Simulator::new(&cfg, rep).run();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    assert!(
        peak_pair < 2 * 2 * MIB,
        "two concurrent replications peaked at {peak_pair} B: \
         something is materializing per replication"
    );

    std::fs::remove_file(&short_path).ok();
    std::fs::remove_file(&long_path).ok();

    // --- campaign matrix expansion: 1000 points stay lightweight ---
    // expand() materializes one CampaignPoint (settings + versioned spec
    // string + hash) per cross-product element and nothing else — no
    // simulator state, no per-point caches. 1000 points of ~0.5 KiB
    // bookkeeping fit comfortably in 2 MiB; an expansion that clones the
    // scenario per point or pre-builds run state trips this immediately.
    let mut text = String::from(
        "[campaign]\nname = \"expansion_budget\"\nseed = 7\n\n[matrix]\n\
         strategy = [\"gabl\", \"paging0\", \"paging1\", \"paging2\", \"paging3\", \
         \"mbs\", \"ff\", \"bf\", \"random\", \"mc\"]\n\
         scheduler = [\"fcfs\", \"ssd\", \"sjf\", \"ljf\", \"easy\"]\n",
    );
    text.push_str("load = [");
    for i in 1..=20u32 {
        if i > 1 {
            text.push_str(", ");
        }
        text.push_str(&format!("0.{i:04}"));
    }
    text.push_str("]\n");
    let scenario = Scenario::parse(&text).expect("expansion-budget scenario parses");
    let (peak_expand, n_points) = peak_during(|| {
        let points = expand(&scenario).expect("expansion-budget scenario expands");
        points.len()
    });
    eprintln!("peak: 1000-point matrix expansion {peak_expand} B");
    assert_eq!(n_points, 1000, "10 strategies x 5 schedulers x 20 loads");
    assert!(
        peak_expand < 2 * MIB,
        "expanding a 1000-point matrix peaked at {peak_expand} B (> 2 MiB \
         budget): expansion is carrying more than per-point bookkeeping"
    );
}
