//! CLI tests of the `--topology` run dimension: flag parsing (including
//! the legacy `--torus` alias and the error paths) and torus trace
//! replay through the real binary.

use std::process::Command;

const SAMPLE: &str = "results/traces/sdsc_sample.swf";

fn procsim(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_procsim"))
        .args(args)
        .output()
        .expect("procsim binary runs")
}

/// A tiny deterministic `run` invocation, varying only the topology args.
fn tiny_run(topology_args: &[&str]) -> std::process::Output {
    let mut args = vec![
        "run", "--strategy", "gabl", "--load", "0.002", "--jobs", "30", "--reps", "2", "--seed",
        "9",
    ];
    args.extend_from_slice(topology_args);
    procsim(&args)
}

#[test]
fn run_accepts_both_topologies() {
    let mesh = tiny_run(&["--topology", "mesh"]);
    let torus = tiny_run(&["--topology", "torus"]);
    assert!(mesh.status.success(), "{}", String::from_utf8_lossy(&mesh.stderr));
    assert!(torus.status.success(), "{}", String::from_utf8_lossy(&torus.stderr));
    // same seeds, same workload — only the wraparound links differ, and
    // they must actually change the simulated physics
    assert_ne!(
        mesh.stdout, torus.stdout,
        "topology knob had no effect on the run"
    );
    // defaulting to mesh is part of the CLI contract (paper protocol)
    let default = tiny_run(&[]);
    assert_eq!(default.stdout, mesh.stdout, "default topology must be mesh");
}

#[test]
fn legacy_torus_flag_is_an_alias() {
    let named = tiny_run(&["--topology", "torus"]);
    let legacy = tiny_run(&["--torus"]);
    assert!(legacy.status.success());
    assert_eq!(
        named.stdout, legacy.stdout,
        "--torus must mean exactly --topology torus"
    );
}

#[test]
fn unknown_topology_is_rejected_with_the_valid_set() {
    let out = tiny_run(&["--topology", "ring"]);
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown topology 'ring'"),
        "stderr should name the bad value: {stderr}"
    );
    assert!(
        stderr.contains("mesh") && stderr.contains("torus"),
        "stderr should list the valid topologies: {stderr}"
    );
}

#[test]
fn bare_topology_flag_is_rejected() {
    // a missing value must not silently fall back to mesh
    let out = tiny_run(&["--topology"]);
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--topology needs a value"), "{stderr}");
    // ... including when the next token is another flag
    let out = tiny_run(&["--topology", "--torus"]);
    assert!(!out.status.success(), "--topology --torus must not parse as torus");
}

#[test]
fn contradictory_topology_flags_are_rejected() {
    let out = tiny_run(&["--topology", "mesh", "--torus"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--topology mesh contradicts --torus"), "{stderr}");
}

#[test]
fn trace_replays_the_swf_sample_on_a_torus() {
    let dir = std::env::temp_dir();
    let csv = dir.join("procsim_trace_torus_smoke.csv");
    let out = procsim(&[
        "trace", SAMPLE, "--load", "0.7", "--jobs", "60", "--reps", "2", "--seed", "42",
        "--topology", "torus", "--csv", csv.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("on the torus"),
        "replay banner should name the topology: {stdout}"
    );
    let text = std::fs::read_to_string(&csv).expect("CSV written");
    let mut lines = text.lines();
    let header = lines.next().unwrap();
    assert!(
        header.starts_with("trace,series,topology,"),
        "topology is a CSV column: {header}"
    );
    let rows: Vec<&str> = lines.collect();
    assert!(rows.len() >= 3, "one row per PAPER strategy");
    for row in &rows {
        assert_eq!(row.split(',').nth(2), Some("torus"), "row: {row}");
    }
}

#[test]
fn torus_trace_csv_is_thread_count_invariant() {
    let dir = std::env::temp_dir();
    let run = |threads: &str, name: &str| {
        let csv = dir.join(name);
        let out = procsim(&[
            "trace", SAMPLE, "--load", "0.7", "--jobs", "60", "--reps", "2", "--seed", "42",
            "--topology", "torus", "--threads", threads, "--csv", csv.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        std::fs::read_to_string(&csv).expect("CSV written")
    };
    let a = run("1", "procsim_torus_t1.csv");
    let b = run("4", "procsim_torus_t4.csv");
    assert_eq!(a, b, "torus trace CSV must not depend on worker-pool size");
}
