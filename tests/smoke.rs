//! Workspace smoke test: every paper strategy × paper scheduler combination
//! runs end-to-end (arrivals → queue → allocation → flit-level network →
//! departure) on a small mesh and produces sane headline metrics.

use procsim::{
    SchedulerKind, SideDist, SimConfig, Simulator, StrategyKind, WorkloadSpec,
};

#[test]
fn paper_strategy_scheduler_grid_produces_sane_metrics() {
    for strat in StrategyKind::PAPER {
        for sched in SchedulerKind::PAPER {
            let mut cfg = SimConfig::paper(
                strat,
                sched,
                WorkloadSpec::Stochastic {
                    sides: SideDist::Uniform,
                    load: 0.002,
                    num_mes: 5.0,
                },
                1234,
            );
            // tiny mesh and short run: this is a build-gate smoke test,
            // not a statistics run
            cfg.mesh_w = 8;
            cfg.mesh_l = 8;
            cfg.warmup_jobs = 5;
            cfg.measured_jobs = 40;
            let m = Simulator::new(&cfg, 0).run();
            let label = cfg.series_label();
            assert_eq!(m.jobs, 40, "{label}: wrong measured job count");
            assert!(
                m.utilization > 0.0 && m.utilization <= 1.0,
                "{label}: utilization {} outside (0, 1]",
                m.utilization
            );
            assert!(
                m.mean_turnaround > 0.0,
                "{label}: non-positive turnaround {}",
                m.mean_turnaround
            );
        }
    }
}
