//! Integration tests of `procsim campaign`: the checked-in scenario
//! files must reproduce the committed golden CSVs byte-for-byte at
//! worker-pool sizes 1 and 4, a warm cache must execute zero points,
//! and malformed scenarios must die with a structured line-numbered
//! error (exit code 2).
//!
//! These run the real binary from the package root, where the relative
//! `scenarios/` and `results/golden/` paths resolve.

use std::path::PathBuf;
use std::process::Command;

fn tmp(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("procsim_cli_campaign_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    let _ = std::fs::remove_file(&p);
    p
}

struct Run {
    stdout: String,
    stderr: String,
    success: bool,
    code: Option<i32>,
}

fn campaign(args: &[&str]) -> Run {
    let out = Command::new(env!("CARGO_BIN_EXE_procsim"))
        .arg("campaign")
        .args(args)
        .output()
        .expect("procsim binary runs");
    Run {
        stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
        success: out.status.success(),
        code: out.status.code(),
    }
}

/// Replays a scenario with a cold cache at the given thread count and
/// returns the CSV bytes.
fn replay(scenario: &str, threads: &str, tag: &str) -> String {
    let cache = tmp(&format!("{tag}_cache_t{threads}"));
    let csv = tmp(&format!("{tag}_csv_t{threads}"));
    let r = campaign(&[
        scenario,
        "--threads",
        threads,
        "--cache",
        cache.to_str().unwrap(),
        "--csv",
        csv.to_str().unwrap(),
    ]);
    assert!(r.success, "campaign {scenario} failed: {}", r.stderr);
    let bytes = std::fs::read_to_string(&csv).expect("campaign CSV written");
    let _ = std::fs::remove_dir_all(&cache);
    let _ = std::fs::remove_file(&csv);
    bytes
}

#[test]
fn fig09_scenario_reproduces_the_golden_at_1_and_4_threads() {
    let golden = std::fs::read_to_string("results/golden/fig09.csv").expect("golden checked in");
    for threads in ["1", "4"] {
        let got = replay("scenarios/fig09.toml", threads, "fig09");
        assert_eq!(
            got, golden,
            "scenarios/fig09.toml must byte-match the fig09 golden at --threads {threads}"
        );
    }
}

#[test]
#[ignore = "~3 min in debug profile; CI replays it in release at threads 1 and 4"]
fn mesh_vs_torus_scenario_reproduces_the_golden() {
    let golden =
        std::fs::read_to_string("results/golden/mesh_vs_torus.csv").expect("golden checked in");
    for threads in ["1", "4"] {
        let got = replay("scenarios/mesh_vs_torus.toml", threads, "mvt");
        assert_eq!(
            got, golden,
            "scenarios/mesh_vs_torus.toml must byte-match the golden at --threads {threads}"
        );
    }
}

#[test]
fn warm_cache_executes_zero_points() {
    let cache = tmp("smoke_cache");
    let csv_cold = tmp("smoke_cold");
    let csv_warm = tmp("smoke_warm");
    let base = [
        "scenarios/smoke.toml",
        "--threads",
        "2",
        "--cache",
        cache.to_str().unwrap(),
    ];

    let cold = campaign(&[&base[..], &["--csv", csv_cold.to_str().unwrap()]].concat());
    assert!(cold.success, "{}", cold.stderr);
    assert!(cold.stdout.contains("4 points (0 cached, 4 to run)"), "{}", cold.stdout);
    assert!(cold.stdout.contains("(4 executed, 0 cached)"), "{}", cold.stdout);

    let warm = campaign(&[&base[..], &["--csv", csv_warm.to_str().unwrap()]].concat());
    assert!(warm.success, "{}", warm.stderr);
    assert!(warm.stdout.contains("4 points (4 cached, 0 to run)"), "{}", warm.stdout);
    assert!(warm.stdout.contains("(0 executed, 4 cached)"), "{}", warm.stdout);

    let a = std::fs::read_to_string(&csv_cold).unwrap();
    let b = std::fs::read_to_string(&csv_warm).unwrap();
    assert_eq!(a, b, "cold and warm CSVs are byte-identical");
    assert!(a.lines().count() == 5, "header + 4 points:\n{a}");

    let _ = std::fs::remove_dir_all(&cache);
    let _ = std::fs::remove_file(&csv_cold);
    let _ = std::fs::remove_file(&csv_warm);
}

#[test]
fn dry_run_probes_without_executing() {
    let cache = tmp("dry_cache");
    let csv = tmp("dry_csv");
    let r = campaign(&[
        "scenarios/smoke.toml",
        "--dry-run",
        "--cache",
        cache.to_str().unwrap(),
        "--csv",
        csv.to_str().unwrap(),
    ]);
    assert!(r.success, "{}", r.stderr);
    assert!(r.stdout.contains("4 points (0 cached, 4 to run)"), "{}", r.stdout);
    // one listing line per point, with strategy and hash
    assert!(r.stdout.contains("GABL(FCFS)") || r.stdout.contains("GABL"), "{}", r.stdout);
    assert!(!csv.exists(), "--dry-run must not write the CSV");
    let cache_empty = !cache.exists()
        || std::fs::read_dir(&cache).map(|d| d.count() == 0).unwrap_or(true);
    assert!(cache_empty, "--dry-run must not populate the cache");
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn malformed_scenario_dies_with_line_numbered_error() {
    let bad = tmp("bad_scenario");
    std::fs::write(
        &bad,
        "[campaign]\nname = \"bad\"\nseed = 1\n\n[matrix]\nstrategy = [\"warpdrive\"]\n",
    )
    .unwrap();
    let r = campaign(&[bad.to_str().unwrap()]);
    assert!(!r.success, "malformed scenario must fail");
    assert_eq!(r.code, Some(2), "usage errors exit 2");
    assert!(r.stderr.contains("scenario line 6"), "{}", r.stderr);
    assert!(r.stderr.contains("matrix.strategy"), "{}", r.stderr);
    assert!(r.stderr.contains("warpdrive"), "{}", r.stderr);
    let _ = std::fs::remove_file(&bad);

    // a missing file is a whole-file error, still structured
    let r = campaign(&["scenarios/does_not_exist.toml"]);
    assert!(!r.success);
    assert_eq!(r.code, Some(2));
    assert!(r.stderr.contains("cannot read"), "{}", r.stderr);
}
