//! `procsim` CLI — run a single configuration, a load sweep, or a trace
//! replay from the command line.
//!
//! ```text
//! procsim run   [--strategy gabl|paging0|mbs|ff|bf|random|mc]
//!               [--scheduler fcfs|ssd|sjf|ljf|easy]
//!               [--workload uniform|exponential|paragon|cm5]
//!               [--topology mesh|torus]
//!               [--load 0.0008] [--jobs 400] [--seed 42]
//!               [--reps N] [--threads N]
//! procsim sweep [same flags] --loads 0.0002,0.0004,0.0008
//! procsim trace <file.swf> [--load 0.7] [--strategy S|all] [--scheduler P]
//!               [--topology mesh|torus] [--scale 360] [--jobs N] [--reps R]
//!               [--seed K] [--csv PATH]
//! procsim gen-trace <out.swf> [--model paragon|cm5] [--jobs N] [--seed K]
//! procsim campaign <scenario.toml> [--cache DIR] [--csv PATH] [--force]
//!               [--dry-run] [--threads N]
//! ```
//!
//! Every simulating subcommand takes `--topology {mesh,torus}` (`--torus`
//! is a legacy alias for `--topology torus`): the same workload, strategy,
//! and seeds drive either network, so a mesh run and a torus run differ
//! only in the wraparound links and the dateline virtual channels — see
//! `docs/TOPOLOGIES.md`.
//!
//! `trace` replays an SWF archive file at a target **offered load**
//! (`--load 0.7` = the scaled trace occupies 70 % of machine capacity in
//! its own time domain; see `docs/WORKLOADS.md` for the math) and writes
//! one CSV row per (strategy, load) point. Replications run in parallel
//! on the shared worker pool; `--threads N` (or the `PROCSIM_THREADS`
//! environment variable) sets its size. The thread count never changes
//! results, only wall-clock time.

use procsim::{
    cached_count, derive_seed, expand, run_campaign, run_point, run_points, trace_to_jobs,
    write_swf_to, CampaignOptions, Cm5Model, ParagonModel, PointResult, Scenario, SchedulerKind,
    SideDist, SimConfig, SimRng, StopReason, StrategyKind, TopologyKind, TraceWorkload,
    WorkloadSpec,
};
use std::io::Write;
use std::sync::Arc;

struct Args {
    map: std::collections::HashMap<String, String>,
    flags: Vec<String>,
    positional: Vec<String>,
}

fn parse_args(args: &[String]) -> Args {
    let mut map = std::collections::HashMap::new();
    let mut flags = Vec::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(key) = a.strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                map.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.push(key.to_string());
                i += 1;
            }
        } else {
            positional.push(a.clone());
            i += 1;
        }
    }
    Args {
        map,
        flags,
        positional,
    }
}

fn strategy_of(name: &str) -> StrategyKind {
    // the scenario format and the CLI share one spelling (FromStr)
    name.parse().unwrap_or_else(|e: String| die(&e))
}

fn scheduler_of(name: &str) -> SchedulerKind {
    name.parse().unwrap_or_else(|e: String| die(&e))
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("run `procsim help` for usage");
    std::process::exit(2)
}

/// Reads the run topology from `--topology mesh|torus` (or the legacy
/// `--torus` flag). The two spellings must agree if both appear.
fn topology_of(a: &Args) -> TopologyKind {
    if a.flags.iter().any(|f| f == "topology") {
        // the value was missing (or swallowed by a following flag);
        // falling back to mesh would silently ignore the user's choice
        die("--topology needs a value (mesh or torus)");
    }
    let named = a
        .map
        .get("topology")
        .map(|s| s.parse::<TopologyKind>().unwrap_or_else(|e| die(&e)));
    let legacy_torus = a.flags.iter().any(|f| f == "torus");
    match (named, legacy_torus) {
        (Some(TopologyKind::Mesh), true) => {
            die("--topology mesh contradicts --torus (drop one)")
        }
        (Some(t), _) => t,
        (None, true) => TopologyKind::Torus,
        (None, false) => TopologyKind::Mesh,
    }
}

fn workload_of(name: &str, load: f64) -> WorkloadSpec {
    match name {
        "uniform" => WorkloadSpec::Stochastic {
            sides: SideDist::Uniform,
            load,
            num_mes: 5.0,
        },
        "exponential" => WorkloadSpec::Stochastic {
            sides: SideDist::Exponential,
            load,
            num_mes: 5.0,
        },
        "paragon" => WorkloadSpec::SyntheticTrace {
            model: ParagonModel::default(),
            load,
            runtime_scale: 360.0,
        },
        "cm5" => {
            let recs = Cm5Model::default().generate(&mut SimRng::new(7));
            let f = procsim::factor_for_load(1186.7, load);
            WorkloadSpec::FixedTrace(Arc::new(trace_to_jobs(&recs, 16, 22, f, 360.0)))
        }
        other => die(&format!("unknown workload '{other}'")),
    }
}

fn config_from(a: &Args, load: f64) -> SimConfig {
    let strategy = strategy_of(a.map.get("strategy").map(|s| s.as_str()).unwrap_or("gabl"));
    let scheduler = scheduler_of(a.map.get("scheduler").map(|s| s.as_str()).unwrap_or("fcfs"));
    let workload = workload_of(a.map.get("workload").map(|s| s.as_str()).unwrap_or("uniform"), load);
    let seed: u64 = a.map.get("seed").map(|s| s.parse().expect("bad --seed")).unwrap_or(42);
    let mut cfg = SimConfig::paper(strategy, scheduler, workload, seed);
    cfg.topology = topology_of(a);
    let jobs: usize = a.map.get("jobs").map(|s| s.parse().expect("bad --jobs")).unwrap_or(400);
    cfg.measured_jobs = jobs;
    cfg.warmup_jobs = (jobs / 4).max(10);
    cfg
}

fn print_result(p: &procsim::PointResult) {
    println!(
        "{:<18} load {:<9.5} turnaround {:>10.1} ±{:>7.1}  service {:>8.1}  util {:>5.3}  latency {:>7.1}  blocking {:>7.1}  [{} reps]",
        p.label,
        p.load,
        p.turnaround(),
        p.ci95[0],
        p.service(),
        p.utilization(),
        p.latency(),
        p.blocking(),
        p.replications
    );
}

fn print_point(cfg: &SimConfig, reps: usize) {
    print_result(&run_point(cfg, reps.max(2), reps.max(2) * 2));
}

/// Stable per-strategy substream index for [`derive_seed`] (FNV-1a over
/// the series label): a strategy's random streams are identical whether
/// it runs alone (`--strategy mbs`) or inside `--strategy all`, so
/// single-strategy runs reproduce the matching row of an all-strategies
/// CSV.
fn strategy_stream(label: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// `procsim trace <file.swf>`: replay an SWF trace at a target offered
/// load. Every (strategy) series is one experimental point; all points'
/// replications run as a single batch on the shared worker pool, so the
/// CSV is bit-identical at any thread count.
///
/// The trace is opened **streaming** ([`TraceWorkload::open`]): one
/// validating pass computes the scaling statistics, and replay re-reads
/// the file lazily — memory stays bounded however long the trace is, so
/// `gen-trace`-produced million-job fixtures replay without swapping.
/// `--reps 1` runs a single replication per strategy (no confidence
/// intervals) — the stress-replay mode CI's smoke step uses.
fn run_trace(a: &Args, reps: usize) {
    let path = a
        .positional
        .first()
        .unwrap_or_else(|| die("trace needs a .swf file path"));
    let trace = TraceWorkload::open(path).unwrap_or_else(|e| die(&e.to_string()));
    let (mesh_w, mesh_l) = procsim::PAPER_MESH;
    let machine = mesh_w as u32 * mesh_l as u32;
    match trace.summary() {
        Some(s) => println!("{s}"),
        None => die("trace too short"),
    }
    println!(
        "native offered load: {:.3} (on {} processors)\n",
        trace.offered_load(machine),
        machine
    );

    if a.map.contains_key("factor") || a.flags.iter().any(|f| f == "factor") {
        // the pre-offered-load flag; ignoring it silently would replay at
        // a different load than the caller asked for
        die(
            "--factor was replaced by --load (target offered load, e.g. 0.7); \
             a factor f corresponds to --load <native_load / f> — see docs/WORKLOADS.md",
        );
    }
    let load: f64 = a
        .map
        .get("load")
        .map(|s| s.parse().expect("bad --load"))
        .unwrap_or(0.7);
    // `!(x > 0.0)` also rejects NaN, which `x <= 0.0` would let through
    if !(load > 0.0 && load.is_finite()) {
        die("--load must be a positive number (offered-load fraction, e.g. 0.7)");
    }
    let scale: f64 = a
        .map
        .get("scale")
        .map(|s| s.parse().expect("bad --scale"))
        .unwrap_or(360.0);
    if !(scale > 0.0 && scale.is_finite()) {
        die("--scale must be a positive number (seconds of runtime per message)");
    }
    let topology = topology_of(a);
    let factor = trace.factor_for_offered_load(machine, load);
    println!(
        "replaying at offered load {load} on the {topology} \
         (arrival-scaling factor f = {factor:.4}, f < 1 compresses)\n"
    );

    let strategies: Vec<StrategyKind> = match a.map.get("strategy").map(|s| s.as_str()) {
        None | Some("all") => StrategyKind::PAPER.to_vec(),
        Some(name) => vec![strategy_of(name)],
    };
    let scheduler = scheduler_of(a.map.get("scheduler").map(|s| s.as_str()).unwrap_or("fcfs"));
    let seed: u64 = a.map.get("seed").map(|s| s.parse().expect("bad --seed")).unwrap_or(42);
    let req_jobs: usize = a.map.get("jobs").map(|s| s.parse().expect("bad --jobs")).unwrap_or(400);
    // a replication only sees trace.len() arrivals (the segment wraps the
    // stream exactly once), so cap warmup + measurement to what the trace
    // can feed
    let req_warmup = (req_jobs / 4).max(10);
    let (warmup, jobs) = trace.capped_budget(req_warmup, req_jobs);
    if (warmup, jobs) != (req_warmup, req_jobs) {
        eprintln!(
            "warning: trace has only {} jobs; measuring {jobs} after {warmup} warmup",
            trace.len()
        );
    }

    let trace = Arc::new(trace);
    let cfgs: Vec<SimConfig> = strategies
        .iter()
        .map(|&strategy| {
            let mut cfg = SimConfig::paper(
                strategy,
                scheduler,
                WorkloadSpec::Trace {
                    trace: trace.clone(),
                    load,
                    runtime_scale: scale,
                },
                derive_seed(seed, strategy_stream(&strategy.to_string())),
            );
            // same seed on either topology: a mesh and a torus replay of
            // one strategy see identical job streams (paired comparison)
            cfg.topology = topology;
            cfg.measured_jobs = jobs;
            cfg.warmup_jobs = warmup;
            cfg
        })
        .collect();
    // one batch: every strategy's replications share the worker pool
    let points: Vec<PointResult> = if reps <= 1 {
        eprintln!("note: --reps 1 runs one replication per strategy (no confidence intervals)");
        cfgs.iter()
            .map(|cfg| {
                let m = procsim::Simulator::new(cfg, 0).run();
                PointResult {
                    label: cfg.series_label(),
                    load: cfg.workload.load(),
                    replications: 1,
                    stop: StopReason::Budget,
                    means: m.response_vector(),
                    ci95: [0.0; 6],
                }
            })
            .collect()
    } else {
        run_points(&cfgs, reps, reps * 2)
    };
    for p in &points {
        print_result(p);
    }

    let stem = std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "trace".into());
    let csv_path = a
        .map
        .get("csv")
        .cloned()
        .unwrap_or_else(|| format!("results/trace_{stem}.csv"));
    match write_trace_csv(&csv_path, &stem, topology, factor, &points) {
        Ok(()) => eprintln!("wrote {csv_path}"),
        Err(e) => die(&format!("cannot write {csv_path}: {e}")),
    }
}

/// Writes the trace-replay CSV: one row per (series, load) point, full
/// float precision (shortest round-trip representation), so files diff
/// cleanly across runs and thread counts.
fn write_trace_csv(
    path: &str,
    trace_name: &str,
    topology: TopologyKind,
    factor: f64,
    points: &[PointResult],
) -> std::io::Result<()> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(
        f,
        "trace,series,topology,load,factor,reps,turnaround,service,utilization,blocking,latency,\
         fragments,ci_turnaround,ci_service,ci_utilization,ci_blocking,ci_latency,ci_fragments"
    )?;
    for p in points {
        write!(
            f,
            "{},{},{},{},{},{}",
            trace_name, p.label, topology, p.load, factor, p.replications
        )?;
        for m in p.means {
            write!(f, ",{m}")?;
        }
        for c in p.ci95 {
            write!(f, ",{c}")?;
        }
        writeln!(f)?;
    }
    Ok(())
}

/// `procsim gen-trace <out.swf>`: write a synthetic SWF fixture (the
/// generator behind the checked-in sample; use larger `--jobs` for
/// stress fixtures — the model streams straight to the file, so a
/// million-job fixture is generated in O(1) memory).
fn run_gen_trace(a: &Args) {
    let out = a
        .positional
        .first()
        .unwrap_or_else(|| die("gen-trace needs an output .swf path"));
    let model = a.map.get("model").map(|s| s.as_str()).unwrap_or("paragon");
    let jobs: usize = a.map.get("jobs").map(|s| s.parse().expect("bad --jobs")).unwrap_or(600);
    let seed: u64 = a.map.get("seed").map(|s| s.parse().expect("bad --seed")).unwrap_or(2008);
    if let Some(dir) = std::path::Path::new(out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| die(&format!("mkdir: {e}")));
        }
    }
    let mut rng = SimRng::new(seed);
    let file =
        std::fs::File::create(out).unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
    let mut w = std::io::BufWriter::new(file);
    let written = (|| -> std::io::Result<usize> {
        write!(
            w,
            "; procsim synthetic SWF fixture (public domain: generated data, no production-log content)\n\
             ; regenerate with: procsim gen-trace {out} --model {model} --jobs {jobs} --seed {seed}\n"
        )?;
        let n = match model {
            "paragon" => {
                write_swf_to(&mut w, ParagonModel { jobs, ..Default::default() }.stream(&mut rng))?
            }
            "cm5" => write_swf_to(&mut w, Cm5Model { jobs, ..Default::default() }.stream(&mut rng))?,
            other => die(&format!("unknown model '{other}' (paragon or cm5)")),
        };
        w.flush()?;
        Ok(n)
    })()
    .unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
    assert_eq!(written, jobs);
    // re-open streaming: validates the file end-to-end and reports the
    // native load without holding the records
    let trace = TraceWorkload::open(out).expect("generated trace must parse");
    let (mesh_w, mesh_l) = procsim::PAPER_MESH;
    println!(
        "wrote {out}: {} jobs ({model} model, seed {seed}), native offered load {:.3} on {mesh_w}x{mesh_l}",
        trace.len(),
        trace.offered_load(mesh_w as u32 * mesh_l as u32)
    );
}

/// `procsim campaign <scenario.toml>`: expand a declarative scenario
/// into its cross-product of points, serve what the on-disk cache
/// already has, run the rest on the shared worker pool, and merge
/// everything into one CSV. Interrupt it freely: a rerun resumes from
/// the cache and the merged CSV is byte-identical to an uninterrupted
/// run at any thread count (see `docs/CAMPAIGNS.md`).
fn run_campaign_cmd(a: &Args) {
    let path = a
        .positional
        .first()
        .unwrap_or_else(|| die("campaign needs a scenario file path"));
    let scenario =
        Scenario::load(std::path::Path::new(path)).unwrap_or_else(|e| die(&e.to_string()));
    let points = expand(&scenario).unwrap_or_else(|e| die(&e.to_string()));
    let force = a.flags.iter().any(|f| f == "force");
    let dry_run = a.flags.iter().any(|f| f == "dry-run");
    let cache_dir = std::path::PathBuf::from(
        a.map
            .get("cache")
            .cloned()
            .unwrap_or_else(|| format!("results/campaign_cache/{}", scenario.name)),
    );
    let csv_path = a
        .map
        .get("csv")
        .cloned()
        .or_else(|| scenario.output.csv.clone())
        .unwrap_or_else(|| format!("results/campaign_{}.csv", scenario.name));

    let cached = if force {
        0
    } else {
        cached_count(&points, &cache_dir)
    };
    println!(
        "campaign '{}': {} points ({} cached, {} to run{})",
        scenario.name,
        points.len(),
        cached,
        points.len() - cached,
        if force { ", --force" } else { "" }
    );

    if dry_run {
        for p in &points {
            println!(
                "  [{:>3}] {}({}) {} load {} seed {:#x} hash {}",
                p.index,
                p.settings.strategy,
                p.settings.scheduler,
                p.settings.workload.name(),
                p.settings.load,
                p.seed,
                p.hash
            );
        }
        return;
    }

    let opts = CampaignOptions {
        threads: None, // the shared pool; sized by --threads / PROCSIM_THREADS
        cache_dir,
        force,
    };
    let outcome = run_campaign(&scenario, &opts).unwrap_or_else(|e| die(&e.to_string()));
    if let Some(dir) = std::path::Path::new(&csv_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| die(&format!("cannot create {}: {e}", dir.display())));
        }
    }
    std::fs::write(&csv_path, &outcome.csv)
        .unwrap_or_else(|e| die(&format!("cannot write {csv_path}: {e}")));
    println!(
        "wrote {csv_path} ({} executed, {} cached)",
        outcome.executed, outcome.cached
    );
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cmd = argv.first().map(|s| s.as_str()).unwrap_or("help");
    let a = parse_args(&argv[1.min(argv.len())..]);
    let reps: usize = a.map.get("reps").map(|s| s.parse().expect("bad --reps")).unwrap_or(3);
    if let Some(n) = a.map.get("threads") {
        let n: usize = n.parse().expect("bad --threads");
        if !procsim::pool::configure_global(n.max(1)) {
            eprintln!("warning: worker pool already sized; --threads {n} ignored");
        }
    }

    match cmd {
        "run" => {
            let load: f64 = a
                .map
                .get("load")
                .map(|s| s.parse().expect("bad --load"))
                .unwrap_or(0.0008);
            let cfg = config_from(&a, load);
            print_point(&cfg, reps);
        }
        "sweep" => {
            let loads: Vec<f64> = a
                .map
                .get("loads")
                .expect("sweep needs --loads a,b,c")
                .split(',')
                .map(|s| s.trim().parse().expect("bad load value"))
                .collect();
            // one batch: every load's replications share the worker pool
            let cfgs: Vec<SimConfig> = loads.iter().map(|&l| config_from(&a, l)).collect();
            for p in run_points(&cfgs, reps.max(2), reps.max(2) * 2) {
                print_result(&p);
            }
        }
        "trace" => run_trace(&a, reps),
        "gen-trace" => run_gen_trace(&a),
        "campaign" => run_campaign_cmd(&a),
        _ => {
            println!("procsim — 2D mesh processor allocation & scheduling simulator");
            println!("(IPDPS 2008 reproduction; see README.md)\n");
            println!("usage:");
            println!("  procsim run   [--strategy S] [--scheduler P] [--workload W] [--load L]");
            println!("                [--topology T] [--jobs N] [--seed K] [--reps R] [--threads T]");
            println!("  procsim sweep --loads a,b,c [same flags]");
            println!("  procsim trace <file.swf> [--load RHO] [--strategy S|all] [--scheduler P]");
            println!("                [--topology T] [--scale S] [--jobs N] [--reps R] [--seed K]");
            println!("                [--csv PATH]");
            println!("  procsim gen-trace <out.swf> [--model paragon|cm5] [--jobs N] [--seed K]");
            println!("  procsim campaign <scenario.toml> [--cache DIR] [--csv PATH] [--force]");
            println!("                [--dry-run] [--threads T]");
            println!();
            println!("campaign runs a declarative scenario file (see docs/CAMPAIGNS.md and");
            println!("scenarios/): the cross-product of its matrix, cached per point on disk,");
            println!("so interrupted or extended campaigns resume by rerunning only what's");
            println!("missing — output is byte-identical at any thread count.");
            println!();
            println!("strategies: gabl paging0 paging1 mbs ff bf random mc");
            println!("schedulers: fcfs ssd sjf ljf easy");
            println!("workloads:  uniform exponential paragon cm5");
            println!("topologies: mesh torus   (--torus = legacy alias; docs/TOPOLOGIES.md)");
            println!();
            println!("trace --load is the target offered load (fraction of machine capacity");
            println!("in trace time, e.g. 0.7); see docs/WORKLOADS.md for the scaling math.");
            println!("traces replay as a streaming pipeline (bounded memory, any length);");
            println!("--reps 1 runs one replication per strategy (stress mode, no CIs)");
            println!();
            println!("replications run on a shared worker pool; size it with --threads N");
            println!("or PROCSIM_THREADS=N (results are identical for any thread count)");
        }
    }
}
