//! `procsim` CLI — run a single configuration, a load sweep, or a trace
//! replay from the command line.
//!
//! ```text
//! procsim run   [--strategy gabl|paging0|mbs|ff|bf|random|mc]
//!               [--scheduler fcfs|ssd|sjf|ljf|easy]
//!               [--workload uniform|exponential|paragon|cm5]
//!               [--load 0.0008] [--jobs 400] [--seed 42]
//!               [--torus] [--reps N] [--threads N]
//! procsim sweep [same flags] --loads 0.0002,0.0004,0.0008
//! procsim trace <file.swf> [--factor 0.25] [--scale 360]
//! ```
//!
//! Replications run in parallel on the shared worker pool; `--threads N`
//! (or the `PROCSIM_THREADS` environment variable) sets its size. The
//! thread count never changes results, only wall-clock time.

use procsim::{
    parse_swf, run_point, run_points, summarize, trace_to_jobs, Cm5Model, PageIndexing,
    ParagonModel, SchedulerKind, SideDist, SimConfig, SimRng, StrategyKind, TopologyKind,
    WorkloadSpec,
};
use std::sync::Arc;

struct Args {
    map: std::collections::HashMap<String, String>,
    flags: Vec<String>,
    positional: Vec<String>,
}

fn parse_args(args: &[String]) -> Args {
    let mut map = std::collections::HashMap::new();
    let mut flags = Vec::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(key) = a.strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                map.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.push(key.to_string());
                i += 1;
            }
        } else {
            positional.push(a.clone());
            i += 1;
        }
    }
    Args {
        map,
        flags,
        positional,
    }
}

fn strategy_of(name: &str) -> StrategyKind {
    match name {
        "gabl" => StrategyKind::Gabl,
        "paging0" => StrategyKind::Paging {
            size_index: 0,
            indexing: PageIndexing::RowMajor,
        },
        "paging1" => StrategyKind::Paging {
            size_index: 1,
            indexing: PageIndexing::RowMajor,
        },
        "mbs" => StrategyKind::Mbs,
        "ff" => StrategyKind::FirstFit,
        "bf" => StrategyKind::BestFit,
        "random" => StrategyKind::Random,
        "mc" => StrategyKind::Mc,
        other => die(&format!("unknown strategy '{other}'")),
    }
}

fn scheduler_of(name: &str) -> SchedulerKind {
    match name {
        "fcfs" => SchedulerKind::Fcfs,
        "ssd" => SchedulerKind::Ssd,
        "sjf" => SchedulerKind::SjfArea,
        "ljf" => SchedulerKind::LjfArea,
        "easy" => SchedulerKind::EasyBackfill,
        other => die(&format!("unknown scheduler '{other}'")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("run `procsim help` for usage");
    std::process::exit(2)
}

fn workload_of(name: &str, load: f64) -> WorkloadSpec {
    match name {
        "uniform" => WorkloadSpec::Stochastic {
            sides: SideDist::Uniform,
            load,
            num_mes: 5.0,
        },
        "exponential" => WorkloadSpec::Stochastic {
            sides: SideDist::Exponential,
            load,
            num_mes: 5.0,
        },
        "paragon" => WorkloadSpec::SyntheticTrace {
            model: ParagonModel::default(),
            load,
            runtime_scale: 360.0,
        },
        "cm5" => {
            let recs = Cm5Model::default().generate(&mut SimRng::new(7));
            let f = procsim::factor_for_load(1186.7, load);
            WorkloadSpec::FixedTrace(Arc::new(trace_to_jobs(&recs, 16, 22, f, 360.0)))
        }
        other => die(&format!("unknown workload '{other}'")),
    }
}

fn config_from(a: &Args, load: f64) -> SimConfig {
    let strategy = strategy_of(a.map.get("strategy").map(|s| s.as_str()).unwrap_or("gabl"));
    let scheduler = scheduler_of(a.map.get("scheduler").map(|s| s.as_str()).unwrap_or("fcfs"));
    let workload = workload_of(a.map.get("workload").map(|s| s.as_str()).unwrap_or("uniform"), load);
    let seed: u64 = a.map.get("seed").map(|s| s.parse().expect("bad --seed")).unwrap_or(42);
    let mut cfg = SimConfig::paper(strategy, scheduler, workload, seed);
    if a.flags.iter().any(|f| f == "torus") {
        cfg.topology = TopologyKind::Torus;
    }
    let jobs: usize = a.map.get("jobs").map(|s| s.parse().expect("bad --jobs")).unwrap_or(400);
    cfg.measured_jobs = jobs;
    cfg.warmup_jobs = (jobs / 4).max(10);
    cfg
}

fn print_result(p: &procsim::PointResult) {
    println!(
        "{:<18} load {:<9.5} turnaround {:>10.1} ±{:>7.1}  service {:>8.1}  util {:>5.3}  latency {:>7.1}  blocking {:>7.1}  [{} reps]",
        p.label,
        p.load,
        p.turnaround(),
        p.ci95[0],
        p.service(),
        p.utilization(),
        p.latency(),
        p.blocking(),
        p.replications
    );
}

fn print_point(cfg: &SimConfig, reps: usize) {
    print_result(&run_point(cfg, reps.max(2), reps.max(2) * 2));
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cmd = argv.first().map(|s| s.as_str()).unwrap_or("help");
    let a = parse_args(&argv[1.min(argv.len())..]);
    let reps: usize = a.map.get("reps").map(|s| s.parse().expect("bad --reps")).unwrap_or(3);
    if let Some(n) = a.map.get("threads") {
        let n: usize = n.parse().expect("bad --threads");
        if !procsim::pool::configure_global(n.max(1)) {
            eprintln!("warning: worker pool already sized; --threads {n} ignored");
        }
    }

    match cmd {
        "run" => {
            let load: f64 = a
                .map
                .get("load")
                .map(|s| s.parse().expect("bad --load"))
                .unwrap_or(0.0008);
            let cfg = config_from(&a, load);
            print_point(&cfg, reps);
        }
        "sweep" => {
            let loads: Vec<f64> = a
                .map
                .get("loads")
                .expect("sweep needs --loads a,b,c")
                .split(',')
                .map(|s| s.trim().parse().expect("bad load value"))
                .collect();
            // one batch: every load's replications share the worker pool
            let cfgs: Vec<SimConfig> = loads.iter().map(|&l| config_from(&a, l)).collect();
            for p in run_points(&cfgs, reps.max(2), reps.max(2) * 2) {
                print_result(&p);
            }
        }
        "trace" => {
            let path = a
                .positional
                .first()
                .unwrap_or_else(|| die("trace needs a .swf file path"));
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
            let recs = parse_swf(&text).unwrap_or_else(|e| die(&e));
            match summarize(&recs) {
                Some(s) => println!("{s}\n"),
                None => die("trace too short"),
            }
            let factor: f64 = a.map.get("factor").map(|s| s.parse().expect("bad --factor")).unwrap_or(1.0);
            let scale: f64 = a.map.get("scale").map(|s| s.parse().expect("bad --scale")).unwrap_or(360.0);
            let jobs = Arc::new(trace_to_jobs(&recs, 16, 22, factor, scale));
            for strategy in StrategyKind::PAPER {
                let mut cfg = SimConfig::paper(
                    strategy,
                    SchedulerKind::Fcfs,
                    WorkloadSpec::FixedTrace(jobs.clone()),
                    42,
                );
                cfg.measured_jobs = 400.min(jobs.len().saturating_sub(100)).max(50);
                cfg.warmup_jobs = (cfg.measured_jobs / 4).max(10);
                print_point(&cfg, reps);
            }
        }
        _ => {
            println!("procsim — 2D mesh processor allocation & scheduling simulator");
            println!("(IPDPS 2008 reproduction; see README.md)\n");
            println!("usage:");
            println!("  procsim run   [--strategy S] [--scheduler P] [--workload W] [--load L]");
            println!("                [--jobs N] [--seed K] [--reps R] [--torus] [--threads T]");
            println!("  procsim sweep --loads a,b,c [same flags]");
            println!("  procsim trace <file.swf> [--factor F] [--scale S]");
            println!();
            println!("strategies: gabl paging0 paging1 mbs ff bf random mc");
            println!("schedulers: fcfs ssd sjf ljf easy");
            println!("workloads:  uniform exponential paragon cm5");
            println!();
            println!("replications run on a shared worker pool; size it with --threads N");
            println!("or PROCSIM_THREADS=N (results are identical for any thread count)");
        }
    }
}
