//! # procsim — processor allocation and job scheduling in 2D mesh multicomputers
//!
//! A from-scratch Rust reproduction of Bani-Mohammad, Ould-Khaoua,
//! Mackenzie, Ababneh & Ferguson, *"The Effect of Real Workloads and
//! Stochastic Workloads on the Performance of Allocation and Scheduling
//! Algorithms in 2D Mesh Multicomputers"* (IPDPS 2008), including the
//! ProcSimity-style flit-level wormhole network simulator the paper's
//! experiments ran on.
//!
//! This crate is a facade: it re-exports the public API of the workspace
//! crates so applications depend on one name. See the README for a tour
//! and `DESIGN.md` for the architecture.
//!
//! ## Quick start
//!
//! ```
//! use procsim::{
//!     run_point, SchedulerKind, SimConfig, StrategyKind, WorkloadSpec, SideDist,
//! };
//!
//! // GABL under SSD on the paper's 16x22 mesh, stochastic uniform
//! // workload at a light load, measured over a reduced job count.
//! let mut cfg = SimConfig::paper(
//!     StrategyKind::Gabl,
//!     SchedulerKind::Ssd,
//!     WorkloadSpec::Stochastic { sides: SideDist::Uniform, load: 0.002, num_mes: 5.0 },
//!     42,
//! );
//! cfg.warmup_jobs = 10;
//! cfg.measured_jobs = 60;
//! let point = run_point(&cfg, 3, 5);
//! assert!(point.turnaround() > 0.0);
//! assert!(point.utilization() > 0.0 && point.utilization() <= 1.0);
//! ```

// --- simulator layers, lowest first -------------------------------------
pub use desim::{EventQueue, SimRng, Time};
pub use mesh2d::{
    decompose_pow2_squares, find_free_submesh, largest_free_rect, split_square, Coord, Mesh,
    NodeId, PageGrid, PageIndexing, SubMesh,
};
pub use wormnet::{pattern_messages, route, xy_route, ChannelId, Completion, Network, Pattern, Topology, TopologyKind};

// --- policies -------------------------------------------------------------
pub use mesh_alloc::{
    Allocation, AllocationStrategy, BestFit, FirstFit, Gabl, Mbs, Mc, Paging, RandomNc,
    StrategyKind,
};
pub use mesh_sched::{Fcfs, QueuedJob, Scheduler, SchedulerKind, Ssd};

// --- workloads and statistics ---------------------------------------------
pub use simstats::{student_t_95, Histogram, Replications, StopReason, TimeWeighted, Welford};
pub use workload::{
    factor_for_load, load_for_factor, parse_swf, parse_swf_retained, shape_for_size, summarize,
    summarize_stream, trace_to_jobs, write_swf, write_swf_to, Cm5Model, JobSpec, ParagonModel,
    ScaledJobs, SideDist, StochasticGen, StreamingSummary, SwfError, SwfErrorKind, SwfRecords,
    TraceError, TraceRecord, TraceSummary, TraceWorkload,
};

// --- the integrated simulator ----------------------------------------------
pub use procsim_core::{
    cached_count, derive_seed, expand, pool, run_campaign, run_point, run_point_on, run_point_seq,
    run_points, run_points_on, CampaignError, CampaignOptions, CampaignOutcome, CampaignPoint,
    PointResult, PointSettings, RunMetrics, Scenario, ScenarioError, SimConfig, Simulator,
    WorkerPool, WorkloadSpec,
};

/// The mesh dimensions used throughout the paper (the 352-node SDSC
/// Paragon partition shape).
pub const PAPER_MESH: (u16, u16) = (16, 22);

/// The paper's router delay in cycles.
pub const PAPER_TS: u32 = 3;

/// The paper's packet length in flits.
pub const PAPER_PLEN: u32 = 8;

/// The paper's mean per-processor message count.
pub const PAPER_NUM_MES: f64 = 5.0;
