//! Offline stand-in for `serde`.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` (nothing is
//! serialized at runtime — SWF trace I/O is hand-written text), so these
//! traits are empty markers. The derive macros from the sibling
//! `serde_derive` shim emit empty impls. Swapping in real serde later is a
//! two-line Cargo.toml change; no source edits needed.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
