//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of proptest's API the workspace's property tests use:
//! the `proptest!` / `prop_assert*` / `prop_assume!` / `prop_oneof!`
//! macros, `Strategy` with `prop_map`, integer-range and tuple strategies,
//! `any::<T>()`, `Just`, and `proptest::collection::vec`.
//!
//! Semantics: each test runs `ProptestConfig::cases` deterministic random
//! cases (seeded from the test's module path, so failures reproduce across
//! runs and machines). There is **no shrinking** — a failure reports the
//! case index and seed instead of a minimal counterexample.

use std::marker::PhantomData;

// ---------------------------------------------------------------------------
// deterministic RNG
// ---------------------------------------------------------------------------

/// SplitMix64 — tiny, deterministic, good enough to drive test-case
/// generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n > 0`).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// Stable per-test seed: FNV-1a over the test's path, mixed with the case
/// index. Deterministic across runs so failures are reproducible.
pub fn case_seed(test_path: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^ ((case as u64).wrapping_mul(0x9E3779B97F4A7C15))
}

// ---------------------------------------------------------------------------
// config and outcome
// ---------------------------------------------------------------------------

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Outcome of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assert*` failed with this message.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; the case is not counted.
    Reject,
}

// ---------------------------------------------------------------------------
// strategies
// ---------------------------------------------------------------------------

/// A generator of values for one test argument.
///
/// Object-safe: `Box<dyn Strategy<Value = T>>` is itself a strategy, which
/// is how `prop_oneof!` unifies differently-typed arms.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values (no shrinking, so this is just `map`).
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Boxes a strategy, erasing its concrete type (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// `strategy.prop_map(f)`.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's whole domain.
pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Weighted union of boxed strategies (what `prop_oneof!` builds).
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u64,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights summed incorrectly")
    }
}

pub mod collection {
    //! `proptest::collection` — collection strategies.

    use super::{Strategy, TestRng};

    /// Vector with length drawn from `len` and elements from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range in collection::vec");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( (($weight) as u32, $crate::boxed($strat)) ),+ ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( (1u32, $crate::boxed($strat)) ),+ ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut successes: u32 = 0;
                let mut attempts: u32 = 0;
                // `prop_assume!` rejections retry with fresh inputs, bounded
                // so a hard-to-satisfy assumption cannot loop forever.
                let max_attempts = config.cases.saturating_mul(16).max(16);
                while successes < config.cases && attempts < max_attempts {
                    let seed = $crate::case_seed(
                        concat!(module_path!(), "::", stringify!($name)),
                        attempts,
                    );
                    attempts += 1;
                    let mut proptest_rng = $crate::TestRng::new(seed);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut proptest_rng);)+
                    // The immediately-invoked closure gives `prop_assert*`
                    // a function boundary to `return` its Err through.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match outcome {
                        ::core::result::Result::Ok(()) => successes += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case failed ({}, case #{}, seed {:#x}): {}",
                                stringify!($name), attempts - 1, seed, msg
                            );
                        }
                    }
                }
                // Mirror real proptest: starving on prop_assume! must fail
                // loudly, not silently pass with nothing checked.
                if successes < config.cases {
                    panic!(
                        "proptest {}: only {}/{} cases satisfied prop_assume! \
                         within {} attempts — generator and assumption have \
                         drifted apart",
                        stringify!($name), successes, config.cases, max_attempts
                    );
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

pub mod prelude {
    //! `use proptest::prelude::*;`
    pub use crate::collection;
    pub use crate::{
        any, boxed, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, Any, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeds_are_stable() {
        assert_eq!(crate::case_seed("a::b", 0), crate::case_seed("a::b", 0));
        assert_ne!(crate::case_seed("a::b", 0), crate::case_seed("a::b", 1));
        assert_ne!(crate::case_seed("a::b", 0), crate::case_seed("a::c", 0));
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u16..9, y in 10u64..=20, i in -5i32..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((10..=20).contains(&y));
            prop_assert!((-5..5).contains(&i));
        }

        #[test]
        fn tuples_and_map_compose(v in (0u8..4, 0u8..4).prop_map(|(a, b)| a + b)) {
            prop_assert!(v <= 6);
        }

        #[test]
        fn oneof_and_vec(xs in collection::vec(prop_oneof![3 => 0u32..10, 1 => 100u32..110], 1..50)) {
            prop_assert!(!xs.is_empty() && xs.len() < 50);
            for x in xs {
                prop_assert!(x < 10 || (100..110).contains(&x));
            }
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_form_parses(b in any::<bool>(), s in any::<u64>()) {
            let _ = (b, s | 1);
        }
    }
}
