//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of `rand`'s 0.8 API that the simulator uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`] and
//! [`Rng::gen_range`]. The generator is xoshiro256++ seeded via SplitMix64
//! (the same family real `SmallRng` uses on 64-bit targets); streams are
//! deterministic per seed but not bit-identical to upstream `rand`.

/// A source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Seeds the full generator state from a single `u64` via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an [`RngCore`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, non-cryptographic.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.gen_range(5u64..=9);
            assert!((5..=9).contains(&v));
            let w = r.gen_range(0usize..7);
            assert!(w < 7);
        }
    }
}
