//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on a handful of plain
//! (non-generic) structs and enums but never actually serializes them —
//! the shim `serde` traits are empty markers, so the derive just needs to
//! find the type name and emit an empty impl. No `syn`/`quote` required.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the identifier following the `struct`/`enum`/`union` keyword.
fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                for tt2 in iter.by_ref() {
                    if let TokenTree::Ident(name) = tt2 {
                        return name.to_string();
                    }
                }
            }
        }
    }
    panic!("serde_derive shim: could not find a type name in the derive input");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    format!("impl ::serde::Serialize for {} {{}}", type_name(input))
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {} {{}}",
        type_name(input)
    )
    .parse()
    .unwrap()
}
